//! TC'23-style post-training co-design baseline (paper ref. \[5\]).
//!
//! Armeniakos et al. (IEEE Trans. Computers 2023) approximate a trained
//! bespoke MLP *after* training: coefficients are replaced with more
//! area-efficient values (fewer CSD digits → smaller constant
//! multipliers) and accumulations are truncated. We reproduce that
//! mechanism as a greedy accuracy-guarded search so Fig. 4 can compare
//! it against GA-embedded approximation at the same 5% loss budget.
//!
//! Key structural difference from the DATE'24 approach: multipliers
//! remain (cheap values still have ≥1 CSD digit and most have 2), which
//! is exactly why the gains saturate — the point the paper makes.

use serde::{Deserialize, Serialize};

use pe_hw::{
    Elaborator, ExactNeuronSpec, HardwareReport, LayerActivation, LayerSpec, MlpHardwareSpec,
    NeuronSpec,
};
use pe_mlp::{FixedMlp, QuantMatrix};

use crate::cheap_weights::{cheap_values, nearest};

/// Configuration of the post-training approximation search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tc23Config {
    /// Accuracy-loss budget relative to the exact baseline (0.05).
    pub loss_budget: f64,
    /// Maximum CSD digits of replacement coefficients (2 in the method's
    /// spirit: "add/sub of two shifted terms").
    pub max_digits: u32,
    /// Largest truncation (dropped low adder columns) to consider.
    pub max_trunc: u32,
}

impl Default for Tc23Config {
    fn default() -> Self {
        Self {
            loss_budget: 0.05,
            max_digits: 2,
            max_trunc: 8,
        }
    }
}

/// An approximated design produced by the search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tc23Design {
    /// The network with replaced coefficients.
    pub mlp: FixedMlp,
    /// Uniform per-layer accumulation truncation (bits).
    pub trunc_bits: Vec<u32>,
    /// Accuracy on the tuning (training) split after approximation.
    pub tuning_accuracy: f64,
}

impl Tc23Design {
    /// Integer-exact inference including truncation effects.
    ///
    /// Truncation is modelled per partial product: `w·x` keeps only the
    /// bits at or above the truncation line (two's-complement floor),
    /// matching the hardware where dropped adder columns floor each
    /// summand.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    #[must_use]
    pub fn predict(&self, x: &[u8]) -> usize {
        let mut current: Vec<i64> = x.iter().map(|&v| i64::from(v)).collect();
        for (layer, &t) in self.mlp.layers.iter().zip(&self.trunc_bits) {
            let accs: Vec<i64> = layer
                .weights
                .iter()
                .zip(&layer.biases)
                .map(|(row, &b)| {
                    let mut acc = (i64::from(b) >> t) << t;
                    for (&w, &v) in row.iter().zip(&current) {
                        acc += ((i64::from(w) * v) >> t) << t;
                    }
                    acc
                })
                .collect();
            match layer.qrelu {
                Some(q) => current = accs.iter().map(|&a| i64::from(q.apply(a))).collect(),
                None => {
                    let mut best = 0;
                    for (i, &a) in accs.iter().enumerate().skip(1) {
                        if a > accs[best] {
                            best = i;
                        }
                    }
                    return best;
                }
            }
        }
        0
    }

    /// Accuracy over quantized rows. Empty datasets score `0.0`, the
    /// workspace-wide convention.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `labels` differ in length.
    #[must_use]
    pub fn accuracy(&self, rows: &QuantMatrix, labels: &[usize]) -> f64 {
        assert_eq!(rows.len(), labels.len());
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows
            .iter()
            .zip(labels)
            .filter(|&(r, &l)| self.predict(r) == l)
            .count();
        hits as f64 / rows.len() as f64
    }

    /// Lower to the bespoke hardware description (with per-neuron
    /// truncation) and cost it at the elaborator's nominal supply.
    /// Equal by construction to costing
    /// [`hardware_spec`](Self::hardware_spec) through any
    /// [`pe_hw::CostModel`] at the nominal scenario.
    #[must_use]
    pub fn hardware_report(&self, elaborator: &Elaborator, name: &str) -> HardwareReport {
        elaborator.elaborate(&self.hardware_spec(name)).report
    }

    /// Lower to the bespoke hardware description (with per-neuron
    /// truncation and explicit CSD multipliers), ready for any
    /// [`pe_hw::CostModel`].
    #[must_use]
    pub fn hardware_spec(&self, name: &str) -> MlpHardwareSpec {
        let mut input_bits = self.mlp.input_bits;
        let inputs = self.mlp.layers.first().map_or(0, |l| l.weights[0].len());
        let layers: Vec<LayerSpec> = self
            .mlp
            .layers
            .iter()
            .zip(&self.trunc_bits)
            .map(|(layer, &t)| {
                let neurons: Vec<NeuronSpec> = layer
                    .weights
                    .iter()
                    .zip(&layer.biases)
                    .map(|(row, &b)| {
                        NeuronSpec::Exact(ExactNeuronSpec {
                            input_bits,
                            weights: row.iter().map(|&w| i64::from(w)).collect(),
                            bias: i64::from(b),
                            trunc_bits: t,
                            // TC'23 constructs its shift-add replacements
                            // explicitly, so it gets optimal CSD form.
                            csd_multipliers: true,
                        })
                    })
                    .collect();
                let activation = match layer.qrelu {
                    Some(q) => LayerActivation::QRelu {
                        out_bits: q.out_bits,
                        shift: q.shift,
                    },
                    None => LayerActivation::Argmax,
                };
                if let Some(q) = layer.qrelu {
                    input_bits = q.out_bits;
                }
                LayerSpec {
                    neurons,
                    activation,
                }
            })
            .collect();
        MlpHardwareSpec {
            name: name.to_owned(),
            inputs,
            input_bits: self.mlp.input_bits,
            layers,
        }
    }
}

/// Run the TC'23-style post-training approximation.
///
/// Greedy flow, accuracy-guarded at every step on the tuning split:
/// 1. replace every coefficient by the nearest `≤ max_digits`-CSD value,
///    reverting individual replacements (largest-error first) until the
///    accuracy floor is met again;
/// 2. grow a uniform accumulation truncation while the floor holds.
///
/// # Panics
///
/// Panics if the tuning data is empty.
#[must_use]
pub fn approximate_tc23(
    baseline: &FixedMlp,
    rows: &QuantMatrix,
    labels: &[usize],
    config: &Tc23Config,
) -> Tc23Design {
    assert!(!rows.is_empty(), "tuning data must be non-empty");
    let baseline_acc = baseline.accuracy(rows, labels);
    let floor = (baseline_acc - config.loss_budget).max(0.0);
    let set = cheap_values(config.max_digits, 127);

    // Step 1: wholesale replacement.
    let mut mlp = baseline.clone();
    let mut replacements: Vec<(usize, usize, usize, i32, i64)> = Vec::new();
    for (li, layer) in mlp.layers.iter_mut().enumerate() {
        for (ni, row) in layer.weights.iter_mut().enumerate() {
            for (wi, w) in row.iter_mut().enumerate() {
                let old = *w;
                let new = nearest(&set, i64::from(old)) as i32;
                if new != old {
                    replacements.push((li, ni, wi, old, i64::from(new) - i64::from(old)));
                    *w = new;
                }
            }
        }
    }
    let design0 = Tc23Design {
        mlp: mlp.clone(),
        trunc_bits: vec![0; mlp.layers.len()],
        tuning_accuracy: 0.0,
    };
    let mut acc = design0.accuracy(rows, labels);

    // Revert the largest-error replacements until the floor is met.
    replacements.sort_by_key(|&(_, _, _, _, err)| std::cmp::Reverse(err.abs()));
    let mut revert_iter = replacements.into_iter();
    while acc + 1e-12 < floor {
        let Some((li, ni, wi, old, _)) = revert_iter.next() else {
            break;
        };
        mlp.layers[li].weights[ni][wi] = old;
        let d = Tc23Design {
            mlp: mlp.clone(),
            trunc_bits: vec![0; mlp.layers.len()],
            tuning_accuracy: 0.0,
        };
        acc = d.accuracy(rows, labels);
    }

    // Step 2: uniform truncation growth.
    let mut trunc = 0u32;
    for t in 1..=config.max_trunc {
        let d = Tc23Design {
            mlp: mlp.clone(),
            trunc_bits: vec![t; mlp.layers.len()],
            tuning_accuracy: 0.0,
        };
        let a = d.accuracy(rows, labels);
        if a + 1e-12 >= floor {
            trunc = t;
            acc = a;
        } else {
            break;
        }
    }

    Tc23Design {
        mlp: mlp.clone(),
        trunc_bits: vec![trunc; mlp.layers.len()],
        tuning_accuracy: acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_hw::TechLibrary;
    use pe_mlp::FixedLayer;

    fn threshold_baseline() -> (FixedMlp, QuantMatrix, Vec<usize>) {
        let mlp = FixedMlp {
            input_bits: 4,
            layers: vec![FixedLayer {
                weights: vec![vec![-87], vec![87]],
                biases: vec![609, -609],
                qrelu: None,
            }],
        };
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v]).collect();
        let rows = QuantMatrix::from_rows(&rows);
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        (mlp, rows, labels)
    }

    #[test]
    fn replacement_keeps_accuracy_within_budget() {
        let (mlp, rows, labels) = threshold_baseline();
        let base_acc = mlp.accuracy(&rows, &labels);
        assert!(base_acc > 0.9);
        let design = approximate_tc23(&mlp, &rows, &labels, &Tc23Config::default());
        assert!(design.tuning_accuracy + 1e-12 >= base_acc - 0.05);
        // 87 needs 3 CSD digits: it must have been replaced.
        let w = design.mlp.layers[0].weights[1][0];
        assert_ne!(w, 87);
        assert!(pe_arith::csd::csd_nonzero_digits(i64::from(w)) <= 2);
    }

    #[test]
    fn truncation_is_found_when_margins_are_wide() {
        let (mlp, rows, labels) = threshold_baseline();
        let design = approximate_tc23(&mlp, &rows, &labels, &Tc23Config::default());
        // Margins of ±87 per input step are huge: truncation should grow.
        assert!(design.trunc_bits[0] >= 2, "trunc {:?}", design.trunc_bits);
    }

    #[test]
    fn approximated_circuit_is_smaller_than_exact() {
        let (mlp, rows, labels) = threshold_baseline();
        let elab = Elaborator::new(TechLibrary::egfet());
        let exact_report = elab
            .elaborate(&pe_mlp::fixed_to_hardware(&mlp, "exact"))
            .report;
        let design = approximate_tc23(&mlp, &rows, &labels, &Tc23Config::default());
        let approx_report = design.hardware_report(&elab, "tc23");
        assert!(
            approx_report.area_cm2 < exact_report.area_cm2,
            "approx {} vs exact {}",
            approx_report.area_cm2,
            exact_report.area_cm2
        );
    }

    #[test]
    fn truncated_prediction_matches_untruncated_on_wide_margins() {
        let (mlp, rows, labels) = threshold_baseline();
        let no_trunc = Tc23Design {
            mlp: mlp.clone(),
            trunc_bits: vec![0],
            tuning_accuracy: 0.0,
        };
        let trunc = Tc23Design {
            mlp,
            trunc_bits: vec![3],
            tuning_accuracy: 0.0,
        };
        assert_eq!(
            no_trunc.accuracy(&rows, &labels),
            trunc.accuracy(&rows, &labels)
        );
    }
}
