//! [`SearchEngine`] adapters for the three prior-work methods, so the
//! staged pipeline and the `pe-bench` experiments iterate ours and the
//! state of the art through one interface (Fig. 4's comparison becomes
//! a loop over engines instead of hand-wired glue).
//!
//! Each engine runs its method's search/conversion against the shared
//! [`SearchContext`] and reports a single evaluated [`DesignPoint`]
//! (these methods produce one design per budget, not a front).

use std::time::Instant;

use pe_hw::VddModel;
use printed_axc::{
    fingerprint_json, DesignNetwork, DesignPoint, FlowError, RunControl, SearchContext,
    SearchEngine, SearchOutcome, StageKind,
};

use crate::sc::{ScConfig, ScMlp};
use crate::tc23::{approximate_tc23, Tc23Config};
use crate::tcad23::{approximate_tcad23, Tcad23Config};

/// How many training rows the SC engine samples for its (reported, not
/// optimized) training-split accuracy — full-split simulation at 1024
/// bits/value is disproportionately slow for a context metric.
const SC_TRAIN_ACCURACY_ROWS: usize = 1000;

fn empty_outcome(front: Vec<DesignPoint>, wall: std::time::Duration) -> SearchOutcome {
    SearchOutcome {
        front,
        estimated_front: Vec::new(),
        history: Vec::new(),
        evaluations: 0,
        ga_wall: wall,
    }
}

/// TC'23 (ref. \[5\]): greedy post-training coefficient replacement
/// with few-CSD-digit values plus accumulation truncation.
#[derive(Debug, Clone, Default)]
pub struct Tc23Engine {
    /// The method's search configuration.
    pub config: Tc23Config,
}

impl Tc23Engine {
    /// Engine with the given configuration.
    #[must_use]
    pub fn new(config: Tc23Config) -> Self {
        Self { config }
    }
}

impl SearchEngine for Tc23Engine {
    fn name(&self) -> &'static str {
        "tc23"
    }

    fn cache_fingerprint(&self) -> u64 {
        fingerprint_json(&self.config)
    }

    fn search(
        &self,
        ctx: &SearchContext<'_>,
        ctl: &RunControl<'_>,
    ) -> Result<SearchOutcome, FlowError> {
        ctl.ensure_live(StageKind::Searched)?;
        let started = Instant::now();
        let design = approximate_tc23(
            ctx.baseline,
            &ctx.train.features,
            &ctx.train.labels,
            &self.config,
        );
        let wall = started.elapsed();
        ctl.ensure_live(StageKind::Searched)?;
        // Cost through the study's model: the report lands at the
        // scenario's technology and operating supply like every other
        // engine's.
        let report = ctx
            .cost
            .report(&design.hardware_spec(&format!("{}_tc23", ctx.name)));
        let point = DesignPoint {
            network: DesignNetwork::Truncated {
                mlp: design.mlp.clone(),
                trunc_bits: design.trunc_bits.clone(),
            },
            train_accuracy: design.tuning_accuracy,
            test_accuracy: design.accuracy(&ctx.test.features, &ctx.test.labels),
            estimated_area: report.area_cm2,
            report,
        };
        Ok(empty_outcome(vec![point], wall))
    }
}

/// TCAD'23 (ref. \[7\]): milder coefficient approximation plus Voltage
/// Over-Scaling below 0.8 V with a timing-error model.
///
/// Voltage over-scaling **is** this method: its reports land at the
/// VOS voltage its own search selects, not at the study scenario's
/// operating supply (the documented [`SearchContext::scenario`]
/// carve-out). Costing still flows through the scenario's technology
/// via [`SearchContext::cost`].
#[derive(Debug, Clone)]
pub struct Tcad23Engine {
    /// The method's search configuration.
    pub config: Tcad23Config,
    /// Voltage-scaling model used for the over-scaled operating point.
    pub vdd: VddModel,
}

impl Tcad23Engine {
    /// Engine with the given configuration and voltage model.
    #[must_use]
    pub fn new(config: Tcad23Config, vdd: VddModel) -> Self {
        Self { config, vdd }
    }
}

impl Default for Tcad23Engine {
    fn default() -> Self {
        Self::new(Tcad23Config::default(), VddModel::egfet())
    }
}

impl SearchEngine for Tcad23Engine {
    fn name(&self) -> &'static str {
        "tcad23"
    }

    fn cache_fingerprint(&self) -> u64 {
        fingerprint_json(&(&self.config, &self.vdd))
    }

    fn search(
        &self,
        ctx: &SearchContext<'_>,
        ctl: &RunControl<'_>,
    ) -> Result<SearchOutcome, FlowError> {
        ctl.ensure_live(StageKind::Searched)?;
        let started = Instant::now();
        let design = approximate_tcad23(
            ctx.baseline,
            &ctx.train.features,
            &ctx.train.labels,
            ctx.classes,
            &self.config,
            ctx.elaborator,
            &self.vdd,
        );
        let wall = started.elapsed();
        ctl.ensure_live(StageKind::Searched)?;
        // Cost through the study's model, then move to the design's own
        // over-scaled operating voltage.
        let report = ctx
            .cost
            .report(&design.design.hardware_spec(&format!("{}_tcad23", ctx.name)))
            .at_vdd(&self.vdd, design.vdd);
        let raw_test = design.design.accuracy(&ctx.test.features, &ctx.test.labels);
        let point = DesignPoint {
            network: DesignNetwork::Truncated {
                mlp: design.design.mlp.clone(),
                trunc_bits: design.design.trunc_bits.clone(),
            },
            train_accuracy: design.tuning_accuracy,
            test_accuracy: design.vos_accuracy(raw_test, ctx.classes),
            estimated_area: report.area_cm2,
            report,
        };
        Ok(empty_outcome(vec![point], wall))
    }
}

/// DATE'21 (ref. \[10\]): stochastic-computing MLPs with bipolar
/// bitstreams, XNOR multipliers and MUX adders, converted from the
/// float network.
#[derive(Debug, Clone, Default)]
pub struct ScEngine {
    /// The conversion/simulation configuration.
    pub config: ScConfig,
}

impl ScEngine {
    /// Engine with the given configuration.
    #[must_use]
    pub fn new(config: ScConfig) -> Self {
        Self { config }
    }
}

impl SearchEngine for ScEngine {
    fn name(&self) -> &'static str {
        "sc-date21"
    }

    fn cache_fingerprint(&self) -> u64 {
        fingerprint_json(&self.config)
    }

    fn search(
        &self,
        ctx: &SearchContext<'_>,
        ctl: &RunControl<'_>,
    ) -> Result<SearchOutcome, FlowError> {
        ctl.ensure_live(StageKind::Searched)?;
        let started = Instant::now();
        let sc = ScMlp::from_dense(ctx.float_mlp, &ctx.float_train.features, &self.config);
        let wall = started.elapsed();
        ctl.ensure_live(StageKind::Searched)?;
        // SC designs are not bespoke-MLP specs (no adder trees to
        // elaborate), so they cost directly from their gate content in
        // the scenario's technology — then move to the scenario's
        // operating supply like every other engine's report (a no-op
        // at the nominal supply).
        let report = ctx
            .scenario
            .scale_report(sc.hardware_report(ctx.tech(), &format!("{}_sc", ctx.name)));
        let n = ctx.float_train.features.len().min(SC_TRAIN_ACCURACY_ROWS);
        let point = DesignPoint {
            network: DesignNetwork::Stochastic,
            train_accuracy: sc
                .accuracy(&ctx.float_train.features[..n], &ctx.float_train.labels[..n]),
            test_accuracy: sc.accuracy(&ctx.float_test.features, &ctx.float_test.labels),
            estimated_area: report.area_cm2,
            report,
        };
        Ok(empty_outcome(vec![point], wall))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_datasets::Dataset;
    use pe_hw::TechLibrary;
    use printed_axc::{Study, StudyConfig};

    fn costed_stage() -> printed_axc::BaselineCosted {
        let pipeline = Study::for_dataset(Dataset::BreastCancer)
            .config(StudyConfig {
                sgd_epochs_scale: 0.05,
                ..StudyConfig::quick(11)
            })
            .tech(TechLibrary::egfet())
            .finish()
            .expect("valid config");
        let prepared = pipeline.prepare().expect("prepare");
        let float = pipeline.train_float(prepared).expect("train");
        pipeline.cost_baseline(float).expect("cost")
    }

    #[test]
    fn all_three_prior_work_engines_report_one_costed_design() {
        let costed = costed_stage();
        let model = pe_hw::ExactCostModel::new(pe_hw::CostScenario::default());
        let ctx = costed.search_context(&model, 0.05);
        let engines: [&dyn SearchEngine; 3] = [
            &Tc23Engine::default(),
            &Tcad23Engine::default(),
            &ScEngine::default(),
        ];
        for engine in engines {
            let outcome = engine
                .search(&ctx, &RunControl::NONE)
                .unwrap_or_else(|e| panic!("{} failed: {e}", engine.name()));
            assert_eq!(outcome.front.len(), 1, "{}", engine.name());
            let point = &outcome.front[0];
            assert!(point.report.area_cm2 > 0.0, "{}", engine.name());
            assert!(
                (0.0..=1.0).contains(&point.test_accuracy),
                "{}",
                engine.name()
            );
            assert!(point.network.ax().is_none(), "{}", engine.name());
        }
        // TCAD'23 operates below nominal supply; TC'23 at nominal.
        let tcad = Tcad23Engine::default()
            .search(&ctx, &RunControl::NONE)
            .expect("tcad23");
        assert!(tcad.front[0].report.vdd < 1.0);
    }

    #[test]
    fn engines_are_cancellable() {
        let costed = costed_stage();
        let model = pe_hw::ExactCostModel::new(pe_hw::CostScenario::default());
        let ctx = costed.search_context(&model, 0.05);
        let token = printed_axc::CancelToken::new();
        token.cancel();
        let ctl = RunControl::new(None, Some(&token));
        assert!(matches!(
            Tc23Engine::default().search(&ctx, &ctl),
            Err(FlowError::Cancelled { .. })
        ));
    }
}
