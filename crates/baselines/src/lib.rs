//! State-of-the-art comparison points for printed MLPs (Fig. 4 of the
//! paper).
//!
//! Re-implementations of the *mechanisms* of the three works the paper
//! compares against, each searched/evaluated under the same 5%
//! accuracy-loss budget and costed with the same `pe-hw` technology
//! model, so Fig. 4's normalized comparisons are apples-to-apples:
//!
//! * [`tc23`] — TC'23 (ref. \[5\]): post-training coefficient replacement
//!   with few-CSD-digit values plus accumulation truncation.
//! * [`tcad23`] — TCAD'23 (ref. \[7\]): milder coefficient approximation
//!   plus Voltage Over-Scaling below 0.8 V with a timing-error model.
//! * [`sc`] — DATE'21 (ref. \[10\]): stochastic-computing MLPs with
//!   1024-bit bipolar bitstreams, XNOR multipliers and MUX adders.
//!
//! [`cheap_weights`] hosts the shared area-efficient coefficient sets.
//! [`engine`] adapts all three methods to `printed-axc`'s
//! [`SearchEngine`](printed_axc::SearchEngine) interface so experiment
//! code iterates them generically alongside the NSGA-II flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cheap_weights;
pub mod engine;
pub mod sc;
pub mod tc23;
pub mod tcad23;

pub use engine::{ScEngine, Tc23Engine, Tcad23Engine};
pub use sc::{ScConfig, ScMlp};
pub use tc23::{approximate_tc23, Tc23Config, Tc23Design};
pub use tcad23::{approximate_tcad23, timing_error_rate, Tcad23Config, Tcad23Design};
