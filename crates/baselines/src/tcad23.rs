//! TCAD'23-style model-to-circuit cross-approximation baseline
//! (paper ref. \[7\]): coefficient approximation plus Voltage
//! Over-Scaling (VOS).
//!
//! Armeniakos et al. (TCAD 2023) extend their DATE'22 approximation
//! with supply voltages below the nominal point (the paper notes "the
//! MLPs are operated below 0.8 V"). Timing slack is consumed by the
//! voltage-induced slowdown; paths that exceed the clock period start
//! to fail, which is modelled here as a margin-dependent accuracy
//! penalty. Structurally the coefficients stay multi-digit (gate-level
//! pruning rather than aggressive replacement), so area gains trail
//! TC'23 while power benefits from the lower supply — reproducing the
//! ordering Fig. 4 shows.

use serde::{Deserialize, Serialize};

use pe_hw::{Elaborator, HardwareReport, VddModel};
use pe_mlp::{FixedMlp, QuantMatrix};

use crate::cheap_weights::{cheap_values, nearest};
use crate::tc23::{approximate_tc23, Tc23Config, Tc23Design};

/// Configuration of the VOS baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcad23Config {
    /// Accuracy-loss budget (shared between approximation and VOS).
    pub loss_budget: f64,
    /// Maximum CSD digits of replacement coefficients (3: milder than
    /// TC'23's 2 — this variant leans on voltage, not structure).
    pub max_digits: u32,
    /// Over-scaled supply voltage in volts (below 0.8 V in the paper).
    pub vos_vdd: f64,
    /// Clock period the circuit must still (mostly) meet, ms.
    pub period_ms: f64,
}

impl Default for Tcad23Config {
    fn default() -> Self {
        Self {
            loss_budget: 0.05,
            max_digits: 3,
            vos_vdd: 0.75,
            period_ms: 200.0,
        }
    }
}

/// A VOS design: an approximated network operated at a reduced supply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcad23Design {
    /// The underlying approximated network (no truncation; VOS variant).
    pub design: Tc23Design,
    /// Operating voltage.
    pub vdd: f64,
    /// Probability that an inference is corrupted by a timing violation.
    pub timing_error_rate: f64,
    /// Tuning accuracy including the VOS penalty.
    pub tuning_accuracy: f64,
}

impl Tcad23Design {
    /// Hardware report at the over-scaled voltage.
    #[must_use]
    pub fn hardware_report(
        &self,
        elaborator: &Elaborator,
        vdd_model: &VddModel,
        name: &str,
    ) -> HardwareReport {
        self.design
            .hardware_report(elaborator, name)
            .at_vdd(vdd_model, self.vdd)
    }

    /// Expected accuracy of a raw accuracy `a` under the timing-error
    /// model: corrupted inferences fall back to a uniform guess over
    /// `classes`.
    #[must_use]
    pub fn vos_accuracy(&self, a: f64, classes: usize) -> f64 {
        a * (1.0 - self.timing_error_rate) + self.timing_error_rate / classes.max(1) as f64
    }
}

/// Timing-error probability of operating a circuit with delay
/// `delay_ms` (already voltage-scaled) against `period_ms`: zero inside
/// the period, then growing linearly with the overshoot and saturating
/// at 1 (a standard first-order VOS model).
#[must_use]
pub fn timing_error_rate(delay_ms: f64, period_ms: f64) -> f64 {
    if delay_ms <= period_ms {
        0.0
    } else {
        ((delay_ms - period_ms) / period_ms).clamp(0.0, 1.0)
    }
}

/// Build the TCAD'23-style design: milder coefficient replacement, no
/// truncation, operation at the over-scaled supply.
///
/// # Panics
///
/// Panics if the tuning data is empty.
#[must_use]
pub fn approximate_tcad23(
    baseline: &FixedMlp,
    rows: &QuantMatrix,
    labels: &[usize],
    classes: usize,
    config: &Tcad23Config,
    elaborator: &Elaborator,
    vdd_model: &VddModel,
) -> Tcad23Design {
    // Structural part: reuse the TC'23 search but with the milder digit
    // budget and without truncation (gate-level pruning analogue).
    let tc_cfg = Tc23Config {
        loss_budget: config.loss_budget * 0.5, // save half the budget for VOS
        max_digits: config.max_digits,
        max_trunc: 0,
    };
    let mut design = approximate_tc23(baseline, rows, labels, &tc_cfg);

    // Ensure the digit budget is respected even where the greedy search
    // reverted (revert only restores exact values; re-clamp them to the
    // 3-digit set).
    let set = cheap_values(config.max_digits, 127);
    for layer in &mut design.mlp.layers {
        for row in &mut layer.weights {
            for w in row.iter_mut() {
                *w = nearest(&set, i64::from(*w)) as i32;
            }
        }
    }
    design.tuning_accuracy = design.accuracy(rows, labels);

    // VOS part: delay at the reduced voltage decides the error rate.
    let report = design.hardware_report(elaborator, "tcad23_probe");
    let scaled = report.at_vdd(vdd_model, config.vos_vdd);
    let err = timing_error_rate(scaled.delay_ms, config.period_ms);

    let raw_acc = design.tuning_accuracy;
    let mut out = Tcad23Design {
        design,
        vdd: config.vos_vdd,
        timing_error_rate: err,
        tuning_accuracy: 0.0,
    };
    out.tuning_accuracy = out.vos_accuracy(raw_acc, classes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_hw::TechLibrary;
    use pe_mlp::FixedLayer;

    fn setup() -> (FixedMlp, QuantMatrix, Vec<usize>) {
        let mlp = FixedMlp {
            input_bits: 4,
            layers: vec![FixedLayer {
                weights: vec![vec![-87], vec![87]],
                biases: vec![609, -609],
                qrelu: None,
            }],
        };
        let rows = QuantMatrix::from_rows(&(0..16u8).map(|v| vec![v]).collect::<Vec<_>>());
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        (mlp, rows, labels)
    }

    #[test]
    fn vos_design_reduces_power_beyond_structure() {
        let (mlp, rows, labels) = setup();
        let elab = Elaborator::new(TechLibrary::egfet());
        let vdd = VddModel::egfet();
        let design = approximate_tcad23(
            &mlp,
            &rows,
            &labels,
            2,
            &Tcad23Config::default(),
            &elab,
            &vdd,
        );
        let at_vos = design.hardware_report(&elab, &vdd, "t");
        let at_nominal = design.design.hardware_report(&elab, "t");
        assert!(at_vos.power_mw < at_nominal.power_mw);
        assert!((at_vos.vdd - 0.75).abs() < 1e-12);
    }

    #[test]
    fn timing_error_model_is_sane() {
        assert_eq!(timing_error_rate(100.0, 200.0), 0.0);
        assert_eq!(timing_error_rate(200.0, 200.0), 0.0);
        assert!((timing_error_rate(300.0, 200.0) - 0.5).abs() < 1e-12);
        assert_eq!(timing_error_rate(1000.0, 200.0), 1.0);
    }

    #[test]
    fn vos_accuracy_blends_toward_random_guess() {
        let d = Tcad23Design {
            design: Tc23Design {
                mlp: setup().0,
                trunc_bits: vec![0],
                tuning_accuracy: 0.9,
            },
            vdd: 0.75,
            timing_error_rate: 0.5,
            tuning_accuracy: 0.0,
        };
        let blended = d.vos_accuracy(0.9, 2);
        assert!((blended - (0.45 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn weights_respect_the_digit_budget() {
        let (mlp, rows, labels) = setup();
        let elab = Elaborator::new(TechLibrary::egfet());
        let vdd = VddModel::egfet();
        let design = approximate_tcad23(
            &mlp,
            &rows,
            &labels,
            2,
            &Tcad23Config::default(),
            &elab,
            &vdd,
        );
        for layer in &design.design.mlp.layers {
            for row in &layer.weights {
                for &w in row {
                    assert!(pe_arith::csd::csd_nonzero_digits(i64::from(w)) <= 3, "{w}");
                }
            }
        }
    }
}
