//! Area-efficient coefficient sets for post-training replacement.
//!
//! The TC'23 co-design approach replaces MLP coefficients "with more
//! area-efficient values reducing the multipliers' area" (paper §I).
//! In a bespoke CSD shift-add multiplier the area is driven by the
//! number of non-zero CSD digits, so the natural cheap set is "all
//! values representable with at most `d` CSD digits".

use pe_arith::csd::csd_nonzero_digits;

/// All integer values in `[-limit, limit]` whose CSD representation has
/// at most `max_digits` non-zero digits, sorted ascending.
///
/// ```
/// let set = pe_baselines::cheap_weights::cheap_values(2, 127);
/// assert!(set.contains(&96));   // 64 + 32
/// assert!(set.contains(&-24));  // -(32 - 8)
/// assert!(!set.contains(&87));  // needs three CSD digits
/// ```
#[must_use]
pub fn cheap_values(max_digits: u32, limit: i64) -> Vec<i64> {
    let mut out: Vec<i64> = (-limit..=limit)
        .filter(|&v| csd_nonzero_digits(v) <= max_digits)
        .collect();
    out.sort_unstable();
    out
}

/// Nearest element of a sorted set to `value` (ties toward the smaller
/// magnitude, keeping replacements conservative).
///
/// # Panics
///
/// Panics if `set` is empty.
#[must_use]
pub fn nearest(set: &[i64], value: i64) -> i64 {
    assert!(!set.is_empty(), "candidate set must be non-empty");
    match set.binary_search(&value) {
        Ok(_) => value,
        Err(pos) => {
            let lower = pos.checked_sub(1).map(|i| set[i]);
            let upper = set.get(pos).copied();
            match (lower, upper) {
                (Some(l), Some(u)) => {
                    let dl = (value - l).abs();
                    let du = (u - value).abs();
                    if dl < du {
                        l
                    } else if du < dl {
                        u
                    } else if l.abs() <= u.abs() {
                        l
                    } else {
                        u
                    }
                }
                (Some(l), None) => l,
                (None, Some(u)) => u,
                (None, None) => unreachable!("set is non-empty"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_digit_set_is_powers_of_two() {
        let set = cheap_values(1, 127);
        for v in &set {
            assert!(*v == 0 || v.abs().count_ones() == 1, "{v}");
        }
        assert!(set.contains(&64) && set.contains(&-1) && set.contains(&0));
    }

    #[test]
    fn two_digit_set_contains_classic_csd_values() {
        let set = cheap_values(2, 127);
        for v in [96i64, -96, 24, -24, 127, 65] {
            // 127 = 128 - 1; 65 = 64 + 1.
            assert!(set.contains(&v), "{v}");
        }
        assert!(!set.contains(&87)); // 87 needs 3 CSD digits
    }

    #[test]
    fn nearest_picks_closest_value() {
        let set = cheap_values(1, 127);
        assert_eq!(nearest(&set, 5), 4);
        assert_eq!(nearest(&set, 7), 8);
        // Pow2 values within |v| <= 127: nearest to -100 is -128? Out of
        // range (limit 127), so candidates are -64 and... -128 excluded.
        assert_eq!(nearest(&set, -100), -64);
    }

    #[test]
    fn nearest_is_identity_on_members() {
        let set = cheap_values(2, 127);
        for &v in &set {
            assert_eq!(nearest(&set, v), v);
        }
    }

    #[test]
    fn replacement_error_is_bounded() {
        let set = cheap_values(2, 127);
        for v in -127i64..=127 {
            let r = nearest(&set, v);
            // With 2 CSD digits up to 127, the worst-case gap stays in
            // single digits (observed max: 7, at v = ±105, whose nearest
            // 2-digit neighbours are ±96 and ±112).
            assert!((v - r).abs() <= 8, "v={v} r={r}");
        }
    }
}
