//! DATE'21-style stochastic-computing printed MLP baseline
//! (paper ref. \[10\]).
//!
//! Weller et al. (DATE 2021) build printed MLPs from stochastic
//! computing (SC): values become 1024-bit bipolar bitstreams,
//! multiplication an XNOR gate, and addition a scaled MUX tree. The
//! hardware is tiny and slow; accuracy collapses — the paper reports a
//! 35% average accuracy loss and only 22% on Pendigits — because scaled
//! addition divides every neuron's signal by its fan-in while the
//! bitstream noise floor stays put.
//!
//! We reproduce both sides: a variance-accurate Gaussian simulation of
//! SC inference (each SC operation adds the noise a 1024-bit bitstream
//! would), and a gate-level cost model of the SC datapath (XNOR
//! multipliers, SNG comparators, shared LFSRs, MUX adder trees and
//! output counters).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pe_hw::{Cell, CellCounts, HardwareReport, TechLibrary};
use pe_mlp::DenseMlp;

/// Configuration of the stochastic-computing baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScConfig {
    /// Bitstream length (1024 in the paper's comparison).
    pub bitstream_len: u32,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ScConfig {
    fn default() -> Self {
        Self {
            bitstream_len: 1024,
            seed: 0,
        }
    }
}

/// A stochastic-computing MLP derived from a trained float network.
///
/// The conversion follows scaled-SC practice: weights are normalized
/// per layer into the bipolar range, biases become extra MUX inputs,
/// and every layer's activations are re-encoded against a calibrated
/// scale (the largest activation seen on calibration data) before
/// feeding the next layer's XNOR multipliers. Scale tracking means the
/// *noiseless* SC network computes the float network's function; what
/// remains is the genuine SC degradation — bitstream sampling noise
/// amplified by the scaled adders' `fan_in` recovery gain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScMlp {
    /// Per-layer weights normalized into the bipolar range `[-1, 1]`.
    weights: Vec<Vec<Vec<f64>>>,
    /// Per-layer biases in original float scale.
    biases: Vec<Vec<f64>>,
    /// Per-layer weight normalization factor.
    weight_scales: Vec<f64>,
    /// Encoding scale of each layer's *input* (index 0 = primary
    /// inputs, scale 1.0).
    input_scales: Vec<f64>,
    /// Bitstream length.
    bitstream_len: u32,
    seed: u64,
}

impl ScMlp {
    /// Convert a trained float MLP into its SC form.
    ///
    /// `calibration_rows` determine each hidden layer's activation
    /// encoding scale (the largest activation observed), exactly like
    /// the fixed-point quantizer's calibration.
    ///
    /// # Panics
    ///
    /// Panics if `calibration_rows` is empty.
    #[must_use]
    pub fn from_dense(mlp: &DenseMlp, calibration_rows: &[Vec<f32>], config: &ScConfig) -> Self {
        assert!(!calibration_rows.is_empty(), "calibration data required");
        let traces: Vec<Vec<Vec<f32>>> = calibration_rows
            .iter()
            .map(|r| mlp.forward_trace(r))
            .collect();

        let mut weights = Vec::new();
        let mut biases = Vec::new();
        let mut weight_scales = Vec::new();
        let mut input_scales = vec![1.0f64];
        let layer_count = mlp.topology().layer_count();
        for (l, (lw, lb)) in mlp.weights().iter().zip(mlp.biases()).enumerate() {
            let max_w = lw
                .iter()
                .flatten()
                .fold(0.0f64, |m, &v| m.max(f64::from(v.abs())))
                .max(1e-9);
            weights.push(
                lw.iter()
                    .map(|row| row.iter().map(|&w| f64::from(w) / max_w).collect())
                    .collect(),
            );
            biases.push(lb.iter().map(|&b| f64::from(b)).collect());
            weight_scales.push(max_w);
            if l + 1 < layer_count {
                let s = traces
                    .iter()
                    .map(|t| t[l + 1].iter().fold(0.0f64, |m, &v| m.max(f64::from(v))))
                    .fold(0.0f64, f64::max)
                    .max(1e-9);
                input_scales.push(s);
            }
        }
        Self {
            weights,
            biases,
            weight_scales,
            input_scales,
            bitstream_len: config.bitstream_len,
            seed: config.seed,
        }
    }

    /// Simulate one inference. Inputs are floats in `[0, 1]`. Every SC
    /// operation (XNOR product, MUX scaled addition) adds the sampling
    /// noise of a `bitstream_len`-bit bipolar stream:
    /// `Var = (1 − v²)/N`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    #[must_use]
    pub fn predict(&self, x: &[f32], rng: &mut StdRng) -> usize {
        let n = f64::from(self.bitstream_len);
        let layer_count = self.weights.len();
        // True activation values; encoded on the fly per layer.
        let mut current: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
        let mut outputs: Vec<f64> = Vec::new();
        for l in 0..layer_count {
            let (lw, lb) = (&self.weights[l], &self.biases[l]);
            assert_eq!(lw[0].len(), current.len(), "width mismatch");
            let s_in = self.input_scales[l];
            let m_w = self.weight_scales[l];
            let mut out = Vec::with_capacity(lw.len());
            for (row, &b) in lw.iter().zip(lb) {
                // Encoded terms: XNOR products of normalized weight and
                // encoded activation streams, plus the bias stream.
                let mut terms: Vec<f64> = row
                    .iter()
                    .zip(&current)
                    .map(|(&w, &a)| sc_noise(w * (a / s_in).clamp(-1.0, 1.0), n, rng))
                    .collect();
                terms.push(sc_noise((b / (m_w * s_in)).clamp(-1.0, 1.0), n, rng));
                // MUX scaled addition: mean of the terms, one more
                // noise draw for the selection stream.
                let count = terms.len() as f64;
                let scaled = terms.iter().sum::<f64>() / count;
                let v = sc_noise(scaled.clamp(-1.0, 1.0), n, rng);
                // Decode back to the true pre-activation value.
                let pre_true = v * count * m_w * s_in;
                out.push(if l + 1 == layer_count {
                    pre_true
                } else {
                    pre_true.max(0.0)
                });
            }
            outputs = out.clone();
            current = out;
        }
        let mut best = 0;
        for (i, &v) in outputs.iter().enumerate().skip(1) {
            if v > outputs[best] {
                best = i;
            }
        }
        best
    }

    /// Accuracy over float rows (values in `[0,1]`).
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `labels` differ in length.
    #[must_use]
    pub fn accuracy(&self, rows: &[Vec<f32>], labels: &[usize]) -> f64 {
        assert_eq!(rows.len(), labels.len());
        if rows.is_empty() {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x94d0_49bb_1331_11eb);
        let hits = rows
            .iter()
            .zip(labels)
            .filter(|&(r, &l)| self.predict(r, &mut rng) == l)
            .count();
        hits as f64 / rows.len() as f64
    }

    /// Gate content of the SC datapath:
    ///
    /// * per connection: one XNOR multiplier plus an 8-bit SNG
    ///   comparator (8 AND2-equivalents) for the hard-wired weight;
    /// * per neuron: a MUX adder tree (`fan_in` MUX2) and a 16-bit
    ///   output up/down counter (16 DFF + 8 FA increment logic);
    /// * per layer: one shared 16-bit LFSR (16 DFF + 3 XOR2).
    #[must_use]
    pub fn cell_counts(&self) -> CellCounts {
        let mut c = CellCounts::new();
        for (lw, lb) in self.weights.iter().zip(&self.biases) {
            let neurons = lw.len() as u32;
            let fan_in = lw[0].len() as u32;
            let connections = neurons * fan_in + lb.len() as u32;
            c.add(Cell::Xor2, connections); // XNOR ~ XOR + INV
            c.add(Cell::Not, connections);
            c.add(Cell::And2, connections * 8); // SNG comparators
            c.add(Cell::Mux2, neurons * (fan_in + 1)); // scaled adder tree
            c.add(Cell::Dff, neurons * 16 + 16); // counters + shared LFSR
            c.add(Cell::Fa, neurons * 8); // counter increment
            c.add(Cell::Xor2, 3); // LFSR taps
        }
        c
    }

    /// Hardware report: area/power from the SC gate content. The design
    /// runs `bitstream_len` fast cycles per inference; its *inference*
    /// latency matches the conventional designs (the paper notes
    /// 220–230 ms per inference for \[10\]), so power is comparable
    /// directly.
    #[must_use]
    pub fn hardware_report(&self, tech: &TechLibrary, name: &str) -> HardwareReport {
        // Critical path per SC cycle is short (mux tree + counter);
        // inference latency = bitstream_len cycles.
        let depth_per_cycle = 4u32;
        let mut report =
            HardwareReport::at_nominal(name, tech, self.cell_counts(), depth_per_cycle);
        // Paper-reported fixed inference latency for [10]: longer
        // bitstreams run proportionally faster cycles, so the total
        // stays ~220 ms regardless of `bitstream_len`.
        report.delay_ms = 220.0;
        report
    }
}

/// Sample an SC estimate of bipolar value `v` from an `n`-bit stream.
fn sc_noise(v: f64, n: f64, rng: &mut StdRng) -> f64 {
    let v = v.clamp(-1.0, 1.0);
    let var = (1.0 - v * v) / n;
    (v + gaussian(rng) * var.sqrt()).clamp(-1.0, 1.0)
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_mlp::Topology;

    fn trained_toy() -> (DenseMlp, Vec<Vec<f32>>, Vec<usize>) {
        use pe_mlp::train::{train_best_of, TrainConfig};
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let t = (i % 20) as f32 / 20.0;
            if i < 20 {
                rows.push(vec![0.1 + 0.15 * t, 0.15]);
                labels.push(0);
            } else {
                rows.push(vec![0.75 + 0.15 * t, 0.85]);
                labels.push(1);
            }
        }
        // Best-of-N restarts: a single init at this tiny width can die
        // (all ReLUs dead), which is exactly what `train_best_of` is for.
        let config = TrainConfig {
            epochs: 150,
            seed: 11,
            ..TrainConfig::default()
        };
        let (mlp, _) = train_best_of(&Topology::new(vec![2, 3, 2]), &rows, &labels, &config, 5);
        (mlp, rows, labels)
    }

    #[test]
    fn sc_handles_easy_problems_but_loses_accuracy() {
        let (mlp, rows, labels) = trained_toy();
        let float_acc = mlp.accuracy(&rows, &labels);
        let sc = ScMlp::from_dense(&mlp, &rows, &ScConfig::default());
        let sc_acc = sc.accuracy(&rows, &labels);
        assert!(float_acc > 0.95);
        // SC keeps some signal on a trivially separable problem...
        assert!(sc_acc > 0.5, "sc acc {sc_acc}");
        // ...but is allowed to be (and usually is) worse than float.
        assert!(sc_acc <= float_acc + 0.05);
    }

    #[test]
    fn shorter_bitstreams_are_noisier() {
        let (mlp, rows, labels) = trained_toy();
        let long = ScMlp::from_dense(
            &mlp,
            &rows,
            &ScConfig {
                bitstream_len: 4096,
                seed: 3,
            },
        );
        let short = ScMlp::from_dense(
            &mlp,
            &rows,
            &ScConfig {
                bitstream_len: 16,
                seed: 3,
            },
        );
        assert!(long.accuracy(&rows, &labels) >= short.accuracy(&rows, &labels) - 0.05);
    }

    #[test]
    fn sc_hardware_is_small() {
        let (mlp, rows, _) = trained_toy();
        let sc = ScMlp::from_dense(&mlp, &rows, &ScConfig::default());
        let tech = TechLibrary::egfet();
        let report = sc.hardware_report(&tech, "sc");
        assert!(report.area_cm2 > 0.0);
        // The XNOR/MUX datapath must be far below a conventional
        // multiplier datapath; just sanity-bound it here.
        assert!(report.area_cm2 < 5.0, "area {}", report.area_cm2);
        assert!((report.delay_ms - 220.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_is_deterministic_per_seed() {
        let (mlp, rows, labels) = trained_toy();
        let a = ScMlp::from_dense(
            &mlp,
            &rows,
            &ScConfig {
                bitstream_len: 256,
                seed: 9,
            },
        );
        let b = ScMlp::from_dense(
            &mlp,
            &rows,
            &ScConfig {
                bitstream_len: 256,
                seed: 9,
            },
        );
        assert_eq!(a.accuracy(&rows, &labels), b.accuracy(&rows, &labels));
    }

    #[test]
    fn bipolar_normalization_bounds_weights() {
        let (mlp, rows, _) = trained_toy();
        let sc = ScMlp::from_dense(&mlp, &rows, &ScConfig::default());
        for layer in &sc.weights {
            for row in layer {
                for &w in row {
                    assert!((-1.0..=1.0).contains(&w));
                }
            }
        }
    }
}
