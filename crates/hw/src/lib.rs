//! Printed EGFET hardware model for bespoke MLP classifiers.
//!
//! This crate is the reproduction's stand-in for the paper's EDA flow
//! (Synopsys DC synthesis against a printed EGFET library, VCS/PrimeTime
//! power analysis — §V-A). It provides:
//!
//! * [`tech`] — the calibrated EGFET cell library ([`TechLibrary`]) with
//!   per-cell area/power and millisecond-scale gate delays.
//! * [`spec`] — technology-independent descriptions of bespoke MLPs
//!   ([`MlpHardwareSpec`]), with exact (CSD constant-multiplier) and
//!   approximate (pow2 + mask) neurons.
//! * [`neuron`] / [`adder_tree`] — gate-exact elaboration of every
//!   accumulation into full/half adders, *guaranteed* to instantiate the
//!   same FA counts the fast [`pe_arith::AdderAreaEstimator`] predicts.
//! * [`circuit`] — whole-MLP elaboration to a [`HardwareReport`]
//!   (area cm², power mW, delay ms).
//! * [`cost`] — the unified [`CostModel`] layer: one trait mapping a
//!   spec to a [`HwCost`] under a named [`CostScenario`] (technology +
//!   Vdd + power budget), with interchangeable fast-analytic and
//!   exact-netlist implementations proven equal by property test.
//! * [`vdd`] — supply-voltage scaling (1 V → 0.6 V operation, §V-C).
//! * [`variation`] — the Monte-Carlo process-variation model
//!   ([`VariationModel`]) with a deterministic keyed sampler, and the
//!   robust statistics ([`RobustStat`]) the variation-aware search
//!   optimizes.
//! * [`power_source`] — printed batteries / harvester classes and the
//!   Fig. 5 feasibility zones.
//! * [`verilog`] — structural Verilog emission of the bespoke netlists.
//!
//! # Example
//!
//! ```
//! use pe_hw::{Elaborator, TechLibrary};
//! use pe_hw::spec::{ExactNeuronSpec, LayerActivation, LayerSpec, MlpHardwareSpec, NeuronSpec};
//!
//! let spec = MlpHardwareSpec {
//!     name: "demo".into(),
//!     inputs: 2,
//!     input_bits: 4,
//!     layers: vec![LayerSpec {
//!         neurons: vec![NeuronSpec::Exact(ExactNeuronSpec {
//!             input_bits: 4,
//!             weights: vec![3, -5],
//!             bias: 1,
//!             trunc_bits: 0,
//!             csd_multipliers: false,
//!         }); 2],
//!         activation: LayerActivation::Argmax,
//!     }],
//! };
//! let report = Elaborator::new(TechLibrary::egfet()).elaborate(&spec).report;
//! assert!(report.area_cm2 > 0.0 && report.power_mw > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder_tree;
pub mod circuit;
pub mod cost;
pub mod netlist;
pub mod neuron;
pub mod power_source;
pub mod report;
pub mod spec;
pub mod tech;
pub mod variation;
pub mod vdd;
pub mod verilog;

pub use circuit::{
    argmax_gate_counts, qrelu_gate_counts, CostedMlp, ElaboratedMlp, Elaborator, NeuronStats,
};
pub use cost::{CostModel, CostScenario, ExactCostModel, FastCostModel, HwCost};
pub use netlist::{Instance, MacroBlock, NetId, Netlist, Port};
pub use power_source::{Feasibility, FeasibilityZones, PowerSource};
pub use report::HardwareReport;
pub use spec::{ExactNeuronSpec, LayerActivation, LayerSpec, MlpHardwareSpec, NeuronSpec};
pub use tech::{Cell, CellCounts, TechLibrary};
pub use variation::{DeviceDraw, RobustStat, VariationConfig, VariationModel};
pub use vdd::VddModel;
pub use verilog::emit_verilog;
