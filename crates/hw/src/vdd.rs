//! Supply-voltage scaling model for printed EGFET logic.
//!
//! EGFET circuits operate from 0.6 V to about 1 V (paper §V-C, citing
//! Marques et al.). Near threshold, drive current collapses faster than
//! the square law, so power falls super-quadratically with the supply
//! while delay grows. We model both with calibrated power laws:
//!
//! * `power(V) ∝ V^γ` with `γ ≈ 2.95`, fitted so that a 1 V → 0.6 V
//!   scale-down yields the ~4.5× extra power gain the paper reports
//!   (203× average at 1 V vs 912× at 0.6 V).
//! * `delay(V) ∝ ((Vnom − Vt)/(V − Vt))^α` with `Vt = 0.3 V`, `α = 1.3`:
//!   roughly 3× slower at 0.6 V, which the paper's approximate MLPs
//!   absorb because their adder trees are much shallower than the
//!   baselines' multiplier trees.

use serde::{Deserialize, Serialize};

/// Voltage scaling laws for a printed technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VddModel {
    /// Nominal supply voltage in volts.
    pub nominal_vdd: f64,
    /// Minimum operating voltage in volts.
    pub min_vdd: f64,
    /// Power-law exponent for power scaling.
    pub power_exponent: f64,
    /// Effective threshold voltage for the delay model, in volts.
    pub threshold_v: f64,
    /// Delay power-law exponent.
    pub delay_exponent: f64,
}

impl VddModel {
    /// Calibrated EGFET model (see module docs).
    #[must_use]
    pub fn egfet() -> Self {
        Self {
            nominal_vdd: 1.0,
            min_vdd: 0.6,
            power_exponent: 2.95,
            threshold_v: 0.3,
            delay_exponent: 1.3,
        }
    }

    /// The calibrated EGFET scaling laws anchored to a technology's own
    /// voltage range: the exponents are a property of the logic family,
    /// the nominal/minimum rails come from the library. This is the
    /// model [`CostScenario::nominal`](crate::cost::CostScenario::nominal)
    /// attaches, so multi-technology sweeps scale each library from its
    /// own nominal point.
    #[must_use]
    pub fn for_tech(tech: &crate::tech::TechLibrary) -> Self {
        Self {
            nominal_vdd: tech.nominal_vdd,
            min_vdd: tech.min_vdd,
            ..Self::egfet()
        }
    }

    /// Relative power at `vdd` (1.0 at the nominal supply).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is below the minimum operating voltage or not
    /// finite.
    #[must_use]
    pub fn power_scale(&self, vdd: f64) -> f64 {
        self.check(vdd);
        (vdd / self.nominal_vdd).powf(self.power_exponent)
    }

    /// Relative delay at `vdd` (1.0 at the nominal supply).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is below the minimum operating voltage or not
    /// finite.
    #[must_use]
    pub fn delay_scale(&self, vdd: f64) -> f64 {
        self.check(vdd);
        ((self.nominal_vdd - self.threshold_v) / (vdd - self.threshold_v)).powf(self.delay_exponent)
    }

    fn check(&self, vdd: f64) {
        assert!(
            vdd.is_finite() && vdd >= self.min_vdd - 1e-9,
            "vdd {vdd} below the minimum operating voltage {}",
            self.min_vdd
        );
    }
}

impl Default for VddModel {
    fn default() -> Self {
        Self::egfet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scales_are_unity() {
        let m = VddModel::egfet();
        assert!((m.power_scale(1.0) - 1.0).abs() < 1e-12);
        assert!((m.delay_scale(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_voltage_saves_power_costs_delay() {
        let m = VddModel::egfet();
        let p = m.power_scale(0.6);
        let d = m.delay_scale(0.6);
        // ~4.5x power saving, ~3x slower, per the calibration targets.
        assert!((0.18..0.26).contains(&p), "power scale {p}");
        assert!((2.0..4.5).contains(&d), "delay scale {d}");
    }

    #[test]
    fn scaling_is_monotonic() {
        let m = VddModel::egfet();
        let mut last_p = f64::INFINITY;
        let mut last_d = 0.0f64;
        for v in [1.0, 0.9, 0.8, 0.7, 0.6] {
            let p = m.power_scale(v);
            let d = m.delay_scale(v);
            assert!(p < last_p);
            assert!(d > last_d);
            last_p = p;
            last_d = d;
        }
    }

    #[test]
    #[should_panic(expected = "below the minimum")]
    fn undervolting_panics() {
        let _ = VddModel::egfet().power_scale(0.4);
    }
}
