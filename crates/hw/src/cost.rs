//! The unified hardware cost layer: one [`CostModel`] trait from GA
//! fitness to netlist.
//!
//! Historically this workspace had three divergent costing paths — the
//! GA's analytic gate-equivalent objective, [`Elaborator::cost`]'s
//! memoized netlist-free roll-up, and full
//! [`Elaborator::elaborate`]/`Netlist::cell_counts` — whose equality
//! was maintained by hand-written pairwise tests. This module turns
//! that maintenance burden into a trait contract:
//!
//! * [`CostScenario`] names the *conditions* a circuit is costed under:
//!   a [`TechLibrary`], a [`VddModel`], an operating supply voltage and
//!   an optional power budget (a printed [`PowerSource`] or an explicit
//!   mW figure). Scenarios are serializable, so they travel inside
//!   pipeline stage artifacts and sweep configurations.
//! * [`HwCost`] is the *answer*: gate equivalents, cm², mW and ms at
//!   the scenario's supply.
//! * [`CostModel`] maps an [`MlpHardwareSpec`] to a [`HardwareReport`] /
//!   [`HwCost`] under a scenario. Two interchangeable implementations
//!   exist, **proven equal** on randomized specs by the
//!   `cost_model_parity` property suite:
//!   [`FastCostModel`] — fully analytic, no netlist, per-neuron memo —
//!   and [`ExactCostModel`] — scratch-netlist elaboration via
//!   [`Elaborator::cost`], itself proven equal to full elaboration.
//!
//! # Which model to use where
//!
//! The GA fitness and anything run millions of times should use the
//! fast model (or, inside `printed-axc`, the per-neuron
//! `MemoAreaEstimator` it is built on); reported artifacts (Tables
//! I/II, Figs. 4/5) cost through the exact model. Because the parity
//! suite proves the two identical, this split is an implementation
//! detail, not a semantic one.
//!
//! # Example
//!
//! ```
//! use pe_hw::cost::{CostModel, CostScenario, ExactCostModel, FastCostModel};
//! use pe_hw::spec::{ExactNeuronSpec, LayerActivation, LayerSpec, MlpHardwareSpec, NeuronSpec};
//! use pe_hw::{PowerSource, TechLibrary};
//!
//! let spec = MlpHardwareSpec {
//!     name: "demo".into(),
//!     inputs: 2,
//!     input_bits: 4,
//!     layers: vec![LayerSpec {
//!         neurons: vec![NeuronSpec::Exact(ExactNeuronSpec {
//!             input_bits: 4,
//!             weights: vec![3, -5],
//!             bias: 1,
//!             trunc_bits: 0,
//!             csd_multipliers: false,
//!         }); 2],
//!         activation: LayerActivation::Argmax,
//!     }],
//! };
//!
//! // A power-aware low-voltage scenario on the default technology.
//! let scenario = CostScenario::nominal(TechLibrary::egfet())
//!     .at_supply(0.6)
//!     .powered_by(PowerSource::Harvester);
//! let fast = FastCostModel::new(scenario.clone());
//! let exact = ExactCostModel::new(scenario);
//!
//! // The two models agree exactly — the parity suite proves this on
//! // randomized specs; here is one instance.
//! assert_eq!(fast.report(&spec), exact.report(&spec));
//! let cost = fast.cost(&spec);
//! assert!(cost.area_ge > 0.0 && cost.power_mw > 0.0);
//! assert!(fast.scenario().within_power_budget(cost.power_mw));
//! ```

use std::sync::{Arc, Mutex};

use pe_arith::{BoundedCache, ColumnProfile, ReductionKind, Summand};
use serde::{Deserialize, Serialize};

use crate::circuit::{cost_with, CostedMlp, Elaborator, NeuronCost};
use crate::neuron::neuron_summands;
use crate::power_source::PowerSource;
use crate::report::HardwareReport;
use crate::spec::{MlpHardwareSpec, NeuronSpec};
use crate::tech::{Cell, CellCounts, TechLibrary};
use crate::vdd::VddModel;

/// The conditions a circuit is costed under: technology, voltage
/// scaling law, operating supply, and an optional power budget.
///
/// Serializable so it can be a first-class pipeline/stage input; two
/// scenarios compare equal iff every knob matches, which is what stage
/// caches key on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostScenario {
    /// The cell library costs are expressed in.
    pub tech: TechLibrary,
    /// Voltage scaling laws used to move away from the nominal supply.
    pub vdd: VddModel,
    /// Operating supply voltage in volts. Reports and costs are
    /// evaluated here; equal to `tech.nominal_vdd` in the default
    /// scenario (in which case no rescaling happens at all).
    pub supply_v: f64,
    /// Optional power budget in mW (e.g. a printed battery's rating).
    /// `None` imposes no constraint.
    pub power_budget_mw: Option<f64>,
}

impl CostScenario {
    /// The technology's nominal operating point, unconstrained: the
    /// scenario every artifact was historically reported under.
    #[must_use]
    pub fn nominal(tech: TechLibrary) -> Self {
        Self {
            supply_v: tech.nominal_vdd,
            vdd: VddModel::for_tech(&tech),
            tech,
            power_budget_mw: None,
        }
    }

    /// Operate at `supply_v` volts instead of the nominal supply.
    ///
    /// # Panics
    ///
    /// Panics if `supply_v` fails [`supply_in_range`] — outside the
    /// technology's `[min_vdd, nominal_vdd]` operating range or not
    /// finite (EGFET logic is not overdriven above its nominal rail,
    /// paper §V-C). Fallible callers (configuration validation) should
    /// check [`supply_in_range`] themselves and report an error.
    #[must_use]
    pub fn at_supply(mut self, supply_v: f64) -> Self {
        assert!(
            supply_in_range(&self.tech, supply_v),
            "supply {supply_v} V outside the {} operating range [{}, {}] V",
            self.tech.name,
            self.tech.min_vdd,
            self.tech.nominal_vdd
        );
        self.supply_v = supply_v;
        self
    }

    /// Constrain designs to what `source` can drive.
    #[must_use]
    pub fn powered_by(mut self, source: PowerSource) -> Self {
        self.power_budget_mw = Some(source.budget_mw());
        self
    }

    /// Constrain designs to an explicit power budget in mW.
    #[must_use]
    pub fn with_power_budget_mw(mut self, budget_mw: f64) -> Self {
        self.power_budget_mw = Some(budget_mw);
        self
    }

    /// Whether this is the technology's nominal, unscaled operating
    /// point (reports then need no rescaling and stay bit-identical to
    /// the historical nominal path).
    #[must_use]
    pub fn is_nominal_supply(&self) -> bool {
        self.supply_v == self.tech.nominal_vdd
    }

    /// Move a nominal-supply report to this scenario's operating point
    /// (no-op — bit-identical — at the nominal supply).
    #[must_use]
    pub fn scale_report(&self, report: HardwareReport) -> HardwareReport {
        if report.vdd == self.supply_v {
            report
        } else {
            report.at_vdd(&self.vdd, self.supply_v)
        }
    }

    /// Whether `power_mw` fits the scenario's budget (`true` when no
    /// budget is set). The boundary is inclusive, matching
    /// [`FeasibilityZones::classify`](crate::power_source::FeasibilityZones::classify).
    #[must_use]
    pub fn within_power_budget(&self, power_mw: f64) -> bool {
        self.power_budget_mw.is_none_or(|budget| power_mw <= budget)
    }

    /// Compact human-readable label, e.g. `egfet-1v@0.60V<=5mW`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = format!("{}@{:.2}V", self.tech.name, self.supply_v);
        if let Some(budget) = self.power_budget_mw {
            label.push_str(&format!("<={budget}mW"));
        }
        label
    }
}

impl Default for CostScenario {
    /// [`CostScenario::nominal`] on the default [`TechLibrary`].
    fn default() -> Self {
        Self::nominal(TechLibrary::default())
    }
}

/// Whether `supply_v` is a valid operating point for `tech`: finite and
/// within `[min_vdd, nominal_vdd]` (to a 1 nV tolerance). The single
/// definition of the supply range — [`CostScenario::at_supply`] asserts
/// it, configuration validation reports it as an error.
#[must_use]
pub fn supply_in_range(tech: &TechLibrary, supply_v: f64) -> bool {
    supply_v.is_finite() && supply_v >= tech.min_vdd - 1e-9 && supply_v <= tech.nominal_vdd + 1e-9
}

/// The cost of one circuit under a [`CostScenario`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwCost {
    /// Total gate equivalents (technology-independent logic content).
    pub area_ge: f64,
    /// Area in cm² (voltage-independent).
    pub area_cm2: f64,
    /// Power in mW at the scenario's supply.
    pub power_mw: f64,
    /// Critical-path delay in ms at the scenario's supply.
    pub delay_ms: f64,
}

impl HwCost {
    /// Derive the cost summary from a report (already at the scenario's
    /// supply) and the technology it was costed in.
    #[must_use]
    pub fn of(report: &HardwareReport, tech: &TechLibrary) -> Self {
        Self {
            area_ge: tech.ge_total(&report.cells),
            area_cm2: report.area_cm2,
            power_mw: report.power_mw,
            delay_ms: report.delay_ms,
        }
    }
}

/// Maps a bespoke-MLP hardware spec to its cost under a named
/// [`CostScenario`] — the single costing interface from GA fitness to
/// netlist-backed reporting.
///
/// Implementations must be pure functions of the spec and scenario.
/// The two bundled implementations ([`FastCostModel`], exact-by-
/// construction [`ExactCostModel`]) are proven equal on randomized
/// specs; a custom model (say, wrapping a real EDA flow) only has to
/// implement [`report`](Self::report).
pub trait CostModel: Send + Sync {
    /// Short stable identifier (used in logs and sweep artifacts).
    fn name(&self) -> &'static str;

    /// The scenario this model costs under.
    fn scenario(&self) -> &CostScenario;

    /// Full hardware report of `spec` at the scenario's supply.
    fn report(&self, spec: &MlpHardwareSpec) -> HardwareReport;

    /// Cost summary of `spec` at the scenario's supply.
    fn cost(&self, spec: &MlpHardwareSpec) -> HwCost {
        HwCost::of(&self.report(spec), &self.scenario().tech)
    }
}

/// Per-model bound on memoized neuron costs (an entry is ~100 bytes).
const NEURON_COST_CACHE_CAPACITY: usize = 1 << 15;

/// The *exact* cost model: scratch-netlist elaboration per distinct
/// neuron through [`Elaborator::cost`], which is proven equal to full
/// [`Elaborator::elaborate`] + `Netlist::cell_counts`. Clones share
/// the per-neuron memo.
#[derive(Debug, Clone)]
pub struct ExactCostModel {
    elaborator: Elaborator,
    scenario: CostScenario,
}

impl ExactCostModel {
    /// Exact model for `scenario` with the paper's FA-only reduction.
    #[must_use]
    pub fn new(scenario: CostScenario) -> Self {
        Self {
            elaborator: Elaborator::new(scenario.tech.clone()),
            scenario,
        }
    }

    /// Override the compressor policy (detaches the neuron memo).
    #[must_use]
    pub fn with_kind(mut self, kind: ReductionKind) -> Self {
        self.elaborator = self.elaborator.with_kind(kind);
        self
    }

    /// The underlying elaborator (for consumers that additionally need
    /// netlists or per-neuron statistics).
    #[must_use]
    pub fn elaborator(&self) -> &Elaborator {
        &self.elaborator
    }

    /// Cost with per-neuron statistics, at the nominal supply (what
    /// [`Elaborator::cost`] produces; [`report`](CostModel::report)
    /// additionally moves it to the scenario's operating point).
    #[must_use]
    pub fn costed(&self, spec: &MlpHardwareSpec) -> CostedMlp {
        self.elaborator.cost(spec)
    }
}

impl CostModel for ExactCostModel {
    fn name(&self) -> &'static str {
        "exact-netlist"
    }

    fn scenario(&self) -> &CostScenario {
        &self.scenario
    }

    fn report(&self, spec: &MlpHardwareSpec) -> HardwareReport {
        self.scenario
            .scale_report(self.elaborator.cost(spec).report)
    }
}

/// The *fast* cost model: fully analytic — column heights, the
/// [`pe_arith`] reduction recurrence and the shared macro formulas —
/// with no netlist, no net allocation, and a per-neuron memo shared
/// across clones and threads. Equal to [`ExactCostModel`] on every
/// spec (property-tested), at a fraction of the cost of even the
/// memoized exact path on cold neurons.
#[derive(Debug, Clone)]
pub struct FastCostModel {
    scenario: CostScenario,
    kind: ReductionKind,
    memo: Arc<Mutex<BoundedCache<NeuronSpec, NeuronCost>>>,
}

impl FastCostModel {
    /// Fast model for `scenario` with the paper's FA-only reduction.
    #[must_use]
    pub fn new(scenario: CostScenario) -> Self {
        Self {
            scenario,
            kind: ReductionKind::FaOnly,
            memo: Arc::new(Mutex::new(BoundedCache::new(NEURON_COST_CACHE_CAPACITY))),
        }
    }

    /// Override the compressor policy (detaches the neuron memo, which
    /// is keyed by neuron spec only).
    #[must_use]
    pub fn with_kind(mut self, kind: ReductionKind) -> Self {
        self.kind = kind;
        self.memo = Arc::new(Mutex::new(BoundedCache::new(NEURON_COST_CACHE_CAPACITY)));
        self
    }

    /// Cost with per-neuron statistics, at the nominal supply —
    /// field-for-field equal to [`ExactCostModel::costed`].
    #[must_use]
    pub fn costed(&self, spec: &MlpHardwareSpec) -> CostedMlp {
        cost_with(spec, &self.scenario.tech, &mut |neuron| {
            self.neuron_cost(neuron)
        })
    }

    /// Lifetime `(hits, misses)` of the shared neuron memo.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        let memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (memo.hits(), memo.misses())
    }

    fn neuron_cost(&self, neuron: &NeuronSpec) -> NeuronCost {
        {
            let mut memo = self
                .memo
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(cost) = memo.get(neuron) {
                return cost;
            }
        }
        let cost = analytic_neuron_cost(neuron, self.kind);
        self.memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(neuron.clone(), cost);
        cost
    }
}

impl CostModel for FastCostModel {
    fn name(&self) -> &'static str {
        "fast-analytic"
    }

    fn scenario(&self) -> &CostScenario {
        &self.scenario
    }

    fn report(&self, spec: &MlpHardwareSpec) -> HardwareReport {
        self.scenario.scale_report(self.costed(spec).report)
    }
}

/// Analytic per-neuron cost: mirrors
/// [`elaborate_accumulation`](crate::neuron::elaborate_accumulation) +
/// [`TreeBuilder::reduce`](crate::adder_tree::TreeBuilder::reduce) over
/// column *heights* instead of net queues — same stage policy, same
/// final carry-propagate walk, same tie-cell usage — so the counts are
/// equal to scratch elaboration by construction (and by property test).
///
/// # Panics
///
/// Panics on malformed neuron specs, exactly like elaboration.
pub(crate) fn analytic_neuron_cost(neuron: &NeuronSpec, kind: ReductionKind) -> NeuronCost {
    let summands = neuron_summands(neuron);
    let acc_bits = ColumnProfile::accumulator_width(&summands);
    let modulus_mask = (1u64 << acc_bits) - 1;
    let well_formed = "neuron spec must be well-formed";

    // Column heights plus the folded constant (two's-complement
    // negation corrections + bias), exactly as the elaborator places
    // variable bits and tie-high cells.
    let mut heights = vec![0u32; acc_bits as usize];
    let mut counts = CellCounts::new();
    let mut folded_constant: u64 = 0;
    for summand in &summands {
        match summand {
            Summand::MaskedInput {
                mask,
                shift,
                negative,
                ..
            } => {
                summand.validate().expect(well_formed);
                let mut m = *mask;
                while m != 0 {
                    let pos = m.trailing_zeros() + shift;
                    assert!(pos < acc_bits, "{well_formed}");
                    heights[pos as usize] += 1;
                    m &= m - 1;
                }
                if *negative {
                    counts.add(Cell::Not, mask.count_ones());
                }
                if let Some(k) = summand.negation_constant(acc_bits).expect(well_formed) {
                    folded_constant = folded_constant.wrapping_add(k) & modulus_mask;
                }
            }
            Summand::Constant(c) => {
                let pattern = pe_arith::fixed::to_twos_complement(*c, acc_bits).expect(well_formed);
                folded_constant = folded_constant.wrapping_add(pattern) & modulus_mask;
            }
        }
    }
    let mut uses_tie_hi = false;
    for b in 0..acc_bits {
        if folded_constant >> b & 1 == 1 {
            heights[b as usize] += 1;
            uses_tie_hi = true;
        }
    }

    // Stage-by-stage 3:2 reduction, mirroring `TreeBuilder::reduce`:
    // FA sums stay in place, carries move one column left, a leftover
    // pair in a still-too-tall column feeds an HA under FaHa, and
    // trailing empty columns are trimmed between stages.
    let mut stages = 0u32;
    while heights.iter().any(|&h| h > 2) {
        stages += 1;
        let mut next = vec![0u32; heights.len() + 1];
        for (ci, &h) in heights.iter().enumerate() {
            let fas = h / 3;
            counts.add(Cell::Fa, fas);
            let mut rem = h % 3;
            let mut kept = fas;
            if kind == ReductionKind::FaHa && rem == 2 && h > 2 {
                counts.add(Cell::Ha, 1);
                kept += 1;
                next[ci + 1] += 1;
                rem = 0;
            }
            next[ci] += kept + rem;
            next[ci + 1] += fas;
        }
        while next.last() == Some(&0) {
            next.pop();
        }
        heights = next;
    }

    // Final carry-propagate walk, mirroring the TreeBuilder's CPA: the
    // FA-only policy ties the missing third input low (one shared
    // tie-low cell), and empty columns yield constant-zero sum bits.
    let mut uses_tie_lo = false;
    let mut carry = false;
    let mut sum_len = 0u32;
    for &h in &heights {
        match (h, carry) {
            (0, false) => uses_tie_lo = true,
            (0, true) => carry = false,
            (1, false) => {}
            (1, true) | (2, false) => {
                if kind == ReductionKind::FaHa {
                    counts.add(Cell::Ha, 1);
                } else {
                    counts.add(Cell::Fa, 1);
                    uses_tie_lo = true;
                }
                carry = true;
            }
            (2, true) => {
                counts.add(Cell::Fa, 1);
                carry = true;
            }
            _ => unreachable!("columns are at most 2 high after reduction"),
        }
        sum_len += 1;
    }
    if carry {
        sum_len += 1;
    }
    // Sum bits are truncated to the accumulator width and padded with
    // constant zeros when the tree came up short.
    if sum_len < acc_bits {
        uses_tie_lo = true;
    }

    NeuronCost {
        counts,
        uses_tie_hi,
        uses_tie_lo,
        stages,
        accumulator_bits: acc_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExactNeuronSpec, LayerActivation, LayerSpec};
    use pe_arith::{NeuronArithSpec, WeightArith};

    fn two_layer_spec() -> MlpHardwareSpec {
        MlpHardwareSpec {
            name: "cost-demo".into(),
            inputs: 3,
            input_bits: 4,
            layers: vec![
                LayerSpec {
                    neurons: vec![
                        NeuronSpec::Approximate(NeuronArithSpec {
                            input_bits: 4,
                            weights: vec![
                                WeightArith {
                                    mask: 0b1011,
                                    shift: 1,
                                    negative: true,
                                },
                                WeightArith {
                                    mask: 0b1111,
                                    shift: 0,
                                    negative: false,
                                },
                                WeightArith {
                                    mask: 0,
                                    shift: 2,
                                    negative: false,
                                },
                            ],
                            bias: -7,
                        });
                        2
                    ],
                    activation: LayerActivation::QRelu {
                        out_bits: 8,
                        shift: 1,
                    },
                },
                LayerSpec {
                    neurons: vec![
                        NeuronSpec::Exact(ExactNeuronSpec {
                            input_bits: 8,
                            weights: vec![13, -6],
                            bias: 3,
                            trunc_bits: 0,
                            csd_multipliers: false,
                        });
                        2
                    ],
                    activation: LayerActivation::Argmax,
                },
            ],
        }
    }

    #[test]
    fn fast_equals_exact_on_a_mixed_network() {
        for kind in [ReductionKind::FaOnly, ReductionKind::FaHa] {
            let scenario = CostScenario::default();
            let fast = FastCostModel::new(scenario.clone()).with_kind(kind);
            let exact = ExactCostModel::new(scenario).with_kind(kind);
            let spec = two_layer_spec();
            assert_eq!(fast.report(&spec), exact.report(&spec), "{kind:?}");
            assert_eq!(
                fast.costed(&spec).neuron_stats,
                exact.costed(&spec).neuron_stats,
                "{kind:?}"
            );
            // Warm-memo pass returns the same thing.
            assert_eq!(fast.report(&spec), exact.report(&spec), "{kind:?}");
            assert_eq!(fast.cost(&spec), exact.cost(&spec), "{kind:?}");
        }
    }

    #[test]
    fn fast_model_matches_full_elaboration_cells() {
        let spec = two_layer_spec();
        let fast = FastCostModel::new(CostScenario::default());
        let full = Elaborator::new(TechLibrary::egfet()).elaborate(&spec);
        assert_eq!(fast.costed(&spec).report.cells, full.netlist.cell_counts());
    }

    #[test]
    fn nominal_scenario_report_is_bit_identical_to_elaborator() {
        // The default scenario must not rescale anything: the refactor
        // guarantee behind byte-identical table artifacts.
        let spec = two_layer_spec();
        let exact = ExactCostModel::new(CostScenario::default());
        let legacy = Elaborator::new(TechLibrary::egfet()).cost(&spec).report;
        assert_eq!(exact.report(&spec), legacy);
    }

    #[test]
    fn scenarios_scale_like_the_vdd_model() {
        let spec = two_layer_spec();
        let nominal = FastCostModel::new(CostScenario::default());
        let low = FastCostModel::new(CostScenario::default().at_supply(0.6));
        let (n, l) = (nominal.cost(&spec), low.cost(&spec));
        assert_eq!(n.area_cm2, l.area_cm2, "area is voltage-independent");
        assert_eq!(n.area_ge, l.area_ge);
        assert!(l.power_mw < n.power_mw);
        assert!(l.delay_ms > n.delay_ms);
    }

    #[test]
    fn second_technology_moves_the_cost_surface() {
        let spec = two_layer_spec();
        let hp = FastCostModel::new(CostScenario::default());
        let lp = FastCostModel::new(CostScenario::nominal(TechLibrary::egfet_lowpower()));
        let (h, l) = (hp.cost(&spec), lp.cost(&spec));
        assert_eq!(h.area_ge, l.area_ge, "same logic content");
        assert!(l.area_cm2 > h.area_cm2, "LP corner is bigger");
        assert!(l.power_mw < h.power_mw, "LP corner burns less");
    }

    #[test]
    fn scenario_labels_and_budgets() {
        let s = CostScenario::default();
        assert!(s.is_nominal_supply());
        assert!(s.within_power_budget(1e9));
        assert_eq!(s.label(), "egfet-1v@1.00V");
        let s = s.at_supply(0.6).powered_by(PowerSource::BlueSpark);
        assert!(!s.is_nominal_supply());
        assert_eq!(s.label(), "egfet-1v@0.60V<=5mW");
        assert!(s.within_power_budget(5.0), "budget boundary is inclusive");
        assert!(!s.within_power_budget(5.0 + 1e-9));
    }

    #[test]
    #[should_panic(expected = "outside the egfet-1v operating range")]
    fn undervolted_scenario_is_rejected() {
        let _ = CostScenario::default().at_supply(0.3);
    }

    #[test]
    #[should_panic(expected = "outside the egfet-1v operating range")]
    fn overdriven_scenario_is_rejected() {
        let _ = CostScenario::default().at_supply(1.2);
    }
}
