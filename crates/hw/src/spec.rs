//! Technology-independent hardware descriptions of bespoke MLPs.
//!
//! `pe-mlp` (and the GA in `printed-axc`) lower their networks into
//! these specs; [`crate::circuit`] elaborates them into netlists and
//! costs. Two neuron flavours exist:
//!
//! * [`NeuronSpec::Exact`] — the MICRO'20-style baseline: full-precision
//!   two's-complement coefficients, implemented as CSD shift-add
//!   constant multipliers feeding the accumulation tree.
//! * [`NeuronSpec::Approximate`] — the DATE'24 neuron: power-of-two
//!   weights (wiring), bit masks (hard-wired zeros) and folded signs.

use serde::{Deserialize, Serialize};

use pe_arith::NeuronArithSpec;

/// An exact bespoke neuron: hard-wired integer coefficients.
///
/// `Hash`/`Eq` make the spec usable as an elaboration-memo key: two
/// neurons with the same coefficients and widths elaborate to the same
/// gate counts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExactNeuronSpec {
    /// Width of each input activation in bits.
    pub input_bits: u32,
    /// Full-precision quantized weights (two's complement integers).
    pub weights: Vec<i64>,
    /// Quantized bias.
    pub bias: i64,
    /// Accumulation truncation: adder-tree columns below this bit
    /// position are dropped (TC'23-style approximation; 0 = exact).
    #[serde(default)]
    pub trunc_bits: u32,
    /// Multiplier decomposition: `false` (default) uses plain binary
    /// shift-add partial products, as synthesis derives from a
    /// hard-wired `a * W` (the MICRO'20 baseline style); `true` uses
    /// optimal CSD recoding, as methods that explicitly construct
    /// shift-add replacements (TC'23) do.
    #[serde(default)]
    pub csd_multipliers: bool,
}

impl ExactNeuronSpec {
    /// Number of non-zero weights (a zero weight is wired out).
    #[must_use]
    pub fn active_inputs(&self) -> usize {
        self.weights.iter().filter(|&&w| w != 0).count()
    }
}

/// A bespoke neuron, exact or approximate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeuronSpec {
    /// Full-precision baseline neuron.
    Exact(ExactNeuronSpec),
    /// DATE'24 approximate neuron (pow2 weights + masks).
    Approximate(NeuronArithSpec),
}

impl NeuronSpec {
    /// Input activation width in bits.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        match self {
            NeuronSpec::Exact(e) => e.input_bits,
            NeuronSpec::Approximate(a) => a.input_bits,
        }
    }

    /// Number of inputs (fan-in before pruning).
    #[must_use]
    pub fn fan_in(&self) -> usize {
        match self {
            NeuronSpec::Exact(e) => e.weights.len(),
            NeuronSpec::Approximate(a) => a.weights.len(),
        }
    }
}

/// What happens after a layer's accumulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerActivation {
    /// Quantized ReLU: clamp the (right-shifted) accumulator into an
    /// unsigned `out_bits` range. The paper uses 8-bit QReLU outputs.
    QRelu {
        /// Output width in bits.
        out_bits: u32,
        /// Static right-shift applied before clamping (requantization).
        shift: u32,
    },
    /// Output layer: an argmax comparator tree picks the class index.
    Argmax,
}

/// One layer of a bespoke MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// The layer's neurons (all share the same inputs).
    pub neurons: Vec<NeuronSpec>,
    /// Activation applied to every neuron's accumulator.
    pub activation: LayerActivation,
}

/// A complete bespoke MLP circuit description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpHardwareSpec {
    /// Identifying name (dataset / design point), used in reports and
    /// emitted module names.
    pub name: String,
    /// Number of primary inputs (first-layer fan-in).
    pub inputs: usize,
    /// Width of each primary input in bits (4 in the paper).
    pub input_bits: u32,
    /// Layers, first hidden layer first.
    pub layers: Vec<LayerSpec>,
}

impl MlpHardwareSpec {
    /// Number of classes (fan-out of the last layer).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no layers.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.layers
            .last()
            .expect("spec must have layers")
            .neurons
            .len()
    }

    /// Total number of neurons.
    #[must_use]
    pub fn neuron_count(&self) -> usize {
        self.layers.iter().map(|l| l.neurons.len()).sum()
    }

    /// Total number of connections (parameters excluding biases).
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.neurons.iter().map(NeuronSpec::fan_in))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_neuron_counts_active_inputs() {
        let n = ExactNeuronSpec {
            input_bits: 4,
            weights: vec![3, 0, -7, 0, 1],
            bias: 2,
            trunc_bits: 0,
            csd_multipliers: false,
        };
        assert_eq!(n.active_inputs(), 3);
    }

    #[test]
    fn spec_level_counters() {
        let hidden = LayerSpec {
            neurons: vec![
                NeuronSpec::Exact(ExactNeuronSpec {
                    input_bits: 4,
                    weights: vec![1, 2, 3],
                    bias: 0,
                    trunc_bits: 0,
                    csd_multipliers: false,
                });
                2
            ],
            activation: LayerActivation::QRelu {
                out_bits: 8,
                shift: 2,
            },
        };
        let out = LayerSpec {
            neurons: vec![
                NeuronSpec::Exact(ExactNeuronSpec {
                    input_bits: 8,
                    weights: vec![1, -1],
                    bias: 0,
                    trunc_bits: 0,
                    csd_multipliers: false,
                });
                4
            ],
            activation: LayerActivation::Argmax,
        };
        let spec = MlpHardwareSpec {
            name: "toy".into(),
            inputs: 3,
            input_bits: 4,
            layers: vec![hidden, out],
        };
        assert_eq!(spec.classes(), 4);
        assert_eq!(spec.neuron_count(), 6);
        assert_eq!(spec.connection_count(), 2 * 3 + 4 * 2);
    }
}
