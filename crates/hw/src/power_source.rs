//! Printed power sources and the Fig. 5 feasibility classification.
//!
//! The paper classifies each MLP circuit by the weakest printed power
//! source able to drive it — printed energy harvester, Blue Spark 5 mW,
//! Zinergy 15 mW, Molex 30 mW — with a "no adequate power supply" red
//! zone beyond 30 mW and an "unsustainable area" red zone for circuits
//! too large for realistic printed applications.

use serde::{Deserialize, Serialize};

/// A printed power source class, ordered from weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PowerSource {
    /// A printed energy harvester (body heat / RF / photovoltaic),
    /// budgeted at ~2 mW — the paper's green "self-powered" zone.
    Harvester,
    /// Blue Spark printed battery, 5 mW.
    BlueSpark,
    /// Zinergy printed battery, 15 mW.
    Zinergy,
    /// Molex printed battery, 30 mW.
    Molex,
}

impl PowerSource {
    /// All sources, weakest first.
    pub const ALL: [PowerSource; 4] = [
        PowerSource::Harvester,
        PowerSource::BlueSpark,
        PowerSource::Zinergy,
        PowerSource::Molex,
    ];

    /// Maximum continuous power the source can supply, in mW.
    #[must_use]
    pub fn budget_mw(self) -> f64 {
        match self {
            PowerSource::Harvester => 2.0,
            PowerSource::BlueSpark => 5.0,
            PowerSource::Zinergy => 15.0,
            PowerSource::Molex => 30.0,
        }
    }

    /// Display name matching the paper's Fig. 5 legend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PowerSource::Harvester => "Harvester",
            PowerSource::BlueSpark => "Blue Spark",
            PowerSource::Zinergy => "Zinergy",
            PowerSource::Molex => "Molex",
        }
    }
}

/// Feasibility verdict for one circuit (one point of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Feasibility {
    /// Powered by the given source and within the sustainable-area zone.
    Powered(PowerSource),
    /// No printed power source can supply the circuit (power > 30 mW).
    NoAdequatePowerSupply,
    /// Area exceeds what printed applications can accommodate.
    UnsustainableArea,
}

impl Feasibility {
    /// Whether the circuit is deployable at all (green/battery zones).
    #[must_use]
    pub fn is_deployable(self) -> bool {
        matches!(self, Feasibility::Powered(_))
    }
}

/// The Fig. 5 zone classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityZones {
    /// Area above which a printed circuit is deemed unsustainable, cm².
    ///
    /// Table I notes baseline areas "above 12 cm²" are unsuitable for
    /// most printed applications; the paper's Fig. 5 red zone also
    /// absorbs its own 12.7 cm² Pendigits point, so we default to a
    /// 30 cm² hard limit with the caveat reported separately.
    pub max_area_cm2: f64,
}

impl FeasibilityZones {
    /// Default zones matching the paper's Fig. 5 axes.
    #[must_use]
    pub fn paper() -> Self {
        Self { max_area_cm2: 30.0 }
    }

    /// Classify a circuit by area (cm²) and power (mW).
    ///
    /// Area is checked first: an oversized circuit is unsustainable even
    /// if its power fits a battery, matching the paper's treatment of
    /// the baseline designs.
    #[must_use]
    pub fn classify(&self, area_cm2: f64, power_mw: f64) -> Feasibility {
        if area_cm2 > self.max_area_cm2 {
            return Feasibility::UnsustainableArea;
        }
        for src in PowerSource::ALL {
            if power_mw <= src.budget_mw() {
                return Feasibility::Powered(src);
            }
        }
        Feasibility::NoAdequatePowerSupply
    }
}

impl Default for FeasibilityZones {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_ordered_by_budget() {
        for w in PowerSource::ALL.windows(2) {
            assert!(w[0].budget_mw() < w[1].budget_mw());
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn classification_picks_weakest_sufficient_source() {
        let zones = FeasibilityZones::paper();
        assert_eq!(
            zones.classify(1.0, 0.5),
            Feasibility::Powered(PowerSource::Harvester)
        );
        assert_eq!(
            zones.classify(1.0, 4.0),
            Feasibility::Powered(PowerSource::BlueSpark)
        );
        assert_eq!(
            zones.classify(1.0, 14.0),
            Feasibility::Powered(PowerSource::Zinergy)
        );
        assert_eq!(
            zones.classify(1.0, 29.0),
            Feasibility::Powered(PowerSource::Molex)
        );
        assert_eq!(
            zones.classify(1.0, 31.0),
            Feasibility::NoAdequatePowerSupply
        );
    }

    #[test]
    fn classification_boundaries_are_inclusive() {
        // A cost exactly on a zone edge belongs to the zone it closes:
        // budgets are `<=` (a 5.0 mW draw is Blue Spark, not Zinergy)
        // and the area limit is `>` (exactly 30 cm² is still
        // sustainable). Pinning the edges keeps Fig. 5 deterministic
        // for designs that land on them.
        let zones = FeasibilityZones::paper();
        for src in PowerSource::ALL {
            assert_eq!(
                zones.classify(1.0, src.budget_mw()),
                Feasibility::Powered(src),
                "{}",
                src.name()
            );
            // The next representable power above the budget spills over.
            let above = src.budget_mw() + 1e-9;
            assert_ne!(
                zones.classify(1.0, above),
                Feasibility::Powered(src),
                "{}",
                src.name()
            );
        }
        // Exactly on the area edge: sustainable; just above: red zone.
        assert_eq!(
            zones.classify(zones.max_area_cm2, 1.0),
            Feasibility::Powered(PowerSource::Harvester)
        );
        assert_eq!(
            zones.classify(zones.max_area_cm2 + 1e-9, 1.0),
            Feasibility::UnsustainableArea
        );
        // Both edges at once: area is checked first, so the design is
        // classified by power.
        assert_eq!(
            zones.classify(zones.max_area_cm2, 30.0),
            Feasibility::Powered(PowerSource::Molex)
        );
    }

    #[test]
    fn oversized_circuits_are_red_even_if_low_power() {
        let zones = FeasibilityZones::paper();
        assert_eq!(zones.classify(50.0, 0.1), Feasibility::UnsustainableArea);
        assert!(!zones.classify(50.0, 0.1).is_deployable());
    }

    #[test]
    fn paper_table_i_baselines_all_infeasible() {
        // Table I: every exact baseline draws >= 40 mW — none can be
        // powered by any printed source.
        let zones = FeasibilityZones::paper();
        for (area, power) in [
            (12.0, 40.0),
            (33.4, 124.0),
            (67.0, 213.0),
            (17.6, 73.5),
            (31.2, 126.0),
        ] {
            assert!(
                !zones.classify(area, power).is_deployable(),
                "{area} {power}"
            );
        }
    }
}
