//! Structural netlists for bespoke printed circuits.
//!
//! A [`Netlist`] is a flat list of primitive-cell instances plus
//! *macro blocks* (QReLU saturation units, argmax comparator trees)
//! whose gate content is costed analytically and emitted behaviourally
//! in Verilog. Nets are integer handles allocated by the netlist; the
//! elaborators in [`crate::neuron`] wire full adder trees bit by bit so
//! that cell counts are exact, not estimated.

use serde::{Deserialize, Serialize};

use crate::tech::{Cell, CellCounts};

/// Handle of a net (wire) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub u32);

/// One primitive cell instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Cell kind.
    pub cell: Cell,
    /// Input nets, in cell-port order (e.g. `a, b, cin` for an FA).
    pub inputs: Vec<NetId>,
    /// Output nets, in cell-port order (e.g. `sum, cout` for an FA).
    pub outputs: Vec<NetId>,
}

/// A block costed by analytic gate counts and emitted behaviourally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroBlock {
    /// Descriptive name (e.g. `"qrelu_l1_n0"`).
    pub name: String,
    /// Gate content charged to the cost model.
    pub gates: CellCounts,
    /// Input nets.
    pub inputs: Vec<NetId>,
    /// Output nets.
    pub outputs: Vec<NetId>,
    /// Behavioural description for the Verilog emitter.
    pub behavior: String,
}

/// Named top-level port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    /// Port name in the emitted HDL.
    pub name: String,
    /// Net carried by the port.
    pub net: NetId,
}

/// A structural gate-level netlist.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    next_net: u32,
    instances: Vec<Instance>,
    macros: Vec<MacroBlock>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    /// Net tied to constant 1, if any cell needed it.
    tie_hi: Option<NetId>,
    /// Net tied to constant 0, if any cell needed it.
    tie_lo: Option<NetId>,
}

impl Netlist {
    /// Create an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh net.
    pub fn net(&mut self) -> NetId {
        let id = NetId(self.next_net);
        self.next_net += 1;
        id
    }

    /// Allocate `n` fresh nets.
    pub fn nets(&mut self, n: usize) -> Vec<NetId> {
        (0..n).map(|_| self.net()).collect()
    }

    /// Net carrying constant logic-1 (allocates the tie cell on first use).
    pub fn const_one(&mut self) -> NetId {
        if let Some(n) = self.tie_hi {
            return n;
        }
        let n = self.net();
        self.instances.push(Instance {
            cell: Cell::TieHi,
            inputs: vec![],
            outputs: vec![n],
        });
        self.tie_hi = Some(n);
        n
    }

    /// Net carrying constant logic-0 (allocates the tie cell on first use).
    pub fn const_zero(&mut self) -> NetId {
        if let Some(n) = self.tie_lo {
            return n;
        }
        let n = self.net();
        self.instances.push(Instance {
            cell: Cell::TieLo,
            inputs: vec![],
            outputs: vec![n],
        });
        self.tie_lo = Some(n);
        n
    }

    /// Add a full adder; returns `(sum, carry)` nets.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let sum = self.net();
        let cout = self.net();
        self.instances.push(Instance {
            cell: Cell::Fa,
            inputs: vec![a, b, cin],
            outputs: vec![sum, cout],
        });
        (sum, cout)
    }

    /// Add a half adder; returns `(sum, carry)` nets.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        let sum = self.net();
        let cout = self.net();
        self.instances.push(Instance {
            cell: Cell::Ha,
            inputs: vec![a, b],
            outputs: vec![sum, cout],
        });
        (sum, cout)
    }

    /// Add an inverter; returns the output net.
    pub fn inverter(&mut self, a: NetId) -> NetId {
        let y = self.net();
        self.instances.push(Instance {
            cell: Cell::Not,
            inputs: vec![a],
            outputs: vec![y],
        });
        y
    }

    /// Add an arbitrary 2-input gate; returns the output net.
    pub fn gate2(&mut self, cell: Cell, a: NetId, b: NetId) -> NetId {
        debug_assert!(matches!(cell, Cell::And2 | Cell::Or2 | Cell::Xor2));
        let y = self.net();
        self.instances.push(Instance {
            cell,
            inputs: vec![a, b],
            outputs: vec![y],
        });
        y
    }

    /// Add a D flip-flop from `d` to a fresh output net; returns it.
    pub fn dff(&mut self, d: NetId) -> NetId {
        let q = self.net();
        self.instances.push(Instance {
            cell: Cell::Dff,
            inputs: vec![d],
            outputs: vec![q],
        });
        q
    }

    /// Add a 2:1 mux (`sel ? a : b`); returns the output net.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        let y = self.net();
        self.instances.push(Instance {
            cell: Cell::Mux2,
            inputs: vec![sel, a, b],
            outputs: vec![y],
        });
        y
    }

    /// Register a macro block.
    pub fn add_macro(&mut self, block: MacroBlock) {
        self.macros.push(block);
    }

    /// Declare a top-level input port.
    pub fn add_input(&mut self, name: impl Into<String>, net: NetId) {
        self.inputs.push(Port {
            name: name.into(),
            net,
        });
    }

    /// Declare a top-level output port.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push(Port {
            name: name.into(),
            net,
        });
    }

    /// All primitive instances.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// All macro blocks.
    #[must_use]
    pub fn macros(&self) -> &[MacroBlock] {
        &self.macros
    }

    /// Top-level input ports.
    #[must_use]
    pub fn input_ports(&self) -> &[Port] {
        &self.inputs
    }

    /// Top-level output ports.
    #[must_use]
    pub fn output_ports(&self) -> &[Port] {
        &self.outputs
    }

    /// Number of allocated nets.
    #[must_use]
    pub fn net_count(&self) -> u32 {
        self.next_net
    }

    /// Aggregate cell counts: primitive instances plus macro gate content.
    #[must_use]
    pub fn cell_counts(&self) -> CellCounts {
        let mut counts = CellCounts::new();
        for inst in &self.instances {
            counts.add(inst.cell, 1);
        }
        for m in &self.macros {
            counts.merge(&m.gates);
        }
        counts
    }

    /// Simulate the primitive portion of the netlist.
    ///
    /// `inputs` assigns values to externally driven nets (primary
    /// inputs); every instance is evaluated in insertion order, which
    /// the elaborators guarantee is topological. Macro blocks are
    /// behavioural and are *not* simulated — their output nets stay
    /// undriven. [`Cell::Dff`] is treated as transparent (one-cycle
    /// simulation).
    ///
    /// Returns the final value of every driven net. Reading an undriven
    /// net yields `false`.
    ///
    /// # Panics
    ///
    /// Panics if an instance reads a net that is neither an input nor a
    /// previous instance's output — indicating a non-topological
    /// netlist, which the elaborators never produce.
    #[must_use]
    pub fn simulate(&self, inputs: &std::collections::HashMap<NetId, bool>) -> Vec<bool> {
        let mut value = vec![false; self.next_net as usize];
        let mut driven = vec![false; self.next_net as usize];
        for (&net, &v) in inputs {
            value[net.0 as usize] = v;
            driven[net.0 as usize] = true;
        }
        let read = |net: NetId, value: &[bool], driven: &[bool]| -> bool {
            assert!(
                driven[net.0 as usize],
                "net {} read before being driven (non-topological netlist?)",
                net.0
            );
            value[net.0 as usize]
        };
        for inst in &self.instances {
            let outs: Vec<bool> = match inst.cell {
                Cell::Fa => {
                    let a = read(inst.inputs[0], &value, &driven);
                    let b = read(inst.inputs[1], &value, &driven);
                    let c = read(inst.inputs[2], &value, &driven);
                    vec![a ^ b ^ c, (a & b) | (c & (a ^ b))]
                }
                Cell::Ha => {
                    let a = read(inst.inputs[0], &value, &driven);
                    let b = read(inst.inputs[1], &value, &driven);
                    vec![a ^ b, a & b]
                }
                Cell::Not => vec![!read(inst.inputs[0], &value, &driven)],
                Cell::And2 => vec![
                    read(inst.inputs[0], &value, &driven) & read(inst.inputs[1], &value, &driven),
                ],
                Cell::Or2 => vec![
                    read(inst.inputs[0], &value, &driven) | read(inst.inputs[1], &value, &driven),
                ],
                Cell::Xor2 => vec![
                    read(inst.inputs[0], &value, &driven) ^ read(inst.inputs[1], &value, &driven),
                ],
                Cell::Mux2 => {
                    let sel = read(inst.inputs[0], &value, &driven);
                    let a = read(inst.inputs[1], &value, &driven);
                    let b = read(inst.inputs[2], &value, &driven);
                    vec![if sel { a } else { b }]
                }
                Cell::TieHi => vec![true],
                Cell::TieLo => vec![false],
                Cell::Dff => vec![read(inst.inputs[0], &value, &driven)],
            };
            for (net, v) in inst.outputs.iter().zip(outs) {
                value[net.0 as usize] = v;
                driven[net.0 as usize] = true;
            }
        }
        value
    }

    /// Merge `other` into `self`, remapping its nets and returning the
    /// offset added to every net id of `other`.
    pub fn absorb(&mut self, other: Netlist) -> u32 {
        let offset = self.next_net;
        let remap = |n: NetId| NetId(n.0 + offset);
        self.next_net += other.next_net;
        for mut inst in other.instances {
            for n in &mut inst.inputs {
                *n = remap(*n);
            }
            for n in &mut inst.outputs {
                *n = remap(*n);
            }
            // Keep at most one tie cell of each polarity in the merged
            // netlist only if we had none; otherwise the duplicate stays
            // (its cost is negligible and net identity stays simple).
            self.instances.push(inst);
        }
        for mut m in other.macros {
            for n in &mut m.inputs {
                *n = remap(*n);
            }
            for n in &mut m.outputs {
                *n = remap(*n);
            }
            self.macros.push(m);
        }
        for mut p in other.inputs {
            p.net = remap(p.net);
            self.inputs.push(p);
        }
        for mut p in other.outputs {
            p.net = remap(p.net);
            self.outputs.push(p);
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_nets_are_unique() {
        let mut nl = Netlist::new();
        let a = nl.net();
        let b = nl.net();
        assert_ne!(a, b);
        assert_eq!(nl.net_count(), 2);
    }

    #[test]
    fn tie_cells_are_shared() {
        let mut nl = Netlist::new();
        let one_a = nl.const_one();
        let one_b = nl.const_one();
        assert_eq!(one_a, one_b);
        assert_eq!(nl.cell_counts().get(Cell::TieHi), 1);
    }

    #[test]
    fn adder_cells_report_counts() {
        let mut nl = Netlist::new();
        let a = nl.net();
        let b = nl.net();
        let c = nl.net();
        let (s, co) = nl.full_adder(a, b, c);
        let (_s2, _co2) = nl.half_adder(s, co);
        let counts = nl.cell_counts();
        assert_eq!(counts.get(Cell::Fa), 1);
        assert_eq!(counts.get(Cell::Ha), 1);
    }

    #[test]
    fn macros_contribute_gate_counts() {
        let mut nl = Netlist::new();
        let mut gates = CellCounts::new();
        gates.add(Cell::Or2, 7);
        nl.add_macro(MacroBlock {
            name: "qrelu".into(),
            gates,
            inputs: vec![],
            outputs: vec![],
            behavior: String::new(),
        });
        assert_eq!(nl.cell_counts().get(Cell::Or2), 7);
    }

    #[test]
    fn absorb_remaps_everything() {
        let mut a = Netlist::new();
        let x = a.net();
        a.add_input("x", x);
        let mut b = Netlist::new();
        let y = b.net();
        let z = b.inverter(y);
        b.add_output("z", z);
        let offset = a.absorb(b);
        assert_eq!(offset, 1);
        assert_eq!(a.net_count(), 3);
        assert_eq!(a.output_ports()[0].net, NetId(z.0 + offset));
        assert_eq!(a.instances().len(), 1);
        assert_eq!(a.instances()[0].inputs[0], NetId(y.0 + offset));
    }
}
