//! Monte-Carlo process-variation model for printed EGFET circuits.
//!
//! Printed electronics is the poster child for process variation:
//! device-to-device threshold and mobility spread is far wider than in
//! silicon, supplies droop under load, and 4-bit sensor frontends are
//! noisy. This module models those effects as a serializable
//! [`VariationModel`] sampled by a *deterministic, stateless* keyed
//! sampler: every draw is a pure function of a per-trial seed and the
//! coordinates of the thing being perturbed (layer/neuron for device
//! spread, sample/feature for input noise). No RNG state is threaded
//! anywhere, so Monte-Carlo trials are reproducible bit for bit no
//! matter how many threads evaluate them or in which order.
//!
//! Three effects, one per knob family:
//!
//! * **Threshold spread** (`threshold_sigma`) — a per-device Gaussian
//!   offset added to every neuron's accumulator, scaled to the
//!   activation full-scale (`2^input_bits`), i.e. a comparator
//!   threshold shift referred to the summation node.
//! * **Mobility spread** (`mobility_sigma`) — a per-device Gaussian
//!   gain on the accumulator (drive-strength mismatch).
//! * **Supply droop** (`supply_droop`) — a per-trial uniform droop
//!   `d ∈ [0, supply_droop]`; the weakened swing multiplies every gain
//!   by `1 − d` and amplifies threshold offsets by `1/(1 − d)`.
//! * **Input noise** (`input_noise_lsb`) — Gaussian noise in LSBs on
//!   each quantized input activation, clamped to the activation range.
//!
//! A model with every knob at zero samples *exact* no-ops (offset `0`,
//! gain exactly `1.0`, unchanged inputs), which is what makes
//! zero-variance robust search byte-identical to nominal search.
//!
//! # Worked example
//!
//! ```
//! use pe_hw::variation::{trial_seed, RobustStat, VariationConfig, VariationModel};
//!
//! // The calibrated printed-EGFET corner: 5 % threshold spread, 3 %
//! // mobility spread, up to 5 % supply droop, 0.3 LSB input noise.
//! let model = VariationModel::printed_egfet();
//! let config = VariationConfig::new(model, 8);
//! config.validate().expect("a valid configuration");
//!
//! // Per-trial seeds derive from the study's master seed by value —
//! // the same master always yields the same trials.
//! let seed = trial_seed(42, 0);
//! assert_eq!(seed, trial_seed(42, 0));
//!
//! // Each device's perturbation is a pure function of (trial, layer,
//! // neuron): sampling it twice gives the same draw, with no RNG state.
//! let draw = config.model.device_draw(seed, 0, 3, 4);
//! assert_eq!(draw, config.model.device_draw(seed, 0, 3, 4));
//! assert!(draw.gain > 0.0);
//!
//! // The robust statistic folds M per-trial accuracies into one score.
//! assert_eq!(RobustStat::WorstCase.statistic(&[0.9, 0.8, 0.95]), 0.8);
//! assert_eq!(RobustStat::P95.statistic(&[0.7]), 0.7);
//!
//! // A zero-variance model samples exact no-ops.
//! let nominal = VariationModel::nominal();
//! assert!(nominal.is_zero());
//! assert!(nominal.device_draw(seed, 0, 3, 4).is_identity());
//! ```

use serde::{Deserialize, Serialize};

/// The splitmix64 increment (the golden ratio in 64-bit fixed point).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain-separation tags so the threshold, mobility, droop and input
/// draws of one trial are independent streams.
const TAG_THRESHOLD: u64 = 0x7468_7265_7368_6F6C;
const TAG_MOBILITY: u64 = 0x6D6F_6269_6C69_7479;
const TAG_DROOP: u64 = 0x6472_6F6F_7076_6464;
const TAG_INPUT: u64 = 0x696E_7075_746C_7362;

/// The splitmix64 output mix: a high-quality stateless 64-bit mixer.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of Monte-Carlo trial `trial` under `master`.
///
/// Derived splitmix64-style (like the per-dataset `derive_seed` in the
/// study pipeline) so trial streams are decorrelated and pinned by
/// value: the robustness test suite asserts exact outputs.
#[must_use]
pub fn trial_seed(master: u64, trial: usize) -> u64 {
    splitmix64(master.wrapping_add((trial as u64 + 1).wrapping_mul(GOLDEN)))
}

/// A uniform draw in `[0, 1)` from 53 mixed bits.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A standard-normal draw from a key (Irwin–Hall: the sum of twelve
/// uniforms minus six — no `libm`, exact determinism).
fn gauss(base: u64) -> f64 {
    let mut state = base;
    let mut sum = 0.0;
    for _ in 0..12 {
        state = state.wrapping_add(GOLDEN);
        sum += unit(splitmix64(state));
    }
    sum - 6.0
}

/// A per-purpose draw key for coordinates `(a, b)` under a trial seed.
fn keyed(seed: u64, tag: u64, a: usize, b: usize) -> u64 {
    let coords = splitmix64((a as u64).wrapping_mul(GOLDEN) ^ b as u64);
    splitmix64(seed ^ splitmix64(tag.wrapping_add(coords)))
}

/// Per-device perturbation of one neuron in one Monte-Carlo trial.
///
/// Applied to the neuron's pre-activation accumulator:
/// `acc' = round(acc · gain) + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceDraw {
    /// Multiplicative drive-strength factor (exactly `1.0` under a
    /// zero-variance model).
    pub gain: f64,
    /// Additive threshold offset referred to the accumulator, in
    /// accumulator LSBs (exactly `0` under a zero-variance model).
    pub offset: i64,
}

impl DeviceDraw {
    /// `true` when applying this draw is an exact no-op.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.gain == 1.0 && self.offset == 0
    }

    /// The perturbed accumulator value.
    ///
    /// The gain path rounds through `f64`, which represents integers
    /// exactly only up to `2^53` — accumulators sit orders of
    /// magnitude below that in any realizable topology (a layer of F
    /// fan-in at B activation bits sums to well under `F · 2^(B+7)`),
    /// and the debug assertion pins the bound this relies on.
    #[must_use]
    pub fn apply(&self, acc: i64) -> i64 {
        if self.is_identity() {
            acc
        } else {
            debug_assert!(
                acc.unsigned_abs() < 1u64 << 53,
                "accumulator {acc} exceeds f64's exact-integer range"
            );
            (acc as f64 * self.gain).round() as i64 + self.offset
        }
    }
}

/// A serializable process-variation corner (see the module docs for
/// the sampling semantics and a worked example).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Per-device threshold spread, as a fraction of the activation
    /// full scale `2^input_bits` (σ of a Gaussian offset).
    pub threshold_sigma: f64,
    /// Per-device mobility (drive-strength) spread: σ of a Gaussian
    /// gain around 1.0.
    pub mobility_sigma: f64,
    /// Maximum per-trial supply droop as a fraction of Vdd, in
    /// `[0, 1)`; each trial draws uniformly from `[0, supply_droop]`.
    pub supply_droop: f64,
    /// Input-activation noise σ in LSBs of the quantized inputs.
    pub input_noise_lsb: f64,
}

impl VariationModel {
    /// The zero-variance model: every draw is an exact no-op.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            threshold_sigma: 0.0,
            mobility_sigma: 0.0,
            supply_droop: 0.0,
            input_noise_lsb: 0.0,
        }
    }

    /// A calibrated printed-EGFET corner: 5 % threshold spread, 3 %
    /// mobility spread, up to 5 % supply droop and 0.3 LSB of input
    /// noise — wide by silicon standards, ordinary for printed devices.
    #[must_use]
    pub fn printed_egfet() -> Self {
        Self {
            threshold_sigma: 0.05,
            mobility_sigma: 0.03,
            supply_droop: 0.05,
            input_noise_lsb: 0.3,
        }
    }

    /// `true` when every knob is zero (all draws are exact no-ops).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.threshold_sigma == 0.0
            && self.mobility_sigma == 0.0
            && self.supply_droop == 0.0
            && self.input_noise_lsb == 0.0
    }

    /// Validates the knobs: spreads must be finite and non-negative,
    /// the droop must lie in `[0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        let non_negative = [
            ("threshold_sigma", self.threshold_sigma),
            ("mobility_sigma", self.mobility_sigma),
            ("input_noise_lsb", self.input_noise_lsb),
        ];
        for (name, value) in non_negative {
            if !value.is_finite() || value < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {value}"));
            }
        }
        if !self.supply_droop.is_finite() || !(0.0..1.0).contains(&self.supply_droop) {
            return Err(format!(
                "supply_droop must lie in [0, 1), got {}",
                self.supply_droop
            ));
        }
        Ok(())
    }

    /// This trial's supply droop `d ∈ [0, supply_droop]`.
    #[must_use]
    pub fn droop(&self, trial_seed: u64) -> f64 {
        if self.supply_droop == 0.0 {
            return 0.0;
        }
        unit(splitmix64(trial_seed ^ TAG_DROOP)) * self.supply_droop
    }

    /// The perturbation of device `(layer, neuron)` in the trial with
    /// seed `trial_seed`, for activations of `input_bits` bits.
    ///
    /// Pure in its arguments: call it from any thread, in any order.
    #[must_use]
    pub fn device_draw(
        &self,
        trial_seed: u64,
        layer: usize,
        neuron: usize,
        input_bits: u32,
    ) -> DeviceDraw {
        let d = self.droop(trial_seed);
        let g_th = gauss(keyed(trial_seed, TAG_THRESHOLD, layer, neuron));
        let g_mob = gauss(keyed(trial_seed, TAG_MOBILITY, layer, neuron));
        let full_scale = f64::from(1u32 << input_bits);
        // Droop weakens the swing (gain × (1 − d)) and makes the same
        // physical threshold shift loom larger (offset ÷ (1 − d)).
        let offset = (g_th * self.threshold_sigma * full_scale / (1.0 - d)).round() as i64;
        let gain = ((1.0 - d) * (1.0 + g_mob * self.mobility_sigma)).max(0.1);
        DeviceDraw { gain, offset }
    }

    /// Input activation `x` of `(sample, feature)` perturbed by this
    /// trial's input noise, clamped to the `bits`-bit range.
    #[must_use]
    pub fn perturb_input(
        &self,
        trial_seed: u64,
        sample: usize,
        feature: usize,
        x: u8,
        bits: u32,
    ) -> u8 {
        if self.input_noise_lsb == 0.0 {
            return x;
        }
        let g = gauss(keyed(trial_seed, TAG_INPUT, sample, feature));
        let delta = (g * self.input_noise_lsb).round() as i32;
        let max = (1i32 << bits) - 1;
        (i32::from(x) + delta).clamp(0, max) as u8
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::nominal()
    }
}

/// How M per-trial accuracies fold into one robust score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RobustStat {
    /// The minimum accuracy over the trials.
    WorstCase,
    /// The accuracy at least 95 % of trials achieve: the 5th-percentile
    /// trial by the inclusive nearest-rank method (rank
    /// `⌈M/20⌉`, so `M = 1` is the single trial and `M = 20` is the
    /// minimum).
    P95,
}

impl RobustStat {
    /// The statistic over non-empty per-trial accuracies.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is empty.
    #[must_use]
    pub fn statistic(&self, trials: &[f64]) -> f64 {
        assert!(!trials.is_empty(), "the robust statistic needs >= 1 trial");
        match self {
            RobustStat::WorstCase => trials.iter().copied().fold(f64::INFINITY, f64::min),
            RobustStat::P95 => {
                let mut sorted = trials.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite accuracies"));
                // Inclusive nearest rank ⌈0.05·M⌉ in integer arithmetic
                // (no float boundary hazard at M = 20, 40, …).
                let rank = trials.len().div_ceil(20).max(1);
                sorted[rank - 1]
            }
        }
    }
}

/// A complete robustness request: the variation corner, the number of
/// Monte-Carlo trials and the statistic the search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    /// The process-variation corner to sample.
    pub model: VariationModel,
    /// Monte-Carlo trials per evaluation (M ≥ 1).
    pub trials: usize,
    /// The per-trial accuracy statistic the search optimizes.
    pub statistic: RobustStat,
}

impl VariationConfig {
    /// A worst-case-over-`trials` configuration for `model`.
    #[must_use]
    pub fn new(model: VariationModel, trials: usize) -> Self {
        Self {
            model,
            trials,
            statistic: RobustStat::WorstCase,
        }
    }

    /// The same configuration optimizing a different statistic.
    #[must_use]
    pub fn with_statistic(mut self, statistic: RobustStat) -> Self {
        self.statistic = statistic;
        self
    }

    /// Validates the model knobs and requires `trials >= 1`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        self.model.validate()?;
        if self.trials == 0 {
            return Err("variation trials must be >= 1 (M = 0 evaluates nothing)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_variance_draws_are_exact_no_ops() {
        let m = VariationModel::nominal();
        assert!(m.is_zero());
        for trial in 0..4 {
            let seed = trial_seed(99, trial);
            assert_eq!(m.droop(seed), 0.0);
            for (layer, neuron) in [(0, 0), (0, 7), (1, 3), (2, 100)] {
                let draw = m.device_draw(seed, layer, neuron, 4);
                assert!(draw.is_identity(), "{draw:?}");
                assert_eq!(draw.apply(-1234), -1234);
            }
            for (s, f, x) in [(0, 0, 0u8), (5, 2, 15), (9, 9, 7)] {
                assert_eq!(m.perturb_input(seed, s, f, x, 4), x);
            }
        }
    }

    #[test]
    fn draws_are_pure_functions_of_their_keys() {
        let m = VariationModel::printed_egfet();
        let seed = trial_seed(7, 3);
        assert_eq!(m.device_draw(seed, 1, 2, 4), m.device_draw(seed, 1, 2, 4));
        assert_eq!(
            m.perturb_input(seed, 4, 1, 9, 4),
            m.perturb_input(seed, 4, 1, 9, 4)
        );
        // Distinct coordinates decorrelate.
        assert_ne!(m.device_draw(seed, 1, 2, 4), m.device_draw(seed, 2, 1, 4));
        assert_ne!(
            m.device_draw(trial_seed(7, 0), 1, 2, 4),
            m.device_draw(trial_seed(7, 1), 1, 2, 4)
        );
    }

    #[test]
    fn perturbed_inputs_stay_in_range() {
        let m = VariationModel {
            input_noise_lsb: 4.0,
            ..VariationModel::nominal()
        };
        for trial in 0..8 {
            let seed = trial_seed(1, trial);
            for s in 0..32 {
                for x in [0u8, 1, 7, 14, 15] {
                    let y = m.perturb_input(seed, s, 0, x, 4);
                    assert!(y <= 15);
                }
            }
        }
    }

    #[test]
    fn droop_is_bounded_and_per_trial() {
        let m = VariationModel::printed_egfet();
        let mut distinct = std::collections::BTreeSet::new();
        for trial in 0..16 {
            let d = m.droop(trial_seed(5, trial));
            assert!((0.0..=m.supply_droop).contains(&d));
            distinct.insert(d.to_bits());
        }
        assert!(distinct.len() > 8, "droop must vary across trials");
    }

    #[test]
    fn gaussian_draws_have_sane_moments() {
        let m = VariationModel {
            threshold_sigma: 1.0 / 16.0, // offset σ = 1 LSB at 4 bits
            ..VariationModel::nominal()
        };
        let n = 4000usize;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let offset = m.device_draw(trial_seed(11, i), 0, 0, 4).offset as f64;
            sum += offset;
            sumsq += offset * offset;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "mean {mean}");
        // Rounded unit Gaussian: variance ≈ 1.08 (rounding adds 1/12).
        assert!((0.8..1.4).contains(&var), "variance {var}");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(VariationModel::printed_egfet().validate().is_ok());
        let bad_sigma = VariationModel {
            threshold_sigma: -0.1,
            ..VariationModel::nominal()
        };
        assert!(bad_sigma.validate().is_err());
        let bad_droop = VariationModel {
            supply_droop: 1.0,
            ..VariationModel::nominal()
        };
        assert!(bad_droop.validate().is_err());
        let nan = VariationModel {
            mobility_sigma: f64::NAN,
            ..VariationModel::nominal()
        };
        assert!(nan.validate().is_err());
        assert!(VariationConfig::new(VariationModel::nominal(), 0)
            .validate()
            .is_err());
        assert!(VariationConfig::new(VariationModel::nominal(), 1)
            .validate()
            .is_ok());
    }

    #[test]
    fn statistics_cover_the_edge_cases() {
        // M = 1: both statistics are the single value.
        assert_eq!(RobustStat::WorstCase.statistic(&[0.25]), 0.25);
        assert_eq!(RobustStat::P95.statistic(&[0.25]), 0.25);
        // Ties and all-equal trials.
        assert_eq!(RobustStat::WorstCase.statistic(&[0.5, 0.5, 0.5]), 0.5);
        assert_eq!(RobustStat::P95.statistic(&[0.5, 0.5, 0.5]), 0.5);
        // Worst case is the minimum regardless of order.
        assert_eq!(RobustStat::WorstCase.statistic(&[0.9, 0.1, 0.5]), 0.1);
        // Inclusive nearest-rank boundary: at M = 20 the rank-1 trial
        // (the minimum) is the p95 value; at M = 21 it is the second
        // smallest.
        let mut twenty: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        assert_eq!(RobustStat::P95.statistic(&twenty), 0.0);
        twenty.push(1.0); // M = 21, minimum unchanged
        assert_eq!(RobustStat::P95.statistic(&twenty), 1.0 / 20.0);
    }

    #[test]
    fn config_round_trips_through_serde() {
        let config = VariationConfig::new(VariationModel::printed_egfet(), 12)
            .with_statistic(RobustStat::P95);
        let json = serde_json::to_string(&config).expect("serialize");
        let back: VariationConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, config);
    }
}
