//! Hardware evaluation reports.

use serde::{Deserialize, Serialize};

use crate::tech::{CellCounts, TechLibrary};
use crate::vdd::VddModel;

/// Area/power/timing evaluation of one bespoke MLP circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareReport {
    /// Design name.
    pub name: String,
    /// Supply voltage the report is evaluated at, in volts.
    pub vdd: f64,
    /// Total area in cm² (area is voltage-independent).
    pub area_cm2: f64,
    /// Total power in mW at `vdd`.
    pub power_mw: f64,
    /// Critical-path delay in milliseconds at `vdd`.
    pub delay_ms: f64,
    /// Primitive cell content (including macro gate content).
    pub cells: CellCounts,
    /// Critical path length in full-adder-delay units at nominal supply.
    pub critical_fa_depth: u32,
}

impl HardwareReport {
    /// Build a report at the technology's nominal supply.
    #[must_use]
    pub fn at_nominal(
        name: impl Into<String>,
        tech: &TechLibrary,
        cells: CellCounts,
        critical_fa_depth: u32,
    ) -> Self {
        Self {
            name: name.into(),
            vdd: tech.nominal_vdd,
            area_cm2: tech.area_cm2(&cells),
            power_mw: tech.power_mw(&cells),
            delay_ms: f64::from(critical_fa_depth) * tech.fa_delay_ms,
            cells,
            critical_fa_depth,
        }
    }

    /// Re-evaluate this report at a different supply voltage.
    ///
    /// Area is unchanged; power and delay scale per the [`VddModel`].
    /// Rescaling to the report's current voltage is an exact no-op
    /// (bit-identical), so chains of `at_vdd` hops are idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is below the model's minimum operating voltage.
    #[must_use]
    pub fn at_vdd(&self, model: &VddModel, vdd: f64) -> Self {
        if vdd == self.vdd {
            return self.clone();
        }
        let power = self.power_mw / model.power_scale(self.vdd) * model.power_scale(vdd);
        let delay = self.delay_ms / model.delay_scale(self.vdd) * model.delay_scale(vdd);
        Self {
            name: self.name.clone(),
            vdd,
            area_cm2: self.area_cm2,
            power_mw: power,
            delay_ms: delay,
            cells: self.cells,
            critical_fa_depth: self.critical_fa_depth,
        }
    }

    /// Whether the circuit meets a clock period (in ms) at its report
    /// voltage.
    #[must_use]
    pub fn meets_period(&self, period_ms: f64) -> bool {
        self.delay_ms <= period_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Cell;

    #[test]
    fn nominal_report_rolls_up_costs() {
        let tech = TechLibrary::egfet();
        let mut cells = CellCounts::new();
        cells.add(Cell::Fa, 100);
        let r = HardwareReport::at_nominal("toy", &tech, cells, 10);
        assert!(r.area_cm2 > 0.0);
        assert!(r.power_mw > 0.0);
        assert!((r.delay_ms - 40.0).abs() < 1e-9);
        assert!(r.meets_period(200.0));
        assert!(!r.meets_period(39.0));
    }

    #[test]
    fn vdd_rescale_preserves_area() {
        let tech = TechLibrary::egfet();
        let mut cells = CellCounts::new();
        cells.add(Cell::Fa, 50);
        let r = HardwareReport::at_nominal("toy", &tech, cells, 5);
        let low = r.at_vdd(&VddModel::egfet(), 0.6);
        assert!((low.area_cm2 - r.area_cm2).abs() < 1e-12);
        assert!(low.power_mw < r.power_mw);
        assert!(low.delay_ms > r.delay_ms);
        assert_eq!(low.vdd, 0.6);
    }

    #[test]
    fn vdd_rescale_chains_associatively_and_idempotently() {
        // `at_vdd` always rescales *from the stored report's vdd*, so
        // hopping through an intermediate voltage must land on the same
        // operating point as going there directly, and re-requesting
        // the current voltage must be a fixed point. (Each hop divides
        // and re-multiplies by a power-law scale, so equality is exact
        // up to float round-off — pinned here to a tight relative
        // tolerance.)
        let tech = TechLibrary::egfet();
        let model = VddModel::egfet();
        let mut cells = CellCounts::new();
        cells.add(Cell::Fa, 123);
        cells.add(Cell::Not, 17);
        let nominal = HardwareReport::at_nominal("toy", &tech, cells, 9);

        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
        for (a, b) in [(0.8, 0.6), (0.6, 0.9), (0.7, 0.7), (1.0, 0.6), (0.6, 1.0)] {
            let chained = nominal.at_vdd(&model, a).at_vdd(&model, b);
            let direct = nominal.at_vdd(&model, b);
            assert_eq!(chained.vdd, direct.vdd);
            assert!(close(chained.power_mw, direct.power_mw), "{a}->{b}");
            assert!(close(chained.delay_ms, direct.delay_ms), "{a}->{b}");
            assert_eq!(chained.area_cm2, direct.area_cm2, "area never rescales");
            assert_eq!(chained.cells, direct.cells);
        }
        // Idempotence at the stored voltage: an exact fixed point
        // (scale ratio is exactly 1.0, and x / 1.0 * 1.0 == x).
        let low = nominal.at_vdd(&model, 0.6);
        assert_eq!(low.at_vdd(&model, 0.6), low);
        assert_eq!(nominal.at_vdd(&model, 1.0), nominal);
    }
}
