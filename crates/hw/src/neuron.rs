//! Elaboration of bespoke neurons into gate netlists.
//!
//! Both neuron flavours reduce to the same primitive: a multi-operand
//! accumulation of [`Summand`]s, each bound to the bit nets of one input
//! activation. Approximate neurons contribute one summand per non-zero
//! mask (paper Fig. 1: multiplication is wiring); exact baseline neurons
//! contribute one summand per non-zero CSD digit of each coefficient
//! (the standard bespoke constant-multiplier decomposition).

use std::collections::VecDeque;

use pe_arith::{ColumnProfile, CsdDigit, NeuronArithSpec, ReductionKind, Summand};

use crate::adder_tree::TreeBuilder;
use crate::netlist::{NetId, Netlist};
use crate::spec::{ExactNeuronSpec, NeuronSpec};

/// A summand together with the nets of the input signal it draws from.
#[derive(Debug, Clone)]
pub struct BoundSummand {
    /// Structural description (mask, shift, sign or constant).
    pub summand: Summand,
    /// Bit nets of the input activation, LSB first. Empty for constants.
    pub input_nets: Vec<NetId>,
}

/// Result of elaborating one neuron's accumulation.
#[derive(Debug, Clone)]
pub struct NeuronAccumulation {
    /// Two's-complement sum bits of the accumulator, LSB first
    /// (`accumulator_bits` wide).
    pub sum_bits: Vec<NetId>,
    /// Accumulator width used for sign folding.
    pub accumulator_bits: u32,
    /// Compressor stages of the adder tree (timing model input).
    pub stages: u32,
}

/// Lower an approximate neuron spec to bound summands.
///
/// `inputs[i]` must hold the bit nets of activation `i`.
///
/// # Panics
///
/// Panics if `inputs` does not provide one bit-vector per weight, or a
/// bit-vector narrower than the spec's `input_bits`.
#[must_use]
pub fn bind_approximate(spec: &NeuronArithSpec, inputs: &[Vec<NetId>]) -> Vec<BoundSummand> {
    assert_eq!(
        inputs.len(),
        spec.weights.len(),
        "one input per weight required"
    );
    let mut out = Vec::new();
    for (w, nets) in spec.weights.iter().zip(inputs) {
        if w.mask == 0 {
            continue;
        }
        assert!(
            nets.len() >= spec.input_bits as usize,
            "input provides {} bits, spec needs {}",
            nets.len(),
            spec.input_bits
        );
        out.push(BoundSummand {
            summand: Summand::MaskedInput {
                input_bits: spec.input_bits,
                mask: w.mask,
                shift: w.shift,
                negative: w.negative,
            },
            input_nets: nets.clone(),
        });
    }
    if spec.bias != 0 {
        out.push(BoundSummand {
            summand: Summand::Constant(spec.bias),
            input_nets: vec![],
        });
    }
    out
}

/// Lower an exact baseline neuron to bound summands.
///
/// Each non-zero coefficient `w` becomes one shifted partial product
/// per set bit of `|w|` (all added for positive weights, all subtracted
/// for negative ones) — the binary shift-add structure a synthesis tool
/// derives from a hard-wired `a * W` multiplier. (Optimal CSD recoding,
/// available in [`pe_arith::csd`], would use fewer terms; commercial
/// flows do not reliably reach it, and the paper's Table I baseline
/// costs are consistent with the plain binary decomposition.)
///
/// # Panics
///
/// Panics if `inputs` does not provide one bit-vector per weight.
#[must_use]
pub fn bind_exact(spec: &ExactNeuronSpec, inputs: &[Vec<NetId>]) -> Vec<BoundSummand> {
    assert_eq!(
        inputs.len(),
        spec.weights.len(),
        "one input per weight required"
    );
    let mut out = Vec::new();
    for (&w, nets) in spec.weights.iter().zip(inputs) {
        for summand in exact_weight_summands(spec, w) {
            out.push(BoundSummand {
                summand,
                input_nets: nets.clone(),
            });
        }
    }
    if let Some(summand) = exact_bias_summand(spec) {
        out.push(BoundSummand {
            summand,
            input_nets: vec![],
        });
    }
    out
}

/// The partial-product summands of one exact weight `w` (empty for
/// zero weights). The single lowering shared by the netlist binder
/// ([`bind_exact`]) and the analytic cost model
/// ([`neuron_summands`]), so the two can never disagree about a
/// weight's decomposition.
fn exact_weight_summands(spec: &ExactNeuronSpec, w: i64) -> Vec<Summand> {
    if w == 0 {
        return Vec::new();
    }
    let full_mask = (1u64 << spec.input_bits) - 1;
    let digits = if spec.csd_multipliers {
        pe_arith::csd_digits(w)
    } else {
        binary_digits(w)
    };
    let mut out = Vec::new();
    for (p, digit) in digits {
        // Accumulation truncation (TC'23 style): partial-product
        // bits landing below `trunc_bits` are hard-wired out.
        let mask = if spec.trunc_bits > p {
            full_mask & !((1u64 << (spec.trunc_bits - p).min(63)) - 1)
        } else {
            full_mask
        };
        if mask == 0 {
            continue;
        }
        out.push(Summand::MaskedInput {
            input_bits: spec.input_bits,
            mask,
            shift: p,
            negative: digit == CsdDigit::MinusOne,
        });
    }
    out
}

/// The bias constant of an exact neuron, if any survives truncation.
fn exact_bias_summand(spec: &ExactNeuronSpec) -> Option<Summand> {
    if spec.bias == 0 {
        return None;
    }
    // The bias keeps its bits above the truncation line.
    let bias = if spec.trunc_bits > 0 {
        (spec.bias >> spec.trunc_bits) << spec.trunc_bits
    } else {
        spec.bias
    };
    (bias != 0).then_some(Summand::Constant(bias))
}

/// The full summand list of a neuron's accumulation, without binding
/// to nets — exactly the summands [`bind_exact`] / [`bind_approximate`]
/// would bind, in the same order. This is what the analytic
/// [`FastCostModel`](crate::cost::FastCostModel) costs, so fast and
/// exact models lower every neuron identically by construction.
#[must_use]
pub fn neuron_summands(neuron: &NeuronSpec) -> Vec<Summand> {
    match neuron {
        NeuronSpec::Approximate(a) => a.summands(),
        NeuronSpec::Exact(e) => {
            let mut out: Vec<Summand> = e
                .weights
                .iter()
                .flat_map(|&w| exact_weight_summands(e, w))
                .collect();
            out.extend(exact_bias_summand(e));
            out
        }
    }
}

/// Binary digit positions of `w`: one `(position, sign)` pair per set
/// bit of `|w|`, all carrying `w`'s sign.
fn binary_digits(w: i64) -> Vec<(u32, CsdDigit)> {
    let digit = if w < 0 {
        CsdDigit::MinusOne
    } else {
        CsdDigit::PlusOne
    };
    let mag = w.unsigned_abs();
    (0..63)
        .filter(|b| mag >> b & 1 == 1)
        .map(|b| (b, digit))
        .collect()
}

/// Elaborate a bound accumulation into the netlist.
///
/// Implements exactly the structure the paper describes: variable bits
/// are placed in their columns (inverted through NOT gates for
/// subtracted summands), every two's-complement correction and the bias
/// are folded into a single constant whose set bits enter the tree as
/// tie-high cells, and a [`TreeBuilder`] compresses the columns.
///
/// # Panics
///
/// Panics on malformed summands (these are validated upstream).
#[must_use]
pub fn elaborate_accumulation(
    netlist: &mut Netlist,
    bound: &[BoundSummand],
    kind: ReductionKind,
) -> NeuronAccumulation {
    let summands: Vec<Summand> = bound.iter().map(|b| b.summand.clone()).collect();
    let acc_bits = ColumnProfile::accumulator_width(&summands);
    let modulus_mask = (1u64 << acc_bits) - 1;

    let mut columns: Vec<VecDeque<NetId>> = vec![VecDeque::new(); acc_bits as usize];
    let mut folded_constant: u64 = 0;

    for b in bound {
        match &b.summand {
            Summand::MaskedInput {
                mask,
                shift,
                negative,
                ..
            } => {
                for bit in 0..64u32 {
                    if mask >> bit & 1 == 0 {
                        continue;
                    }
                    let col = (bit + shift) as usize;
                    let src = b.input_nets[bit as usize];
                    let net = if *negative {
                        netlist.inverter(src)
                    } else {
                        src
                    };
                    columns[col].push_back(net);
                }
                if let Some(k) = b
                    .summand
                    .negation_constant(acc_bits)
                    .expect("validated summand")
                {
                    folded_constant = folded_constant.wrapping_add(k) & modulus_mask;
                }
            }
            Summand::Constant(c) => {
                let pattern = pe_arith::fixed::to_twos_complement(*c, acc_bits)
                    .expect("bias fits accumulator");
                folded_constant = folded_constant.wrapping_add(pattern) & modulus_mask;
            }
        }
    }

    for bit in 0..acc_bits {
        if folded_constant >> bit & 1 == 1 {
            let one = netlist.const_one();
            columns[bit as usize].push_back(one);
        }
    }

    let tree = TreeBuilder::new(kind).reduce(netlist, columns);
    let mut sum_bits = tree.sum_bits;
    // The accumulation is exact modulo 2^acc_bits: higher bits produced
    // by the final carry are discarded (they cancel against the folded
    // negation constants).
    sum_bits.truncate(acc_bits as usize);
    while sum_bits.len() < acc_bits as usize {
        let zero = netlist.const_zero();
        sum_bits.push(zero);
    }

    NeuronAccumulation {
        sum_bits,
        accumulator_bits: acc_bits,
        stages: tree.stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Cell;
    use pe_arith::{AdderAreaEstimator, WeightArith};

    fn fresh_inputs(netlist: &mut Netlist, n: usize, bits: u32) -> Vec<Vec<NetId>> {
        (0..n).map(|_| netlist.nets(bits as usize)).collect()
    }

    #[test]
    fn approximate_neuron_matches_estimator_fa_count() {
        // The load-bearing invariant: elaborated FA count == estimator
        // FA count for the paper's FA-only policy (tie-high constant
        // bits included on both sides).
        let specs = [
            NeuronArithSpec {
                input_bits: 4,
                weights: vec![
                    WeightArith {
                        mask: 0b1111,
                        shift: 0,
                        negative: false,
                    },
                    WeightArith {
                        mask: 0b1010,
                        shift: 2,
                        negative: true,
                    },
                    WeightArith {
                        mask: 0b0111,
                        shift: 1,
                        negative: false,
                    },
                    WeightArith {
                        mask: 0,
                        shift: 3,
                        negative: true,
                    },
                ],
                bias: 11,
            },
            NeuronArithSpec {
                input_bits: 8,
                weights: vec![
                    WeightArith {
                        mask: 0xA5,
                        shift: 1,
                        negative: true
                    };
                    6
                ],
                bias: -33,
            },
        ];
        for spec in &specs {
            let mut netlist = Netlist::new();
            let inputs = fresh_inputs(&mut netlist, spec.weights.len(), spec.input_bits);
            let bound = bind_approximate(spec, &inputs);
            let acc = elaborate_accumulation(&mut netlist, &bound, ReductionKind::FaOnly);
            let report = AdderAreaEstimator::paper().estimate(spec);
            assert_eq!(netlist.cell_counts().get(Cell::Fa), report.full_adders);
            assert_eq!(netlist.cell_counts().get(Cell::Not), report.not_gates);
            assert_eq!(acc.accumulator_bits, report.accumulator_bits);
        }
    }

    #[test]
    fn zero_mask_inputs_cost_nothing() {
        let spec = NeuronArithSpec {
            input_bits: 4,
            weights: vec![
                WeightArith {
                    mask: 0,
                    shift: 0,
                    negative: false
                };
                5
            ],
            bias: 0,
        };
        let mut netlist = Netlist::new();
        let inputs = fresh_inputs(&mut netlist, 5, 4);
        let bound = bind_approximate(&spec, &inputs);
        assert!(bound.is_empty());
    }

    #[test]
    fn exact_neuron_uses_binary_partial_products() {
        // weight 7 = 0b111: three positive partial products; weight -5
        // = -(0b101): two negative ones.
        let spec = ExactNeuronSpec {
            input_bits: 4,
            weights: vec![7, -5],
            bias: 0,
            trunc_bits: 0,
            csd_multipliers: false,
        };
        let mut netlist = Netlist::new();
        let inputs = fresh_inputs(&mut netlist, 2, 4);
        let bound = bind_exact(&spec, &inputs);
        assert_eq!(bound.len(), 5);
        assert_eq!(bound.iter().filter(|b| b.summand.is_negative()).count(), 2);
    }

    #[test]
    fn exact_neuron_costs_more_than_pow2_neuron() {
        // The whole point of pow2 quantization: a multi-digit constant
        // multiplier costs strictly more adders than a single shift.
        let exact = ExactNeuronSpec {
            input_bits: 4,
            weights: vec![93, -57, 77],
            bias: 5,
            trunc_bits: 0,
            csd_multipliers: false,
        };
        let approx = NeuronArithSpec {
            input_bits: 4,
            weights: vec![
                WeightArith {
                    mask: 0b1111,
                    shift: 6,
                    negative: false,
                },
                WeightArith {
                    mask: 0b1111,
                    shift: 6,
                    negative: true,
                },
                WeightArith {
                    mask: 0b1111,
                    shift: 6,
                    negative: false,
                },
            ],
            bias: 5,
        };
        let mut nl_exact = Netlist::new();
        let in_e = fresh_inputs(&mut nl_exact, 3, 4);
        let b_e = bind_exact(&exact, &in_e);
        let _ = elaborate_accumulation(&mut nl_exact, &b_e, ReductionKind::FaOnly);

        let mut nl_approx = Netlist::new();
        let in_a = fresh_inputs(&mut nl_approx, 3, 4);
        let b_a = bind_approximate(&approx, &in_a);
        let _ = elaborate_accumulation(&mut nl_approx, &b_a, ReductionKind::FaOnly);

        assert!(
            nl_exact.cell_counts().get(Cell::Fa) > nl_approx.cell_counts().get(Cell::Fa),
            "exact {} vs approx {}",
            nl_exact.cell_counts().get(Cell::Fa),
            nl_approx.cell_counts().get(Cell::Fa)
        );
    }

    #[test]
    fn sum_width_equals_accumulator_width() {
        let spec = NeuronArithSpec {
            input_bits: 4,
            weights: vec![
                WeightArith {
                    mask: 0b1111,
                    shift: 0,
                    negative: false
                };
                3
            ],
            bias: -2,
        };
        let mut netlist = Netlist::new();
        let inputs = fresh_inputs(&mut netlist, 3, 4);
        let bound = bind_approximate(&spec, &inputs);
        let acc = elaborate_accumulation(&mut netlist, &bound, ReductionKind::FaOnly);
        assert_eq!(acc.sum_bits.len() as u32, acc.accumulator_bits);
    }
}
