//! EGFET printed-technology cell library and cost model.
//!
//! The paper synthesizes its bespoke MLPs with Synopsys Design Compiler
//! against the printed EGFET library of Bleier et al. (ISCA'20) and
//! measures power with PrimeTime. We replace that proprietary flow with
//! an analytical cell-cost model: every netlist cell has an area and a
//! power figure (at the nominal 1 V supply), expressed through
//! *gate equivalents* (GE, 1 GE = one NAND2) times per-GE constants
//! calibrated once against the paper's Table I baselines — and never
//! retuned afterwards, so all reported reduction factors are genuine
//! model outputs.

use pe_arith::NeuronGateCounts;
use serde::{Deserialize, Serialize};

/// Primitive cells available in the printed EGFET library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Cell {
    /// Full adder (3:2 compressor).
    Fa,
    /// Half adder (2:2 compressor).
    Ha,
    /// Inverter.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer.
    Mux2,
    /// Constant logic-1 tie cell.
    TieHi,
    /// Constant logic-0 tie cell.
    TieLo,
    /// D flip-flop (input/output registers).
    Dff,
}

impl Cell {
    /// All cell kinds, for iteration in reports.
    pub const ALL: [Cell; 10] = [
        Cell::Fa,
        Cell::Ha,
        Cell::Not,
        Cell::And2,
        Cell::Or2,
        Cell::Xor2,
        Cell::Mux2,
        Cell::TieHi,
        Cell::TieLo,
        Cell::Dff,
    ];

    /// Human-readable library name of the cell.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Cell::Fa => "FA",
            Cell::Ha => "HA",
            Cell::Not => "NOT",
            Cell::And2 => "AND2",
            Cell::Or2 => "OR2",
            Cell::Xor2 => "XOR2",
            Cell::Mux2 => "MUX2",
            Cell::TieHi => "TIEHI",
            Cell::TieLo => "TIELO",
            Cell::Dff => "DFF",
        }
    }
}

/// Per-cell-kind instance counts; the currency of area/power roll-ups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCounts {
    /// Full adders.
    pub fa: u32,
    /// Half adders.
    pub ha: u32,
    /// Inverters.
    pub not: u32,
    /// 2-input ANDs.
    pub and2: u32,
    /// 2-input ORs.
    pub or2: u32,
    /// 2-input XORs.
    pub xor2: u32,
    /// 2:1 muxes.
    pub mux2: u32,
    /// Constant-1 ties.
    pub tie_hi: u32,
    /// Constant-0 ties.
    pub tie_lo: u32,
    /// Flip-flops.
    pub dff: u32,
}

impl CellCounts {
    /// Empty counts.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Count of a given cell kind.
    #[must_use]
    pub fn get(&self, cell: Cell) -> u32 {
        match cell {
            Cell::Fa => self.fa,
            Cell::Ha => self.ha,
            Cell::Not => self.not,
            Cell::And2 => self.and2,
            Cell::Or2 => self.or2,
            Cell::Xor2 => self.xor2,
            Cell::Mux2 => self.mux2,
            Cell::TieHi => self.tie_hi,
            Cell::TieLo => self.tie_lo,
            Cell::Dff => self.dff,
        }
    }

    /// Add `n` instances of `cell`.
    pub fn add(&mut self, cell: Cell, n: u32) {
        let slot = match cell {
            Cell::Fa => &mut self.fa,
            Cell::Ha => &mut self.ha,
            Cell::Not => &mut self.not,
            Cell::And2 => &mut self.and2,
            Cell::Or2 => &mut self.or2,
            Cell::Xor2 => &mut self.xor2,
            Cell::Mux2 => &mut self.mux2,
            Cell::TieHi => &mut self.tie_hi,
            Cell::TieLo => &mut self.tie_lo,
            Cell::Dff => &mut self.dff,
        };
        *slot += n;
    }

    /// Merge another set of counts into this one.
    pub fn merge(&mut self, other: &CellCounts) {
        for cell in Cell::ALL {
            self.add(cell, other.get(cell));
        }
    }

    /// Total number of cell instances.
    #[must_use]
    pub fn total(&self) -> u32 {
        Cell::ALL.iter().map(|&c| self.get(c)).sum()
    }
}

/// The **one** conversion point between `pe-arith`'s adder-tree
/// gate-count summary and `pe-hw`'s cell-count currency: full adders,
/// half adders and sign-inversion NOTs map to their library cells; a
/// neuron's adder tree instantiates nothing else. Every consumer that
/// needs a [`NeuronGateCounts`] as cells must come through here (the
/// round-trip is pinned by test), so the two crates' gate-count types
/// cannot drift apart.
impl From<&NeuronGateCounts> for CellCounts {
    fn from(g: &NeuronGateCounts) -> Self {
        let mut counts = CellCounts::new();
        counts.add(Cell::Fa, g.full_adders);
        counts.add(Cell::Ha, g.half_adders);
        counts.add(Cell::Not, g.not_gates);
        counts
    }
}

/// A printed technology library: per-cell costs and electrical limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechLibrary {
    /// Library name (e.g. `"egfet-1v"`).
    pub name: String,
    /// Area of one gate equivalent in cm².
    pub area_per_ge_cm2: f64,
    /// Power of one gate equivalent in mW at the nominal supply.
    pub power_per_ge_mw: f64,
    /// Propagation delay of one full adder in milliseconds at nominal
    /// supply (printed EGFET logic switches in the millisecond range —
    /// circuits run at a few Hz, paper §I).
    pub fa_delay_ms: f64,
    /// Nominal supply voltage in volts.
    pub nominal_vdd: f64,
    /// Minimum operational supply voltage in volts (EGFET circuits work
    /// down to 0.6 V, paper §V-C).
    pub min_vdd: f64,
}

impl TechLibrary {
    /// The calibrated printed EGFET library used throughout the
    /// reproduction.
    ///
    /// Calibration (done once, against Table I of the paper):
    /// gate-equivalent weights follow standard static-CMOS transistor
    /// counts; the per-GE area/power constants are chosen so the five
    /// exact bespoke baseline MLPs land in the neighbourhood of the
    /// paper's reported 12–67 cm² and 40–213 mW.
    #[must_use]
    pub fn egfet() -> Self {
        Self {
            name: "egfet-1v".to_owned(),
            area_per_ge_cm2: 3.05e-3,
            power_per_ge_mw: 1.12e-2,
            fa_delay_ms: 4.0,
            nominal_vdd: 1.0,
            min_vdd: 0.6,
        }
    }

    /// A hypothetical low-power EGFET process corner: thicker gate
    /// dielectric and longer channels trade area and speed for a much
    /// better power figure. Cells are ~40% larger and ~75% slower but
    /// burn ~60% less power per gate equivalent — the corner a
    /// battery-constrained deployment would pick. GE weights are
    /// identical (the logic family is unchanged), so designs keep their
    /// relative ordering and only the absolute cost surface moves.
    #[must_use]
    pub fn egfet_lowpower() -> Self {
        Self {
            name: "egfet-lp".to_owned(),
            area_per_ge_cm2: 4.27e-3,
            power_per_ge_mw: 4.48e-3,
            fa_delay_ms: 7.0,
            nominal_vdd: 1.0,
            min_vdd: 0.6,
        }
    }

    /// All built-in technology libraries, default first.
    #[must_use]
    pub fn builtin() -> Vec<Self> {
        vec![Self::egfet(), Self::egfet_lowpower()]
    }

    /// Look a built-in library up by its `name` (e.g. from a config
    /// file or a sweep specification).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        Self::builtin().into_iter().find(|t| t.name == name)
    }

    /// Gate-equivalent weight of a cell (NAND2 = 1 GE).
    #[must_use]
    pub fn ge(&self, cell: Cell) -> f64 {
        match cell {
            Cell::Fa => 9.0,
            Cell::Ha => 5.0,
            Cell::Not => 0.67,
            Cell::And2 => 1.33,
            Cell::Or2 => 1.33,
            Cell::Xor2 => 3.0,
            Cell::Mux2 => 3.0,
            Cell::TieHi | Cell::TieLo => 0.33,
            Cell::Dff => 6.0,
        }
    }

    /// Area of one instance of `cell` in cm².
    #[must_use]
    pub fn cell_area_cm2(&self, cell: Cell) -> f64 {
        self.ge(cell) * self.area_per_ge_cm2
    }

    /// Power of one instance of `cell` in mW at the nominal supply.
    #[must_use]
    pub fn cell_power_mw(&self, cell: Cell) -> f64 {
        self.ge(cell) * self.power_per_ge_mw
    }

    /// Total area in cm² of a set of cell counts.
    #[must_use]
    pub fn area_cm2(&self, counts: &CellCounts) -> f64 {
        Cell::ALL
            .iter()
            .map(|&c| f64::from(counts.get(c)) * self.cell_area_cm2(c))
            .sum()
    }

    /// Total power in mW (at nominal supply) of a set of cell counts.
    #[must_use]
    pub fn power_mw(&self, counts: &CellCounts) -> f64 {
        Cell::ALL
            .iter()
            .map(|&c| f64::from(counts.get(c)) * self.cell_power_mw(c))
            .sum()
    }

    /// Total gate equivalents of a set of cell counts (the
    /// technology-independent area/power currency; identical across the
    /// built-in libraries, which differ only in their per-GE constants).
    #[must_use]
    pub fn ge_total(&self, counts: &CellCounts) -> f64 {
        Cell::ALL
            .iter()
            .map(|&c| f64::from(counts.get(c)) * self.ge(c))
            .sum()
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        Self::egfet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_and_merge() {
        let mut a = CellCounts::new();
        a.add(Cell::Fa, 3);
        a.add(Cell::Not, 2);
        let mut b = CellCounts::new();
        b.add(Cell::Fa, 1);
        b.add(Cell::Mux2, 4);
        a.merge(&b);
        assert_eq!(a.get(Cell::Fa), 4);
        assert_eq!(a.get(Cell::Not), 2);
        assert_eq!(a.get(Cell::Mux2), 4);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn fa_dominates_cost_as_in_printed_designs() {
        let lib = TechLibrary::egfet();
        assert!(lib.cell_area_cm2(Cell::Fa) > lib.cell_area_cm2(Cell::Ha));
        assert!(lib.cell_area_cm2(Cell::Ha) > lib.cell_area_cm2(Cell::Not));
        assert!(lib.cell_power_mw(Cell::Fa) > 4.0 * lib.cell_power_mw(Cell::Not));
    }

    #[test]
    fn area_power_roll_up_is_linear() {
        let lib = TechLibrary::egfet();
        let mut one = CellCounts::new();
        one.add(Cell::Fa, 1);
        let mut ten = CellCounts::new();
        ten.add(Cell::Fa, 10);
        assert!((lib.area_cm2(&ten) - 10.0 * lib.area_cm2(&one)).abs() < 1e-12);
        assert!((lib.power_mw(&ten) - 10.0 * lib.power_mw(&one)).abs() < 1e-12);
    }

    #[test]
    fn neuron_gate_counts_convert_through_one_point() {
        // Round-trip: the adder-tree summary maps onto exactly the
        // three cell kinds a tree instantiates, and maps back losslessly.
        let g = NeuronGateCounts {
            full_adders: 7,
            half_adders: 3,
            not_gates: 11,
            stages: 2,
            accumulator_bits: 9,
        };
        let cells = CellCounts::from(&g);
        assert_eq!(cells.get(Cell::Fa), g.full_adders);
        assert_eq!(cells.get(Cell::Ha), g.half_adders);
        assert_eq!(cells.get(Cell::Not), g.not_gates);
        // Nothing else is charged: the conversion is exactly FA+HA+NOT.
        assert_eq!(cells.total(), g.full_adders + g.half_adders + g.not_gates);
        // GE roll-up through the conversion equals the hand formula the
        // GA objective historically used — the drift this conversion
        // point exists to prevent.
        let tech = TechLibrary::egfet();
        let by_hand = f64::from(g.full_adders) * tech.ge(Cell::Fa)
            + f64::from(g.half_adders) * tech.ge(Cell::Ha)
            + f64::from(g.not_gates) * tech.ge(Cell::Not);
        assert!((tech.ge_total(&cells) - by_hand).abs() < 1e-12);
    }

    #[test]
    fn builtin_libraries_are_named_and_distinct() {
        let libs = TechLibrary::builtin();
        assert_eq!(libs[0].name, "egfet-1v");
        assert_eq!(TechLibrary::by_name("egfet-lp"), Some(libs[1].clone()));
        assert_eq!(TechLibrary::by_name("no-such-tech"), None);
        // The low-power corner trades area and delay for power.
        let (hp, lp) = (TechLibrary::egfet(), TechLibrary::egfet_lowpower());
        assert!(lp.area_per_ge_cm2 > hp.area_per_ge_cm2);
        assert!(lp.power_per_ge_mw < hp.power_per_ge_mw);
        assert!(lp.fa_delay_ms > hp.fa_delay_ms);
        // Same logic family: GE weights are identical, so rankings hold.
        for cell in Cell::ALL {
            assert!((hp.ge(cell) - lp.ge(cell)).abs() < 1e-12);
        }
    }

    #[test]
    fn egfet_magnitudes_are_printed_scale() {
        // One FA in printed EGFET occupies ~0.015 cm² and burns ~50 µW:
        // three orders of magnitude above silicon, as the paper stresses.
        let lib = TechLibrary::egfet();
        let fa_area = lib.cell_area_cm2(Cell::Fa);
        let fa_power = lib.cell_power_mw(Cell::Fa);
        assert!((0.005..0.05).contains(&fa_area), "{fa_area}");
        assert!((0.01..0.2).contains(&fa_power), "{fa_power}");
        assert!(lib.min_vdd < lib.nominal_vdd);
    }
}
