//! EGFET printed-technology cell library and cost model.
//!
//! The paper synthesizes its bespoke MLPs with Synopsys Design Compiler
//! against the printed EGFET library of Bleier et al. (ISCA'20) and
//! measures power with PrimeTime. We replace that proprietary flow with
//! an analytical cell-cost model: every netlist cell has an area and a
//! power figure (at the nominal 1 V supply), expressed through
//! *gate equivalents* (GE, 1 GE = one NAND2) times per-GE constants
//! calibrated once against the paper's Table I baselines — and never
//! retuned afterwards, so all reported reduction factors are genuine
//! model outputs.

use serde::{Deserialize, Serialize};

/// Primitive cells available in the printed EGFET library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Cell {
    /// Full adder (3:2 compressor).
    Fa,
    /// Half adder (2:2 compressor).
    Ha,
    /// Inverter.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer.
    Mux2,
    /// Constant logic-1 tie cell.
    TieHi,
    /// Constant logic-0 tie cell.
    TieLo,
    /// D flip-flop (input/output registers).
    Dff,
}

impl Cell {
    /// All cell kinds, for iteration in reports.
    pub const ALL: [Cell; 10] = [
        Cell::Fa,
        Cell::Ha,
        Cell::Not,
        Cell::And2,
        Cell::Or2,
        Cell::Xor2,
        Cell::Mux2,
        Cell::TieHi,
        Cell::TieLo,
        Cell::Dff,
    ];

    /// Human-readable library name of the cell.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Cell::Fa => "FA",
            Cell::Ha => "HA",
            Cell::Not => "NOT",
            Cell::And2 => "AND2",
            Cell::Or2 => "OR2",
            Cell::Xor2 => "XOR2",
            Cell::Mux2 => "MUX2",
            Cell::TieHi => "TIEHI",
            Cell::TieLo => "TIELO",
            Cell::Dff => "DFF",
        }
    }
}

/// Per-cell-kind instance counts; the currency of area/power roll-ups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCounts {
    /// Full adders.
    pub fa: u32,
    /// Half adders.
    pub ha: u32,
    /// Inverters.
    pub not: u32,
    /// 2-input ANDs.
    pub and2: u32,
    /// 2-input ORs.
    pub or2: u32,
    /// 2-input XORs.
    pub xor2: u32,
    /// 2:1 muxes.
    pub mux2: u32,
    /// Constant-1 ties.
    pub tie_hi: u32,
    /// Constant-0 ties.
    pub tie_lo: u32,
    /// Flip-flops.
    pub dff: u32,
}

impl CellCounts {
    /// Empty counts.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Count of a given cell kind.
    #[must_use]
    pub fn get(&self, cell: Cell) -> u32 {
        match cell {
            Cell::Fa => self.fa,
            Cell::Ha => self.ha,
            Cell::Not => self.not,
            Cell::And2 => self.and2,
            Cell::Or2 => self.or2,
            Cell::Xor2 => self.xor2,
            Cell::Mux2 => self.mux2,
            Cell::TieHi => self.tie_hi,
            Cell::TieLo => self.tie_lo,
            Cell::Dff => self.dff,
        }
    }

    /// Add `n` instances of `cell`.
    pub fn add(&mut self, cell: Cell, n: u32) {
        let slot = match cell {
            Cell::Fa => &mut self.fa,
            Cell::Ha => &mut self.ha,
            Cell::Not => &mut self.not,
            Cell::And2 => &mut self.and2,
            Cell::Or2 => &mut self.or2,
            Cell::Xor2 => &mut self.xor2,
            Cell::Mux2 => &mut self.mux2,
            Cell::TieHi => &mut self.tie_hi,
            Cell::TieLo => &mut self.tie_lo,
            Cell::Dff => &mut self.dff,
        };
        *slot += n;
    }

    /// Merge another set of counts into this one.
    pub fn merge(&mut self, other: &CellCounts) {
        for cell in Cell::ALL {
            self.add(cell, other.get(cell));
        }
    }

    /// Total number of cell instances.
    #[must_use]
    pub fn total(&self) -> u32 {
        Cell::ALL.iter().map(|&c| self.get(c)).sum()
    }
}

/// A printed technology library: per-cell costs and electrical limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechLibrary {
    /// Library name (e.g. `"egfet-1v"`).
    pub name: String,
    /// Area of one gate equivalent in cm².
    pub area_per_ge_cm2: f64,
    /// Power of one gate equivalent in mW at the nominal supply.
    pub power_per_ge_mw: f64,
    /// Propagation delay of one full adder in milliseconds at nominal
    /// supply (printed EGFET logic switches in the millisecond range —
    /// circuits run at a few Hz, paper §I).
    pub fa_delay_ms: f64,
    /// Nominal supply voltage in volts.
    pub nominal_vdd: f64,
    /// Minimum operational supply voltage in volts (EGFET circuits work
    /// down to 0.6 V, paper §V-C).
    pub min_vdd: f64,
}

impl TechLibrary {
    /// The calibrated printed EGFET library used throughout the
    /// reproduction.
    ///
    /// Calibration (done once, against Table I of the paper):
    /// gate-equivalent weights follow standard static-CMOS transistor
    /// counts; the per-GE area/power constants are chosen so the five
    /// exact bespoke baseline MLPs land in the neighbourhood of the
    /// paper's reported 12–67 cm² and 40–213 mW.
    #[must_use]
    pub fn egfet() -> Self {
        Self {
            name: "egfet-1v".to_owned(),
            area_per_ge_cm2: 3.05e-3,
            power_per_ge_mw: 1.12e-2,
            fa_delay_ms: 4.0,
            nominal_vdd: 1.0,
            min_vdd: 0.6,
        }
    }

    /// Gate-equivalent weight of a cell (NAND2 = 1 GE).
    #[must_use]
    pub fn ge(&self, cell: Cell) -> f64 {
        match cell {
            Cell::Fa => 9.0,
            Cell::Ha => 5.0,
            Cell::Not => 0.67,
            Cell::And2 => 1.33,
            Cell::Or2 => 1.33,
            Cell::Xor2 => 3.0,
            Cell::Mux2 => 3.0,
            Cell::TieHi | Cell::TieLo => 0.33,
            Cell::Dff => 6.0,
        }
    }

    /// Area of one instance of `cell` in cm².
    #[must_use]
    pub fn cell_area_cm2(&self, cell: Cell) -> f64 {
        self.ge(cell) * self.area_per_ge_cm2
    }

    /// Power of one instance of `cell` in mW at the nominal supply.
    #[must_use]
    pub fn cell_power_mw(&self, cell: Cell) -> f64 {
        self.ge(cell) * self.power_per_ge_mw
    }

    /// Total area in cm² of a set of cell counts.
    #[must_use]
    pub fn area_cm2(&self, counts: &CellCounts) -> f64 {
        Cell::ALL
            .iter()
            .map(|&c| f64::from(counts.get(c)) * self.cell_area_cm2(c))
            .sum()
    }

    /// Total power in mW (at nominal supply) of a set of cell counts.
    #[must_use]
    pub fn power_mw(&self, counts: &CellCounts) -> f64 {
        Cell::ALL
            .iter()
            .map(|&c| f64::from(counts.get(c)) * self.cell_power_mw(c))
            .sum()
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        Self::egfet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_and_merge() {
        let mut a = CellCounts::new();
        a.add(Cell::Fa, 3);
        a.add(Cell::Not, 2);
        let mut b = CellCounts::new();
        b.add(Cell::Fa, 1);
        b.add(Cell::Mux2, 4);
        a.merge(&b);
        assert_eq!(a.get(Cell::Fa), 4);
        assert_eq!(a.get(Cell::Not), 2);
        assert_eq!(a.get(Cell::Mux2), 4);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn fa_dominates_cost_as_in_printed_designs() {
        let lib = TechLibrary::egfet();
        assert!(lib.cell_area_cm2(Cell::Fa) > lib.cell_area_cm2(Cell::Ha));
        assert!(lib.cell_area_cm2(Cell::Ha) > lib.cell_area_cm2(Cell::Not));
        assert!(lib.cell_power_mw(Cell::Fa) > 4.0 * lib.cell_power_mw(Cell::Not));
    }

    #[test]
    fn area_power_roll_up_is_linear() {
        let lib = TechLibrary::egfet();
        let mut one = CellCounts::new();
        one.add(Cell::Fa, 1);
        let mut ten = CellCounts::new();
        ten.add(Cell::Fa, 10);
        assert!((lib.area_cm2(&ten) - 10.0 * lib.area_cm2(&one)).abs() < 1e-12);
        assert!((lib.power_mw(&ten) - 10.0 * lib.power_mw(&one)).abs() < 1e-12);
    }

    #[test]
    fn egfet_magnitudes_are_printed_scale() {
        // One FA in printed EGFET occupies ~0.015 cm² and burns ~50 µW:
        // three orders of magnitude above silicon, as the paper stresses.
        let lib = TechLibrary::egfet();
        let fa_area = lib.cell_area_cm2(Cell::Fa);
        let fa_power = lib.cell_power_mw(Cell::Fa);
        assert!((0.005..0.05).contains(&fa_area), "{fa_area}");
        assert!((0.01..0.2).contains(&fa_power), "{fa_power}");
        assert!(lib.min_vdd < lib.nominal_vdd);
    }
}
