//! Full-MLP elaboration: from [`MlpHardwareSpec`] to a netlist and a
//! costed [`HardwareReport`].
//!
//! This is the reproduction's stand-in for the paper's Synopsys DC +
//! PrimeTime flow (§V-A): it elaborates every neuron's adder tree gate
//! by gate, lumps the QReLU saturation units and the output argmax
//! comparator tree as analytically-costed macros, registers the I/O,
//! and rolls the cell content up through the [`TechLibrary`].

use std::sync::{Arc, Mutex};

use pe_arith::{BoundedCache, ReductionKind};
use serde::{Deserialize, Serialize};

use crate::netlist::{MacroBlock, NetId, Netlist};
use crate::neuron::{bind_approximate, bind_exact, elaborate_accumulation, NeuronAccumulation};
use crate::report::HardwareReport;
use crate::spec::{LayerActivation, MlpHardwareSpec, NeuronSpec};
use crate::tech::{Cell, CellCounts, TechLibrary};

/// Per-neuron elaboration statistics (for DESIGN.md-style breakdowns
/// and the ablation benches).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeuronStats {
    /// Layer index (0 = first hidden layer).
    pub layer: usize,
    /// Neuron index within the layer.
    pub neuron: usize,
    /// Full adders in this neuron's accumulation.
    pub full_adders: u32,
    /// Compressor stages.
    pub stages: u32,
    /// Accumulator width in bits.
    pub accumulator_bits: u32,
}

/// A fully elaborated bespoke MLP.
#[derive(Debug, Clone)]
pub struct ElaboratedMlp {
    /// The gate-level netlist (adder trees structural, QReLU/argmax as
    /// macros).
    pub netlist: Netlist,
    /// Cost report at the nominal supply.
    pub report: HardwareReport,
    /// Per-neuron statistics.
    pub neuron_stats: Vec<NeuronStats>,
}

/// Per-neuron cost: the neuron's gate content *without* tie cells
/// (those are shared once per full netlist), plus flags recording
/// whether the neuron needs them. Produced either by scratch-netlist
/// elaboration ([`Elaborator::cost`]) or analytically
/// ([`crate::cost::FastCostModel`]); the two are proven equal by the
/// cost-model parity property suite.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NeuronCost {
    pub(crate) counts: CellCounts,
    pub(crate) uses_tie_hi: bool,
    pub(crate) uses_tie_lo: bool,
    pub(crate) stages: u32,
    pub(crate) accumulator_bits: u32,
}

/// A costed bespoke MLP without its netlist: what
/// [`Elaborator::cost`] produces. Identical `report`/`neuron_stats` to
/// [`Elaborator::elaborate`], minus the structural netlist (use
/// `elaborate` when Verilog or simulation is needed).
#[derive(Debug, Clone)]
pub struct CostedMlp {
    /// Cost report at the nominal supply — equal to the one a full
    /// elaboration produces.
    pub report: HardwareReport,
    /// Per-neuron statistics.
    pub neuron_stats: Vec<NeuronStats>,
}

/// Per-elaborator bound on memoized neuron costs (per cache
/// generation; an entry is ~100 bytes).
const NEURON_COST_CACHE_CAPACITY: usize = 1 << 15;

/// Elaborates [`MlpHardwareSpec`]s against a technology library.
///
/// [`elaborate`](Self::elaborate) builds the full structural netlist;
/// [`cost`](Self::cost) produces the identical [`HardwareReport`]
/// without one, memoizing per-neuron gate counts keyed by the neuron's
/// spec (weight signature + bit widths) so repeated neurons across
/// sibling designs skip re-elaboration. Clones share the memo.
#[derive(Debug, Clone)]
pub struct Elaborator {
    tech: TechLibrary,
    kind: ReductionKind,
    neuron_memo: Arc<Mutex<BoundedCache<NeuronSpec, NeuronCost>>>,
}

impl Elaborator {
    /// Elaborator with the paper's FA-only reduction policy.
    #[must_use]
    pub fn new(tech: TechLibrary) -> Self {
        Self {
            tech,
            kind: ReductionKind::FaOnly,
            neuron_memo: Arc::new(Mutex::new(BoundedCache::new(NEURON_COST_CACHE_CAPACITY))),
        }
    }

    /// Override the compressor policy (for the `fa_vs_netlist` ablation).
    #[must_use]
    pub fn with_kind(mut self, kind: ReductionKind) -> Self {
        self.kind = kind;
        // The memo is keyed by neuron spec only — detach from any
        // shared cache populated under a different policy.
        self.neuron_memo = Arc::new(Mutex::new(BoundedCache::new(NEURON_COST_CACHE_CAPACITY)));
        self
    }

    /// The technology library in use.
    #[must_use]
    pub fn tech(&self) -> &TechLibrary {
        &self.tech
    }

    /// Elaborate and cost a bespoke MLP.
    ///
    /// # Panics
    ///
    /// Panics if the spec is structurally inconsistent (layer fan-in not
    /// matching the previous layer's fan-out); specs produced by
    /// `pe-mlp` and `printed-axc` are always consistent.
    #[must_use]
    pub fn elaborate(&self, spec: &MlpHardwareSpec) -> ElaboratedMlp {
        let mut netlist = Netlist::new();
        let mut neuron_stats = Vec::new();

        // Primary inputs. The bespoke classifier datapath is purely
        // combinational (as in the paper's bespoke designs: the sensor
        // interface provides registered inputs externally, and the
        // relaxed 200 ms clock bounds the combinational depth).
        let mut activations: Vec<Vec<NetId>> = Vec::with_capacity(spec.inputs);
        for i in 0..spec.inputs {
            let mut bits = Vec::with_capacity(spec.input_bits as usize);
            for b in 0..spec.input_bits {
                let pin = netlist.net();
                netlist.add_input(format!("x{i}_{b}"), pin);
                bits.push(pin);
            }
            activations.push(bits);
        }

        let mut critical_fa_depth = 0u32;

        for (li, layer) in spec.layers.iter().enumerate() {
            let mut layer_accs: Vec<NeuronAccumulation> = Vec::with_capacity(layer.neurons.len());
            for (ni, neuron) in layer.neurons.iter().enumerate() {
                assert_eq!(
                    neuron.fan_in(),
                    activations.len(),
                    "layer {li} neuron {ni}: fan-in mismatch"
                );
                let bound = match neuron {
                    NeuronSpec::Exact(e) => bind_exact(e, &activations),
                    NeuronSpec::Approximate(a) => bind_approximate(a, &activations),
                };
                let acc = elaborate_accumulation(&mut netlist, &bound, self.kind);
                neuron_stats.push(NeuronStats {
                    layer: li,
                    neuron: ni,
                    full_adders: 0, // filled after elaboration pass below
                    stages: acc.stages,
                    accumulator_bits: acc.accumulator_bits,
                });
                layer_accs.push(acc);
            }

            // Layer timing: slowest neuron tree + ripple CPA + activation.
            let layer_depth = layer_accs
                .iter()
                .map(|a| a.stages + a.accumulator_bits + 1)
                .max()
                .unwrap_or(0);
            critical_fa_depth += layer_depth;

            match layer.activation {
                LayerActivation::QRelu { out_bits, shift } => {
                    let mut next: Vec<Vec<NetId>> = Vec::with_capacity(layer_accs.len());
                    for (ni, acc) in layer_accs.iter().enumerate() {
                        let outs = qrelu_macro(&mut netlist, acc, out_bits, shift, li, ni);
                        next.push(outs);
                    }
                    activations = next;
                }
                LayerActivation::Argmax => {
                    let outs = argmax_macro(&mut netlist, &layer_accs);
                    for (b, net) in outs.iter().enumerate() {
                        netlist.add_output(format!("class_{b}"), *net);
                    }
                    activations = Vec::new();
                }
            }
        }

        // Distribute per-neuron FA counts from the recorded stats: the
        // netlist does not tag instances by neuron, so recompute from
        // the specs via the estimator-equivalent path (cheap).
        fill_per_neuron_fas(spec, self.kind, &mut neuron_stats);

        let counts = netlist.cell_counts();
        let report =
            HardwareReport::at_nominal(spec.name.clone(), &self.tech, counts, critical_fa_depth);
        ElaboratedMlp {
            netlist,
            report,
            neuron_stats,
        }
    }

    /// Cost a bespoke MLP without building its netlist.
    ///
    /// The report is byte-identical to [`elaborate`](Self::elaborate)'s
    /// (same cell counts, same critical depth — the aggregation mirrors
    /// the elaboration step for step, including the netlist-wide
    /// sharing of tie cells), but each distinct neuron is elaborated
    /// into a scratch netlist **once** and memoized, so the GA flow's
    /// hardware analysis of sibling designs — which share almost all of
    /// their neurons — skips nearly all of the work.
    ///
    /// # Panics
    ///
    /// Panics as [`elaborate`](Self::elaborate) does on structurally
    /// inconsistent specs.
    #[must_use]
    pub fn cost(&self, spec: &MlpHardwareSpec) -> CostedMlp {
        cost_with(spec, &self.tech, &mut |neuron| self.neuron_cost(neuron))
    }

    /// Per-neuron elaboration cost, memoized by the neuron's spec.
    fn neuron_cost(&self, neuron: &NeuronSpec) -> NeuronCost {
        {
            let mut memo = self
                .neuron_memo
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(cost) = memo.get(neuron) {
                return cost;
            }
        }
        // Elaborate into a scratch netlist — exactly the gates the full
        // elaboration would add for this neuron.
        let mut scratch = Netlist::new();
        let inputs: Vec<Vec<NetId>> = (0..neuron.fan_in())
            .map(|_| scratch.nets(neuron.input_bits() as usize))
            .collect();
        let bound = match neuron {
            NeuronSpec::Exact(e) => bind_exact(e, &inputs),
            NeuronSpec::Approximate(a) => bind_approximate(a, &inputs),
        };
        let acc = elaborate_accumulation(&mut scratch, &bound, self.kind);
        let mut counts = scratch.cell_counts();
        let uses_tie_hi = counts.get(Cell::TieHi) > 0;
        let uses_tie_lo = counts.get(Cell::TieLo) > 0;
        counts.tie_hi = 0;
        counts.tie_lo = 0;
        let cost = NeuronCost {
            counts,
            uses_tie_hi,
            uses_tie_lo,
            stages: acc.stages,
            accumulator_bits: acc.accumulator_bits,
        };
        self.neuron_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(neuron.clone(), cost);
        cost
    }
}

/// The netlist-free cost aggregation shared by [`Elaborator::cost`] and
/// the analytic [`crate::cost::FastCostModel`]: walk the spec layer by
/// layer, merge each neuron's gate content (from `neuron_cost` — either
/// scratch-elaborated or analytic), charge the QReLU/argmax macros
/// through the same formulas the netlist instantiates, share one tie
/// cell of each polarity across the whole netlist, and accumulate the
/// critical FA depth. Mirrors [`Elaborator::elaborate`] step for step,
/// which is what makes the two costing paths provably equal.
///
/// # Panics
///
/// Panics on structurally inconsistent specs, as
/// [`Elaborator::elaborate`] does.
pub(crate) fn cost_with(
    spec: &MlpHardwareSpec,
    tech: &TechLibrary,
    neuron_cost: &mut dyn FnMut(&NeuronSpec) -> NeuronCost,
) -> CostedMlp {
    let mut counts = CellCounts::new();
    let mut neuron_stats = Vec::new();
    let mut critical_fa_depth = 0u32;
    let mut uses_tie_hi = false;
    let mut uses_tie_lo = false;
    let mut fan_in = spec.inputs;

    for (li, layer) in spec.layers.iter().enumerate() {
        let mut layer_depth = 0u32;
        let mut max_width = 1u32;
        for (ni, neuron) in layer.neurons.iter().enumerate() {
            assert_eq!(
                neuron.fan_in(),
                fan_in,
                "layer {li} neuron {ni}: fan-in mismatch"
            );
            let cost = neuron_cost(neuron);
            counts.merge(&cost.counts);
            uses_tie_hi |= cost.uses_tie_hi;
            uses_tie_lo |= cost.uses_tie_lo;
            layer_depth = layer_depth.max(cost.stages + cost.accumulator_bits + 1);
            max_width = max_width.max(cost.accumulator_bits);
            neuron_stats.push(NeuronStats {
                layer: li,
                neuron: ni,
                full_adders: cost.counts.get(Cell::Fa),
                stages: cost.stages,
                accumulator_bits: cost.accumulator_bits,
            });
            if let LayerActivation::QRelu { out_bits, shift } = layer.activation {
                counts.merge(&qrelu_gate_counts(cost.accumulator_bits, out_bits, shift));
            }
        }
        critical_fa_depth += layer_depth;
        match layer.activation {
            LayerActivation::QRelu { .. } => fan_in = layer.neurons.len(),
            LayerActivation::Argmax => {
                counts.merge(&argmax_gate_counts(layer.neurons.len(), max_width));
                fan_in = 0;
            }
        }
    }

    // The full netlist shares one tie cell of each polarity.
    if uses_tie_hi {
        counts.add(Cell::TieHi, 1);
    }
    if uses_tie_lo {
        counts.add(Cell::TieLo, 1);
    }
    let report = HardwareReport::at_nominal(spec.name.clone(), tech, counts, critical_fa_depth);
    CostedMlp {
        report,
        neuron_stats,
    }
}

fn fill_per_neuron_fas(spec: &MlpHardwareSpec, kind: ReductionKind, stats: &mut [NeuronStats]) {
    use pe_arith::AdderAreaEstimator;
    let est = AdderAreaEstimator::with_kind(kind);
    let mut idx = 0;
    for layer in &spec.layers {
        for neuron in &layer.neurons {
            let fa = match neuron {
                NeuronSpec::Approximate(a) => est.estimate(a).full_adders,
                NeuronSpec::Exact(e) => {
                    // Cost the exact neuron through its CSD decomposition
                    // by elaborating into a scratch netlist.
                    let mut scratch = Netlist::new();
                    let inputs: Vec<Vec<NetId>> = (0..e.weights.len())
                        .map(|_| scratch.nets(e.input_bits as usize))
                        .collect();
                    let bound = bind_exact(e, &inputs);
                    let _ = elaborate_accumulation(&mut scratch, &bound, kind);
                    scratch.cell_counts().get(Cell::Fa)
                }
            };
            stats[idx].full_adders = fa;
            idx += 1;
        }
    }
}

/// Gate content of a QReLU saturation unit over a `acc_bits`-wide
/// signed accumulator: the arithmetic shift is wiring; one inverter
/// derives the "non-negative" control from the sign bit; `out_bits` AND
/// gates zero the output for negative accumulators; an OR tree over the
/// magnitude bits above the output window detects overflow and
/// `out_bits` OR gates saturate the output to all-ones.
#[must_use]
pub fn qrelu_gate_counts(acc_bits: u32, out_bits: u32, shift: u32) -> CellCounts {
    let mut gates = CellCounts::new();
    // Output bits above the shifted accumulator's magnitude range are
    // constant zero: no gates for them (synthesis strips them).
    let live_bits = out_bits.min(acc_bits.saturating_sub(1).saturating_sub(shift));
    if live_bits == 0 {
        return gates;
    }
    gates.add(Cell::Not, 1);
    gates.add(Cell::And2, live_bits);
    let hi_bits = (acc_bits.saturating_sub(1)).saturating_sub(shift + out_bits);
    if hi_bits > 0 {
        gates.add(Cell::Or2, hi_bits.saturating_sub(1).max(1) + live_bits);
    }
    gates
}

/// Gate content of an argmax comparator tree over `classes` signed
/// accumulators of `acc_bits` each (linear running-maximum scan:
/// `classes − 1` comparators plus value/index muxes).
#[must_use]
pub fn argmax_gate_counts(classes: usize, acc_bits: u32) -> CellCounts {
    let idx_bits = usize::BITS - (classes.max(2) - 1).leading_zeros();
    let mut gates = CellCounts::new();
    let comparisons = classes.saturating_sub(1) as u32;
    gates.add(Cell::Xor2, comparisons * acc_bits);
    gates.add(Cell::And2, comparisons * acc_bits);
    gates.add(Cell::Or2, comparisons * acc_bits);
    gates.add(Cell::Not, comparisons * 2);
    gates.add(Cell::Mux2, comparisons * (acc_bits + idx_bits));
    gates
}

/// Emit a QReLU macro for one neuron; returns the activation output nets.
fn qrelu_macro(
    netlist: &mut Netlist,
    acc: &NeuronAccumulation,
    out_bits: u32,
    shift: u32,
    layer: usize,
    neuron: usize,
) -> Vec<NetId> {
    let w = acc.accumulator_bits;
    let outs = netlist.nets(out_bits as usize);
    let gates = qrelu_gate_counts(w, out_bits, shift);
    netlist.add_macro(MacroBlock {
        name: format!("qrelu_l{layer}_n{neuron}"),
        gates,
        inputs: acc.sum_bits.clone(),
        outputs: outs.clone(),
        behavior: format!(
            "clamp(acc >>> {shift}, 0, {}) // signed {w}-bit accumulator",
            (1u64 << out_bits) - 1
        ),
    });
    outs
}

/// Emit the output-layer argmax comparator tree; returns the class-index
/// nets (LSB first).
///
/// Structure: a linear scan of the class accumulators keeping the
/// running maximum — `C − 1` signed comparators of the padded
/// accumulator width, each followed by muxes selecting the winning value
/// and index.
fn argmax_macro(netlist: &mut Netlist, accs: &[NeuronAccumulation]) -> Vec<NetId> {
    let classes = accs.len();
    let w = accs.iter().map(|a| a.accumulator_bits).max().unwrap_or(1);
    let idx_bits = usize::BITS - (classes.max(2) - 1).leading_zeros();
    let outs = netlist.nets(idx_bits as usize);
    let gates = argmax_gate_counts(classes, w);
    let inputs: Vec<NetId> = accs
        .iter()
        .flat_map(|a| a.sum_bits.iter().copied())
        .collect();
    netlist.add_macro(MacroBlock {
        name: "argmax".to_owned(),
        gates,
        inputs,
        outputs: outs.clone(),
        behavior: format!("argmax over {classes} signed {w}-bit accumulators"),
    });
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExactNeuronSpec, LayerSpec};
    use pe_arith::{NeuronArithSpec, WeightArith};

    fn tiny_exact_spec() -> MlpHardwareSpec {
        MlpHardwareSpec {
            name: "tiny-exact".into(),
            inputs: 3,
            input_bits: 4,
            layers: vec![
                LayerSpec {
                    neurons: vec![
                        NeuronSpec::Exact(ExactNeuronSpec {
                            input_bits: 4,
                            weights: vec![37, -81, 11],
                            bias: 4,
                            trunc_bits: 0,
                            csd_multipliers: false,
                        });
                        2
                    ],
                    activation: LayerActivation::QRelu {
                        out_bits: 8,
                        shift: 2,
                    },
                },
                LayerSpec {
                    neurons: vec![
                        NeuronSpec::Exact(ExactNeuronSpec {
                            input_bits: 8,
                            weights: vec![55, -23],
                            bias: -9,
                            trunc_bits: 0,
                            csd_multipliers: false,
                        });
                        2
                    ],
                    activation: LayerActivation::Argmax,
                },
            ],
        }
    }

    fn tiny_approx_spec() -> MlpHardwareSpec {
        MlpHardwareSpec {
            name: "tiny-approx".into(),
            inputs: 3,
            input_bits: 4,
            layers: vec![
                LayerSpec {
                    neurons: vec![
                        NeuronSpec::Approximate(NeuronArithSpec {
                            input_bits: 4,
                            weights: vec![
                                WeightArith {
                                    mask: 0b1100,
                                    shift: 2,
                                    negative: false
                                },
                                WeightArith {
                                    mask: 0b1000,
                                    shift: 0,
                                    negative: true
                                },
                                WeightArith {
                                    mask: 0,
                                    shift: 0,
                                    negative: false
                                },
                            ],
                            bias: 4,
                        });
                        2
                    ],
                    activation: LayerActivation::QRelu {
                        out_bits: 8,
                        shift: 2,
                    },
                },
                LayerSpec {
                    neurons: vec![
                        NeuronSpec::Approximate(NeuronArithSpec {
                            input_bits: 8,
                            weights: vec![
                                WeightArith {
                                    mask: 0b1111_0000,
                                    shift: 1,
                                    negative: false
                                },
                                WeightArith {
                                    mask: 0b0000_1111,
                                    shift: 0,
                                    negative: true
                                },
                            ],
                            bias: -9,
                        });
                        2
                    ],
                    activation: LayerActivation::Argmax,
                },
            ],
        }
    }

    #[test]
    fn elaboration_produces_costed_report() {
        let elab = Elaborator::new(TechLibrary::egfet());
        let out = elab.elaborate(&tiny_exact_spec());
        assert!(out.report.area_cm2 > 0.0);
        assert!(out.report.power_mw > 0.0);
        assert!(out.report.delay_ms > 0.0);
        assert_eq!(out.neuron_stats.len(), 4);
        assert!(out.netlist.cell_counts().get(Cell::Fa) > 0);
    }

    #[test]
    fn approximate_mlp_is_much_cheaper_than_exact() {
        let elab = Elaborator::new(TechLibrary::egfet());
        let exact = elab.elaborate(&tiny_exact_spec());
        let approx = elab.elaborate(&tiny_approx_spec());
        assert!(
            approx.report.area_cm2 < exact.report.area_cm2 / 2.0,
            "approx {} vs exact {}",
            approx.report.area_cm2,
            exact.report.area_cm2
        );
        assert!(approx.report.power_mw < exact.report.power_mw / 2.0);
    }

    #[test]
    fn memoized_cost_equals_full_elaboration() {
        // The load-bearing invariant of the fast costing path: for both
        // neuron flavours (and under both compressor policies), the
        // netlist-free memoized roll-up reproduces the exact
        // `Netlist::cell_counts` report, including the shared tie
        // cells and the critical depth.
        for kind in [ReductionKind::FaOnly, ReductionKind::FaHa] {
            for spec in [tiny_exact_spec(), tiny_approx_spec()] {
                let elab = Elaborator::new(TechLibrary::egfet()).with_kind(kind);
                let full = elab.elaborate(&spec);
                let fast = elab.cost(&spec);
                assert_eq!(fast.report, full.report, "{kind:?} {}", spec.name);
                assert_eq!(fast.report.cells, full.netlist.cell_counts());
                assert_eq!(fast.neuron_stats, full.neuron_stats);
                // A second, memo-warm pass returns the same thing.
                assert_eq!(elab.cost(&spec).report, full.report);
            }
        }
    }

    #[test]
    fn cost_memo_is_shared_across_clones_and_reset_by_with_kind() {
        let elab = Elaborator::new(TechLibrary::egfet());
        let spec = tiny_approx_spec();
        let expected = elab.elaborate(&spec).report;
        let _ = elab.cost(&spec);
        // A clone shares the warm memo and still reports identically.
        assert_eq!(elab.clone().cost(&spec).report, expected);
        // Switching the compressor policy detaches the memo: costs
        // reflect the new policy, not stale FA-only entries.
        let faha = elab.clone().with_kind(ReductionKind::FaHa);
        let faha_full = faha.elaborate(&spec).report;
        assert_eq!(faha.cost(&spec).report, faha_full);
        assert_ne!(faha_full.cells, expected.cells);
    }

    #[test]
    fn datapath_is_combinational() {
        let elab = Elaborator::new(TechLibrary::egfet());
        let out = elab.elaborate(&tiny_exact_spec());
        // Bespoke classifiers carry no registers; 3 inputs x 4 bits in,
        // 1 class bit out.
        assert_eq!(out.netlist.cell_counts().get(Cell::Dff), 0);
        assert_eq!(out.netlist.input_ports().len(), 12);
        assert_eq!(out.netlist.output_ports().len(), 1);
    }

    #[test]
    fn per_neuron_fas_sum_close_to_total() {
        let elab = Elaborator::new(TechLibrary::egfet());
        let out = elab.elaborate(&tiny_approx_spec());
        let per_neuron: u32 = out.neuron_stats.iter().map(|s| s.full_adders).sum();
        let total = out.netlist.cell_counts().get(Cell::Fa);
        assert_eq!(per_neuron, total);
    }

    #[test]
    fn deeper_mlp_has_longer_critical_path() {
        let elab = Elaborator::new(TechLibrary::egfet());
        let shallow = elab.elaborate(&tiny_approx_spec());
        let deep = elab.elaborate(&tiny_exact_spec());
        assert!(deep.report.critical_fa_depth > shallow.report.critical_fa_depth);
    }
}
