//! Bit-exact elaboration of multi-operand adder trees.
//!
//! [`TreeBuilder`] wires real full/half adders over per-column bit
//! queues, following *exactly* the same stage policy as
//! [`pe_arith::Reducer`]. This is the load-bearing invariant of the
//! whole hardware model: the FA/HA counts of the elaborated netlist are
//! identical to the counts of the fast estimator the GA trains against
//! (verified by property tests in this module and in `tests/`), so the
//! "synthesis" step can only rescale costs, never reorder designs
//! structurally.

use std::collections::VecDeque;

use pe_arith::{ColumnProfile, Reducer, ReductionKind};

use crate::netlist::{NetId, Netlist};

/// The two rows produced by a compression tree, ready for the final
/// carry-propagate addition, plus the resulting sum bits.
#[derive(Debug, Clone)]
pub struct TreeSum {
    /// Final sum bits, least significant first (one net per column).
    pub sum_bits: Vec<NetId>,
    /// Number of compressor stages the tree needed.
    pub stages: u32,
}

/// Builds adder trees inside a [`Netlist`] from per-column bit queues.
#[derive(Debug, Clone, Copy)]
pub struct TreeBuilder {
    kind: ReductionKind,
}

impl TreeBuilder {
    /// Builder using the given compressor policy.
    #[must_use]
    pub fn new(kind: ReductionKind) -> Self {
        Self { kind }
    }

    /// Reduce `columns` (a queue of nets per bit position) to a final sum.
    ///
    /// Mirrors [`pe_arith::Reducer::reduce`] stage by stage: every column
    /// of height ≥ 3 feeds `⌊h/3⌋` FAs; under [`ReductionKind::FaHa`], a
    /// leftover pair in a still-too-tall column feeds an HA. Once every
    /// column is at most two nets high, a ripple carry-propagate pass
    /// produces one sum bit per column.
    ///
    /// Returns the sum bits (LSB first). Empty columns yield constant-0
    /// sum bits.
    pub fn reduce(&self, netlist: &mut Netlist, mut columns: Vec<VecDeque<NetId>>) -> TreeSum {
        let mut stages = 0u32;
        while columns.iter().any(|c| c.len() > 2) {
            stages += 1;
            let mut next: Vec<VecDeque<NetId>> = vec![VecDeque::new(); columns.len() + 1];
            for (ci, col) in columns.iter_mut().enumerate() {
                let h = col.len();
                let fas = h / 3;
                for _ in 0..fas {
                    let a = col.pop_front().expect("height accounted");
                    let b = col.pop_front().expect("height accounted");
                    let c = col.pop_front().expect("height accounted");
                    let (sum, carry) = netlist.full_adder(a, b, c);
                    next[ci].push_back(sum);
                    next[ci + 1].push_back(carry);
                }
                if self.kind == ReductionKind::FaHa && col.len() == 2 && h > 2 {
                    let a = col.pop_front().expect("pair present");
                    let b = col.pop_front().expect("pair present");
                    let (sum, carry) = netlist.half_adder(a, b);
                    next[ci].push_back(sum);
                    next[ci + 1].push_back(carry);
                }
                while let Some(bit) = col.pop_front() {
                    next[ci].push_back(bit);
                }
            }
            while next.last().is_some_and(VecDeque::is_empty) {
                next.pop();
            }
            columns = next;
        }

        // Final ripple carry-propagate pass, mirroring the Reducer's CPA
        // walk. Under FaOnly the (1 bit + carry) and (2 bits, no carry)
        // cases still instantiate an FA (third input tied low), matching
        // the paper's FA-only assumption.
        let mut sum_bits = Vec::with_capacity(columns.len());
        let mut carry: Option<NetId> = None;
        for col in &mut columns {
            let h = col.len();
            match (h, carry) {
                (0, None) => sum_bits.push(netlist.const_zero()),
                (0, Some(c)) => {
                    sum_bits.push(c);
                    carry = None;
                }
                (1, None) => {
                    let bit = col.pop_front().expect("height 1");
                    sum_bits.push(bit);
                }
                (1, Some(c)) => {
                    let a = col.pop_front().expect("height 1");
                    let (s, co) = if self.kind == ReductionKind::FaHa {
                        netlist.half_adder(a, c)
                    } else {
                        let zero = netlist.const_zero();
                        netlist.full_adder(a, c, zero)
                    };
                    sum_bits.push(s);
                    carry = Some(co);
                }
                (2, None) => {
                    let a = col.pop_front().expect("height 2");
                    let b = col.pop_front().expect("height 2");
                    let (s, co) = if self.kind == ReductionKind::FaHa {
                        netlist.half_adder(a, b)
                    } else {
                        let zero = netlist.const_zero();
                        netlist.full_adder(a, b, zero)
                    };
                    sum_bits.push(s);
                    carry = Some(co);
                }
                (2, Some(c)) => {
                    let a = col.pop_front().expect("height 2");
                    let b = col.pop_front().expect("height 2");
                    let (s, co) = netlist.full_adder(a, b, c);
                    sum_bits.push(s);
                    carry = Some(co);
                }
                _ => unreachable!("columns are at most 2 high after reduction"),
            }
        }
        if let Some(c) = carry {
            sum_bits.push(c);
        }

        TreeSum { sum_bits, stages }
    }
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new(ReductionKind::FaOnly)
    }
}

/// Verify that the netlist elaboration of `profile` instantiates exactly
/// the FA/HA counts predicted by [`pe_arith::Reducer`] — the structural-
/// consistency invariant of the hardware model.
///
/// Returns `(netlist_fa, netlist_ha, predicted_fa, predicted_ha)`.
#[must_use]
pub fn consistency_probe(profile: &ColumnProfile, kind: ReductionKind) -> (u32, u32, u32, u32) {
    let mut netlist = Netlist::new();
    let mut columns: Vec<VecDeque<NetId>> = Vec::new();
    for (c, h) in profile.iter() {
        if columns.len() <= c as usize {
            columns.resize(c as usize + 1, VecDeque::new());
        }
        for _ in 0..h {
            let n = netlist.net();
            columns[c as usize].push_back(n);
        }
    }
    let _ = TreeBuilder::new(kind).reduce(&mut netlist, columns);
    let counts = netlist.cell_counts();
    let stats = Reducer::new(kind).reduce(profile);
    (
        counts.fa,
        counts.ha,
        stats.full_adders(),
        stats.half_adders(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_arith::ColumnProfile;

    #[test]
    fn netlist_counts_match_reducer_for_known_shapes() {
        for heights in [
            vec![3u32],
            vec![2, 2, 2],
            vec![9, 3, 17, 2, 5],
            vec![6, 6, 6, 6, 6, 6],
            vec![1],
            vec![0, 0, 4],
        ] {
            for kind in [ReductionKind::FaOnly, ReductionKind::FaHa] {
                let p = ColumnProfile::from_heights(heights.clone());
                let (nfa, nha, rfa, rha) = consistency_probe(&p, kind);
                assert_eq!(nfa, rfa, "FA mismatch for {heights:?} {kind:?}");
                assert_eq!(nha, rha, "HA mismatch for {heights:?} {kind:?}");
            }
        }
    }

    #[test]
    fn sum_width_covers_max_value() {
        // Reducing columns representing value capacity must produce
        // enough sum bits for the maximum representable total.
        let p = ColumnProfile::from_heights(vec![5, 5, 5]);
        let max: u64 = p.iter().map(|(c, h)| u64::from(h) << c).sum();
        let mut netlist = Netlist::new();
        let mut columns: Vec<VecDeque<NetId>> = vec![VecDeque::new(); 3];
        for (c, h) in p.iter() {
            for _ in 0..h {
                let n = netlist.net();
                columns[c as usize].push_back(n);
            }
        }
        let tree = TreeBuilder::default().reduce(&mut netlist, columns);
        let capacity = (1u64 << tree.sum_bits.len()) - 1;
        assert!(
            capacity >= max,
            "sum bits {} max {max}",
            tree.sum_bits.len()
        );
    }

    #[test]
    fn empty_tree_yields_no_cells() {
        let mut netlist = Netlist::new();
        let tree = TreeBuilder::default().reduce(&mut netlist, Vec::new());
        assert!(tree.sum_bits.is_empty());
        assert_eq!(netlist.cell_counts().total(), 0);
    }

    #[test]
    fn single_bit_is_wiring_only() {
        let mut netlist = Netlist::new();
        let n = netlist.net();
        let tree = TreeBuilder::default().reduce(&mut netlist, vec![VecDeque::from([n])]);
        assert_eq!(tree.sum_bits, vec![n]);
        assert_eq!(netlist.cell_counts().total(), 0);
    }
}
