//! A small bounded memoization cache shared by the evaluation hot
//! paths.
//!
//! [`BoundedCache`] is a segmented (two-generation) LRU approximation:
//! lookups promote entries into the *hot* generation, and when the hot
//! generation fills up it becomes the *cold* one (dropping the previous
//! cold generation wholesale). Every operation is O(1); anything
//! touched within the last `capacity` insertions survives, anything
//! untouched for two generations is evicted — the classic
//! "second-chance" bound used where exact LRU bookkeeping isn't worth
//! its linked-list overhead.
//!
//! The cache only ever memoizes **pure** functions in this workspace
//! (genome → fitness, neuron spec → gate counts), so eviction can never
//! change a result — only how much work is re-done.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The Firefox `FxHash` mix: rotate, xor, multiply by a large odd
/// constant. Far from cryptographic, but the cache keys here are
/// structured program data (genomes, neuron specs), not adversarial
/// input, and the per-write cost matters: the evaluation hot paths
/// hash multi-hundred-byte keys on every lookup, where SipHash's
/// per-write overhead dominates the whole cache operation.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The hasher state every [`BoundedCache`] map uses.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// One-shot [`FxHasher`] digest of any hashable value — for building
/// cheap `Copy` fingerprint keys over heavyweight structures (the
/// fingerprint holder then carries the full value alongside for exact
/// equality confirmation).
#[must_use]
pub fn fx_hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A bounded map with segmented-LRU eviction and hit/miss counters.
#[derive(Debug, Clone)]
pub struct BoundedCache<K, V> {
    hot: HashMap<K, V, FxBuildHasher>,
    cold: HashMap<K, V, FxBuildHasher>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> BoundedCache<K, V> {
    /// A cache holding at most ~`2 × capacity` entries (`capacity` per
    /// generation). A zero capacity is clamped to 1.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            hot: HashMap::default(),
            cold: HashMap::default(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a key, promoting a cold entry into the hot generation.
    /// Counts one hit or miss.
    pub fn get<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if let Some(v) = self.hot.get(key) {
            self.hits += 1;
            return Some(v.clone());
        }
        if let Some((k, v)) = self.cold.remove_entry(key) {
            self.hits += 1;
            let out = v.clone();
            self.rotate_if_full();
            self.hot.insert(k, v);
            return Some(out);
        }
        self.misses += 1;
        None
    }

    /// Insert a key into the hot generation (rotating generations when
    /// the hot one is full).
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(slot) = self.hot.get_mut(&key) {
            *slot = value;
            return;
        }
        self.rotate_if_full();
        self.cold.remove(&key);
        self.hot.insert(key, value);
    }

    /// Insert a key that a just-preceding [`get`](Self::get) reported
    /// absent from both generations — skips the re-probes that
    /// [`insert`](Self::insert) performs, so a memoized miss path
    /// hashes the key once here instead of three times.
    pub fn insert_missed(&mut self, key: K, value: V) {
        debug_assert!(
            !self.hot.contains_key(&key) && !self.cold.contains_key(&key),
            "insert_missed requires a key absent from both generations"
        );
        self.rotate_if_full();
        self.hot.insert(key, value);
    }

    fn rotate_if_full(&mut self) {
        if self.hot.len() >= self.capacity {
            self.cold = std::mem::take(&mut self.hot);
        }
    }

    /// Entries currently resident (both generations).
    #[must_use]
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.cold.is_empty()
    }

    /// Lifetime hit count (lookups served from either generation).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_counters() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(4);
        assert!(c.get(&1).is_none());
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_bounds_residency() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(4);
        for i in 0..100 {
            c.insert(i, i);
        }
        // At most two generations of 4 entries each stay resident.
        assert!(c.len() <= 8, "len {}", c.len());
        // The most recent insert always survives.
        assert_eq!(c.get(&99), Some(99));
    }

    #[test]
    fn recently_used_entries_survive_a_rotation() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3); // hot full
        c.insert(4, 4); // rotates {1,2,3} to cold
        assert_eq!(c.get(&1), Some(1)); // promoted back to hot
        c.insert(5, 5);
        c.insert(6, 6); // rotates again; 1 was hot, so it survives in cold
        assert_eq!(c.get(&1), Some(1));
    }

    #[test]
    fn untouched_entries_are_eventually_evicted() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(2);
        c.insert(1, 1);
        for i in 10..20 {
            c.insert(i, i);
        }
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn reinsert_updates_value_in_place() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(2);
        c.insert(1, 1);
        c.insert(1, 2);
        assert_eq!(c.get(&1), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn borrowed_key_lookup_works() {
        let mut c: BoundedCache<Vec<u32>, u32> = BoundedCache::new(2);
        c.insert(vec![1, 2, 3], 7);
        let slice: &[u32] = &[1, 2, 3];
        assert_eq!(c.get(slice), Some(7));
    }
}
