//! A small bounded memoization cache shared by the evaluation hot
//! paths.
//!
//! [`BoundedCache`] is a segmented (two-generation) LRU approximation:
//! lookups promote entries into the *hot* generation, and when the hot
//! generation fills up it becomes the *cold* one (dropping the previous
//! cold generation wholesale). Every operation is O(1); anything
//! touched within the last `capacity` insertions survives, anything
//! untouched for two generations is evicted — the classic
//! "second-chance" bound used where exact LRU bookkeeping isn't worth
//! its linked-list overhead.
//!
//! The cache only ever memoizes **pure** functions in this workspace
//! (genome → fitness, neuron spec → gate counts), so eviction can never
//! change a result — only how much work is re-done.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map with segmented-LRU eviction and hit/miss counters.
#[derive(Debug, Clone)]
pub struct BoundedCache<K, V> {
    hot: HashMap<K, V>,
    cold: HashMap<K, V>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> BoundedCache<K, V> {
    /// A cache holding at most ~`2 × capacity` entries (`capacity` per
    /// generation). A zero capacity is clamped to 1.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            hot: HashMap::new(),
            cold: HashMap::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a key, promoting a cold entry into the hot generation.
    /// Counts one hit or miss.
    pub fn get<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if let Some(v) = self.hot.get(key) {
            self.hits += 1;
            return Some(v.clone());
        }
        if let Some((k, v)) = self.cold.remove_entry(key) {
            self.hits += 1;
            let out = v.clone();
            self.rotate_if_full();
            self.hot.insert(k, v);
            return Some(out);
        }
        self.misses += 1;
        None
    }

    /// Insert a key into the hot generation (rotating generations when
    /// the hot one is full).
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(slot) = self.hot.get_mut(&key) {
            *slot = value;
            return;
        }
        self.rotate_if_full();
        self.cold.remove(&key);
        self.hot.insert(key, value);
    }

    fn rotate_if_full(&mut self) {
        if self.hot.len() >= self.capacity {
            self.cold = std::mem::take(&mut self.hot);
        }
    }

    /// Entries currently resident (both generations).
    #[must_use]
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.cold.is_empty()
    }

    /// Lifetime hit count (lookups served from either generation).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_counters() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(4);
        assert!(c.get(&1).is_none());
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_bounds_residency() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(4);
        for i in 0..100 {
            c.insert(i, i);
        }
        // At most two generations of 4 entries each stay resident.
        assert!(c.len() <= 8, "len {}", c.len());
        // The most recent insert always survives.
        assert_eq!(c.get(&99), Some(99));
    }

    #[test]
    fn recently_used_entries_survive_a_rotation() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3); // hot full
        c.insert(4, 4); // rotates {1,2,3} to cold
        assert_eq!(c.get(&1), Some(1)); // promoted back to hot
        c.insert(5, 5);
        c.insert(6, 6); // rotates again; 1 was hot, so it survives in cold
        assert_eq!(c.get(&1), Some(1));
    }

    #[test]
    fn untouched_entries_are_eventually_evicted() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(2);
        c.insert(1, 1);
        for i in 10..20 {
            c.insert(i, i);
        }
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn reinsert_updates_value_in_place() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(2);
        c.insert(1, 1);
        c.insert(1, 2);
        assert_eq!(c.get(&1), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn borrowed_key_lookup_works() {
        let mut c: BoundedCache<Vec<u32>, u32> = BoundedCache::new(2);
        c.insert(vec![1, 2, 3], 7);
        let slice: &[u32] = &[1, 2, 3];
        assert_eq!(c.get(slice), Some(7));
    }
}
