//! Small fixed-point / bit-width helpers used across the workspace.
//!
//! Bespoke printed datapaths are narrow (4-bit activations, 8-bit
//! quantized activations/weights, accumulators of a couple dozen bits),
//! so all helpers here work on `i64`/`u64` and explicit bit widths.

use crate::error::ArithError;

/// Maximum representable value of an unsigned field of `width` bits.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 63 (the helpers in this module
/// keep one headroom bit so arithmetic on `i64` never overflows).
///
/// ```
/// assert_eq!(pe_arith::max_unsigned(4), 15);
/// ```
#[must_use]
pub fn max_unsigned(width: u32) -> u64 {
    assert!((1..=63).contains(&width), "width {width} out of 1..=63");
    (1u64 << width) - 1
}

/// Maximum representable value of a two's-complement field of `width` bits.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 63.
///
/// ```
/// assert_eq!(pe_arith::max_signed(8), 127);
/// ```
#[must_use]
pub fn max_signed(width: u32) -> i64 {
    assert!((1..=63).contains(&width), "width {width} out of 1..=63");
    (1i64 << (width - 1)) - 1
}

/// Minimum representable value of a two's-complement field of `width` bits.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 63.
///
/// ```
/// assert_eq!(pe_arith::min_signed(8), -128);
/// ```
#[must_use]
pub fn min_signed(width: u32) -> i64 {
    assert!((1..=63).contains(&width), "width {width} out of 1..=63");
    -(1i64 << (width - 1))
}

/// Number of bits needed to represent the unsigned value `v`.
///
/// Zero needs one bit by convention (a single constant-zero wire).
///
/// ```
/// assert_eq!(pe_arith::unsigned_width(0), 1);
/// assert_eq!(pe_arith::unsigned_width(255), 8);
/// assert_eq!(pe_arith::unsigned_width(256), 9);
/// ```
#[must_use]
pub fn unsigned_width(v: u64) -> u32 {
    if v == 0 {
        1
    } else {
        64 - v.leading_zeros()
    }
}

/// Number of bits needed to represent the signed value `v` in
/// two's complement.
///
/// ```
/// assert_eq!(pe_arith::signed_width(0), 1);
/// assert_eq!(pe_arith::signed_width(127), 8);
/// assert_eq!(pe_arith::signed_width(-128), 8);
/// assert_eq!(pe_arith::signed_width(128), 9);
/// ```
#[must_use]
pub fn signed_width(v: i64) -> u32 {
    if v == 0 {
        1
    } else if v > 0 {
        unsigned_width(v as u64) + 1
    } else {
        // Smallest width w with -(2^(w-1)) <= v: drop redundant sign bits.
        64 - v.leading_ones() + 1
    }
}

/// Saturate `v` into the signed range of `width` bits.
///
/// ```
/// assert_eq!(pe_arith::clamp_to_bits(300, 8), 127);
/// assert_eq!(pe_arith::clamp_to_bits(-300, 8), -128);
/// assert_eq!(pe_arith::clamp_to_bits(5, 8), 5);
/// ```
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 63.
#[must_use]
pub fn clamp_to_bits(v: i64, width: u32) -> i64 {
    v.clamp(min_signed(width), max_signed(width))
}

/// Check that `v` fits an unsigned field of `width` bits.
///
/// # Errors
///
/// Returns [`ArithError::ValueOutOfRange`] if `v` is negative or exceeds
/// `2^width - 1`, and [`ArithError::InvalidWidth`] if `width` is outside
/// `1..=63`.
pub fn check_unsigned(v: i64, width: u32) -> Result<u64, ArithError> {
    if !(1..=63).contains(&width) {
        return Err(ArithError::InvalidWidth { width });
    }
    if v < 0 || (v as u64) > max_unsigned(width) {
        return Err(ArithError::ValueOutOfRange { value: v, width });
    }
    Ok(v as u64)
}

/// Check that `v` fits a two's-complement field of `width` bits.
///
/// # Errors
///
/// Returns [`ArithError::ValueOutOfRange`] / [`ArithError::InvalidWidth`]
/// analogously to [`check_unsigned`].
pub fn check_signed(v: i64, width: u32) -> Result<i64, ArithError> {
    if !(1..=63).contains(&width) {
        return Err(ArithError::InvalidWidth { width });
    }
    if v < min_signed(width) || v > max_signed(width) {
        return Err(ArithError::ValueOutOfRange { value: v, width });
    }
    Ok(v)
}

/// Encode a signed value into its two's-complement bit pattern over
/// `width` bits.
///
/// # Errors
///
/// Returns an error if `v` does not fit in `width` bits.
///
/// ```
/// assert_eq!(pe_arith::fixed::to_twos_complement(-1, 4).unwrap(), 0b1111);
/// assert_eq!(pe_arith::fixed::to_twos_complement(5, 4).unwrap(), 0b0101);
/// ```
pub fn to_twos_complement(v: i64, width: u32) -> Result<u64, ArithError> {
    check_signed(v, width)?;
    Ok((v as u64) & ((1u64 << width) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_bounds_round_trip() {
        for w in 1..=16 {
            let m = max_unsigned(w);
            assert_eq!(unsigned_width(m), w);
            assert!(check_unsigned(m as i64, w).is_ok());
            assert!(check_unsigned(m as i64 + 1, w).is_err());
        }
    }

    #[test]
    fn signed_bounds_round_trip() {
        for w in 2..=16 {
            assert!(check_signed(max_signed(w), w).is_ok());
            assert!(check_signed(min_signed(w), w).is_ok());
            assert!(check_signed(max_signed(w) + 1, w).is_err());
            assert!(check_signed(min_signed(w) - 1, w).is_err());
        }
    }

    #[test]
    fn signed_width_matches_definition() {
        for v in -1024i64..=1024 {
            let w = signed_width(v);
            assert!(v >= min_signed(w) && v <= max_signed(w), "v={v} w={w}");
            if w > 1 {
                let narrower = w - 1;
                assert!(
                    v < min_signed(narrower) || v > max_signed(narrower),
                    "v={v} also fits {narrower} bits"
                );
            }
        }
    }

    #[test]
    fn twos_complement_known_patterns() {
        assert_eq!(to_twos_complement(-8, 4).unwrap(), 0b1000);
        assert_eq!(to_twos_complement(7, 4).unwrap(), 0b0111);
        assert_eq!(to_twos_complement(0, 4).unwrap(), 0);
        assert!(to_twos_complement(8, 4).is_err());
    }

    #[test]
    fn clamp_saturates_both_sides() {
        assert_eq!(clamp_to_bits(i64::MAX / 2, 4), 7);
        assert_eq!(clamp_to_bits(i64::MIN / 2, 4), -8);
    }
}
