//! The DATE'24 `AdderArea` estimator (§III-C).
//!
//! The paper trains against a fast area proxy: the number of full adders
//! needed by each neuron's multi-operand adder tree, computed from the
//! neuron's masks, signs, shift exponents, and bias by counting the
//! non-zero bits in each column and "recursively comput\[ing\] the number
//! of required FAs". [`AdderAreaEstimator`] is that function — the paper
//! implements it in Python; this is the Rust equivalent, built on
//! [`ColumnProfile`] and [`Reducer`] so that the estimate and the
//! netlist elaborated by `pe-hw` share one structural model.

use serde::{Deserialize, Serialize};

use crate::column::ColumnProfile;
use crate::reduce::{Reducer, ReductionKind, ReductionStats};
use crate::summand::Summand;

/// Arithmetic description of one weight of an approximate neuron: the
/// triple `(m, s, k)` of paper Eq. (1)/(4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightArith {
    /// Pruning mask over the input activation bits (`1` keeps the bit).
    /// A zero mask removes the summand entirely (hardware-equivalent to
    /// a zero weight, §III-B).
    pub mask: u64,
    /// Power-of-two exponent `k` of the weight magnitude `2^k`.
    pub shift: u32,
    /// Sign `s`: `true` for −1, `false` for +1.
    pub negative: bool,
}

/// Arithmetic description of one approximate neuron `θ_j^(l)`:
/// everything the area estimate depends on.
///
/// `Hash`/`Eq` make the spec directly usable as a memoization key: two
/// neurons with the same weight signature (masks, signs, shifts), bias
/// and input width cost exactly the same hardware.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NeuronArithSpec {
    /// Width of each input activation in bits (4 for first-layer inputs,
    /// 8 for hidden QReLU activations in the paper's setup).
    pub input_bits: u32,
    /// Per-input weight descriptions.
    pub weights: Vec<WeightArith>,
    /// Quantized bias `b_j^(l)`.
    pub bias: i64,
}

impl NeuronArithSpec {
    /// Lower the neuron to the [`Summand`] list of its accumulation.
    ///
    /// Zero-mask weights are dropped (they are wired out of the design),
    /// and the bias becomes a constant summand.
    #[must_use]
    pub fn summands(&self) -> Vec<Summand> {
        let mut out: Vec<Summand> = self
            .weights
            .iter()
            .filter(|w| w.mask != 0)
            .map(|w| Summand::MaskedInput {
                input_bits: self.input_bits,
                mask: w.mask,
                shift: w.shift,
                negative: w.negative,
            })
            .collect();
        if self.bias != 0 {
            out.push(Summand::Constant(self.bias));
        }
        out
    }

    /// Number of active (non-pruned) connections.
    #[must_use]
    pub fn active_inputs(&self) -> usize {
        self.weights.iter().filter(|w| w.mask != 0).count()
    }

    /// Total number of variable bits entering the adder tree.
    #[must_use]
    pub fn active_bits(&self) -> u32 {
        self.weights.iter().map(|w| w.mask.count_ones()).sum()
    }
}

/// Result of estimating one neuron's adder area.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdderAreaReport {
    /// Full adders (compression tree + final carry-propagate adder).
    pub full_adders: u32,
    /// Half adders (only non-zero under [`ReductionKind::FaHa`]).
    pub half_adders: u32,
    /// NOT gates for subtracted summands' inverted bits.
    pub not_gates: u32,
    /// Reduction depth in compressor stages.
    pub stages: u32,
    /// Accumulator width used for sign folding.
    pub accumulator_bits: u32,
    /// The column profile the estimate was computed from.
    pub profile: ColumnProfile,
}

impl AdderAreaReport {
    /// Scalar cost used as the GA's area objective: FA count with HAs at
    /// half weight.
    #[must_use]
    pub fn fa_equivalent(&self) -> f64 {
        f64::from(self.full_adders) + 0.5 * f64::from(self.half_adders)
    }
}

/// Fast FA-count area estimator for approximate bespoke neurons.
///
/// ```
/// use pe_arith::estimator::{AdderAreaEstimator, NeuronArithSpec, WeightArith};
///
/// let full = NeuronArithSpec {
///     input_bits: 4,
///     weights: vec![WeightArith { mask: 0b1111, shift: 0, negative: false }; 6],
///     bias: 0,
/// };
/// let mut pruned = full.clone();
/// for w in &mut pruned.weights {
///     w.mask = 0b1000; // keep only the MSB of each input
/// }
/// let est = AdderAreaEstimator::paper();
/// assert!(est.estimate(&pruned).full_adders < est.estimate(&full).full_adders);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderAreaEstimator {
    reducer: Reducer,
}

impl AdderAreaEstimator {
    /// The paper's estimator: FA-only 3:2 reduction.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            reducer: Reducer::new(ReductionKind::FaOnly),
        }
    }

    /// Estimator with an explicit compressor policy (used by the
    /// `fa_vs_netlist` ablation).
    #[must_use]
    pub fn with_kind(kind: ReductionKind) -> Self {
        Self {
            reducer: Reducer::new(kind),
        }
    }

    /// Estimate the adder area of one neuron.
    ///
    /// # Panics
    ///
    /// Panics if the neuron specification is malformed (masks wider than
    /// `input_bits`); specifications produced by the `printed-axc` genome
    /// decoder are always well-formed.
    #[must_use]
    pub fn estimate(&self, spec: &NeuronArithSpec) -> AdderAreaReport {
        let summands = spec.summands();
        let acc_bits = ColumnProfile::accumulator_width(&summands);
        let profile = ColumnProfile::from_summands(&summands, acc_bits)
            .expect("neuron spec must be well-formed");
        let stats: ReductionStats = self.reducer.reduce(&profile);
        let not_gates = summands
            .iter()
            .filter(|s| s.is_negative())
            .map(Summand::active_bit_count)
            .sum();
        AdderAreaReport {
            full_adders: stats.full_adders(),
            half_adders: stats.half_adders(),
            not_gates,
            stages: stats.stages,
            accumulator_bits: acc_bits,
            profile,
        }
    }

    /// The gate-count summary of one neuron, computed without
    /// materializing the summand list, the per-column
    /// [`ColumnProfile`] or the [`AdderAreaReport`] — the memoized GA
    /// hot path runs this once per *distinct* neuron, so it is written
    /// to allocate exactly one height vector.
    ///
    /// Identical by construction (and pinned by tests) to
    /// `NeuronGateCounts::from(&self.estimate(spec))`.
    ///
    /// # Panics
    ///
    /// Panics on malformed specs exactly like
    /// [`estimate`](Self::estimate).
    #[must_use]
    pub fn counts_of(&self, spec: &NeuronArithSpec) -> NeuronGateCounts {
        self.counts_of_with(spec, &mut Vec::new())
    }

    /// [`counts_of`](Self::counts_of) with a caller-provided height
    /// scratch vector, so a memoizing wrapper that runs this once per
    /// cache miss allocates nothing at all.
    ///
    /// # Panics
    ///
    /// Panics on malformed specs exactly like
    /// [`estimate`](Self::estimate).
    #[must_use]
    pub fn counts_of_with(
        &self,
        spec: &NeuronArithSpec,
        heights: &mut Vec<u32>,
    ) -> NeuronGateCounts {
        // Accumulator width, mirroring `ColumnProfile::accumulator_width`
        // over the implicit summand list (active weights + bias).
        let mut pos: u64 = 0;
        let mut neg: u64 = 0;
        let mut not_gates: u32 = 0;
        for w in spec.weights.iter().filter(|w| w.mask != 0) {
            let magnitude = w.mask << w.shift;
            if w.negative {
                neg += magnitude;
                not_gates += w.mask.count_ones();
            } else {
                pos += magnitude;
            }
        }
        if spec.bias >= 0 {
            pos += spec.bias.unsigned_abs();
        } else {
            neg += spec.bias.unsigned_abs();
        }
        let acc_bits = crate::fixed::unsigned_width(pos.max(neg).max(1)) + 1;

        // Column heights, mirroring `ColumnProfile::from_summands`:
        // variable mask bits in place, negation corrections and the
        // bias folded into one constant whose set bits join the
        // profile.
        heights.clear();
        heights.resize(acc_bits as usize, 0);
        let modulus_mask = (1u64 << acc_bits) - 1;
        let mut folded_constant: u64 = 0;
        let well_formed = "neuron spec must be well-formed";
        for w in spec.weights.iter().filter(|w| w.mask != 0) {
            let summand = Summand::MaskedInput {
                input_bits: spec.input_bits,
                mask: w.mask,
                shift: w.shift,
                negative: w.negative,
            };
            summand.validate().expect(well_formed);
            let mut mask = w.mask;
            while mask != 0 {
                let pos = mask.trailing_zeros() + w.shift;
                assert!(pos < acc_bits, "{well_formed}");
                heights[pos as usize] += 1;
                mask &= mask - 1;
            }
            if let Some(k) = summand.negation_constant(acc_bits).expect(well_formed) {
                folded_constant = folded_constant.wrapping_add(k) & modulus_mask;
            }
        }
        if spec.bias != 0 {
            let pattern =
                crate::summand::constant_bit_pattern(spec.bias, acc_bits).expect(well_formed);
            folded_constant = folded_constant.wrapping_add(pattern) & modulus_mask;
        }
        for b in 0..acc_bits {
            if folded_constant >> b & 1 == 1 {
                heights[b as usize] += 1;
            }
        }
        while heights.last() == Some(&0) {
            heights.pop();
        }

        let stats = self.reducer.reduce_in_place(heights);
        NeuronGateCounts {
            full_adders: stats.full_adders(),
            half_adders: stats.half_adders(),
            not_gates,
            stages: stats.stages,
            accumulator_bits: acc_bits,
        }
    }

    /// Estimate a whole layer / MLP: the sum of per-neuron FA-equivalents
    /// (paper Eq. (2): `Area(θ) = Σ AdderArea(θ_j^(l))`).
    #[must_use]
    pub fn estimate_total<'a, I>(&self, neurons: I) -> f64
    where
        I: IntoIterator<Item = &'a NeuronArithSpec>,
    {
        neurons
            .into_iter()
            .map(|n| self.estimate(n).fa_equivalent())
            .sum()
    }
}

impl Default for AdderAreaEstimator {
    fn default() -> Self {
        Self::paper()
    }
}

/// The gate-count summary of one neuron's adder area — everything the
/// GA's area objectives consume, without the per-column
/// [`ColumnProfile`] (which makes [`AdderAreaReport`] too heavy to
/// memoize by the million).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeuronGateCounts {
    /// Full adders (compression tree + final carry-propagate adder).
    pub full_adders: u32,
    /// Half adders (only non-zero under [`ReductionKind::FaHa`]).
    pub half_adders: u32,
    /// NOT gates for subtracted summands' inverted bits.
    pub not_gates: u32,
    /// Reduction depth in compressor stages.
    pub stages: u32,
    /// Accumulator width used for sign folding.
    pub accumulator_bits: u32,
}

impl NeuronGateCounts {
    /// Scalar cost used as the GA's FA-count objective (paper Eq. (2)):
    /// FAs with HAs at half weight.
    #[must_use]
    pub fn fa_equivalent(&self) -> f64 {
        f64::from(self.full_adders) + 0.5 * f64::from(self.half_adders)
    }
}

impl From<&AdderAreaReport> for NeuronGateCounts {
    fn from(r: &AdderAreaReport) -> Self {
        Self {
            full_adders: r.full_adders,
            half_adders: r.half_adders,
            not_gates: r.not_gates,
            stages: r.stages,
            accumulator_bits: r.accumulator_bits,
        }
    }
}

/// A memoizing wrapper around [`AdderAreaEstimator`].
///
/// Sibling genomes in a GA population differ in a handful of genes, so
/// almost all of their neurons are *identical* specs — this estimator
/// keys a [`BoundedCache`](crate::BoundedCache) by the full
/// [`NeuronArithSpec`] (weight signature + bit widths + bias) and skips
/// the column-profile construction and compressor-tree reduction for
/// every repeat. Estimation is a pure function of the spec, so the
/// memoized counts are exactly the computed ones.
///
/// Clones share one cache (and its hit/miss counters) and the type is
/// `Send + Sync`: a parallel batch evaluator can score genomes on many
/// threads against one shared neuron cache.
#[derive(Debug, Clone)]
pub struct MemoAreaEstimator {
    inner: AdderAreaEstimator,
    cache: std::sync::Arc<std::sync::Mutex<MemoState>>,
}

/// Everything behind the memo lock: the bounded spec → counts map plus
/// the height-vector scratch the miss path reuses (it is only ever
/// touched while the cache lock is held, so sharing the mutex costs
/// nothing and keeps the miss path allocation-free).
#[derive(Debug)]
struct MemoState {
    cache: crate::BoundedCache<NeuronArithSpec, NeuronGateCounts>,
    heights: Vec<u32>,
}

/// Per-generation default: large enough for every distinct neuron a
/// paper-scale run encounters between rotations, small enough to stay
/// in the tens of megabytes.
pub const NEURON_CACHE_CAPACITY: usize = 1 << 15;

impl MemoAreaEstimator {
    /// Memoize `inner` with the default cache capacity.
    #[must_use]
    pub fn new(inner: AdderAreaEstimator) -> Self {
        Self::with_capacity(inner, NEURON_CACHE_CAPACITY)
    }

    /// Memoize `inner` with an explicit per-generation cache capacity.
    #[must_use]
    pub fn with_capacity(inner: AdderAreaEstimator, capacity: usize) -> Self {
        Self {
            inner,
            cache: std::sync::Arc::new(std::sync::Mutex::new(MemoState {
                cache: crate::BoundedCache::new(capacity),
                heights: Vec::new(),
            })),
        }
    }

    /// The underlying (uncached) estimator.
    #[must_use]
    pub fn inner(&self) -> &AdderAreaEstimator {
        &self.inner
    }

    /// Gate counts of one neuron, memoized by its spec.
    #[must_use]
    pub fn counts(&self, spec: &NeuronArithSpec) -> NeuronGateCounts {
        let mut state = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let state = &mut *state;
        if let Some(counts) = state.cache.get(spec) {
            return counts;
        }
        let counts = self.inner.counts_of_with(spec, &mut state.heights);
        state.cache.insert_missed(spec.clone(), counts);
        counts
    }

    /// Lifetime `(hits, misses)` of the shared neuron cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        let state = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (state.cache.hits(), state.cache.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(weights: Vec<WeightArith>, bias: i64) -> NeuronArithSpec {
        NeuronArithSpec {
            input_bits: 4,
            weights,
            bias,
        }
    }

    #[test]
    fn empty_neuron_costs_nothing() {
        let s = spec(vec![], 0);
        let r = AdderAreaEstimator::paper().estimate(&s);
        assert_eq!(r.full_adders, 0);
        assert_eq!(r.not_gates, 0);
    }

    #[test]
    fn zero_masks_remove_summands_entirely() {
        let s = spec(
            vec![
                WeightArith {
                    mask: 0,
                    shift: 3,
                    negative: true
                };
                10
            ],
            0,
        );
        let r = AdderAreaEstimator::paper().estimate(&s);
        assert_eq!(r.full_adders, 0);
        assert_eq!(r.profile.total_bits(), 0);
    }

    #[test]
    fn masking_bits_monotonically_reduces_area() {
        let est = AdderAreaEstimator::paper();
        let masks = [0b1111u64, 0b1110, 0b1100, 0b1000, 0b0000];
        let mut last = u32::MAX;
        for m in masks {
            let s = spec(
                vec![
                    WeightArith {
                        mask: m,
                        shift: 0,
                        negative: false
                    };
                    8
                ],
                5,
            );
            let fa = est.estimate(&s).full_adders;
            assert!(fa <= last, "mask {m:#b}: {fa} > {last}");
            last = fa;
        }
    }

    #[test]
    fn more_inputs_cost_more() {
        let est = AdderAreaEstimator::paper();
        let w = WeightArith {
            mask: 0b1111,
            shift: 0,
            negative: false,
        };
        let small = est.estimate(&spec(vec![w; 3], 0)).full_adders;
        let large = est.estimate(&spec(vec![w; 12], 0)).full_adders;
        assert!(large > small);
    }

    #[test]
    fn not_gates_counted_per_negative_bit() {
        let s = spec(
            vec![
                WeightArith {
                    mask: 0b1011,
                    shift: 0,
                    negative: true,
                },
                WeightArith {
                    mask: 0b1111,
                    shift: 1,
                    negative: false,
                },
                WeightArith {
                    mask: 0b0001,
                    shift: 2,
                    negative: true,
                },
            ],
            -7,
        );
        let r = AdderAreaEstimator::paper().estimate(&s);
        assert_eq!(r.not_gates, 3 + 1);
    }

    #[test]
    fn layer_total_is_sum_of_neurons() {
        let est = AdderAreaEstimator::paper();
        let a = spec(
            vec![
                WeightArith {
                    mask: 0b1111,
                    shift: 1,
                    negative: false
                };
                5
            ],
            3,
        );
        let b = spec(
            vec![
                WeightArith {
                    mask: 0b0110,
                    shift: 0,
                    negative: true
                };
                5
            ],
            -2,
        );
        let total = est.estimate_total([&a, &b]);
        let expected = est.estimate(&a).fa_equivalent() + est.estimate(&b).fa_equivalent();
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn memoized_counts_equal_direct_estimates() {
        let est = AdderAreaEstimator::paper();
        let memo = MemoAreaEstimator::new(est);
        let specs = [
            spec(vec![], 0),
            spec(
                vec![
                    WeightArith {
                        mask: 0b1011,
                        shift: 1,
                        negative: true,
                    },
                    WeightArith {
                        mask: 0b1111,
                        shift: 0,
                        negative: false,
                    },
                ],
                -7,
            ),
            spec(
                vec![
                    WeightArith {
                        mask: 0b1111,
                        shift: 3,
                        negative: false
                    };
                    9
                ],
                42,
            ),
        ];
        for s in &specs {
            let direct = NeuronGateCounts::from(&est.estimate(s));
            assert_eq!(memo.counts(s), direct); // cold
            assert_eq!(memo.counts(s), direct); // hot
        }
        let (hits, misses) = memo.cache_stats();
        assert_eq!(misses, specs.len() as u64);
        assert_eq!(hits, specs.len() as u64);
    }

    #[test]
    fn counts_of_equals_the_full_estimate_on_random_specs() {
        // The lean hot path must agree with the reference estimate on
        // every field, for both reduction kinds, across a broad sweep
        // of masks, shifts, signs and biases (deterministic LCG).
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        for kind in [ReductionKind::FaOnly, ReductionKind::FaHa] {
            let est = AdderAreaEstimator::with_kind(kind);
            for _ in 0..500 {
                let input_bits = 1 + (next() % 8) as u32;
                let weights: Vec<WeightArith> = (0..(next() % 20))
                    .map(|_| WeightArith {
                        mask: next() & ((1 << input_bits) - 1),
                        shift: (next() % 7) as u32,
                        negative: next() % 2 == 0,
                    })
                    .collect();
                let bias = (next() as i64 % 4096) - 2048;
                let s = NeuronArithSpec {
                    input_bits,
                    weights,
                    bias,
                };
                assert_eq!(
                    est.counts_of(&s),
                    NeuronGateCounts::from(&est.estimate(&s)),
                    "spec {s:?} kind {kind:?}"
                );
            }
        }
    }

    #[test]
    fn memo_clones_share_one_cache() {
        let memo = MemoAreaEstimator::new(AdderAreaEstimator::paper());
        let clone = memo.clone();
        let s = spec(
            vec![WeightArith {
                mask: 0b1111,
                shift: 0,
                negative: false,
            }],
            1,
        );
        let _ = memo.counts(&s);
        let _ = clone.counts(&s);
        assert_eq!(clone.cache_stats(), (1, 1));
    }

    #[test]
    fn shift_moves_bits_but_keeps_count() {
        let est = AdderAreaEstimator::paper();
        let s0 = spec(
            vec![
                WeightArith {
                    mask: 0b1111,
                    shift: 0,
                    negative: false
                };
                4
            ],
            0,
        );
        let s3 = spec(
            vec![
                WeightArith {
                    mask: 0b1111,
                    shift: 3,
                    negative: false
                };
                4
            ],
            0,
        );
        let r0 = est.estimate(&s0);
        let r3 = est.estimate(&s3);
        assert_eq!(r0.profile.total_bits(), r3.profile.total_bits());
        // Same column shape shifted: identical tree cost.
        assert_eq!(r0.full_adders, r3.full_adders);
    }
}
