//! Operands of a bespoke multi-operand addition.
//!
//! In a bespoke printed neuron every operand of the accumulation is known
//! at design time *structurally* (which bit positions can be non-zero,
//! whether the operand is added or subtracted) even though the input
//! values themselves are runtime signals. [`Summand`] captures exactly
//! that structure; [`crate::ColumnProfile`] aggregates it per bit column.

use serde::{Deserialize, Serialize};

use crate::error::ArithError;
use crate::fixed::to_twos_complement;

/// One operand of a bespoke multi-operand addition.
///
/// A summand is either a *masked, shifted input signal* (possibly
/// subtracted) or a *design-time constant*. The masked-input form models
/// the DATE'24 approximate neuron: the product of an unsigned input
/// activation with a power-of-two weight `s·2^k` where the mask removes
/// individual activation bits from the adder tree (§III-B of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Summand {
    /// A masked input activation, shifted left by a constant exponent.
    ///
    /// The runtime value is `(x & mask) << shift`, added when
    /// `negative == false` and subtracted otherwise.
    MaskedInput {
        /// Width of the input signal `x` in bits.
        input_bits: u32,
        /// Bit mask applied to the input (`1` keeps the bit).
        mask: u64,
        /// Constant left-shift implementing the power-of-two weight.
        shift: u32,
        /// Whether this summand is subtracted (`s = -1`).
        negative: bool,
    },
    /// A design-time constant (e.g. the bias, or folded sign-correction
    /// terms).
    Constant(i64),
}

impl Summand {
    /// Convenience constructor for a positive, unmasked input summand.
    ///
    /// ```
    /// let s = pe_arith::Summand::input(4, 2);
    /// assert_eq!(s.active_bit_positions(), vec![2, 3, 4, 5]);
    /// ```
    #[must_use]
    pub fn input(input_bits: u32, shift: u32) -> Self {
        Summand::MaskedInput {
            input_bits,
            mask: (1u64 << input_bits) - 1,
            shift,
            negative: false,
        }
    }

    /// Validate internal consistency (mask within width, shift sane).
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::InvalidWidth`], [`ArithError::MaskExceedsWidth`]
    /// or [`ArithError::ShiftTooLarge`] on malformed summands.
    pub fn validate(&self) -> Result<(), ArithError> {
        match *self {
            Summand::MaskedInput {
                input_bits,
                mask,
                shift,
                ..
            } => {
                if !(1..=32).contains(&input_bits) {
                    return Err(ArithError::InvalidWidth { width: input_bits });
                }
                if mask >> input_bits != 0 {
                    return Err(ArithError::MaskExceedsWidth {
                        mask,
                        width: input_bits,
                    });
                }
                if shift > 24 {
                    return Err(ArithError::ShiftTooLarge { shift });
                }
                Ok(())
            }
            Summand::Constant(_) => Ok(()),
        }
    }

    /// Bit positions (column indices) at which this summand can place a
    /// *variable* (runtime-dependent) bit.
    ///
    /// Constants contribute no variable bits; masked inputs contribute
    /// one position per set mask bit, offset by the shift.
    #[must_use]
    pub fn active_bit_positions(&self) -> Vec<u32> {
        match *self {
            Summand::MaskedInput { mask, shift, .. } => (0..64)
                .filter(|b| mask >> b & 1 == 1)
                .map(|b| b + shift)
                .collect(),
            Summand::Constant(_) => Vec::new(),
        }
    }

    /// Number of variable bits this summand feeds into the adder tree.
    #[must_use]
    pub fn active_bit_count(&self) -> u32 {
        match *self {
            Summand::MaskedInput { mask, .. } => mask.count_ones(),
            Summand::Constant(_) => 0,
        }
    }

    /// Whether this summand is subtracted.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        matches!(*self, Summand::MaskedInput { negative: true, .. })
    }

    /// Whether the summand is structurally zero (empty mask or zero
    /// constant) and can be dropped from the adder tree entirely.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match *self {
            Summand::MaskedInput { mask, .. } => mask == 0,
            Summand::Constant(c) => c == 0,
        }
    }

    /// Maximum runtime value of the summand *magnitude* (before sign).
    #[must_use]
    pub fn max_magnitude(&self) -> u64 {
        match *self {
            Summand::MaskedInput { mask, shift, .. } => mask << shift,
            Summand::Constant(c) => c.unsigned_abs(),
        }
    }

    /// Evaluate the summand for a concrete input value.
    ///
    /// For constants the input is ignored. The result carries the sign.
    #[must_use]
    pub fn evaluate(&self, x: u64) -> i64 {
        match *self {
            Summand::MaskedInput {
                mask,
                shift,
                negative,
                ..
            } => {
                let v = ((x & mask) << shift) as i64;
                if negative {
                    -v
                } else {
                    v
                }
            }
            Summand::Constant(c) => c,
        }
    }

    /// Fold the subtraction of this summand into inverted variable bits
    /// plus a constant correction, over an accumulator of `acc_bits`.
    ///
    /// Two's-complement subtraction of `v` (whose variable bits live at
    /// [`Self::active_bit_positions`]) is `~v + 1` over the accumulator
    /// width: the variable bits are inverted in place (one NOT gate each,
    /// no FA impact), every *other* accumulator bit becomes a constant
    /// `1`, and the `+1` is a constant. This method returns that constant
    /// correction, which the caller accumulates into the neuron's bias
    /// (§III-A of the paper: "the '1' from all two's complement negations
    /// may be accumulated in the constant bias term").
    ///
    /// Returns `None` for constants and non-negative summands.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::ShiftTooLarge`] if the summand's bits do not
    /// fit in `acc_bits`.
    pub fn negation_constant(&self, acc_bits: u32) -> Result<Option<u64>, ArithError> {
        match *self {
            Summand::MaskedInput {
                mask,
                shift,
                negative: true,
                ..
            } => {
                let positions = mask << shift;
                if acc_bits > 63 || positions >> acc_bits != 0 {
                    return Err(ArithError::ShiftTooLarge { shift });
                }
                let all_ones = (1u64 << acc_bits) - 1;
                // Constant part of ~v: ones everywhere the variable bits are
                // not; plus the +1 of two's complement.
                let constant = (all_ones & !positions).wrapping_add(1) & all_ones;
                Ok(Some(constant))
            }
            _ => Ok(None),
        }
    }
}

/// Encode a signed constant as bit positions over `acc_bits`, i.e. the
/// columns its two's-complement pattern occupies.
///
/// # Errors
///
/// Returns [`ArithError::ValueOutOfRange`] if the constant does not fit.
pub fn constant_bit_pattern(c: i64, acc_bits: u32) -> Result<u64, ArithError> {
    to_twos_complement(c, acc_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_positions_respect_shift() {
        let s = Summand::MaskedInput {
            input_bits: 4,
            mask: 0b1011,
            shift: 2,
            negative: false,
        };
        assert_eq!(s.active_bit_positions(), vec![2, 3, 5]);
        assert_eq!(s.active_bit_count(), 3);
    }

    #[test]
    fn evaluate_applies_mask_shift_sign() {
        let s = Summand::MaskedInput {
            input_bits: 4,
            mask: 0b1010,
            shift: 1,
            negative: true,
        };
        // x = 0b1111 -> masked 0b1010 = 10 -> <<1 = 20 -> negated.
        assert_eq!(s.evaluate(0b1111), -20);
        assert_eq!(Summand::Constant(-3).evaluate(123), -3);
    }

    #[test]
    fn zero_mask_is_structurally_zero() {
        let s = Summand::MaskedInput {
            input_bits: 4,
            mask: 0,
            shift: 3,
            negative: true,
        };
        assert!(s.is_zero());
        assert_eq!(s.max_magnitude(), 0);
    }

    #[test]
    fn validation_rejects_bad_masks() {
        let s = Summand::MaskedInput {
            input_bits: 4,
            mask: 0b10000,
            shift: 0,
            negative: false,
        };
        assert_eq!(
            s.validate(),
            Err(ArithError::MaskExceedsWidth {
                mask: 0b10000,
                width: 4
            })
        );
    }

    /// The algebra the paper relies on: over an accumulator of width W,
    /// `-v mod 2^W == (~v_variable_bits) + negation_constant`, so folding
    /// the constant into the bias preserves exact arithmetic.
    #[test]
    fn negation_constant_matches_twos_complement() {
        let acc_bits = 10;
        let modulus = 1u64 << acc_bits;
        for mask in [0b1111u64, 0b1010, 0b0001, 0b1000] {
            for shift in 0..4u32 {
                let s = Summand::MaskedInput {
                    input_bits: 4,
                    mask,
                    shift,
                    negative: true,
                };
                let k = s.negation_constant(acc_bits).unwrap().unwrap();
                for x in 0..16u64 {
                    let v = (x & mask) << shift;
                    // Inverted variable bits: bits of ~v restricted to the
                    // variable positions.
                    let inverted = (!v) & (mask << shift);
                    let lhs = (inverted + k) % modulus;
                    let rhs = modulus.wrapping_sub(v) % modulus;
                    assert_eq!(lhs, rhs, "mask={mask:#b} shift={shift} x={x}");
                }
            }
        }
    }

    #[test]
    fn negation_constant_none_for_positive() {
        let s = Summand::input(4, 0);
        assert_eq!(s.negation_constant(8).unwrap(), None);
        assert_eq!(Summand::Constant(5).negation_constant(8).unwrap(), None);
    }
}
