//! Compression-tree model: reduce a [`ColumnProfile`] to two rows and
//! count the full adders (and optionally half adders) consumed.
//!
//! The DATE'24 paper's area proxy (§III-C) assumes FA-only 3:2 reduction:
//! "Each FA performs a 3-to-2 reduction ... Reduction is repeated until
//! only two bits remain in each column", followed by a final
//! carry-propagate addition of the two remaining rows. [`Reducer`]
//! implements that model plus a slightly more faithful FA+HA variant for
//! ablation studies.

use serde::{Deserialize, Serialize};

use crate::column::ColumnProfile;

/// Which compressor cells the reduction tree may instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReductionKind {
    /// Full adders only — the paper's simplifying assumption (§III-C).
    FaOnly,
    /// Full adders plus half adders (Dadda-style), used by the netlist
    /// elaborator and the `fa_vs_netlist` ablation bench.
    FaHa,
}

/// Outcome of reducing a column profile to at most two bits per column.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionStats {
    /// Full adders instantiated in the compression tree.
    pub tree_full_adders: u32,
    /// Half adders instantiated in the compression tree (0 for
    /// [`ReductionKind::FaOnly`]).
    pub tree_half_adders: u32,
    /// Full adders of the final carry-propagate adder.
    pub cpa_full_adders: u32,
    /// Half adders of the final carry-propagate adder.
    pub cpa_half_adders: u32,
    /// Number of reduction stages (tree depth in compressor levels).
    pub stages: u32,
    /// Column profile after reduction (each column at most 2 high),
    /// i.e. the two rows entering the final adder.
    pub final_profile: ColumnProfile,
}

impl ReductionStats {
    /// All full adders: compression tree plus final adder.
    #[must_use]
    pub fn full_adders(&self) -> u32 {
        self.tree_full_adders + self.cpa_full_adders
    }

    /// All half adders: compression tree plus final adder.
    #[must_use]
    pub fn half_adders(&self) -> u32 {
        self.tree_half_adders + self.cpa_half_adders
    }

    /// Paper-style scalar cost: the total FA count, with HAs weighted as
    /// half an FA (an HA is roughly half the gates of an FA).
    #[must_use]
    pub fn fa_equivalent(&self) -> f64 {
        f64::from(self.full_adders()) + 0.5 * f64::from(self.half_adders())
    }
}

/// Reduces column profiles to two rows and counts compressor cells.
///
/// ```
/// use pe_arith::{ColumnProfile, Reducer, ReductionKind};
///
/// // Nine bits in one column: FA-only reduction needs 4 FAs in-column
/// // (plus carries rippling into the next column).
/// let p = ColumnProfile::from_heights(vec![9]);
/// let stats = Reducer::new(ReductionKind::FaOnly).reduce(&p);
/// assert!(stats.tree_full_adders >= 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reducer {
    kind: ReductionKind,
}

impl Reducer {
    /// Create a reducer using the given compressor policy.
    #[must_use]
    pub fn new(kind: ReductionKind) -> Self {
        Self { kind }
    }

    /// The compressor policy of this reducer.
    #[must_use]
    pub fn kind(&self) -> ReductionKind {
        self.kind
    }

    /// Reduce `profile` until every column holds at most two bits, then
    /// cost the final two-row carry-propagate adder.
    ///
    /// The model is stage-based: in each stage every column of height
    /// `h ≥ 3` feeds `⌊h/3⌋` full adders (each consuming 3 bits,
    /// producing a sum bit in place and a carry one column left). With
    /// [`ReductionKind::FaHa`], a leftover pair in a column that still
    /// needs shrinking is consumed by a half adder. Stages repeat until
    /// all columns are ≤ 2 high.
    #[must_use]
    pub fn reduce(&self, profile: &ColumnProfile) -> ReductionStats {
        let mut heights: Vec<u32> = profile.as_heights().to_vec();
        let mut stats = self.reduce_in_place(&mut heights);
        stats.final_profile = ColumnProfile::from_heights(heights);
        stats
    }

    /// [`reduce`](Self::reduce) directly on a mutable height vector,
    /// leaving the final two rows in `heights` and
    /// `final_profile` empty — the allocation-free core shared with the
    /// memoized estimator hot path.
    pub(crate) fn reduce_in_place(&self, heights: &mut Vec<u32>) -> ReductionStats {
        let mut stats = ReductionStats::default();

        // Stages update in place with a single carry rail (carries of
        // column `c − 1` arrive while `c`'s original height is still in
        // hand), so the loop — run a few thousand times per genome by
        // the GA's area objective — allocates nothing per stage. The
        // tallest column is tracked through each pass so deciding
        // whether another stage is needed costs no extra scan.
        let mut tallest = heights.iter().copied().max().unwrap_or(0);
        while tallest > 2 {
            stats.stages += 1;
            let mut carry_in = 0u32;
            tallest = 0;
            for h in &mut *heights {
                let fas = *h / 3;
                let mut rem = *h % 3;
                stats.tree_full_adders += fas;
                // Each FA leaves one sum bit here and one carry left.
                let mut kept = fas;
                let mut carry_out = fas;
                if self.kind == ReductionKind::FaHa && rem == 2 && *h > 2 {
                    stats.tree_half_adders += 1;
                    kept += 1;
                    carry_out += 1;
                    rem = 0;
                }
                *h = kept + rem + carry_in;
                tallest = tallest.max(*h);
                carry_in = carry_out;
            }
            if carry_in > 0 {
                heights.push(carry_in);
                tallest = tallest.max(carry_in);
            }
            while heights.last() == Some(&0) {
                heights.pop();
            }
        }

        // Final two-row carry-propagate adder: walk columns with a carry
        // rail. A column with two bits plus incoming carry needs an FA;
        // two bits without carry, or one bit with carry, needs an HA
        // (counted as an FA under FaOnly, matching the paper's
        // FA-only assumption); one bit without carry is wiring.
        let mut carry = false;
        for &h in heights.iter() {
            match (h, carry) {
                (0, false) => {}
                (0, true) => {
                    // The incoming carry becomes this column's sum bit:
                    // wiring only, and no carry propagates further.
                    carry = false;
                }
                (1, false) => {}
                (1, true) | (2, false) => {
                    if self.kind == ReductionKind::FaHa {
                        stats.cpa_half_adders += 1;
                    } else {
                        stats.cpa_full_adders += 1;
                    }
                    // HA of (bit,carry) or (bit,bit): carry-out possible.
                    carry = true;
                }
                (2, true) => {
                    stats.cpa_full_adders += 1;
                    carry = true;
                }
                _ => unreachable!("columns are at most 2 high after reduction"),
            }
        }

        stats
    }
}

impl Default for Reducer {
    /// The paper's FA-only policy.
    fn default() -> Self {
        Self::new(ReductionKind::FaOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_costs_nothing() {
        let stats = Reducer::default().reduce(&ColumnProfile::new());
        assert_eq!(stats.full_adders(), 0);
        assert_eq!(stats.stages, 0);
    }

    #[test]
    fn two_high_profile_needs_only_cpa() {
        let p = ColumnProfile::from_heights(vec![2, 2, 2]);
        let stats = Reducer::new(ReductionKind::FaOnly).reduce(&p);
        assert_eq!(stats.tree_full_adders, 0);
        // col0: (2,no carry) -> adder, then carries ripple.
        assert_eq!(stats.cpa_full_adders, 3);
    }

    #[test]
    fn three_in_column_is_one_fa() {
        let p = ColumnProfile::from_heights(vec![3]);
        let stats = Reducer::new(ReductionKind::FaOnly).reduce(&p);
        assert_eq!(stats.tree_full_adders, 1);
        assert_eq!(stats.stages, 1);
        // After reduction: col0 has 1 bit, col1 has 1 bit -> no CPA cells.
        assert_eq!(stats.cpa_full_adders, 0);
    }

    #[test]
    fn paper_rule_three_zeros_save_one_fa() {
        // §III-B: "for every three constant 0 in a column, one FA is
        // eliminated from that column". Compare a 6-high column against a
        // 3-high column (three bits hard-wired to zero).
        let dense = Reducer::default().reduce(&ColumnProfile::from_heights(vec![6]));
        let pruned = Reducer::default().reduce(&ColumnProfile::from_heights(vec![3]));
        assert_eq!(dense.tree_full_adders - pruned.tree_full_adders, 1);
    }

    #[test]
    fn fa_ha_uses_half_adders_and_both_policies_terminate() {
        for heights in [vec![5u32, 4, 7], vec![9, 9, 9, 9], vec![2, 8, 1, 6]] {
            let p = ColumnProfile::from_heights(heights.clone());
            let fa = Reducer::new(ReductionKind::FaOnly).reduce(&p);
            let faha = Reducer::new(ReductionKind::FaHa).reduce(&p);
            assert_eq!(fa.tree_half_adders, 0);
            assert!(faha.final_profile.max_height() <= 2, "heights {heights:?}");
            assert!(fa.final_profile.max_height() <= 2, "heights {heights:?}");
            // An HA is cheaper than an FA, so FA-equivalents of the FaHa
            // policy never exceed the FaOnly cost by more than the carry
            // slack it introduces (one FA per HA placed, worst case).
            assert!(
                faha.fa_equivalent() <= fa.fa_equivalent() + f64::from(faha.half_adders()),
                "heights {heights:?}"
            );
        }
    }

    #[test]
    fn reduction_conserves_value_capacity() {
        // The maximum representable sum of the reduced profile must be at
        // least that of the original (3:2 compression is value-preserving).
        for heights in [vec![4u32, 4, 4], vec![7, 1, 3], vec![10]] {
            let p = ColumnProfile::from_heights(heights);
            let max_before: u64 = p.iter().map(|(c, h)| u64::from(h) << c).sum();
            let stats = Reducer::default().reduce(&p);
            let max_after: u64 = stats
                .final_profile
                .iter()
                .map(|(c, h)| u64::from(h) << c)
                .sum();
            assert!(max_after >= max_before);
        }
    }

    #[test]
    fn final_profile_is_at_most_two_high() {
        let p = ColumnProfile::from_heights(vec![9, 3, 17, 2, 5]);
        for kind in [ReductionKind::FaOnly, ReductionKind::FaHa] {
            let stats = Reducer::new(kind).reduce(&p);
            assert!(stats.final_profile.max_height() <= 2, "{kind:?}");
        }
    }

    #[test]
    fn deeper_columns_take_more_stages() {
        let shallow = Reducer::default().reduce(&ColumnProfile::from_heights(vec![3]));
        let deep = Reducer::default().reduce(&ColumnProfile::from_heights(vec![27]));
        assert!(deep.stages > shallow.stages);
    }

    #[test]
    fn fa_equivalent_weights_ha_as_half() {
        let stats = ReductionStats {
            tree_full_adders: 4,
            tree_half_adders: 2,
            cpa_full_adders: 1,
            cpa_half_adders: 1,
            stages: 2,
            final_profile: ColumnProfile::new(),
        };
        assert!((stats.fa_equivalent() - 6.5).abs() < 1e-12);
    }
}
