//! Bit-level arithmetic substrate for bespoke printed circuits.
//!
//! Printed (EGFET) machine-learning classifiers are *bespoke*: every model
//! coefficient is hard-wired into the netlist, so the cost of a circuit is
//! decided at the granularity of individual bits entering multi-operand
//! adder trees. This crate provides the bit-level machinery that the rest
//! of the workspace builds on:
//!
//! * [`ColumnProfile`] — the number of (potentially non-zero) bits per
//!   bit-column of a multi-operand addition, the core abstraction shared
//!   by the area estimator and the netlist elaborator.
//! * [`reduce`] — a 3:2 / 2:2 compression-tree model that counts the
//!   full adders (and optionally half adders) needed to reduce a column
//!   profile to two rows, plus the final carry-propagate adder.
//! * [`estimator`] — the DATE'24 paper's fast `AdderArea` estimate
//!   (§III-C): from the masks, signs, shift exponents and bias of an
//!   approximate neuron straight to an FA count.
//! * [`csd`] — canonical signed-digit decomposition of constants, used to
//!   cost the *exact* bespoke baseline's constant multipliers.
//! * [`summand`] — the description of one operand of a bespoke
//!   multi-operand addition (masked input, shift, sign, or a constant).
//!
//! # Example
//!
//! Estimate the adder area of a tiny approximate neuron with two 4-bit
//! inputs, power-of-two weights `+2^1` and `-2^0`, full masks and bias 3:
//!
//! ```
//! use pe_arith::estimator::{AdderAreaEstimator, NeuronArithSpec, WeightArith};
//!
//! let spec = NeuronArithSpec {
//!     input_bits: 4,
//!     weights: vec![
//!         WeightArith { mask: 0b1111, shift: 1, negative: false },
//!         WeightArith { mask: 0b1111, shift: 0, negative: true },
//!     ],
//!     bias: 3,
//! };
//! let est = AdderAreaEstimator::paper();
//! let report = est.estimate(&spec);
//! assert!(report.full_adders > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod column;
pub mod csd;
pub mod error;
pub mod estimator;
pub mod fixed;
pub mod reduce;
pub mod summand;

pub use cache::BoundedCache;
pub use column::ColumnProfile;
pub use csd::{csd_digits, CsdDigit};
pub use error::ArithError;
pub use estimator::{
    AdderAreaEstimator, AdderAreaReport, MemoAreaEstimator, NeuronArithSpec, NeuronGateCounts,
    WeightArith,
};
pub use fixed::{
    clamp_to_bits, max_signed, max_unsigned, min_signed, signed_width, unsigned_width,
};
pub use reduce::{Reducer, ReductionKind, ReductionStats};
pub use summand::Summand;
