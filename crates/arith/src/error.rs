//! Error type shared by the arithmetic substrate.

use std::fmt;

/// Errors produced while constructing or evaluating bit-level arithmetic
/// models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArithError {
    /// A bit width of zero or above the supported maximum was requested.
    ///
    /// Bespoke printed datapaths in this workspace are at most 64 bits
    /// wide; widths outside `1..=64` are rejected.
    InvalidWidth {
        /// The offending width.
        width: u32,
    },
    /// A mask had bits set above the declared input width.
    MaskExceedsWidth {
        /// The offending mask value.
        mask: u64,
        /// The declared input width in bits.
        width: u32,
    },
    /// A shift exponent would move bits beyond the supported accumulator.
    ShiftTooLarge {
        /// The offending shift.
        shift: u32,
    },
    /// A value does not fit in the requested representation.
    ValueOutOfRange {
        /// The offending value.
        value: i64,
        /// The width it was supposed to fit in.
        width: u32,
    },
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::InvalidWidth { width } => {
                write!(f, "invalid bit width {width}, expected 1..=64")
            }
            ArithError::MaskExceedsWidth { mask, width } => {
                write!(f, "mask {mask:#b} has bits above declared width {width}")
            }
            ArithError::ShiftTooLarge { shift } => {
                write!(f, "shift {shift} exceeds supported accumulator width")
            }
            ArithError::ValueOutOfRange { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
        }
    }
}

impl std::error::Error for ArithError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msgs = [
            ArithError::InvalidWidth { width: 0 }.to_string(),
            ArithError::MaskExceedsWidth {
                mask: 0b10000,
                width: 4,
            }
            .to_string(),
            ArithError::ShiftTooLarge { shift: 99 }.to_string(),
            ArithError::ValueOutOfRange {
                value: 300,
                width: 8,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ArithError>();
    }
}
