//! Canonical signed-digit (CSD) decomposition of constants.
//!
//! The *exact* bespoke baseline (MICRO'20 style, paper §I/Table I) hard-
//! wires full-precision coefficients: each constant multiplier becomes a
//! network of shifted adds/subtracts of the input, one per non-zero digit
//! of the coefficient. CSD recoding minimizes the number of non-zero
//! digits (no two adjacent digits are non-zero), which is the standard
//! way synthesis tools implement bespoke constant multipliers — so we use
//! it to cost the baseline fairly.

use serde::{Deserialize, Serialize};

/// One digit of a canonical signed-digit representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CsdDigit {
    /// Digit value −1 at this power of two.
    MinusOne,
    /// Digit value +1 at this power of two.
    PlusOne,
}

impl CsdDigit {
    /// Numeric value of the digit.
    #[must_use]
    pub fn value(self) -> i64 {
        match self {
            CsdDigit::MinusOne => -1,
            CsdDigit::PlusOne => 1,
        }
    }
}

/// Decompose `value` into canonical signed digits.
///
/// Returns `(position, digit)` pairs, least-significant first; positions
/// are powers of two. The representation satisfies the CSD property: no
/// two returned positions are adjacent.
///
/// ```
/// use pe_arith::{csd_digits, CsdDigit};
///
/// // 7 = 8 - 1, two digits instead of three.
/// let d = csd_digits(7);
/// assert_eq!(d, vec![(0, CsdDigit::MinusOne), (3, CsdDigit::PlusOne)]);
///
/// // The decomposition always reconstructs the value.
/// let v: i64 = d.iter().map(|&(p, dig)| dig.value() << p).sum();
/// assert_eq!(v, 7);
/// ```
#[must_use]
pub fn csd_digits(value: i64) -> Vec<(u32, CsdDigit)> {
    let mut digits = Vec::new();
    let mut v = i128::from(value);
    let mut pos = 0u32;
    while v != 0 {
        if v & 1 == 1 {
            // Choose digit in {-1, +1} so the remainder is divisible by 4
            // (guaranteeing the next digit is zero).
            let rem4 = ((v % 4) + 4) % 4;
            let digit = if rem4 == 1 { 1 } else { -1 };
            digits.push((
                pos,
                if digit == 1 {
                    CsdDigit::PlusOne
                } else {
                    CsdDigit::MinusOne
                },
            ));
            v -= digit;
        }
        v >>= 1;
        pos += 1;
    }
    digits
}

/// Number of non-zero digits in the CSD representation of `value`.
///
/// This is the number of shifted partial products a bespoke constant
/// multiplier for `value` feeds into its adder tree.
///
/// ```
/// assert_eq!(pe_arith::csd::csd_nonzero_digits(0), 0);
/// assert_eq!(pe_arith::csd::csd_nonzero_digits(-96), 2); // -128 + 32
/// ```
#[must_use]
pub fn csd_nonzero_digits(value: i64) -> u32 {
    csd_digits(value).len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(digits: &[(u32, CsdDigit)]) -> i64 {
        digits
            .iter()
            .map(|&(p, d)| d.value().checked_shl(p).unwrap())
            .sum()
    }

    #[test]
    fn reconstructs_all_small_values() {
        for v in -1000i64..=1000 {
            assert_eq!(reconstruct(&csd_digits(v)), v, "v={v}");
        }
    }

    #[test]
    fn no_adjacent_nonzero_digits() {
        for v in -1000i64..=1000 {
            let d = csd_digits(v);
            for w in d.windows(2) {
                assert!(w[1].0 >= w[0].0 + 2, "adjacent digits for {v}: {d:?}");
            }
        }
    }

    #[test]
    fn csd_never_more_digits_than_binary() {
        for v in 1i64..=4096 {
            assert!(
                csd_nonzero_digits(v) <= v.count_ones(),
                "v={v}: csd {} vs binary {}",
                csd_nonzero_digits(v),
                v.count_ones()
            );
        }
    }

    #[test]
    fn known_recodings() {
        assert_eq!(csd_nonzero_digits(15), 2); // 16 - 1
        assert_eq!(csd_nonzero_digits(85), 4); // 64+16+4+1 alternating, already CSD
        assert_eq!(csd_nonzero_digits(-1), 1);
        assert_eq!(csd_nonzero_digits(0), 0);
        assert_eq!(csd_nonzero_digits(1 << 20), 1);
    }

    #[test]
    fn negative_values_mirror_positive() {
        for v in 1i64..=512 {
            assert_eq!(csd_nonzero_digits(v), csd_nonzero_digits(-v));
        }
    }
}
