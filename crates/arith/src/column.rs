//! Bit-column profiles of multi-operand additions.
//!
//! A [`ColumnProfile`] records, for every bit position (column) of a
//! multi-operand addition, how many *potentially non-zero* bits must be
//! summed there. It is the single abstraction consumed both by the fast
//! FA-count area estimator ([`crate::estimator`]) and by the netlist
//! elaborator in `pe-hw`, which guarantees the estimate and the
//! "synthesized" circuit cannot drift structurally.

use serde::{Deserialize, Serialize};

use crate::error::ArithError;
use crate::fixed::unsigned_width;
use crate::summand::{constant_bit_pattern, Summand};

/// Per-column count of potentially non-zero bits in a multi-operand
/// addition.
///
/// Column `c` corresponds to bit weight `2^c`. Every hard-wired `0`
/// (a masked-out activation bit, or a zero bit of a constant) simply
/// does not appear in the profile — which is exactly how bespoke
/// hardware saves full adders (paper §III-B: "for every three constant
/// '0' in a column, one FA is eliminated from that column").
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnProfile {
    heights: Vec<u32>,
}

impl ColumnProfile {
    /// Create an empty profile (an addition with no operands).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a profile from explicit column heights (column 0 first).
    ///
    /// ```
    /// let p = pe_arith::ColumnProfile::from_heights(vec![3, 1, 2]);
    /// assert_eq!(p.height(0), 3);
    /// assert_eq!(p.height(5), 0);
    /// ```
    #[must_use]
    pub fn from_heights(heights: Vec<u32>) -> Self {
        let mut p = Self { heights };
        p.trim();
        p
    }

    /// Build the profile of a complete bespoke accumulation.
    ///
    /// Negative summands are handled exactly as the bespoke netlist
    /// does: their variable bits stay in place (inverted by NOT gates,
    /// which do not affect column heights), and the two's-complement
    /// constant corrections are folded, together with all explicit
    /// [`Summand::Constant`]s, into a single constant whose set bits are
    /// then added to the profile.
    ///
    /// `acc_bits` is the accumulator width; use
    /// [`ColumnProfile::accumulator_width`] to derive it from the
    /// summands themselves.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from malformed summands and
    /// out-of-range constants.
    pub fn from_summands(summands: &[Summand], acc_bits: u32) -> Result<Self, ArithError> {
        let mut heights = vec![0u32; acc_bits as usize];
        let modulus_mask = (1u64 << acc_bits) - 1;
        let mut folded_constant: u64 = 0;

        for s in summands {
            s.validate()?;
            if s.is_zero() {
                continue;
            }
            match s {
                Summand::MaskedInput { .. } => {
                    for pos in s.active_bit_positions() {
                        if pos >= acc_bits {
                            return Err(ArithError::ShiftTooLarge { shift: pos });
                        }
                        heights[pos as usize] += 1;
                    }
                    if let Some(k) = s.negation_constant(acc_bits)? {
                        folded_constant = folded_constant.wrapping_add(k) & modulus_mask;
                    }
                }
                Summand::Constant(c) => {
                    let pattern = constant_bit_pattern(*c, acc_bits)?;
                    folded_constant = folded_constant.wrapping_add(pattern) & modulus_mask;
                }
            }
        }

        for b in 0..acc_bits {
            if folded_constant >> b & 1 == 1 {
                heights[b as usize] += 1;
            }
        }

        let mut p = Self { heights };
        p.trim();
        Ok(p)
    }

    /// Accumulator width (in bits) that safely holds any runtime value of
    /// the given summands, interpreting the result in two's complement.
    ///
    /// The width covers `[-Σ neg_max − |bias⁻|, Σ pos_max + bias⁺]` with
    /// one sign bit.
    #[must_use]
    pub fn accumulator_width(summands: &[Summand]) -> u32 {
        let mut pos: u64 = 0;
        let mut neg: u64 = 0;
        for s in summands {
            match s {
                Summand::MaskedInput { negative, .. } => {
                    if *negative {
                        neg += s.max_magnitude();
                    } else {
                        pos += s.max_magnitude();
                    }
                }
                Summand::Constant(c) => {
                    if *c >= 0 {
                        pos += c.unsigned_abs();
                    } else {
                        neg += c.unsigned_abs();
                    }
                }
            }
        }
        let magnitude = pos.max(neg).max(1);
        unsigned_width(magnitude) + 1
    }

    /// Number of columns in the profile (index of the highest non-empty
    /// column plus one).
    #[must_use]
    pub fn width(&self) -> u32 {
        self.heights.len() as u32
    }

    /// Height (bit count) of column `c`; columns beyond the profile are 0.
    #[must_use]
    pub fn height(&self, c: u32) -> u32 {
        self.heights.get(c as usize).copied().unwrap_or(0)
    }

    /// Total number of bits across all columns.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.heights.iter().sum()
    }

    /// Tallest column height, or 0 for an empty profile.
    #[must_use]
    pub fn max_height(&self) -> u32 {
        self.heights.iter().copied().max().unwrap_or(0)
    }

    /// Whether the profile has no bits at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heights.iter().all(|&h| h == 0)
    }

    /// Add `count` bits to column `c`, growing the profile as needed.
    pub fn add_bits(&mut self, c: u32, count: u32) {
        if count == 0 {
            return;
        }
        if c as usize >= self.heights.len() {
            self.heights.resize(c as usize + 1, 0);
        }
        self.heights[c as usize] += count;
    }

    /// Merge another profile into this one column-wise.
    pub fn merge(&mut self, other: &ColumnProfile) {
        for (c, &h) in other.heights.iter().enumerate() {
            self.add_bits(c as u32, h);
        }
    }

    /// Iterate over `(column, height)` pairs for non-empty columns.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.heights
            .iter()
            .enumerate()
            .filter(|(_, &h)| h > 0)
            .map(|(c, &h)| (c as u32, h))
    }

    /// Column heights as a slice (column 0 first).
    #[must_use]
    pub fn as_heights(&self) -> &[u32] {
        &self.heights
    }

    fn trim(&mut self) {
        while self.heights.last() == Some(&0) {
            self.heights.pop();
        }
    }
}

impl FromIterator<u32> for ColumnProfile {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Self::from_heights(iter.into_iter().collect())
    }
}

impl Extend<(u32, u32)> for ColumnProfile {
    fn extend<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) {
        for (c, h) in iter {
            self.add_bits(c, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(mask: u64, shift: u32, negative: bool) -> Summand {
        Summand::MaskedInput {
            input_bits: 4,
            mask,
            shift,
            negative,
        }
    }

    #[test]
    fn profile_from_positive_summands_counts_mask_bits() {
        let summands = vec![masked(0b1111, 0, false), masked(0b1010, 1, false)];
        let acc = ColumnProfile::accumulator_width(&summands);
        let p = ColumnProfile::from_summands(&summands, acc).unwrap();
        // Columns: c0: x bit; c1: x bit + mask bit1<<1; etc.
        assert_eq!(p.height(0), 1);
        assert_eq!(p.height(1), 1); // 0b1010 bit1 -> col 2 actually
        assert_eq!(p.height(2), 2); // x bit2 + masked bit1<<1
        assert_eq!(p.height(4), 1); // masked bit3<<1
        assert_eq!(p.total_bits(), 4 + 2);
    }

    #[test]
    fn paper_example_mask_101101() {
        // §III-B example: A' = a5 0 a3 a2 0 a0 with mask 101101 on a
        // 6-bit signal: three bits survive... (mask has 4 set bits:
        // 101101 -> bits 0,2,3,5).
        let s = Summand::MaskedInput {
            input_bits: 6,
            mask: 0b101101,
            shift: 0,
            negative: false,
        };
        let p = ColumnProfile::from_summands(std::slice::from_ref(&s), 8).unwrap();
        assert_eq!(p.height(0), 1);
        assert_eq!(p.height(1), 0);
        assert_eq!(p.height(2), 1);
        assert_eq!(p.height(3), 1);
        assert_eq!(p.height(4), 0);
        assert_eq!(p.height(5), 1);
    }

    #[test]
    fn constants_fold_together() {
        // Two constants 0b0101 and 0b0011 fold to 0b1000: only one column.
        let p =
            ColumnProfile::from_summands(&[Summand::Constant(5), Summand::Constant(3)], 8).unwrap();
        assert_eq!(p.height(3), 1);
        assert_eq!(p.total_bits(), 1);
    }

    #[test]
    fn negative_summand_adds_folded_constant_bits() {
        let summands = vec![masked(0b1111, 0, false), masked(0b0001, 0, true)];
        let acc = ColumnProfile::accumulator_width(&summands);
        let p = ColumnProfile::from_summands(&summands, acc).unwrap();
        // The negated bit stays in column 0 (inverted), the fold constant
        // occupies the remaining columns.
        assert!(p.height(0) >= 2);
        assert!(p.total_bits() > 5);
    }

    /// Exactness check: simulate the bespoke structure (inverted bits +
    /// folded constant, modulo 2^W) against plain signed arithmetic.
    #[test]
    fn folded_semantics_match_signed_sum() {
        let summands = vec![
            masked(0b1101, 1, false),
            masked(0b0111, 0, true),
            masked(0b1011, 2, true),
            Summand::Constant(-5),
        ];
        let acc = ColumnProfile::accumulator_width(&summands);
        let modulus = 1i128 << acc;
        for x0 in 0..16u64 {
            for x1 in 0..16u64 {
                for x2 in 0..16u64 {
                    let exact: i64 = summands[0].evaluate(x0)
                        + summands[1].evaluate(x1)
                        + summands[2].evaluate(x2)
                        + summands[3].evaluate(0);
                    let wrapped = ((exact as i128) % modulus + modulus) % modulus;
                    // Structural recomputation: variable bits and constants.
                    let mut acc_val: u64 = 0;
                    let mask_mod = (1u64 << acc) - 1;
                    for (s, x) in summands.iter().zip([x0, x1, x2, 0]) {
                        match s {
                            Summand::MaskedInput {
                                mask,
                                shift,
                                negative,
                                ..
                            } => {
                                let v = (x & mask) << shift;
                                if *negative {
                                    let inv = (!v) & (mask << shift);
                                    let k = s.negation_constant(acc).unwrap().unwrap();
                                    acc_val = acc_val.wrapping_add(inv).wrapping_add(k) & mask_mod;
                                } else {
                                    acc_val = acc_val.wrapping_add(v) & mask_mod;
                                }
                            }
                            Summand::Constant(c) => {
                                let pat = constant_bit_pattern(*c, acc).unwrap();
                                acc_val = acc_val.wrapping_add(pat) & mask_mod;
                            }
                        }
                    }
                    assert_eq!(acc_val as i128, wrapped, "x=({x0},{x1},{x2})");
                }
            }
        }
    }

    #[test]
    fn accumulator_width_has_headroom() {
        let summands = vec![masked(0b1111, 3, false); 8];
        let w = ColumnProfile::accumulator_width(&summands);
        // 8 * (15<<3) = 960, needs 10 bits + sign.
        assert_eq!(w, 11);
    }

    #[test]
    fn empty_profile_behaviour() {
        let p = ColumnProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.width(), 0);
        assert_eq!(p.max_height(), 0);
        let from_zero = ColumnProfile::from_heights(vec![0, 0, 0]);
        assert_eq!(from_zero.width(), 0);
    }

    #[test]
    fn merge_and_extend() {
        let mut a = ColumnProfile::from_heights(vec![1, 2]);
        let b = ColumnProfile::from_heights(vec![0, 1, 4]);
        a.merge(&b);
        assert_eq!(a.as_heights(), &[1, 3, 4]);
        a.extend([(0u32, 2u32)]);
        assert_eq!(a.height(0), 3);
    }
}
