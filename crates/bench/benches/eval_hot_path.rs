//! The GA evaluation hot path: single-genome serial scoring vs the
//! batched, parallel, memoized evaluation core.
//!
//! Run with `cargo bench -p pe-bench --bench eval_hot_path`. Besides
//! the Criterion timings it writes `target/experiments/BENCH_eval.json`
//! with evaluations/sec for three regimes — serial loop, cold
//! batched-parallel, and a GA-shaped generation stream where elitist
//! duplicates hit the genome memo — so CI can track the speedup of
//! batching + memoization over the naive loop.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use serde::Serialize;

use pe_datasets::{generate, quantize, stratified_split, Dataset};
use pe_mlp::{AxMlp, FixedMlp, QuantConfig, Topology, TrainConfig};
use pe_nsga::{random_genome, IntProblem};
use printed_axc::eval::{thread_budget, CachedEvaluator};
use printed_axc::{AxTrainConfig, AxTrainProblem, HwAwareTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A realistic fitness problem (the Pendigits study's shape) plus a
/// population of genomes around the doped seed.
fn setup() -> (AxTrainProblem, Vec<Vec<u32>>) {
    let spec = Dataset::Pendigits.spec();
    let data = generate(Dataset::Pendigits, 0);
    let split = stratified_split(&data, 0.7, 0).expect("valid fraction");
    let sgd = TrainConfig {
        epochs: 5,
        seed: 0,
        ..TrainConfig::default()
    };
    let (mlp, _) = pe_mlp::train::train_best_of(
        &Topology::new(spec.topology()),
        &split.train.features,
        &split.train.labels,
        &sgd,
        1,
    );
    let fixed = FixedMlp::quantize(&mlp, QuantConfig::default(), &split.train.features);
    let train_q = quantize(&split.train, 4);

    let config = AxTrainConfig::default();
    let genome_spec = HwAwareTrainer::new(config.clone()).genome_spec_for(&fixed);
    let rows = train_q.features[..train_q.len().min(400)].to_vec();
    let labels = train_q.labels[..train_q.len().min(400)].to_vec();
    let baseline_acc = fixed.accuracy(&rows, &labels);
    let problem = AxTrainProblem::new(genome_spec.clone(), rows, labels, baseline_acc, 0.10);

    // Population: the doped seed plus random genomes, as generation 0
    // of a real run would contain.
    let mut rng = StdRng::seed_from_u64(7);
    let doped = genome_spec.encode(&AxMlp::from_fixed(
        &fixed,
        config.max_shift(),
        config.bias_bits,
    ));
    let mut population = vec![doped];
    while population.len() < 32 {
        population.push(random_genome(genome_spec.bounds(), &mut rng));
    }
    (problem, population)
}

/// Mutate ~2% of each genome's genes in place — the per-generation
/// churn an elitist GA produces (most neurons survive unchanged, many
/// genomes recur verbatim).
fn drift(population: &mut [Vec<u32>], bounds: &[u32], rng: &mut StdRng) {
    for genome in population.iter_mut() {
        if rng.gen_bool(0.3) {
            continue; // elitist survivor: resubmitted verbatim
        }
        for (g, &b) in genome.iter_mut().zip(bounds) {
            if rng.gen_bool(0.02) {
                *g = rng.gen_range(0..b);
            }
        }
    }
}

#[derive(Serialize)]
struct EvalBenchReport {
    threads: usize,
    population: usize,
    generation_rounds: usize,
    serial_evals_per_sec: f64,
    batch_cold_evals_per_sec: f64,
    ga_stream_memoized_evals_per_sec: f64,
    speedup_batch_cold_vs_serial: f64,
    speedup_ga_stream_vs_serial: f64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Timed comparison written to `BENCH_eval.json` (independent of the
/// Criterion samples so the JSON is one clean apples-to-apples pass).
fn write_report(problem: &AxTrainProblem, population: &[Vec<u32>]) {
    let threads = thread_budget();
    let rounds = 5;

    // Regime 1: the pre-refactor loop — one genome at a time, no memo.
    let started = Instant::now();
    for _ in 0..rounds {
        for genome in population {
            black_box(problem.evaluate(genome));
        }
    }
    let serial = started.elapsed();

    // Regime 2: cold batched-parallel waves (fresh evaluator each
    // round: no memoization carry-over, pure batching/threading).
    let started = Instant::now();
    for _ in 0..rounds {
        let evaluator = CachedEvaluator::new(problem);
        black_box(evaluator.evaluate_batch(population));
    }
    let batch_cold = started.elapsed();

    // Regime 3: a GA-shaped generation stream — the same evaluator
    // sees successive waves where elitist survivors recur verbatim and
    // mutants share most neurons (memo + batching together).
    let evaluator = CachedEvaluator::new(problem);
    let mut wave = population.to_vec();
    let mut rng = StdRng::seed_from_u64(11);
    let started = Instant::now();
    for _ in 0..rounds {
        black_box(evaluator.evaluate_batch(&wave));
        drift(&mut wave, problem.bounds(), &mut rng);
    }
    let ga_stream = started.elapsed();

    let evals = (rounds * population.len()) as f64;
    let per_sec = |d: std::time::Duration| evals / d.as_secs_f64().max(1e-9);
    let stats = evaluator.stats();
    let report = EvalBenchReport {
        threads,
        population: population.len(),
        generation_rounds: rounds,
        serial_evals_per_sec: per_sec(serial),
        batch_cold_evals_per_sec: per_sec(batch_cold),
        ga_stream_memoized_evals_per_sec: per_sec(ga_stream),
        speedup_batch_cold_vs_serial: serial.as_secs_f64() / batch_cold.as_secs_f64().max(1e-9),
        speedup_ga_stream_vs_serial: serial.as_secs_f64() / ga_stream.as_secs_f64().max(1e-9),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    };
    println!(
        "eval core: serial {:.0} evals/s | batch(x{threads}) {:.0} evals/s ({:.2}x) | ga-stream {:.0} evals/s ({:.2}x, {} hits / {} misses)",
        report.serial_evals_per_sec,
        report.batch_cold_evals_per_sec,
        report.speedup_batch_cold_vs_serial,
        report.ga_stream_memoized_evals_per_sec,
        report.speedup_ga_stream_vs_serial,
        report.cache_hits,
        report.cache_misses,
    );
    pe_bench::format::write_json("BENCH_eval", &report);
}

fn bench(c: &mut Criterion) {
    let (problem, population) = setup();

    c.bench_function("evaluate_population_serial", |b| {
        b.iter(|| {
            for genome in &population {
                black_box(problem.evaluate(genome));
            }
        })
    });

    c.bench_function("evaluate_population_batch_parallel_cold", |b| {
        b.iter_batched(
            || CachedEvaluator::new(&problem),
            |evaluator| evaluator.evaluate_batch(&population),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("evaluate_population_batch_warm_memo", |b| {
        let evaluator = CachedEvaluator::new(&problem);
        let _ = evaluator.evaluate_batch(&population);
        b.iter(|| evaluator.evaluate_batch(&population))
    });

    write_report(&problem, &population);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench
);
criterion_main!(benches);
