//! The GA evaluation hot path: per-row oracle scoring vs the columnar
//! LUT engine with the population-level neuron-column cache, plus the
//! batched/memoized evaluation core on top.
//!
//! Run with `cargo bench -p pe-bench --bench eval_hot_path`. Besides
//! the Criterion timings it writes `target/experiments/BENCH_eval.json`
//! with evaluations/sec for four regimes — the per-row reference
//! oracle, the columnar serial loop, cold batched-parallel waves, and
//! a GA-shaped generation stream where elitist duplicates hit the
//! genome memo and mutated siblings hit the neuron-column cache — so
//! CI can track the speedup of the columnar engine over the naive
//! loop. The `ga_stream_memoized_evals_per_sec` field is directly
//! comparable across revisions (same shape, same seeds).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use serde::Serialize;

use pe_datasets::{generate, quantize, stratified_split, Dataset, QuantMatrix};
use pe_mlp::columnar::{accuracy_columns, predictions_columns_with_kernel, ColumnarScratch};
use pe_mlp::{AxMlp, FixedMlp, InferenceScratch, KernelKind, QuantConfig, Topology, TrainConfig};
use pe_nsga::{random_genome, Evaluation, IntProblem};
use printed_axc::eval::{thread_budget, CachedEvaluator, GENOME_CACHE_CAPACITY};
use printed_axc::{AxTrainConfig, AxTrainProblem, GenomeSpec, HwAwareTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything the regimes need to build (and rebuild) the fitness
/// problem: the genome layout and the subsampled training rows.
struct Setup {
    genome_spec: GenomeSpec,
    rows: QuantMatrix,
    labels: Vec<usize>,
    baseline_acc: f64,
    doped: AxMlp,
    population: Vec<Vec<u32>>,
}

impl Setup {
    /// A fresh problem with a **cold** neuron-column cache.
    fn problem(&self) -> AxTrainProblem {
        AxTrainProblem::new(
            self.genome_spec.clone(),
            self.rows.clone(),
            self.labels.clone(),
            self.baseline_acc,
            0.10,
        )
    }
}

/// A realistic fitness problem (the Pendigits study's shape) plus a
/// population of genomes around the doped seed.
fn setup() -> Setup {
    let spec = Dataset::Pendigits.spec();
    let data = generate(Dataset::Pendigits, 0);
    let split = stratified_split(&data, 0.7, 0).expect("valid fraction");
    let sgd = TrainConfig {
        epochs: 5,
        seed: 0,
        ..TrainConfig::default()
    };
    let (mlp, _) = pe_mlp::train::train_best_of(
        &Topology::new(spec.topology()),
        &split.train.features,
        &split.train.labels,
        &sgd,
        1,
    );
    let fixed = FixedMlp::quantize(&mlp, QuantConfig::default(), &split.train.features);
    let train_q = quantize(&split.train, 4);

    let config = AxTrainConfig::default();
    let genome_spec = HwAwareTrainer::new(config.clone()).genome_spec_for(&fixed);
    let n = train_q.len().min(400);
    let rows = train_q.features.head(n);
    let labels = train_q.labels[..n].to_vec();
    let baseline_acc = fixed.accuracy(&rows, &labels);
    let doped = AxMlp::from_fixed(&fixed, config.max_shift(), config.bias_bits);

    // Population: the doped seed plus random genomes, as generation 0
    // of a real run would contain.
    let mut rng = StdRng::seed_from_u64(7);
    let mut population = vec![genome_spec.encode(&doped)];
    while population.len() < 32 {
        population.push(random_genome(genome_spec.bounds(), &mut rng));
    }
    Setup {
        genome_spec,
        rows,
        labels,
        baseline_acc,
        doped,
        population,
    }
}

/// The pre-columnar evaluation algorithm, kept as the measurable
/// reference oracle: decode, then score with one `predict_with` per
/// sample (`AxTrainProblem::score_with`).
struct RowOracle<'a> {
    problem: &'a AxTrainProblem,
}

impl IntProblem for RowOracle<'_> {
    fn bounds(&self) -> &[u32] {
        self.problem.bounds()
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        thread_local! {
            static SCRATCH: std::cell::RefCell<InferenceScratch> =
                std::cell::RefCell::new(InferenceScratch::new());
        }
        let mlp = self.problem.genome_spec().decode(genes);
        let (accuracy, area) = SCRATCH.with(|s| self.problem.score_with(&mlp, &mut s.borrow_mut()));
        self.problem.evaluation_of(accuracy, area)
    }
}

/// Mutate ~2% of each genome's genes in place — the per-generation
/// churn an elitist GA produces (most neurons survive unchanged, many
/// genomes recur verbatim).
fn drift(population: &mut [Vec<u32>], bounds: &[u32], rng: &mut StdRng) {
    for genome in population.iter_mut() {
        if rng.gen_bool(0.3) {
            continue; // elitist survivor: resubmitted verbatim
        }
        for (g, &b) in genome.iter_mut().zip(bounds) {
            if rng.gen_bool(0.02) {
                *g = rng.gen_range(0..b);
            }
        }
    }
}

/// One raw-kernel timing: the full doped network pushed through
/// [`predictions_columns_with_kernel`] in the given mode, no caches.
#[derive(Debug, Serialize)]
struct KernelEntry {
    /// Kernel mode name (`scalar`/`lut`/`bitsliced`/`simd`).
    kernel: String,
    /// Whether the mode has hardware backing here (`simd` is `false`
    /// on non-x86 targets or `--no-default-features` builds; it then
    /// falls back to the scalar kernel and still runs bit-exactly).
    available: bool,
    /// Input vectors classified per second (samples × passes / time).
    raw_kernel_evals_per_sec: f64,
    /// Predictions byte-identical to the scalar reference kernel.
    matches_scalar: bool,
}

/// One point of the thread-scaling curve: the GA-shaped generation
/// stream re-run with an explicit evaluator worker count.
#[derive(Serialize)]
struct ThreadScalingEntry {
    threads: usize,
    ga_stream_evals_per_sec: f64,
    speedup_vs_one_thread: f64,
    /// All evaluations identical to the single-thread run
    /// (serialized and compared byte-for-byte).
    byte_identical_to_one_thread: bool,
}

#[derive(Serialize)]
struct EvalBenchReport {
    threads: usize,
    population: usize,
    generation_rounds: usize,
    /// The kernel mode the cached regimes below ran under
    /// (`PE_KERNEL` or the auto-detected default).
    kernel_mode: String,
    /// Shards the neuron-column cache was split across.
    column_shards: usize,
    /// Column-cache probes that hit a contended shard lock.
    column_contended: u64,
    /// The pre-columnar per-row algorithm (reference oracle).
    row_oracle_evals_per_sec: f64,
    /// Columnar LUT engine, one genome at a time (column cache warms
    /// within the regime).
    serial_evals_per_sec: f64,
    /// Cold batched-parallel waves: fresh genome memo *and* fresh
    /// column cache every round.
    batch_cold_evals_per_sec: f64,
    /// GA-shaped generation stream: persistent genome memo + column
    /// cache across drifting waves.
    ga_stream_memoized_evals_per_sec: f64,
    speedup_batch_cold_vs_serial: f64,
    speedup_ga_stream_vs_serial: f64,
    speedup_ga_stream_vs_row_oracle: f64,
    cache_hits: u64,
    cache_misses: u64,
    column_hits: u64,
    column_misses: u64,
    /// Raw columnar-kernel throughput per [`KernelKind`].
    kernels: Vec<KernelEntry>,
    /// GA-stream throughput at explicit worker counts (1 → 32), each
    /// proven byte-identical to the single-thread run.
    thread_scaling: Vec<ThreadScalingEntry>,
}

/// Time the raw columnar kernel (no caches, no genome memo) in every
/// mode and prove each bit-exact against the scalar reference.
fn kernel_entries(setup: &Setup, repeats: usize) -> Vec<KernelEntry> {
    let cols = setup.rows.columns();
    let samples = cols.samples();
    let passes = 50;
    let mut scratch = ColumnarScratch::default();
    let mut preds = Vec::new();
    let mut reference = Vec::new();
    predictions_columns_with_kernel(
        &setup.doped,
        &cols,
        &mut scratch,
        &mut reference,
        KernelKind::Scalar,
    );
    [
        KernelKind::Scalar,
        KernelKind::Lut,
        KernelKind::BitSliced,
        KernelKind::Simd,
    ]
    .into_iter()
    .map(|kernel| {
        predictions_columns_with_kernel(&setup.doped, &cols, &mut scratch, &mut preds, kernel);
        let matches_scalar = preds == reference;
        let best = (0..repeats)
            .map(|_| {
                let started = Instant::now();
                for _ in 0..passes {
                    predictions_columns_with_kernel(
                        &setup.doped,
                        &cols,
                        &mut scratch,
                        &mut preds,
                        kernel,
                    );
                    black_box(&preds);
                }
                started.elapsed()
            })
            .min()
            .expect("repeats > 0");
        KernelEntry {
            kernel: kernel.name().to_owned(),
            available: kernel != KernelKind::Simd || pe_mlp::simd::available(),
            raw_kernel_evals_per_sec: (passes * samples) as f64 / best.as_secs_f64().max(1e-9),
            matches_scalar,
        }
    })
    .collect()
}

/// Re-run the GA-shaped generation stream at explicit worker counts
/// and prove every point byte-identical to the single-thread run.
fn thread_scaling_entries(setup: &Setup, rounds: usize, repeats: usize) -> Vec<ThreadScalingEntry> {
    let mut one_thread_log: Option<String> = None;
    let mut one_thread_rate = 0.0_f64;
    [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&threads| {
            let mut log = String::new();
            let best = (0..repeats)
                .map(|_| {
                    let problem = setup.problem();
                    let evaluator =
                        CachedEvaluator::with_options(&problem, GENOME_CACHE_CAPACITY, threads);
                    let mut wave = setup.population.clone();
                    let mut rng = StdRng::seed_from_u64(11);
                    let started = Instant::now();
                    let mut evals: Vec<Vec<Evaluation>> = Vec::with_capacity(rounds);
                    for _ in 0..rounds {
                        evals.push(black_box(evaluator.evaluate_batch(&wave)));
                        drift(&mut wave, problem.bounds(), &mut rng);
                    }
                    let elapsed = started.elapsed();
                    log = serde_json::to_string(&evals).expect("evaluations serialize");
                    elapsed
                })
                .min()
                .expect("repeats > 0");
            let rate = (rounds * setup.population.len()) as f64 / best.as_secs_f64().max(1e-9);
            let byte_identical = match &one_thread_log {
                None => {
                    one_thread_log = Some(log);
                    one_thread_rate = rate;
                    true
                }
                Some(reference) => *reference == log,
            };
            ThreadScalingEntry {
                threads,
                ga_stream_evals_per_sec: rate,
                speedup_vs_one_thread: rate / one_thread_rate.max(1e-9),
                byte_identical_to_one_thread: byte_identical,
            }
        })
        .collect()
}

/// Timed comparison written to `BENCH_eval.json` (independent of the
/// Criterion samples so the JSON is one clean apples-to-apples pass).
fn write_report(setup: &Setup) {
    let threads = thread_budget();
    // Enough waves that the one-off cold start (generation 0) weighs
    // about as little as it does in a real study, where it is one of
    // hundreds of generations; all regimes use the same count, so the
    // evals/sec figures stay apples-to-apples. Each regime runs three
    // times and reports its fastest pass (Criterion-style noise
    // rejection — the minimum is the least-interfered measurement).
    let rounds = 20;
    let repeats = 3;
    let population = &setup.population;
    let best_of = |mut pass: Box<dyn FnMut() -> std::time::Duration>| {
        (0..repeats).map(|_| pass()).min().expect("repeats > 0")
    };

    // Regime 0: the pre-columnar loop — one genome at a time, per-row
    // inference, no memo, no columns.
    let row_oracle = best_of(Box::new(|| {
        let problem = setup.problem();
        let oracle = RowOracle { problem: &problem };
        let started = Instant::now();
        for _ in 0..rounds {
            for genome in population {
                black_box(oracle.evaluate(genome));
            }
        }
        started.elapsed()
    }));

    // Regime 1: the columnar serial loop (column cache warms as the
    // population repeats across rounds, as it does within a study).
    let serial = best_of(Box::new(|| {
        let problem = setup.problem();
        let started = Instant::now();
        for _ in 0..rounds {
            for genome in population {
                black_box(problem.evaluate(genome));
            }
        }
        started.elapsed()
    }));

    // Regime 2: cold batched-parallel waves (fresh problem + evaluator
    // each round: no memo or column carry-over, pure batching).
    let batch_cold = best_of(Box::new(|| {
        let started = Instant::now();
        for _ in 0..rounds {
            let problem = setup.problem();
            let evaluator = CachedEvaluator::new(&problem);
            black_box(evaluator.evaluate_batch(population));
        }
        started.elapsed()
    }));

    // Regime 3: a GA-shaped generation stream — the same evaluator
    // sees successive waves where elitist survivors recur verbatim
    // (genome memo) and mutants share most neurons with their parents
    // (neuron-column cache). The cache counters reported below come
    // from the last repeat.
    let mut ga_counters = None;
    let ga_stream = best_of(Box::new(|| {
        let problem = setup.problem();
        let evaluator = CachedEvaluator::new(&problem);
        let mut wave = population.to_vec();
        let mut rng = StdRng::seed_from_u64(11);
        let started = Instant::now();
        for _ in 0..rounds {
            black_box(evaluator.evaluate_batch(&wave));
            drift(&mut wave, problem.bounds(), &mut rng);
        }
        let elapsed = started.elapsed();
        ga_counters = Some((evaluator.stats(), problem.column_cache_stats()));
        elapsed
    }));

    let evals = (rounds * population.len()) as f64;
    let per_sec = |d: std::time::Duration| evals / d.as_secs_f64().max(1e-9);
    let (stats, columns) = ga_counters.expect("ga-stream regime ran");
    let kernels = kernel_entries(setup, repeats);
    let thread_scaling = thread_scaling_entries(setup, rounds, repeats);
    assert!(
        kernels.iter().all(|k| k.matches_scalar),
        "kernel parity violated: {kernels:?} — every mode must match the scalar reference",
    );
    assert!(
        thread_scaling
            .iter()
            .all(|t| t.byte_identical_to_one_thread),
        "thread-count determinism violated — every worker count must reproduce the 1-thread run",
    );
    let report = EvalBenchReport {
        threads,
        population: population.len(),
        generation_rounds: rounds,
        kernel_mode: pe_mlp::columnar::kernel_mode().name().to_owned(),
        column_shards: columns.shards,
        column_contended: columns.contended,
        row_oracle_evals_per_sec: per_sec(row_oracle),
        serial_evals_per_sec: per_sec(serial),
        batch_cold_evals_per_sec: per_sec(batch_cold),
        ga_stream_memoized_evals_per_sec: per_sec(ga_stream),
        speedup_batch_cold_vs_serial: serial.as_secs_f64() / batch_cold.as_secs_f64().max(1e-9),
        speedup_ga_stream_vs_serial: serial.as_secs_f64() / ga_stream.as_secs_f64().max(1e-9),
        speedup_ga_stream_vs_row_oracle: row_oracle.as_secs_f64()
            / ga_stream.as_secs_f64().max(1e-9),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        column_hits: columns.hits,
        column_misses: columns.misses,
        kernels,
        thread_scaling,
    };
    println!(
        "eval core: row-oracle {:.0} evals/s | columnar serial {:.0} evals/s | batch(x{threads}) {:.0} evals/s | ga-stream {:.0} evals/s ({:.2}x vs oracle; genome {} hits / {} misses; columns {} hits / {} misses, {} shards, {} contended)",
        report.row_oracle_evals_per_sec,
        report.serial_evals_per_sec,
        report.batch_cold_evals_per_sec,
        report.ga_stream_memoized_evals_per_sec,
        report.speedup_ga_stream_vs_row_oracle,
        report.cache_hits,
        report.cache_misses,
        report.column_hits,
        report.column_misses,
        report.column_shards,
        report.column_contended,
    );
    for entry in &report.kernels {
        println!(
            "raw kernel [{}{}]: {:.0} sample-evals/s (matches scalar: {})",
            entry.kernel,
            if entry.available { "" } else { ", fallback" },
            entry.raw_kernel_evals_per_sec,
            entry.matches_scalar,
        );
    }
    for entry in &report.thread_scaling {
        println!(
            "ga-stream @ {:>2} threads: {:.0} evals/s ({:.2}x vs 1 thread, byte-identical: {})",
            entry.threads,
            entry.ga_stream_evals_per_sec,
            entry.speedup_vs_one_thread,
            entry.byte_identical_to_one_thread,
        );
    }
    pe_bench::format::write_json("BENCH_eval", &report);
}

fn bench(c: &mut Criterion) {
    let setup = setup();
    let population = &setup.population;

    // --- the evaluation core (genome memo + batching) ---------------
    let problem = setup.problem();
    c.bench_function("evaluate_population_serial", |b| {
        b.iter(|| {
            for genome in population {
                black_box(problem.evaluate(genome));
            }
        })
    });

    c.bench_function("evaluate_population_batch_parallel_cold", |b| {
        b.iter_batched(
            || CachedEvaluator::new(&problem),
            |evaluator| evaluator.evaluate_batch(population),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("evaluate_population_batch_warm_memo", |b| {
        let evaluator = CachedEvaluator::new(&problem);
        let _ = evaluator.evaluate_batch(population);
        b.iter(|| evaluator.evaluate_batch(population))
    });

    // --- the columnar kernel (accuracy only, no caches) -------------
    let cols = setup.rows.columns();
    c.bench_function("columnar_kernel/row_oracle_accuracy", |b| {
        let mut scratch = InferenceScratch::new();
        b.iter(|| {
            black_box(
                setup
                    .doped
                    .accuracy_batch(&setup.rows, &setup.labels, &mut scratch),
            )
        })
    });
    c.bench_function("columnar_kernel/columnar_accuracy", |b| {
        b.iter(|| black_box(accuracy_columns(&setup.doped, &cols, &setup.labels)))
    });

    // --- explicit kernel modes (raw, no caches) ----------------------
    for kernel in [
        KernelKind::Scalar,
        KernelKind::Lut,
        KernelKind::BitSliced,
        KernelKind::Simd,
    ] {
        let mut scratch = ColumnarScratch::default();
        let mut preds = Vec::new();
        c.bench_function(&format!("columnar_kernel/{}", kernel.name()), |b| {
            b.iter(|| {
                predictions_columns_with_kernel(
                    &setup.doped,
                    &cols,
                    &mut scratch,
                    &mut preds,
                    kernel,
                );
                black_box(&preds);
            })
        });
    }

    // --- the neuron-column cache -------------------------------------
    let doped_genes = setup.genome_spec.encode(&setup.doped);
    c.bench_function("column_cache/cold_evaluate", |b| {
        b.iter_batched(
            || setup.problem(),
            |problem| black_box(problem.evaluate(&doped_genes)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("column_cache/warm_evaluate", |b| {
        let problem = setup.problem();
        let _ = problem.evaluate(&doped_genes);
        b.iter(|| black_box(problem.evaluate(&doped_genes)))
    });

    write_report(&setup);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench
);
criterion_main!(benches);
