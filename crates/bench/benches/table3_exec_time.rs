//! Bench target regenerating Table III (training execution times):
//! measures the three trainers at the quick budget and prints the
//! paper-format rows; Criterion additionally times one plain-GA
//! generation.
//!
//! Full-budget reproduction: `cargo run -p pe-bench --release --bin table3`.

use criterion::{criterion_group, criterion_main, Criterion};

use pe_bench::table3::{self, Table3Budget};
use pe_datasets::{generate, quantize, stratified_split, Dataset};
use pe_mlp::{FixedMlp, QuantConfig, Topology, TrainConfig};
use pe_nsga::{Nsga2, NsgaConfig};
use printed_axc::PlainGaProblem;

fn bench(c: &mut Criterion) {
    let rows: Vec<_> = Dataset::ALL
        .iter()
        .map(|&d| table3::measure(d, &Table3Budget::quick(), 0))
        .collect();
    println!("{}", table3::render(&rows));
    pe_bench::format::write_json("table3_bench", &rows);

    // Criterion kernel: a small plain-GA run on Breast Cancer.
    let spec = Dataset::BreastCancer.spec();
    let data = generate(Dataset::BreastCancer, 0);
    let split = stratified_split(&data, 0.7, 0).expect("valid fraction");
    let sgd = TrainConfig {
        epochs: 10,
        seed: 0,
        ..TrainConfig::default()
    };
    let (mlp, _) = pe_mlp::train::train_best_of(
        &Topology::new(spec.topology()),
        &split.train.features,
        &split.train.labels,
        &sgd,
        1,
    );
    let fixed = FixedMlp::quantize(&mlp, QuantConfig::default(), &split.train.features);
    let train_q = quantize(&split.train, 4);
    let problem = PlainGaProblem::new(&fixed, &train_q, Some(200), 8, 12);

    c.bench_function("plain_ga_generation_bc", |b| {
        b.iter(|| {
            Nsga2::new(NsgaConfig {
                population: 16,
                generations: 1,
                seed: 0,
                ..NsgaConfig::default()
            })
            .run(&problem)
            .evaluations
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
