//! Bench target regenerating Table II (our approximate MLPs at ≤5%
//! loss) at the quick budget, plus Criterion timing of the GA fitness
//! kernel — the inner loop of the whole framework.
//!
//! Full-budget reproduction: `cargo run -p pe-bench --release --bin table2`.

use criterion::{criterion_group, criterion_main, Criterion};

use pe_bench::study::run_studies;
use pe_bench::{table2, BudgetPreset};
use pe_datasets::{generate, quantize, stratified_split, Dataset};
use pe_mlp::{FixedMlp, QuantConfig, Topology, TrainConfig};
use pe_nsga::{random_genome, IntProblem};
use printed_axc::{AxTrainProblem, HwAwareTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let budget = BudgetPreset::from_env(BudgetPreset::Quick);
    let studies = run_studies(budget, 0);
    let rows = table2::rows(&studies);
    println!("{}", table2::render(&rows));
    let (ga, gp) = table2::geomean_reductions(&rows);
    println!(
        "Geomean reductions (quick budget): area {}  power {}",
        ga.map_or("-".into(), |v| format!("{v:.1}x")),
        gp.map_or("-".into(), |v| format!("{v:.1}x")),
    );
    pe_bench::format::write_json("table2_bench", &rows);

    // Criterion kernel: one chromosome evaluation on Breast Cancer.
    let spec = Dataset::BreastCancer.spec();
    let data = generate(Dataset::BreastCancer, 0);
    let split = stratified_split(&data, 0.7, 0).expect("valid fraction");
    let sgd = TrainConfig {
        epochs: 20,
        seed: 0,
        ..TrainConfig::default()
    };
    let (mlp, _) = pe_mlp::train::train_best_of(
        &Topology::new(spec.topology()),
        &split.train.features,
        &split.train.labels,
        &sgd,
        1,
    );
    let fixed = FixedMlp::quantize(&mlp, QuantConfig::default(), &split.train.features);
    let train_q = quantize(&split.train, 4);
    let trainer = HwAwareTrainer::new(printed_axc::AxTrainConfig::default());
    let genome = trainer.genome_spec_for(&fixed);
    let problem = AxTrainProblem::new(
        genome.clone(),
        train_q.features.clone(),
        train_q.labels.clone(),
        0.95,
        0.10,
    );
    let mut rng = StdRng::seed_from_u64(1);
    let genes = random_genome(genome.bounds(), &mut rng);

    c.bench_function("ga_fitness_eval_bc", |b| {
        b.iter(|| problem.evaluate(&genes))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
