//! Bench target regenerating Fig. 4 (normalized area/power vs the
//! state of the art) at the quick budget; Criterion times the TC'23
//! post-training search kernel.
//!
//! Full-budget reproduction: `cargo run -p pe-bench --release --bin fig4`.

use criterion::{criterion_group, criterion_main, Criterion};

use pe_baselines::{approximate_tc23, Tc23Config};
use pe_bench::study::run_selected;
use pe_bench::{fig4, BudgetPreset};

fn bench(c: &mut Criterion) {
    let budget = BudgetPreset::from_env(BudgetPreset::Quick);
    let selected = run_selected(budget, 0);
    let engines = fig4::paper_engines();
    let tech = pe_hw::TechLibrary::egfet();
    let rows: Vec<_> = selected
        .iter()
        .map(|s| fig4::row(s, &engines, &tech))
        .collect();
    println!("{}", fig4::render(&rows));
    pe_bench::format::write_json("fig4_bench", &rows);

    // Criterion kernel: the TC'23 coefficient-replacement search on the
    // Breast Cancer baseline from the study's stage artifacts.
    let bc = &selected[0].searched.costed;
    let train = &bc.float.prepared.train;
    let n = 200.min(train.features.len());
    let tuning_rows = train.features.head(n);
    c.bench_function("tc23_search_bc", |b| {
        b.iter(|| {
            approximate_tc23(
                &bc.baseline,
                &tuning_rows,
                &train.labels[..n],
                &Tc23Config::default(),
            )
            .trunc_bits
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
