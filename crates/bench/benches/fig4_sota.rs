//! Bench target regenerating Fig. 4 (normalized area/power vs the
//! state of the art) at the quick budget; Criterion times the TC'23
//! post-training search kernel.
//!
//! Full-budget reproduction: `cargo run -p pe-bench --release --bin fig4`.

use criterion::{criterion_group, criterion_main, Criterion};

use pe_baselines::{approximate_tc23, Tc23Config};
use pe_bench::study::{run_all_studies, study_config};
use pe_bench::{fig4, BudgetPreset};

fn bench(c: &mut Criterion) {
    let budget = BudgetPreset::from_env(BudgetPreset::Quick);
    let studies = run_all_studies(budget, 0);
    let cfg = study_config(budget, 0);
    let rows: Vec<_> = studies.iter().map(|s| fig4::row(s, &cfg, 0)).collect();
    println!("{}", fig4::render(&rows));
    pe_bench::format::write_json("fig4_bench", &rows);

    // Criterion kernel: the TC'23 coefficient-replacement search on the
    // Breast Cancer baseline from the study.
    let bc = &studies[0];
    c.bench_function("tc23_search_bc", |b| {
        b.iter(|| {
            approximate_tc23(
                &bc.baseline,
                &bc.train.features[..200.min(bc.train.features.len())],
                &bc.train.labels[..200.min(bc.train.labels.len())],
                &Tc23Config::default(),
            )
            .trunc_bits
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
