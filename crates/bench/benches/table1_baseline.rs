//! Bench target regenerating Table I (baseline evaluation) at the
//! quick budget, plus Criterion timing of the baseline-construction
//! kernel (train → quantize → elaborate).
//!
//! Full-budget reproduction: `cargo run -p pe-bench --release --bin table1`.

use criterion::{criterion_group, criterion_main, Criterion};

use pe_bench::study::run_studies;
use pe_bench::{table1, BudgetPreset};
use pe_datasets::{generate, stratified_split, Dataset};
use pe_hw::{Elaborator, TechLibrary};
use pe_mlp::{fixed_to_hardware, FixedMlp, QuantConfig, Topology, TrainConfig};

fn bench(c: &mut Criterion) {
    // Print the table once, from a quick run.
    let budget = BudgetPreset::from_env(BudgetPreset::Quick);
    let studies = run_studies(budget, 0);
    let rows = table1::rows(&studies);
    println!("{}", table1::render(&rows));
    pe_bench::format::write_json("table1_bench", &rows);

    // Criterion kernel: quantize + elaborate the BC baseline.
    let spec = Dataset::BreastCancer.spec();
    let data = generate(Dataset::BreastCancer, 0);
    let split = stratified_split(&data, 0.7, 0).expect("valid fraction");
    let sgd = TrainConfig {
        epochs: 20,
        seed: 0,
        ..TrainConfig::default()
    };
    let (mlp, _) = pe_mlp::train::train_best_of(
        &Topology::new(spec.topology()),
        &split.train.features,
        &split.train.labels,
        &sgd,
        1,
    );
    let elab = Elaborator::new(TechLibrary::egfet());

    c.bench_function("quantize_bc_baseline", |b| {
        b.iter(|| FixedMlp::quantize(&mlp, QuantConfig::default(), &split.train.features))
    });
    let fixed = FixedMlp::quantize(&mlp, QuantConfig::default(), &split.train.features);
    c.bench_function("elaborate_bc_baseline", |b| {
        b.iter(|| {
            elab.elaborate(&fixed_to_hardware(&fixed, "bc"))
                .report
                .area_cm2
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
