//! Bench target regenerating Fig. 5 (printed-power-source feasibility
//! zones) at the quick budget; Criterion times the voltage-rescaling
//! and classification kernel.
//!
//! Full-budget reproduction: `cargo run -p pe-bench --release --bin fig5`.

use criterion::{criterion_group, criterion_main, Criterion};

use pe_bench::study::run_studies;
use pe_bench::{fig5, BudgetPreset};
use pe_hw::{FeasibilityZones, VddModel};

fn bench(c: &mut Criterion) {
    let budget = BudgetPreset::from_env(BudgetPreset::Quick);
    let studies = run_studies(budget, 0);
    let rows: Vec<_> = studies.iter().map(fig5::row).collect();
    println!("{}", fig5::render(&rows));
    if let Some(avg) = fig5::avg_power_reduction_0v6(&studies) {
        println!("Average power reduction at 0.6 V vs 1 V baseline: {avg:.0}x (paper: 912x)");
    }
    pe_bench::format::write_json("fig5_bench", &rows);

    let report = studies[0].baseline_report.clone();
    let vdd = VddModel::egfet();
    let zones = FeasibilityZones::paper();
    c.bench_function("vdd_rescale_and_classify", |b| {
        b.iter(|| {
            let low = report.at_vdd(&vdd, 0.6);
            zones.classify(low.area_cm2, low.power_mw)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
