//! Ablation bench: doped vs random initialization, and the FA-count
//! training proxy vs the full netlist cost (concordance probe).
//!
//! Full runs: `cargo run -p pe-bench --release --bin ablations`.

use criterion::{criterion_group, criterion_main, Criterion};

use pe_bench::ablation;
use pe_datasets::Dataset;

fn bench(c: &mut Criterion) {
    let doping = vec![ablation::doping(Dataset::BreastCancer, 20, 12, 0)];
    println!("{}", ablation::render_doping(&doping));

    let conc = ablation::fa_vs_netlist(Dataset::BreastCancer, 16, 0);
    println!("{}", ablation::render_concordance("BC", &conc));

    c.bench_function("proxy_concordance_probe", |b| {
        b.iter(|| ablation::fa_vs_netlist(Dataset::BreastCancer, 4, 1).concordant_fraction)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
