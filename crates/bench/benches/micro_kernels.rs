//! Micro-benchmarks of the framework's inner loops: integer-exact
//! inference, the FA-count estimator, netlist elaboration, and one
//! NSGA-II generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use pe_arith::{AdderAreaEstimator, ColumnProfile, Reducer};
use pe_datasets::{generate, quantize, stratified_split, Dataset};
use pe_hw::{Elaborator, TechLibrary};
use pe_mlp::{ax_to_hardware, AxMlp, FixedMlp, QuantConfig, Topology, TrainConfig};
use pe_nsga::{fast_non_dominated_sort, Evaluation, Individual};

fn bench(c: &mut Criterion) {
    // A realistic approximate MLP: the doped Pendigits network.
    let spec = Dataset::Pendigits.spec();
    let data = generate(Dataset::Pendigits, 0);
    let split = stratified_split(&data, 0.7, 0).expect("valid fraction");
    let sgd = TrainConfig {
        epochs: 5,
        seed: 0,
        ..TrainConfig::default()
    };
    let (mlp, _) = pe_mlp::train::train_best_of(
        &Topology::new(spec.topology()),
        &split.train.features,
        &split.train.labels,
        &sgd,
        1,
    );
    let fixed = FixedMlp::quantize(&mlp, QuantConfig::default(), &split.train.features);
    let ax = AxMlp::from_fixed(&fixed, 6, 12);
    let test_q = quantize(&split.test, 4);

    c.bench_function("ax_inference_pendigits_row", |b| {
        b.iter(|| ax.predict(&test_q.features[0]))
    });

    c.bench_function("fa_estimate_pendigits_mlp", |b| {
        let est = AdderAreaEstimator::paper();
        b.iter(|| est.estimate_total(ax.arith_specs().iter().flatten()))
    });

    c.bench_function("elaborate_pendigits_mlp", |b| {
        let elab = Elaborator::new(TechLibrary::egfet());
        b.iter(|| elab.elaborate(&ax_to_hardware(&ax, "pd")).report.area_cm2)
    });

    c.bench_function("reduce_wide_column_profile", |b| {
        let profile = ColumnProfile::from_heights(vec![24; 20]);
        let reducer = Reducer::default();
        b.iter(|| reducer.reduce(&profile).full_adders())
    });

    c.bench_function("nsga_sort_200", |b| {
        let pop: Vec<Individual> = (0..200)
            .map(|i| {
                let x = f64::from(i);
                Individual::new(vec![i], Evaluation::feasible(vec![x, (200.0 - x) * 1.3]))
            })
            .collect();
        b.iter_batched(
            || pop.clone(),
            |mut p| fast_non_dominated_sort(&mut p).len(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
