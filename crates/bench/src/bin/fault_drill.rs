//! Crash/resume drill: seeded `PE_FAULT` kills against the live
//! pipeline and store, asserting byte-exact recovery. Writes
//! `BENCH_fault.json` and exits non-zero when any cycle is red.

fn main() {
    // This binary re-executes itself as fault-armed children; dispatch
    // a child role (and exit) before doing any parent work.
    if pe_bench::fault_drill::child_dispatch() {
        return;
    }
    let scratch = std::path::Path::new("target/experiments/fault_drill");
    let report = pe_bench::fault_drill::run(scratch);
    println!("{}", pe_bench::fault_drill::render(&report));
    println!("{}", pe_bench::fault_drill::summary(&report));
    pe_bench::format::write_json("BENCH_fault", &report);
    if report.green < report.total {
        std::process::exit(1);
    }
}
