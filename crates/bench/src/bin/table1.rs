//! Regenerate Table I: exact bespoke baseline evaluation.
//!
//! Usage: `cargo run -p pe-bench --release --bin table1` (set
//! `PE_BUDGET=quick` for a fast pass). Studies run in parallel through
//! `Pipeline::run_many`; the JSON artifact is byte-identical to a
//! single-threaded run.

use pe_bench::format::write_json;
use pe_bench::study::run_studies;
use pe_bench::{table1, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let studies = run_studies(budget, 0);
    let rows = table1::rows(&studies);
    println!("{}", table1::render(&rows));
    write_json("table1", &rows);
}
