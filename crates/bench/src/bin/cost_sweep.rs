//! Multi-technology / multi-voltage cost sweep over the studies'
//! designs, emitting `BENCH_cost.json`.
//!
//! Usage: `cargo run -p pe-bench --release --bin cost_sweep` (set
//! `PE_BUDGET=quick` for a fast pass). Every point is costed through
//! the fast analytic model and cross-checked against the exact
//! netlist model, so the sweep doubles as an end-to-end cost-layer
//! parity check on real, GA-trained designs.
//!
//! With `PE_STORE=<path>` pointing at a saved design store, the sweep
//! re-costs each dataset's stored selected design instead of
//! re-training — `BENCH_cost.json`'s "ours" rows then reproduce from
//! the store alone in milliseconds (exact baselines are not stored, so
//! the store-driven sweep has no "baseline" rows).

use pe_bench::format::write_json;
use pe_bench::study::run_studies;
use pe_bench::{sweep, BudgetPreset};
use pe_store::DesignStore;

fn main() {
    let points = match std::env::var_os("PE_STORE") {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            let store = match DesignStore::load(&path) {
                Ok(store) => store,
                Err(err) => {
                    eprintln!("error: cannot load design store {}: {err}", path.display());
                    std::process::exit(1);
                }
            };
            let designs = sweep::designs_from_store(&store);
            println!(
                "re-costing {} stored selected design(s) from {} (no re-training)",
                designs.len(),
                path.display()
            );
            sweep::sweep_designs(&designs)
        }
        None => {
            let budget = BudgetPreset::from_env(BudgetPreset::Full);
            let studies = run_studies(budget, 0);
            sweep::sweep(&studies)
        }
    };
    println!("{}", sweep::render(&points));
    println!("{}", sweep::deployable_summary(&points));
    write_json("BENCH_cost", &points);
}
