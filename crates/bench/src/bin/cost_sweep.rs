//! Multi-technology / multi-voltage cost sweep over the studies'
//! designs, emitting `BENCH_cost.json`.
//!
//! Usage: `cargo run -p pe-bench --release --bin cost_sweep` (set
//! `PE_BUDGET=quick` for a fast pass). Every point is costed through
//! the fast analytic model and cross-checked against the exact
//! netlist model, so the sweep doubles as an end-to-end cost-layer
//! parity check on real, GA-trained designs.

use pe_bench::format::write_json;
use pe_bench::study::run_studies;
use pe_bench::{sweep, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let studies = run_studies(budget, 0);
    let points = sweep::sweep(&studies);
    println!("{}", sweep::render(&points));
    println!("{}", sweep::deployable_summary(&points));
    write_json("BENCH_cost", &points);
}
