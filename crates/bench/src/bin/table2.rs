//! Regenerate Table II: our approximate MLPs at ≤5% accuracy loss.
//!
//! Usage: `cargo run -p pe-bench --release --bin table2` (set
//! `PE_BUDGET=quick` for a fast pass). Studies run in parallel through
//! `Pipeline::run_many`; the JSON artifact is byte-identical to a
//! single-threaded run.

use pe_bench::format::write_json;
use pe_bench::study::run_studies;
use pe_bench::{table2, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let studies = run_studies(budget, 0);
    let rows = table2::rows(&studies);
    println!("{}", table2::render(&rows));
    let (ga, gp) = table2::geomean_reductions(&rows);
    println!(
        "Geomean reductions: area {}  power {}   (paper averages: 181x / 203x)",
        ga.map_or("-".into(), |v| format!("{v:.1}x")),
        gp.map_or("-".into(), |v| format!("{v:.1}x")),
    );
    write_json("table2", &rows);
}
