//! Regenerate Fig. 5: printed-power-source feasibility zones.
//!
//! Usage: `cargo run -p pe-bench --release --bin fig5` (set
//! `PE_BUDGET=quick` for a fast pass).

use pe_bench::format::write_json;
use pe_bench::study::run_studies;
use pe_bench::{fig5, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let studies = run_studies(budget, 0);
    let rows: Vec<_> = studies.iter().map(fig5::row).collect();
    println!("{}", fig5::render(&rows));
    if let Some(avg) = fig5::avg_power_reduction_0v6(&studies) {
        println!("Average power reduction at 0.6 V vs 1 V baseline: {avg:.0}x (paper: 912x)");
    }
    write_json("fig5", &rows);
}
