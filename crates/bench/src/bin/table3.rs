//! Regenerate Table III: training execution times.
//!
//! Usage: `cargo run -p pe-bench --release --bin table3` (set
//! `PE_BUDGET=quick` for a fast pass).

use pe_bench::format::write_json;
use pe_bench::table3::{self, Table3Budget};
use pe_bench::BudgetPreset;
use pe_datasets::Dataset;

fn main() {
    let budget = match BudgetPreset::from_env(BudgetPreset::Full) {
        BudgetPreset::Quick => Table3Budget::quick(),
        BudgetPreset::Full => Table3Budget::full(),
    };
    let rows: Vec<_> = Dataset::ALL
        .iter()
        .map(|&d| table3::measure(d, &budget, 0))
        .collect();
    println!("{}", table3::render(&rows));
    println!("Reproduction target: grad << GA ~ GA-AxC (the paper's ratios, not minutes).");
    write_json("table3", &rows);
}
