//! Nominal vs variation-robust search comparison, emitting
//! `BENCH_robust.json`.
//!
//! Usage: `cargo run -p pe-bench --release --bin fig_robust` (set
//! `PE_BUDGET=quick` for a fast pass). Each dataset is searched twice
//! at one master seed — nominal, and robust over Monte-Carlo
//! process-variation trials — and both fronts are judged by the same
//! held-out Monte-Carlo evaluation on the test split.

use pe_bench::format::write_json;
use pe_bench::{robust, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let rows = robust::compare(budget, 0);
    println!("{}", robust::render(&rows));
    println!("{}", robust::summary(&rows));
    write_json("BENCH_robust", &rows);
}
