//! Regenerate Fig. 4: normalized area/power vs the state of the art.
//!
//! Usage: `cargo run -p pe-bench --release --bin fig4` (set
//! `PE_BUDGET=quick` for a fast pass). Ours runs through the staged
//! pipeline; the prior-work methods run as `SearchEngine`s against the
//! same baseline-costed stage.

use pe_bench::format::write_json;
use pe_bench::study::run_selected;
use pe_bench::{fig4, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let selected = run_selected(budget, 0);
    let engines = fig4::paper_engines();
    let tech = pe_hw::TechLibrary::egfet();
    let rows: Vec<_> = selected
        .iter()
        .map(|s| fig4::row(s, &engines, &tech))
        .collect();
    println!("{}", fig4::render(&rows));
    write_json("fig4", &rows);
}
