//! Regenerate Fig. 4: normalized area/power vs the state of the art.
//!
//! Usage: `cargo run -p pe-bench --release --bin fig4` (set
//! `PE_BUDGET=quick` for a fast pass).

use pe_bench::format::write_json;
use pe_bench::study::{run_all_studies, study_config};
use pe_bench::{fig4, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let studies = run_all_studies(budget, 0);
    let cfg = study_config(budget, 0);
    let rows: Vec<_> = studies.iter().map(|s| fig4::row(s, &cfg, 0)).collect();
    println!("{}", fig4::render(&rows));
    write_json("fig4", &rows);
}
