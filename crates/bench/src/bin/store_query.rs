//! Design-store ingest/query benchmark, emitting `BENCH_store.json`.
//!
//! Usage: `cargo run -p pe-bench --release --bin store_query` (set
//! `PE_BUDGET=quick` for a fast pass). Runs the study suite twice —
//! storeless and store-attached — to measure ingest overhead and dedup
//! ratio, asserts that store queries under each study's own scenario
//! reproduce the live selections exactly, then times a scenario-grid
//! of "best design within budget" queries against the populated store.

use pe_bench::format::write_json;
use pe_bench::{store_query, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let report = store_query::run(budget, 0);
    println!("{}", store_query::render(&report));
    println!("{}", store_query::summary(&report));
    write_json("BENCH_store", &report);
}
