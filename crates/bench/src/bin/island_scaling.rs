//! Island-model search scaling sweep, emitting `BENCH_islands.json`.
//!
//! Usage: `cargo run -p pe-bench --release --bin island_scaling` (set
//! `PE_BUDGET=quick` for a fast pass). Sweeps island count × evaluator
//! worker threads on one dataset at a fixed evaluation budget,
//! recording wall-clock speedup and merged-front size/hypervolume vs
//! the single-population engine — and asserting the merged front is
//! byte-identical at every worker count before writing the report.

use pe_bench::format::write_json;
use pe_bench::{island, BudgetPreset};

fn main() {
    let budget = BudgetPreset::from_env(BudgetPreset::Full);
    let report = island::sweep(budget, 0);
    println!("{}", island::render(&report));
    println!("note: {}", report.note);
    write_json("BENCH_islands", &report);
}
