//! Run the ablation studies (doped init; FA proxy vs netlist cost).
//!
//! Usage: `cargo run -p pe-bench --release --bin ablations`.

use pe_bench::ablation;
use pe_bench::format::write_json;
use pe_datasets::Dataset;

fn main() {
    let doping: Vec<_> = [Dataset::BreastCancer, Dataset::Cardio, Dataset::RedWine]
        .iter()
        .map(|&d| ablation::doping(d, 32, 30, 0))
        .collect();
    println!("{}", ablation::render_doping(&doping));
    write_json("ablation_doping", &doping);

    let conc = ablation::fa_vs_netlist(Dataset::BreastCancer, 40, 0);
    println!("{}", ablation::render_concordance("BC", &conc));
    write_json("ablation_fa_vs_netlist", &conc);

    let objective: Vec<_> = [Dataset::BreastCancer, Dataset::RedWine]
        .iter()
        .map(|&d| ablation::objective(d, 40, 60, 0))
        .collect();
    println!("{}", ablation::render_objective(&objective));
    write_json("ablation_objective", &objective);
}
