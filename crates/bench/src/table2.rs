//! Table II — our approximate printed MLPs at up to 5% accuracy loss.
//!
//! Paper columns: MLP, Accuracy, Area (cm²), Power (mW), Area
//! Reduction, Power Reduction (both vs the exact baseline).

use serde::{Deserialize, Serialize};

use printed_axc::DatasetStudy;

use crate::format::{fmt_reduction, render_table};

/// One Table II row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset display name.
    pub mlp: String,
    /// Selected design's test accuracy.
    pub accuracy: Option<f64>,
    /// Selected design's area in cm².
    pub area_cm2: Option<f64>,
    /// Selected design's power in mW.
    pub power_mw: Option<f64>,
    /// Area reduction vs baseline.
    pub area_reduction: Option<f64>,
    /// Power reduction vs baseline.
    pub power_reduction: Option<f64>,
    /// Paper-reported reductions for the record.
    pub paper_area_reduction: f64,
    /// Paper-reported power reduction.
    pub paper_power_reduction: f64,
}

/// Paper-reported Table II reduction factors (for the side-by-side
/// record in EXPERIMENTS.md).
#[must_use]
pub fn paper_reductions(dataset: pe_datasets::Dataset) -> (f64, f64) {
    use pe_datasets::Dataset as D;
    match dataset {
        D::BreastCancer => (288.0, 274.0),
        D::Cardio => (19.3, 19.0),
        D::Pendigits => (5.3, 5.3),
        D::RedWine => (470.0, 579.0),
        D::WhiteWine => (122.0, 137.0),
    }
}

/// Build Table II rows from completed studies.
#[must_use]
pub fn rows(studies: &[DatasetStudy]) -> Vec<Table2Row> {
    studies
        .iter()
        .map(|s| {
            let spec = s.dataset.spec();
            let (pa, pp) = paper_reductions(s.dataset);
            Table2Row {
                mlp: spec.name.to_owned(),
                accuracy: s.selected.as_ref().map(|d| d.test_accuracy),
                area_cm2: s.selected.as_ref().map(|d| d.report.area_cm2),
                power_mw: s.selected.as_ref().map(|d| d.report.power_mw),
                area_reduction: s.area_reduction(),
                power_reduction: s.power_reduction(),
                paper_area_reduction: pa,
                paper_power_reduction: pp,
            }
        })
        .collect()
}

/// Render the table in the paper's layout.
#[must_use]
pub fn render(rows: &[Table2Row]) -> String {
    render_table(
        "Table II: Our printed MLPs for up to 5% accuracy loss (measured vs paper reductions)",
        &[
            "MLP",
            "Acc",
            "Area(cm2)",
            "Power(mW)",
            "AreaRed",
            "PowerRed",
            "AreaRed*",
            "PowerRed*",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mlp.clone(),
                    r.accuracy.map_or("-".into(), |v| format!("{v:.3}")),
                    r.area_cm2.map_or("-".into(), |v| format!("{v:.3}")),
                    r.power_mw.map_or("-".into(), |v| format!("{v:.3}")),
                    fmt_reduction(r.area_reduction),
                    fmt_reduction(r.power_reduction),
                    fmt_reduction(Some(r.paper_area_reduction)),
                    fmt_reduction(Some(r.paper_power_reduction)),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Geometric-mean reduction across rows (the paper quotes averages of
/// 181× area / 203× power; a geometric mean is the fair aggregate for
/// ratios and is reported alongside).
#[must_use]
pub fn geomean_reductions(rows: &[Table2Row]) -> (Option<f64>, Option<f64>) {
    fn geomean(v: &[f64]) -> Option<f64> {
        if v.is_empty() {
            return None;
        }
        Some((v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp())
    }
    let areas: Vec<f64> = rows.iter().filter_map(|r| r.area_reduction).collect();
    let powers: Vec<f64> = rows.iter().filter_map(|r| r.power_reduction).collect();
    (geomean(&areas), geomean(&powers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_datasets::Dataset;

    fn row(area: Option<f64>, power: Option<f64>) -> Table2Row {
        Table2Row {
            mlp: "X".into(),
            accuracy: Some(0.9),
            area_cm2: Some(1.0),
            power_mw: Some(1.0),
            area_reduction: area,
            power_reduction: power,
            paper_area_reduction: 100.0,
            paper_power_reduction: 100.0,
        }
    }

    #[test]
    fn geomean_ignores_missing_rows() {
        let rows = vec![
            row(Some(10.0), Some(10.0)),
            row(None, None),
            row(Some(1000.0), Some(10.0)),
        ];
        let (a, p) = geomean_reductions(&rows);
        assert!((a.unwrap() - 100.0).abs() < 1e-9);
        assert!((p.unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(geomean_reductions(&[row(None, None)]), (None, None));
    }

    #[test]
    fn paper_reductions_match_table_ii() {
        assert_eq!(paper_reductions(Dataset::BreastCancer), (288.0, 274.0));
        assert_eq!(paper_reductions(Dataset::Pendigits), (5.3, 5.3));
        assert_eq!(paper_reductions(Dataset::RedWine), (470.0, 579.0));
    }

    #[test]
    fn render_handles_missing_selection() {
        let out = render(&[row(None, None)]);
        assert!(out.contains('-'));
        assert!(out.contains("Table II"));
    }
}
