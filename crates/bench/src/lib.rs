//! Experiment harness regenerating every table and figure of the
//! DATE'24 paper.
//!
//! Each experiment is a plain function returning serializable rows, so
//! it can be driven three ways:
//!
//! * `cargo run -p pe-bench --release --bin <experiment>` — full-budget
//!   reproduction, printing the paper-format table and writing JSON
//!   next to it;
//! * `cargo bench -p pe-bench --bench <experiment>` — a scaled-budget
//!   run that prints the same table plus Criterion timings of the
//!   underlying kernels;
//! * library calls from the integration tests.
//!
//! Experiment index (see DESIGN.md §4): [`table1`] baselines,
//! [`table2`] our approximate MLPs, [`table3`] training times,
//! [`fig4`] state-of-the-art comparison, [`fig5`] power-source
//! feasibility, plus the [`ablation`] studies, the
//! multi-technology / multi-voltage cost [`sweep`]
//! (`BENCH_cost.json`), the nominal-vs-robust variation
//! comparison [`robust`] (`BENCH_robust.json`), the design-store
//! ingest/query benchmark [`store_query`] (`BENCH_store.json`), the
//! crash/resume [`fault_drill`] (`BENCH_fault.json`) and the
//! island-model scaling sweep [`island`] (`BENCH_islands.json`).
//!
//! Everything executes through `printed-axc`'s staged pipeline:
//! [`study::run_studies`] fans the five datasets out over a worker pool
//! (`Pipeline::run_many`) with deterministic per-dataset seeds, and the
//! method comparisons iterate `SearchEngine`s generically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fault_drill;
pub mod fig4;
pub mod fig5;
pub mod format;
pub mod island;
pub mod robust;
pub mod store_query;
pub mod study;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;

pub use study::{run_selected, run_studies, study_config, BudgetPreset};
