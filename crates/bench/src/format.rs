//! Table rendering and JSON artifact output.

use std::fmt::Write as _;
use std::path::Path;

use serde::Serialize;

/// Render an ASCII table with a title, header and rows.
#[must_use]
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let _ = writeln!(out, "+{line}+");
    let hdr: Vec<String> = header
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    let _ = writeln!(out, "|{}|", hdr.join("|"));
    let _ = writeln!(out, "+{line}+");
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        let _ = writeln!(out, "|{}|", cells.join("|"));
    }
    let _ = writeln!(out, "+{line}+");
    out
}

/// Write a serializable artifact as pretty JSON under `target/experiments/`.
///
/// Errors are reported to stderr but never fail the experiment (the
/// printed table is the primary artifact).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("target/experiments");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Format a reduction factor the way the paper prints them (`288x`).
#[must_use]
pub fn fmt_reduction(x: Option<f64>) -> String {
    match x {
        Some(v) if v >= 100.0 => format!("{v:.0}x"),
        Some(v) if v >= 10.0 => format!("{v:.1}x"),
        Some(v) => format!("{v:.2}x"),
        None => "-".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("| a   | long_header |"));
        assert!(t.contains("| 333 | 4           |"));
    }

    #[test]
    fn reductions_format_like_the_paper() {
        assert_eq!(fmt_reduction(Some(288.4)), "288x");
        assert_eq!(fmt_reduction(Some(19.33)), "19.3x");
        assert_eq!(fmt_reduction(Some(5.3)), "5.30x");
        assert_eq!(fmt_reduction(None), "-");
    }
}
