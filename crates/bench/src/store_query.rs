//! Design-store ingest/query benchmark (`BENCH_store.json`).
//!
//! Quantifies what the persistent design store buys:
//!
//! 1. **Ingest overhead** — the same study suite runs storeless and
//!    store-attached (ingest-only, so both produce identical
//!    artifacts); the wall-clock delta is the cost of recording every
//!    unique design.
//! 2. **Dedup ratio** — how many evaluations collapsed onto already
//!    stored designs (GA populations revisit genomes constantly).
//! 3. **Query latency** — answering "best design within budget under
//!    scenario X" from the store is a pure re-costing read
//!    ([`printed_axc::select_from_store`]); a scenario grid over the
//!    built-in technologies and the supply grid is timed per query and
//!    compared against the GA wall-clock that produced the designs.
//!
//! The run also asserts **parity**: under each study's own scenario
//! and budgets, the store query returns exactly the design the live
//! pipeline selected.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use pe_datasets::Dataset;
use pe_hw::{CostScenario, TechLibrary};
use pe_store::{DesignStore, StoreWriter};
use printed_axc::{select_from_store, store_front, Pipeline, RunManyOptions, Selected};

use crate::format::render_table;
use crate::study::{study_config, BudgetPreset};
use crate::sweep::SUPPLY_GRID;

/// One timed store query of the scenario grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioQueryRow {
    /// Dataset display name (the store's dataset key).
    pub dataset: String,
    /// Technology library name.
    pub tech: String,
    /// Operating supply in volts.
    pub supply_v: f64,
    /// Accuracy-loss budget the query selected under.
    pub max_loss: f64,
    /// Size of the store-side Pareto front at this scenario.
    pub front_size: usize,
    /// Selected design's area in cm² (`None` when nothing fit).
    pub selected_area_cm2: Option<f64>,
    /// Selected design's test accuracy (`None` when nothing fit).
    pub selected_test_accuracy: Option<f64>,
    /// Wall-clock of the query in microseconds.
    pub query_micros: u64,
}

/// The full `BENCH_store.json` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreBenchReport {
    /// The store file the benchmark wrote and queried.
    pub store_path: String,
    /// Unique designs the store holds.
    pub records: usize,
    /// Ingest counter: unique designs written.
    pub ingested: u64,
    /// Ingest counter: evaluations collapsed onto stored designs.
    pub deduplicated: u64,
    /// `deduplicated / (ingested + deduplicated)`.
    pub dedup_ratio: f64,
    /// Bytes appended to the store file.
    pub bytes_written: u64,
    /// Wall-clock of the storeless study suite, in milliseconds.
    pub storeless_wall_ms: f64,
    /// Wall-clock of the identical store-attached suite.
    pub store_wall_ms: f64,
    /// `(store_wall - storeless_wall) / storeless_wall`, in percent.
    pub ingest_overhead_pct: f64,
    /// Every timed query of the scenario grid.
    pub scenario_queries: Vec<ScenarioQueryRow>,
    /// Mean query latency over the grid, in microseconds.
    pub mean_query_micros: f64,
    /// GA wall-clock over mean query latency — how much faster a store
    /// query answers a scenario question than re-running the search.
    pub query_speedup_vs_ga: f64,
}

/// The (technology, supply) grid the queries sweep — the same clamped,
/// deduplicated grid as the cost sweep.
#[must_use]
pub fn scenario_grid() -> Vec<CostScenario> {
    let mut grid = Vec::new();
    for tech in TechLibrary::builtin() {
        let mut supplies: Vec<f64> = SUPPLY_GRID
            .iter()
            .map(|v| v.clamp(tech.min_vdd, tech.nominal_vdd))
            .collect();
        supplies.dedup();
        for supply in supplies {
            grid.push(CostScenario::nominal(tech.clone()).at_supply(supply));
        }
    }
    grid
}

fn run_suite(seed: u64, budget: BudgetPreset, opts: &RunManyOptions) -> (Vec<Selected>, f64) {
    let config = study_config(budget, seed);
    let start = Instant::now();
    let selected = Pipeline::run_many_selected(&Dataset::ALL, &config, opts)
        .expect("bench presets are valid and uncancelled");
    (selected, start.elapsed().as_secs_f64() * 1e3)
}

/// Run the full benchmark: storeless suite, store-attached suite,
/// parity check, scenario-grid queries.
///
/// # Panics
///
/// Panics when a study fails, when the store cannot be written, or
/// when a store query under a study's own scenario disagrees with the
/// live pipeline's selection — all three are bugs, not conditions.
#[must_use]
pub fn run(budget: BudgetPreset, seed: u64) -> StoreBenchReport {
    // Deliberately NOT `run_many_options()`: a `PE_STORE` in the
    // environment must not contaminate the storeless baseline timing.
    let opts = RunManyOptions::with_threads(printed_axc::eval::thread_budget());
    let (_, storeless_wall_ms) = run_suite(seed, budget, &opts);

    let store_path = PathBuf::from("target/experiments/store_query.jsonl");
    if let Some(dir) = store_path.parent() {
        std::fs::create_dir_all(dir).expect("can create target/experiments");
    }
    let _ = std::fs::remove_file(&store_path);
    let writer = Arc::new(StoreWriter::open(&store_path).expect("can open a fresh store"));
    let mut store_opts = RunManyOptions::with_threads(printed_axc::eval::thread_budget());
    store_opts.store = Some(Arc::clone(&writer));
    let (selected, store_wall_ms) = run_suite(seed, budget, &store_opts);
    let stats = writer.stats();
    drop(writer);

    let store = DesignStore::load(&store_path).expect("the store just written loads");
    let config = study_config(budget, seed);
    assert_selection_parity(&store, &selected, &config.scenario);

    let mut scenario_queries = Vec::new();
    for sel in &selected {
        let dataset = sel.searched.costed.float.prepared.dataset.spec().name;
        let baseline = sel.searched.costed.baseline_test_accuracy;
        for scenario in scenario_grid() {
            let model = pe_hw::FastCostModel::new(scenario.clone());
            let front_size = store_front(&store, dataset, &model).len();
            let start = Instant::now();
            let picked = select_from_store(
                &store,
                dataset,
                scenario.clone(),
                baseline,
                sel.loss_budget,
                scenario.power_budget_mw,
            );
            let query_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            scenario_queries.push(ScenarioQueryRow {
                dataset: dataset.to_owned(),
                tech: scenario.tech.name.clone(),
                supply_v: scenario.supply_v,
                max_loss: sel.loss_budget,
                front_size,
                selected_area_cm2: picked.as_ref().map(|p| p.report.area_cm2),
                selected_test_accuracy: picked.as_ref().map(|p| p.test_accuracy),
                query_micros,
            });
        }
    }

    let mean_query_micros = if scenario_queries.is_empty() {
        0.0
    } else {
        scenario_queries
            .iter()
            .map(|r| r.query_micros as f64)
            .sum::<f64>()
            / scenario_queries.len() as f64
    };
    let evaluations = stats.ingested + stats.deduplicated;
    StoreBenchReport {
        store_path: store_path.display().to_string(),
        records: store.records().len(),
        ingested: stats.ingested,
        deduplicated: stats.deduplicated,
        dedup_ratio: if evaluations == 0 {
            0.0
        } else {
            stats.deduplicated as f64 / evaluations as f64
        },
        bytes_written: stats.bytes_written,
        storeless_wall_ms,
        store_wall_ms,
        ingest_overhead_pct: if storeless_wall_ms > 0.0 {
            100.0 * (store_wall_ms - storeless_wall_ms) / storeless_wall_ms
        } else {
            0.0
        },
        mean_query_micros,
        query_speedup_vs_ga: if mean_query_micros > 0.0 {
            storeless_wall_ms * 1e3 / mean_query_micros
        } else {
            f64::INFINITY
        },
        scenario_queries,
    }
}

/// Assert that, under each study's own scenario and budgets, the store
/// returns exactly the design the live pipeline selected.
fn assert_selection_parity(store: &DesignStore, selected: &[Selected], scenario: &CostScenario) {
    for sel in selected {
        let dataset = sel.searched.costed.float.prepared.dataset.spec().name;
        let from_store = select_from_store(
            store,
            dataset,
            scenario.clone(),
            sel.searched.costed.baseline_test_accuracy,
            sel.loss_budget,
            scenario.power_budget_mw,
        );
        match (&sel.selected, &from_store) {
            (None, None) => {}
            (Some(live), Some(stored)) => {
                assert!(
                    live.report.area_cm2 == stored.report.area_cm2
                        && live.test_accuracy == stored.test_accuracy,
                    "store query disagrees with live selection for {dataset}: \
                     live ({}, {}) vs store ({}, {})",
                    live.report.area_cm2,
                    live.test_accuracy,
                    stored.report.area_cm2,
                    stored.test_accuracy
                );
            }
            (live, stored) => panic!(
                "store query disagrees with live selection for {dataset}: \
                 live selected {} vs store selected {}",
                live.is_some(),
                stored.is_some()
            ),
        }
    }
}

/// Render the scenario-grid queries as a table.
#[must_use]
pub fn render(report: &StoreBenchReport) -> String {
    render_table(
        "Design-store scenario queries (pure re-costing reads; parity-checked vs live selection)",
        &[
            "Dataset",
            "Tech",
            "Vdd",
            "Front",
            "Area(cm2)",
            "Test acc",
            "Query(us)",
        ],
        &report
            .scenario_queries
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.tech.clone(),
                    format!("{:.1}", r.supply_v),
                    format!("{}", r.front_size),
                    r.selected_area_cm2
                        .map_or_else(|| "-".to_owned(), |a| format!("{a:.3}")),
                    r.selected_test_accuracy
                        .map_or_else(|| "-".to_owned(), |a| format!("{:.2}%", a * 100.0)),
                    format!("{}", r.query_micros),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One-line benchmark headline.
#[must_use]
pub fn summary(report: &StoreBenchReport) -> String {
    format!(
        "store: {} unique designs ({} KiB), {:.1}% of evaluations deduplicated, \
         ingest overhead {:+.1}%, mean query {:.0} us ({:.0}x faster than the GA run)",
        report.records,
        report.bytes_written / 1024,
        100.0 * report.dedup_ratio,
        report.ingest_overhead_pct,
        report.mean_query_micros,
        report.query_speedup_vs_ga
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_grid_is_nonempty_and_within_range() {
        let grid = scenario_grid();
        assert!(!grid.is_empty());
        for scenario in &grid {
            assert!(scenario.supply_v >= scenario.tech.min_vdd);
            assert!(scenario.supply_v <= scenario.tech.nominal_vdd);
        }
    }

    #[test]
    fn render_and_summary_handle_empty_reports() {
        let report = StoreBenchReport {
            store_path: String::new(),
            records: 0,
            ingested: 0,
            deduplicated: 0,
            dedup_ratio: 0.0,
            bytes_written: 0,
            storeless_wall_ms: 0.0,
            store_wall_ms: 0.0,
            ingest_overhead_pct: 0.0,
            scenario_queries: Vec::new(),
            mean_query_micros: 0.0,
            query_speedup_vs_ga: f64::INFINITY,
        };
        assert!(render(&report).contains("Design-store"));
        assert!(summary(&report).contains("0 unique designs"));
    }
}
