//! Shared study execution and budget presets.

use pe_datasets::Dataset;
use pe_hw::TechLibrary;
use pe_nsga::NsgaConfig;
use printed_axc::{AxTrainConfig, DatasetStudy, StudyConfig};

/// How much compute an experiment run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPreset {
    /// Seconds per dataset: for `cargo bench` smoke runs and CI.
    Quick,
    /// A couple of minutes per dataset: the default for `--bin` runs;
    /// Pareto fronts are close to saturated at this budget.
    Full,
}

impl BudgetPreset {
    /// Parse from the `PE_BUDGET` environment variable (`quick`/`full`),
    /// defaulting to the given preset.
    #[must_use]
    pub fn from_env(default: BudgetPreset) -> Self {
        match std::env::var("PE_BUDGET").ok().as_deref() {
            Some("quick") => BudgetPreset::Quick,
            Some("full") => BudgetPreset::Full,
            _ => default,
        }
    }
}

/// The study configuration used by every experiment at the given
/// budget. One seed governs the whole flow, so tables regenerate
/// bit-identically.
#[must_use]
pub fn study_config(budget: BudgetPreset, seed: u64) -> StudyConfig {
    match budget {
        BudgetPreset::Quick => StudyConfig {
            seed,
            ga: AxTrainConfig {
                fitness_subsample: Some(500),
                nsga: NsgaConfig {
                    population: 32,
                    generations: 24,
                    mutation_prob: 0.03,
                    seed,
                    ..NsgaConfig::default()
                },
                ..AxTrainConfig::default()
            },
            sgd_epochs_scale: 0.3,
            accuracy_loss_budget: 0.05,
        },
        BudgetPreset::Full => StudyConfig {
            seed,
            ga: AxTrainConfig {
                fitness_subsample: Some(2000),
                nsga: NsgaConfig {
                    population: 150,
                    generations: 700,
                    mutation_prob: 0.015,
                    creep_fraction: 0.6,
                    seed,
                    ..NsgaConfig::default()
                },
                ..AxTrainConfig::default()
            },
            sgd_epochs_scale: 1.0,
            accuracy_loss_budget: 0.05,
        },
    }
}

/// Run studies for all five datasets at the given budget.
#[must_use]
pub fn run_all_studies(budget: BudgetPreset, seed: u64) -> Vec<DatasetStudy> {
    let tech = TechLibrary::egfet();
    Dataset::ALL
        .iter()
        .map(|&d| printed_axc::run_study(d, &study_config(budget, seed), &tech))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_budget() {
        let q = study_config(BudgetPreset::Quick, 0);
        let f = study_config(BudgetPreset::Full, 0);
        assert!(q.ga.nsga.generations < f.ga.nsga.generations);
        assert!(q.sgd_epochs_scale < f.sgd_epochs_scale);
    }
}
