//! Shared study execution and budget presets.
//!
//! All experiments run through the staged pipeline API
//! ([`printed_axc::Pipeline`]): [`run_studies`] executes every dataset
//! on a worker pool with deterministic per-dataset seeds
//! ([`printed_axc::derive_seed`]), so the resulting JSON artifacts are
//! byte-identical whether one thread or many executed them.

use pe_datasets::Dataset;
use pe_hw::TechLibrary;
use pe_nsga::NsgaConfig;
use printed_axc::{AxTrainConfig, DatasetStudy, Pipeline, RunManyOptions, Selected, StudyConfig};

/// How much compute an experiment run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPreset {
    /// Seconds per dataset: for `cargo bench` smoke runs and CI.
    Quick,
    /// A couple of minutes per dataset: the default for `--bin` runs;
    /// Pareto fronts are close to saturated at this budget.
    Full,
}

impl BudgetPreset {
    /// Parse from the `PE_BUDGET` environment variable (`quick`/`full`),
    /// defaulting to the given preset.
    #[must_use]
    pub fn from_env(default: BudgetPreset) -> Self {
        match std::env::var("PE_BUDGET").ok().as_deref() {
            Some("quick") => BudgetPreset::Quick,
            Some("full") => BudgetPreset::Full,
            _ => default,
        }
    }
}

/// The study configuration used by every experiment at the given
/// budget. One master seed governs the whole flow (each dataset runs at
/// a seed derived from it), so tables regenerate bit-identically.
#[must_use]
pub fn study_config(budget: BudgetPreset, seed: u64) -> StudyConfig {
    match budget {
        BudgetPreset::Quick => StudyConfig {
            seed,
            ga: AxTrainConfig {
                fitness_subsample: Some(500),
                nsga: NsgaConfig {
                    population: 32,
                    generations: 24,
                    mutation_prob: 0.03,
                    seed,
                    ..NsgaConfig::default()
                },
                ..AxTrainConfig::default()
            },
            sgd_epochs_scale: 0.3,
            accuracy_loss_budget: 0.05,
        },
        BudgetPreset::Full => StudyConfig {
            seed,
            ga: AxTrainConfig {
                fitness_subsample: Some(2000),
                nsga: NsgaConfig {
                    population: 150,
                    generations: 700,
                    mutation_prob: 0.015,
                    creep_fraction: 0.6,
                    seed,
                    ..NsgaConfig::default()
                },
                ..AxTrainConfig::default()
            },
            sgd_epochs_scale: 1.0,
            accuracy_loss_budget: 0.05,
        },
    }
}

/// Run studies for all five datasets at the given budget on a worker
/// pool (one thread per core, capped at the dataset count).
///
/// # Panics
///
/// Panics if a study fails — the bench presets are valid and nothing
/// cancels them, so a failure here is a bug.
#[must_use]
pub fn run_studies(budget: BudgetPreset, master_seed: u64) -> Vec<DatasetStudy> {
    Pipeline::run_many(
        &Dataset::ALL,
        &study_config(budget, master_seed),
        &TechLibrary::egfet(),
        &run_many_options(),
    )
    .expect("bench presets are valid and uncancelled")
}

/// Worker-pool options honoring the shared `PE_THREADS` budget
/// ([`printed_axc::eval::thread_budget`]: `0`/unset = one worker per
/// core; `1` forces sequential execution — the output is byte-identical
/// either way). The same budget governs the within-study batch
/// evaluator, so one knob controls every pool the bench bins spin up.
#[must_use]
pub fn run_many_options() -> RunManyOptions {
    RunManyOptions::with_threads(printed_axc::eval::thread_budget())
}

/// [`run_studies`], returning the full [`Selected`] stage artifacts
/// (needed by experiments that reuse the float-model lineage, e.g.
/// Fig. 4's engine comparison).
///
/// # Panics
///
/// Panics if a study fails (see [`run_studies`]).
#[must_use]
pub fn run_selected(budget: BudgetPreset, master_seed: u64) -> Vec<Selected> {
    Pipeline::run_many_selected(
        &Dataset::ALL,
        &study_config(budget, master_seed),
        &TechLibrary::egfet(),
        &run_many_options(),
    )
    .expect("bench presets are valid and uncancelled")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_budget() {
        let q = study_config(BudgetPreset::Quick, 0);
        let f = study_config(BudgetPreset::Full, 0);
        assert!(q.ga.nsga.generations < f.ga.nsga.generations);
        assert!(q.sgd_epochs_scale < f.sgd_epochs_scale);
    }
}
