//! Shared study execution and budget presets.
//!
//! All experiments run through the staged pipeline API
//! ([`printed_axc::Pipeline`]): [`run_studies`] executes every dataset
//! on a worker pool with deterministic per-dataset seeds
//! ([`printed_axc::derive_seed`]), so the resulting JSON artifacts are
//! byte-identical whether one thread or many executed them.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pe_datasets::Dataset;

use pe_nsga::NsgaConfig;
use printed_axc::{
    AxTrainConfig, DatasetStudy, Pipeline, ProgressEvent, RunManyOptions, Selected, StudyConfig,
};

/// How much compute an experiment run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPreset {
    /// Seconds per dataset: for `cargo bench` smoke runs and CI.
    Quick,
    /// A couple of minutes per dataset: the default for `--bin` runs;
    /// Pareto fronts are close to saturated at this budget.
    Full,
}

impl BudgetPreset {
    /// Parse from the `PE_BUDGET` environment variable (`quick`/`full`),
    /// defaulting to the given preset.
    #[must_use]
    pub fn from_env(default: BudgetPreset) -> Self {
        match std::env::var("PE_BUDGET").ok().as_deref() {
            Some("quick") => BudgetPreset::Quick,
            Some("full") => BudgetPreset::Full,
            _ => default,
        }
    }
}

/// The study configuration used by every experiment at the given
/// budget. One master seed governs the whole flow (each dataset runs at
/// a seed derived from it), so tables regenerate bit-identically.
///
/// The island-search knobs (`PE_ISLANDS`, `PE_MIGRATE_EVERY`) are
/// applied on top via [`StudyConfig::with_env_islands`], so every bench
/// bin honors them uniformly. Unset, the configuration keeps the
/// single-population engine — and its byte-identical artifacts and
/// cache keys.
#[must_use]
pub fn study_config(budget: BudgetPreset, seed: u64) -> StudyConfig {
    let config = match budget {
        BudgetPreset::Quick => StudyConfig {
            seed,
            ga: AxTrainConfig {
                fitness_subsample: Some(500),
                nsga: NsgaConfig {
                    population: 32,
                    generations: 24,
                    mutation_prob: 0.03,
                    seed,
                    ..NsgaConfig::default()
                },
                ..AxTrainConfig::default()
            },
            sgd_epochs_scale: 0.3,
            ..StudyConfig::default()
        },
        BudgetPreset::Full => StudyConfig {
            seed,
            ga: AxTrainConfig {
                fitness_subsample: Some(2000),
                nsga: NsgaConfig {
                    population: 150,
                    generations: 700,
                    mutation_prob: 0.015,
                    creep_fraction: 0.6,
                    seed,
                    ..NsgaConfig::default()
                },
                ..AxTrainConfig::default()
            },
            sgd_epochs_scale: 1.0,
            ..StudyConfig::default()
        },
    };
    config.with_env_islands()
}

/// Accumulates the per-generation
/// [`ProgressEvent::EvalCache`] streams of every study into one
/// run-wide tally, so the bench bins can print how hard the genome
/// memo, the neuron-column cache and the cost layer's gate-count memo
/// worked — plus the design-store ingest counters when `PE_STORE`
/// attaches a store. Robust to several GA runs
/// per dataset (each search's cumulative counters restart at zero; a
/// decrease folds the finished run into the total).
///
/// Island runs stream two disjoint counter families: each island tags
/// its genome-memo counters with [`ProgressEvent::Island`] (tallied
/// under `(dataset, Some(island))`), while the coordinator's untagged
/// per-epoch events carry only the shared problem-level counters
/// (tallied under `(dataset, None)`). Keying by island keeps the
/// per-run restart detection sound — island streams restart
/// independently — and summing every key recovers the run-wide totals
/// without double counting.
#[derive(Debug, Default)]
pub struct EvalCacheSummary {
    tallies: Mutex<HashMap<(Dataset, Option<usize>), CacheTally>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct CacheTally {
    genome_hits: u64,
    genome_misses: u64,
    column_hits: u64,
    column_misses: u64,
    column_contended: u64,
    /// Shard count of the column cache (a configuration echo, not a
    /// cumulative counter — the latest reported value wins).
    column_shards: u64,
    cost_hits: u64,
    cost_misses: u64,
    store_ingested: u64,
    store_deduplicated: u64,
    store_bytes: u64,
    /// Cumulative counters of the GA run currently streaming.
    last: [u64; 10],
}

impl CacheTally {
    fn fold_last(&mut self) {
        self.genome_hits += self.last[0];
        self.genome_misses += self.last[1];
        self.column_hits += self.last[2];
        self.column_misses += self.last[3];
        self.cost_hits += self.last[4];
        self.cost_misses += self.last[5];
        self.store_ingested += self.last[6];
        self.store_deduplicated += self.last[7];
        self.store_bytes += self.last[8];
        self.column_contended += self.last[9];
        self.last = [0; 10];
    }
}

impl EvalCacheSummary {
    /// Feed one tagged progress event. A `GaGeneration` with
    /// `generation == 0` marks the start of a new GA run (its
    /// cumulative counters restart), so the previous run's totals are
    /// folded deterministically; a component-wise decrease is kept as
    /// a backstop for engines that skip the marker. Island-tagged
    /// events are unwrapped and tallied under their island id.
    pub fn observe(&self, dataset: Dataset, event: &ProgressEvent) {
        if let ProgressEvent::Island { island, event } = event {
            self.observe_keyed(dataset, Some(*island), event);
        } else {
            self.observe_keyed(dataset, None, event);
        }
    }

    fn observe_keyed(&self, dataset: Dataset, island: Option<usize>, event: &ProgressEvent) {
        let current = match *event {
            ProgressEvent::GaGeneration { generation: 0, .. } => {
                let mut tallies = self.tallies.lock().unwrap_or_else(|e| e.into_inner());
                tallies.entry((dataset, island)).or_default().fold_last();
                return;
            }
            ProgressEvent::EvalCache {
                hits,
                misses,
                column_hits,
                column_misses,
                column_contended,
                column_shards,
                cost_hits,
                cost_misses,
                store_ingested,
                store_deduplicated,
                store_bytes,
                ..
            } => (
                [
                    hits,
                    misses,
                    column_hits,
                    column_misses,
                    cost_hits,
                    cost_misses,
                    store_ingested,
                    store_deduplicated,
                    store_bytes,
                    column_contended,
                ],
                column_shards as u64,
            ),
            _ => return,
        };
        let (current, shards) = current;
        let mut tallies = self.tallies.lock().unwrap_or_else(|e| e.into_inner());
        let tally = tallies.entry((dataset, island)).or_default();
        if current.iter().zip(&tally.last).any(|(c, l)| c < l) {
            tally.fold_last(); // backstop: counters restarted unannounced
        }
        tally.last = current;
        tally.column_shards = tally.column_shards.max(shards);
    }

    /// One summary line over every dataset seen so far.
    #[must_use]
    pub fn render(&self) -> String {
        let tallies = self.tallies.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = CacheTally::default();
        for tally in tallies.values() {
            let mut t = *tally;
            t.fold_last();
            total.genome_hits += t.genome_hits;
            total.genome_misses += t.genome_misses;
            total.column_hits += t.column_hits;
            total.column_misses += t.column_misses;
            total.column_contended += t.column_contended;
            total.column_shards = total.column_shards.max(t.column_shards);
            total.cost_hits += t.cost_hits;
            total.cost_misses += t.cost_misses;
            total.store_ingested += t.store_ingested;
            total.store_deduplicated += t.store_deduplicated;
            total.store_bytes += t.store_bytes;
        }
        let pct = |hits: u64, misses: u64| {
            let n = hits + misses;
            if n == 0 {
                0.0
            } else {
                100.0 * hits as f64 / n as f64
            }
        };
        let mut line = format!(
            "eval caches: genome memo {} hits / {} misses ({:.1}% hit) | neuron columns {} hits / {} misses ({:.1}% hit, {} shards, {} contended probes) | cost-model memo {} hits / {} misses ({:.1}% hit)",
            total.genome_hits,
            total.genome_misses,
            pct(total.genome_hits, total.genome_misses),
            total.column_hits,
            total.column_misses,
            pct(total.column_hits, total.column_misses),
            total.column_shards,
            total.column_contended,
            total.cost_hits,
            total.cost_misses,
            pct(total.cost_hits, total.cost_misses),
        );
        if total.store_ingested + total.store_deduplicated > 0 {
            line.push_str(&format!(
                " | design store {} ingested / {} deduplicated ({} KiB written)",
                total.store_ingested,
                total.store_deduplicated,
                total.store_bytes / 1024,
            ));
        }
        line
    }
}

/// Run studies for all five datasets at the given budget on a worker
/// pool (one thread per core, capped at the dataset count), printing
/// the run-wide evaluation-cache summary when done.
///
/// # Panics
///
/// Panics if a study fails — the bench presets are valid and nothing
/// cancels them, so a failure here is a bug.
#[must_use]
pub fn run_studies(budget: BudgetPreset, master_seed: u64) -> Vec<DatasetStudy> {
    let (opts, summary) = observed_options();
    let studies = Pipeline::run_many(&Dataset::ALL, &study_config(budget, master_seed), &opts)
        .expect("bench presets are valid and uncancelled");
    println!("{}", summary.render());
    studies
}

/// Worker-pool options honoring the shared `PE_THREADS` budget
/// ([`printed_axc::eval::thread_budget`]: `0`/unset = one worker per
/// core; `1` forces sequential execution — the output is byte-identical
/// either way). The same budget governs the within-study batch
/// evaluator, so one knob controls every pool the bench bins spin up.
///
/// `PE_CACHE_DIR` attaches a stage-cache directory: stage artifacts
/// (and the search stage's crash-safety checkpoints) persist there, so
/// a killed bench run resumes instead of restarting — with
/// byte-identical outputs either way.
#[must_use]
pub fn run_many_options() -> RunManyOptions {
    let mut opts = RunManyOptions::with_threads(printed_axc::eval::thread_budget());
    opts.store = env_store();
    opts.cache_dir = std::env::var_os("PE_CACHE_DIR").map(std::path::PathBuf::from);
    opts
}

/// The shared design-store writer requested through the `PE_STORE`
/// environment variable (a JSON-lines store path), or `None`.
///
/// Ingest-only: designs are recorded as a pure side channel, never
/// warm-started, so every artifact a `PE_STORE`-enabled bench run
/// emits is byte-identical to a storeless run's. A corrupt store is
/// reopened through [`pe_store::StoreWriter::open_salvaged`] — a torn
/// trailing line (the signature a killed append leaves behind) is
/// truncated away with a report to stderr, keeping every intact
/// record. A store that still cannot be opened is reported and
/// skipped — a broken store file must never fail a bench run.
#[must_use]
pub fn env_store() -> Option<Arc<pe_store::StoreWriter>> {
    let path = std::path::PathBuf::from(std::env::var_os("PE_STORE")?);
    match pe_store::StoreWriter::open(&path) {
        Ok(writer) => Some(Arc::new(writer)),
        Err(err @ pe_store::StoreError::Corrupt { .. }) => {
            eprintln!("warning: PE_STORE store is corrupt ({err}); attempting salvage");
            match pe_store::StoreWriter::open_salvaged(&path) {
                Ok((writer, report)) => {
                    eprintln!("PE_STORE salvage: {report}");
                    Some(Arc::new(writer))
                }
                Err(err) => {
                    eprintln!("warning: PE_STORE ignored (salvage failed): {err}");
                    None
                }
            }
        }
        Err(err) => {
            eprintln!("warning: PE_STORE ignored: {err}");
            None
        }
    }
}

/// [`run_many_options`] plus an attached [`EvalCacheSummary`] observer
/// (the summary is shared with the returned handle for rendering).
#[must_use]
pub fn observed_options() -> (RunManyOptions, Arc<EvalCacheSummary>) {
    let summary = Arc::new(EvalCacheSummary::default());
    let mut opts = run_many_options();
    let observer = Arc::clone(&summary);
    opts.progress = Some(Arc::new(move |dataset, event| {
        observer.observe(dataset, event);
    }));
    (opts, summary)
}

/// [`run_studies`], returning the full [`Selected`] stage artifacts
/// (needed by experiments that reuse the float-model lineage, e.g.
/// Fig. 4's engine comparison).
///
/// # Panics
///
/// Panics if a study fails (see [`run_studies`]).
#[must_use]
pub fn run_selected(budget: BudgetPreset, master_seed: u64) -> Vec<Selected> {
    let (opts, summary) = observed_options();
    let selected =
        Pipeline::run_many_selected(&Dataset::ALL, &study_config(budget, master_seed), &opts)
            .expect("bench presets are valid and uncancelled");
    println!("{}", summary.render());
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_budget() {
        let q = study_config(BudgetPreset::Quick, 0);
        let f = study_config(BudgetPreset::Full, 0);
        assert!(q.ga.nsga.generations < f.ga.nsga.generations);
        assert!(q.sgd_epochs_scale < f.sgd_epochs_scale);
    }

    #[test]
    fn island_tagged_counters_fold_separately() {
        let summary = EvalCacheSummary::default();
        let eval = |hits| ProgressEvent::EvalCache {
            hits,
            misses: 1,
            entries: 0,
            column_hits: 0,
            column_misses: 0,
            column_entries: 0,
            column_contended: 0,
            column_shards: 0,
            cost_hits: 0,
            cost_misses: 0,
            store_ingested: 0,
            store_deduplicated: 0,
            store_bytes: 0,
        };
        let tag = |island, event: ProgressEvent| ProgressEvent::Island {
            island,
            event: Box::new(event),
        };
        // Two islands stream cumulative memo counters independently
        // (island 0 reports twice — only its latest value may count),
        // while the coordinator's untagged stream tallies on its own
        // key. Totals are the sum of the three latest values.
        summary.observe(Dataset::BreastCancer, &tag(0, eval(10)));
        summary.observe(Dataset::BreastCancer, &tag(1, eval(7)));
        summary.observe(Dataset::BreastCancer, &tag(0, eval(12)));
        summary.observe(Dataset::BreastCancer, &eval(5));
        let line = summary.render();
        assert!(line.contains("genome memo 24 hits / 3 misses"), "{line}");
    }
}
