//! Table I — evaluation of the exact bespoke baseline printed MLPs.
//!
//! Paper columns: MLP, Topology, Parameters, Accuracy, Area (cm²),
//! Power (mW). Our baselines are trained/quantized in-process and
//! costed by the `pe-hw` EGFET model.

use serde::{Deserialize, Serialize};

use printed_axc::DatasetStudy;

use crate::format::render_table;

/// One Table I row: ours next to the paper's reported numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dataset display name.
    pub mlp: String,
    /// Topology string, e.g. `(10,3,2)`.
    pub topology: String,
    /// Weight+bias parameter count.
    pub parameters: usize,
    /// Measured baseline test accuracy.
    pub accuracy: f64,
    /// Measured baseline area in cm².
    pub area_cm2: f64,
    /// Measured baseline power in mW.
    pub power_mw: f64,
    /// Paper-reported accuracy.
    pub paper_accuracy: f64,
    /// Paper-reported area.
    pub paper_area_cm2: f64,
    /// Paper-reported power.
    pub paper_power_mw: f64,
}

/// Build Table I rows from completed studies.
#[must_use]
pub fn rows(studies: &[DatasetStudy]) -> Vec<Table1Row> {
    studies
        .iter()
        .map(|s| {
            let spec = s.dataset.spec();
            let topo: Vec<String> = spec.topology().iter().map(ToString::to_string).collect();
            Table1Row {
                mlp: spec.name.to_owned(),
                topology: format!("({})", topo.join(",")),
                parameters: spec.parameter_count(),
                accuracy: s.baseline_test_accuracy,
                area_cm2: s.baseline_report.area_cm2,
                power_mw: s.baseline_report.power_mw,
                paper_accuracy: spec.paper.accuracy,
                paper_area_cm2: spec.paper.area_cm2,
                paper_power_mw: spec.paper.power_mw,
            }
        })
        .collect()
}

/// Render the table in the paper's layout (with paper-reported values
/// alongside for the reproduction record).
#[must_use]
pub fn render(rows: &[Table1Row]) -> String {
    render_table(
        "Table I: Evaluation of the baseline printed MLPs (measured vs paper)",
        &[
            "MLP",
            "Topology",
            "Params",
            "Acc",
            "Area(cm2)",
            "Power(mW)",
            "Acc*",
            "Area*",
            "Power*",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mlp.clone(),
                    r.topology.clone(),
                    r.parameters.to_string(),
                    format!("{:.3}", r.accuracy),
                    format!("{:.1}", r.area_cm2),
                    format!("{:.1}", r.power_mw),
                    format!("{:.3}", r.paper_accuracy),
                    format!("{:.1}", r.paper_area_cm2),
                    format!("{:.1}", r.paper_power_mw),
                ]
            })
            .collect::<Vec<_>>(),
    )
}
