//! Fig. 5 — feasibility: which printed power source can drive each MLP.
//!
//! The paper re-synthesizes its approximate MLPs at 0.6 V (the EGFET
//! minimum) and classifies every design — baseline \[2\], TC'23 \[5\] and
//! ours — into power-source zones (Harvester / Blue Spark 5 mW /
//! Zinergy 15 mW / Molex 30 mW / red zones).

use serde::{Deserialize, Serialize};

use pe_baselines::{approximate_tc23, Tc23Config};
use pe_hw::{Elaborator, Feasibility, FeasibilityZones, TechLibrary, VddModel};
use printed_axc::DatasetStudy;

use crate::format::render_table;

/// One design point in the feasibility plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Area in cm².
    pub area_cm2: f64,
    /// Power in mW at the evaluated supply.
    pub power_mw: f64,
    /// Zone classification.
    pub zone: String,
}

/// One Fig. 5 row: the three methods for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Two-letter dataset code.
    pub dataset: String,
    /// Exact baseline (MICRO'20 \[2\]) at nominal 1 V.
    pub baseline: Fig5Point,
    /// TC'23 \[5\] at nominal 1 V.
    pub tc23: Fig5Point,
    /// Ours at 0.6 V (the paper's §V-C re-synthesis).
    pub ours_0v6: Option<Fig5Point>,
}

fn zone_name(f: Feasibility) -> String {
    match f {
        Feasibility::Powered(src) => src.name().to_owned(),
        Feasibility::NoAdequatePowerSupply => "No Adequate Power Supply".to_owned(),
        Feasibility::UnsustainableArea => "Unsustainable Area".to_owned(),
    }
}

fn point(area: f64, power: f64, zones: &FeasibilityZones) -> Fig5Point {
    Fig5Point {
        area_cm2: area,
        power_mw: power,
        zone: zone_name(zones.classify(area, power)),
    }
}

/// Build one Fig. 5 row from a completed study.
#[must_use]
pub fn row(study: &DatasetStudy) -> Fig5Row {
    let spec = study.dataset.spec();
    let zones = FeasibilityZones::paper();
    let tech = TechLibrary::egfet();
    let elab = Elaborator::new(tech);
    let vdd = VddModel::egfet();

    let tc = approximate_tc23(
        &study.baseline,
        &study.train.features,
        &study.train.labels,
        &Tc23Config::default(),
    );
    let tc_report = tc.hardware_report(&elab, "tc23_fig5");

    let ours = study.selected.as_ref().map(|d| {
        let low = d.report.at_vdd(&vdd, 0.6);
        point(low.area_cm2, low.power_mw, &zones)
    });

    Fig5Row {
        dataset: spec.short_name.to_owned(),
        baseline: point(
            study.baseline_report.area_cm2,
            study.baseline_report.power_mw,
            &zones,
        ),
        tc23: point(tc_report.area_cm2, tc_report.power_mw, &zones),
        ours_0v6: ours,
    }
}

/// Render Fig. 5 as a classification table.
#[must_use]
pub fn render(rows: &[Fig5Row]) -> String {
    render_table(
        "Fig. 5: Feasibility — power source per design (ours re-evaluated at 0.6 V)",
        &[
            "Dataset",
            "MICRO'20[2] zone",
            "TC'23[5] zone",
            "Ours@0.6V zone",
            "Ours area/power",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.baseline.zone.clone(),
                    r.tc23.zone.clone(),
                    r.ours_0v6.as_ref().map_or("-".into(), |p| p.zone.clone()),
                    r.ours_0v6.as_ref().map_or("-".into(), |p| {
                        format!("{:.3} cm2 / {:.3} mW", p.area_cm2, p.power_mw)
                    }),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Average power reduction of ours at 0.6 V vs the 1 V baseline (the
/// paper reports 912× on average).
#[must_use]
pub fn avg_power_reduction_0v6(studies: &[DatasetStudy]) -> Option<f64> {
    let vdd = VddModel::egfet();
    let factors: Vec<f64> = studies
        .iter()
        .filter_map(|s| {
            s.selected.as_ref().map(|d| {
                let low = d.report.at_vdd(&vdd, 0.6);
                s.baseline_report.power_mw / low.power_mw.max(f64::MIN_POSITIVE)
            })
        })
        .collect();
    if factors.is_empty() {
        None
    } else {
        Some((factors.iter().map(|f| f.ln()).sum::<f64>() / factors.len() as f64).exp())
    }
}
