//! Crash/resume drill (`BENCH_fault.json`): deterministic fault
//! injection against the live pipeline and store.
//!
//! The drill re-executes its own binary as short-lived child processes
//! with a seeded `PE_FAULT` plan armed (see [`pe_store::fault`]), so
//! every "crash" is a real `abort()` — no destructors, no flushes —
//! at a reproducible, seed-chosen point. Each cycle then proves the
//! recovery contract:
//!
//! * **search** — a quick study is killed mid-GA (at a seeded
//!   generation or evaluation wave, or failed through the error path),
//!   restarted, and must resume from its checkpoint to a `Selected`
//!   artifact byte-identical (wall-clock zeroed) to an uninterrupted
//!   baseline run's.
//! * **island-search** — the same study run as a 2-island archipelago
//!   is killed at a seeded *migration epoch*
//!   ([`pe_store::fault::SITE_ISLAND_MIGRATION`]); the restart must
//!   resume mid-epoch from the per-island checkpoint files, re-run the
//!   interrupted migration, and still land a byte-identical `Selected`
//!   artifact.
//! * **atomic-write** — [`pe_store::atomic_write`] is killed after
//!   half its temp-file bytes; the destination must keep its previous
//!   contents, and a retry must fully replace them.
//! * **store-append** — a [`pe_store::StoreWriter`] ingest loop is
//!   killed mid-append; the torn trailing line must salvage away
//!   ([`pe_store::StoreWriter::open_salvaged`]) keeping every intact
//!   record, and a re-run must land the full record set.
//! * **concurrent-append** — two *processes* append overlapping record
//!   ranges to one store file; the advisory file locks must keep the
//!   file tear-free and lose no records.
//!
//! Recovery latency (the resume run's wall-clock) is measured per
//! cycle; a cycle is **green** only when the crash fired as planned
//! and every recovery assertion held.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use pe_datasets::Dataset;
use pe_mlp::{AxLayer, AxMlp, AxNeuron, AxWeight, QReluCfg};
use pe_nsga::NsgaConfig;
use pe_store::{DesignRecord, DesignStore, StoreError, StoreWriter};
use printed_axc::{AxTrainConfig, Selected, Study, StudyConfig};

use crate::format::render_table;

/// Environment variable selecting a child role (internal protocol
/// between the drill parent and its re-executed children).
const ROLE_VAR: &str = "PE_DRILL_ROLE";

/// One crash/resume cycle's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrillCycle {
    /// What was drilled: `search`, `atomic-write`, `store-append`,
    /// `concurrent-append`.
    pub stage: String,
    /// The `PE_FAULT` plan the crash run was armed with (empty for the
    /// faultless concurrency cycles).
    pub fault: String,
    /// Whether the armed child died as planned (always true for the
    /// concurrency cycles, which must *not* die).
    pub crashed: bool,
    /// Completed generations in the checkpoint the resume started from
    /// (`None` when no checkpoint survived — the resume then restarts
    /// from scratch, which must still reproduce the baseline — or for
    /// non-search stages).
    pub resumed_from_generation: Option<usize>,
    /// Wall-clock of the recovery run in milliseconds.
    pub recovery_ms: f64,
    /// Whether every recovery assertion held (for `search`: the
    /// resumed `Selected` artifact is byte-identical to the
    /// uninterrupted baseline's, wall-clock zeroed).
    pub identical: bool,
    /// Human-readable note (what was asserted, or what went wrong).
    pub detail: String,
}

impl DrillCycle {
    /// A cycle counts as green when the fault fired as planned and
    /// recovery restored the invariant.
    #[must_use]
    pub fn green(&self) -> bool {
        self.crashed && self.identical
    }
}

/// The full `BENCH_fault.json` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultDrillReport {
    /// Wall-clock of the uninterrupted baseline study in milliseconds.
    pub baseline_ms: f64,
    /// Every crash/resume cycle, in execution order.
    pub cycles: Vec<DrillCycle>,
    /// Cycles with both a planned crash and a clean recovery.
    pub green: usize,
    /// Total cycles executed.
    pub total: usize,
}

/// The quick one-dataset study every search drill runs: small enough
/// for tens of child processes, large enough that a seeded mid-GA kill
/// lands at a nontrivial generation.
#[must_use]
pub fn drill_config(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        ga: AxTrainConfig {
            fitness_subsample: Some(300),
            nsga: NsgaConfig {
                population: 16,
                generations: 12,
                mutation_prob: 0.05,
                seed,
                ..NsgaConfig::default()
            },
            ..AxTrainConfig::default()
        },
        sgd_epochs_scale: 0.1,
        ..StudyConfig::default()
    }
}

/// Generations in [`drill_config`] (the seeded kill spans derive from
/// it).
const DRILL_GENERATIONS: u64 = 12;

/// Islands of the island-search drill cycles.
const DRILL_ISLANDS: usize = 2;

/// Migration cadence of the island drill (every 2 of 12 generations ⇒
/// migrations after generations 2, 4, 6, 8 and 10 — the final epoch
/// boundary at 12 only merges).
const DRILL_MIGRATION_EVERY: usize = 2;

/// Elites each island emits per drill migration.
const DRILL_MIGRANTS: usize = 2;

/// `SITE_ISLAND_MIGRATION` arrivals per drill run (the seeded kill
/// span): one per migration epoch below the generation budget.
const DRILL_MIGRATIONS: u64 = (DRILL_GENERATIONS - 1) / DRILL_MIGRATION_EVERY as u64;

/// Records per store-append drill.
const APPEND_COUNT: usize = 6;

fn drill_mlp(bias: i32) -> AxMlp {
    AxMlp {
        layers: vec![AxLayer {
            input_bits: 4,
            neurons: vec![AxNeuron {
                weights: vec![AxWeight {
                    mask: 0b1011,
                    shift: 2,
                    negative: false,
                }],
                bias,
            }],
            qrelu: Some(QReluCfg {
                out_bits: 8,
                shift: 1,
            }),
        }],
    }
}

fn drill_record(bias: i32) -> DesignRecord {
    DesignRecord::new("drill", drill_mlp(bias), 0.9, 10.0)
}

// ---------------------------------------------------------------- children

/// Dispatch a child role if this process was spawned by the drill
/// parent (`PE_DRILL_ROLE` set). Returns `true` when a role ran — the
/// caller's `main` should then return immediately. Call this before
/// doing anything else in the `fault_drill` binary.
///
/// # Panics
///
/// Panics on malformed role parameters — the parent always sets them
/// correctly, so a panic here is a drill bug (and, conveniently, a
/// non-zero child exit the parent will flag).
pub fn child_dispatch() -> bool {
    let Some(role) = std::env::var(ROLE_VAR).ok() else {
        return false;
    };
    let var = |name: &str| std::env::var(name).unwrap_or_else(|_| panic!("{name} unset"));
    match role.as_str() {
        "study" => {
            let cache: PathBuf = var("PE_DRILL_CACHE").into();
            let seed: u64 = var("PE_DRILL_SEED").parse().expect("seed parses");
            let islands: usize = std::env::var("PE_DRILL_ISLANDS")
                .ok()
                .map(|v| v.parse().expect("island count parses"))
                .unwrap_or(0);
            let mut study = Study::for_dataset(Dataset::BreastCancer)
                .config(drill_config(seed))
                .cache_dir(cache);
            if islands >= 2 {
                study = study
                    .islands(islands)
                    .migration_every(DRILL_MIGRATION_EVERY)
                    .migrants(DRILL_MIGRANTS);
            }
            let selected = study
                .finish()
                .expect("drill config is valid")
                .run()
                .expect("drill study succeeds");
            // Touch the result so the run cannot be optimized away.
            assert!(!selected.searched.outcome.front.is_empty());
        }
        "append" => {
            let store: PathBuf = var("PE_DRILL_STORE").into();
            let lo: i32 = var("PE_DRILL_LO").parse().expect("lo parses");
            let hi: i32 = var("PE_DRILL_HI").parse().expect("hi parses");
            let writer = StoreWriter::open(&store).expect("drill store opens");
            for bias in lo..hi {
                writer.ingest(drill_record(bias)).expect("ingest succeeds");
            }
        }
        "write" => {
            let target: PathBuf = var("PE_DRILL_TARGET").into();
            let payload = var("PE_DRILL_PAYLOAD").repeat(64);
            pe_store::atomic_write(&target, payload.as_bytes()).expect("atomic write succeeds");
        }
        other => panic!("unknown drill role `{other}`"),
    }
    true
}

/// Spawn this binary as a child in `role`, with exactly the given
/// extra environment (any ambient `PE_FAULT`/`PE_CHECKPOINT_EVERY` is
/// scrubbed first so only the drill's plan is armed). Returns the
/// child's success flag, wall-clock, and captured stderr.
fn spawn_child(role: &str, envs: &[(&str, String)]) -> std::io::Result<ChildRun> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.env_remove("PE_FAULT")
        .env_remove("PE_CHECKPOINT_EVERY")
        .env_remove("PE_STORE")
        .env_remove("PE_CACHE_DIR")
        .env_remove("PE_ISLANDS")
        .env_remove("PE_MIGRATE_EVERY")
        .env(ROLE_VAR, role);
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let started = Instant::now();
    let output = cmd.output()?;
    Ok(ChildRun {
        success: output.status.success(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    })
}

struct ChildRun {
    success: bool,
    wall_ms: f64,
    stderr: String,
}

// ---------------------------------------------------------------- parent

/// The first file in `dir` whose name ends with `suffix`.
fn find_suffix(dir: &Path, suffix: &str) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().ends_with(suffix) {
            return Some(entry.path());
        }
    }
    None
}

/// Load the cached `Selected` artifact under `dir` and re-serialize it
/// with the search wall-clock zeroed — the canonical form two runs of
/// the same study must agree on byte for byte.
fn zeroed_selected(dir: &Path) -> Result<String, String> {
    let path =
        find_suffix(dir, "-selected.json").ok_or_else(|| "no selected artifact".to_owned())?;
    let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
    let mut selected: Selected = serde_json::from_str(&text)
        .map_err(|e| format!("selected artifact does not parse: {e}"))?;
    selected.searched.outcome.ga_wall = Duration::ZERO;
    serde_json::to_string(&selected).map_err(|e| e.to_string())
}

/// Completed generations in the checkpoint left under `dir`, if one
/// survived the crash. Reads both checkpoint shapes: a plain search
/// leaves a [`pe_nsga::SearchCheckpoint`]; an island search leaves a
/// [`pe_nsga::IslandCheckpoint`] epoch file (whose generation is the
/// last *completed migration epoch* — a mid-epoch kill resumes further
/// ahead from the per-island files next to it).
fn checkpoint_generation(dir: &Path) -> Option<usize> {
    let path = find_suffix(dir, ".ckpt.json")?;
    let text = std::fs::read_to_string(path).ok()?;
    if let Ok(cp) = serde_json::from_str::<pe_nsga::SearchCheckpoint>(&text) {
        return Some(cp.generation);
    }
    serde_json::from_str::<pe_nsga::IslandCheckpoint>(&text)
        .ok()
        .map(|cp| cp.generation)
}

fn study_envs(
    cache: &Path,
    seed: u64,
    fault: Option<&str>,
    islands: usize,
) -> Vec<(&'static str, String)> {
    let mut envs = vec![
        ("PE_DRILL_CACHE", cache.display().to_string()),
        ("PE_DRILL_SEED", seed.to_string()),
        // Cadence 1 maximizes resume coverage: every generation is a
        // potential resume point. Cadence never affects results.
        ("PE_CHECKPOINT_EVERY", "1".to_owned()),
    ];
    if islands >= 2 {
        envs.push(("PE_DRILL_ISLANDS", islands.to_string()));
    }
    if let Some(plan) = fault {
        envs.push(("PE_FAULT", plan.to_owned()));
    }
    envs
}

/// One search crash/resume cycle: arm `fault`, expect the child to
/// die, resume without the fault, compare artifacts against
/// `baseline_json`. `islands >= 2` runs the study as an archipelago
/// (the `island-search` stage).
fn search_cycle(
    scratch: &Path,
    index: usize,
    fault: &str,
    baseline_json: &str,
    islands: usize,
) -> DrillCycle {
    let seed = 9;
    let stage = if islands >= 2 {
        "island-search"
    } else {
        "search"
    };
    let dir = scratch.join(format!("{stage}-{index}"));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cycle = DrillCycle {
        stage: stage.to_owned(),
        fault: fault.to_owned(),
        crashed: false,
        resumed_from_generation: None,
        recovery_ms: 0.0,
        identical: false,
        detail: String::new(),
    };
    let crash = match spawn_child("study", &study_envs(&dir, seed, Some(fault), islands)) {
        Ok(run) => run,
        Err(e) => {
            cycle.detail = format!("cannot spawn crash child: {e}");
            return cycle;
        }
    };
    cycle.crashed = !crash.success;
    if crash.success {
        cycle.detail = "armed child survived its fault plan".to_owned();
        return cycle;
    }
    cycle.resumed_from_generation = checkpoint_generation(&dir);

    let resume = match spawn_child("study", &study_envs(&dir, seed, None, islands)) {
        Ok(run) => run,
        Err(e) => {
            cycle.detail = format!("cannot spawn resume child: {e}");
            return cycle;
        }
    };
    cycle.recovery_ms = resume.wall_ms;
    if !resume.success {
        cycle.detail = format!("resume run failed: {}", resume.stderr.trim());
        return cycle;
    }
    match zeroed_selected(&dir) {
        Ok(json) if json == baseline_json => {
            cycle.identical = true;
            cycle.detail = format!(
                "resumed from generation {} to a byte-identical Selected artifact",
                cycle
                    .resumed_from_generation
                    .map_or_else(|| "scratch".to_owned(), |g| g.to_string())
            );
        }
        Ok(_) => cycle.detail = "resumed Selected artifact differs from baseline".to_owned(),
        Err(e) => cycle.detail = e,
    }
    cycle
}

/// One torn-temp-file cycle: kill `atomic_write` mid-write, assert the
/// destination kept its previous contents, retry, assert replacement.
fn atomic_write_cycle(scratch: &Path, index: usize) -> DrillCycle {
    let target = scratch.join(format!("atomic-{index}.json"));
    let previous = format!("previous good contents {index}");
    let payload = format!("{{\"cycle\": {index}}}");
    let fault = "kill@atomic_write:1".to_owned();
    let mut cycle = DrillCycle {
        stage: "atomic-write".to_owned(),
        fault: fault.clone(),
        crashed: false,
        resumed_from_generation: None,
        recovery_ms: 0.0,
        identical: false,
        detail: String::new(),
    };
    if let Err(e) = std::fs::write(&target, &previous) {
        cycle.detail = format!("cannot seed target: {e}");
        return cycle;
    }
    let envs = |fault: Option<&str>| {
        let mut envs = vec![
            ("PE_DRILL_TARGET", target.display().to_string()),
            ("PE_DRILL_PAYLOAD", payload.clone()),
        ];
        if let Some(plan) = fault {
            envs.push(("PE_FAULT", plan.to_owned()));
        }
        envs
    };
    match spawn_child("write", &envs(Some(&fault))) {
        Ok(run) => cycle.crashed = !run.success,
        Err(e) => {
            cycle.detail = format!("cannot spawn crash child: {e}");
            return cycle;
        }
    }
    if !cycle.crashed {
        cycle.detail = "armed child survived its fault plan".to_owned();
        return cycle;
    }
    let after_crash = std::fs::read_to_string(&target).unwrap_or_default();
    if after_crash != previous {
        cycle.detail = "destination was torn by the killed write".to_owned();
        return cycle;
    }
    match spawn_child("write", &envs(None)) {
        Ok(run) => {
            cycle.recovery_ms = run.wall_ms;
            if !run.success {
                cycle.detail = format!("retry failed: {}", run.stderr.trim());
                return cycle;
            }
        }
        Err(e) => {
            cycle.detail = format!("cannot spawn retry child: {e}");
            return cycle;
        }
    }
    let after_retry = std::fs::read_to_string(&target).unwrap_or_default();
    cycle.identical = after_retry == payload.repeat(64);
    cycle.detail = if cycle.identical {
        "destination survived the torn temp write and the retry replaced it".to_owned()
    } else {
        "retry did not replace the destination".to_owned()
    };
    cycle
}

/// One torn-append cycle: kill a store append mid-line, assert the
/// store refuses to load, salvage it (keeping every intact record),
/// re-append, assert the full record set landed.
fn store_append_cycle(scratch: &Path, index: usize, kill_occurrence: usize) -> DrillCycle {
    let store = scratch.join(format!("append-{index}.jsonl"));
    let _ = std::fs::remove_file(&store);
    let fault = format!("kill@store_append:{kill_occurrence}");
    let mut cycle = DrillCycle {
        stage: "store-append".to_owned(),
        fault: fault.clone(),
        crashed: false,
        resumed_from_generation: None,
        recovery_ms: 0.0,
        identical: false,
        detail: String::new(),
    };
    let envs = |fault: Option<&str>| {
        let mut envs = vec![
            ("PE_DRILL_STORE", store.display().to_string()),
            ("PE_DRILL_LO", "0".to_owned()),
            ("PE_DRILL_HI", APPEND_COUNT.to_string()),
        ];
        if let Some(plan) = fault {
            envs.push(("PE_FAULT", plan.to_owned()));
        }
        envs
    };
    match spawn_child("append", &envs(Some(&fault))) {
        Ok(run) => cycle.crashed = !run.success,
        Err(e) => {
            cycle.detail = format!("cannot spawn crash child: {e}");
            return cycle;
        }
    }
    if !cycle.crashed {
        cycle.detail = "armed child survived its fault plan".to_owned();
        return cycle;
    }
    // The kill left a torn trailing line: a plain open must refuse it…
    if !matches!(StoreWriter::open(&store), Err(StoreError::Corrupt { .. })) {
        cycle.detail = "killed append did not leave a detectably torn store".to_owned();
        return cycle;
    }
    // …and salvage must truncate exactly it, keeping the intact prefix.
    let report = match StoreWriter::open_salvaged(&store) {
        Ok((writer, report)) => {
            let expected = kill_occurrence - 1;
            if writer.len() != expected {
                cycle.detail =
                    format!("salvage kept {} records, expected {expected}", writer.len());
                return cycle;
            }
            report
        }
        Err(e) => {
            cycle.detail = format!("salvage failed: {e}");
            return cycle;
        }
    };
    match spawn_child("append", &envs(None)) {
        Ok(run) => {
            cycle.recovery_ms = run.wall_ms;
            if !run.success {
                cycle.detail = format!("re-append failed: {}", run.stderr.trim());
                return cycle;
            }
        }
        Err(e) => {
            cycle.detail = format!("cannot spawn re-append child: {e}");
            return cycle;
        }
    }
    match DesignStore::load(&store) {
        Ok(loaded) => {
            cycle.identical = loaded.len() == APPEND_COUNT;
            cycle.detail = if cycle.identical {
                format!(
                    "salvage dropped {} torn line(s) ({} bytes), re-append restored all {} records",
                    report.dropped_lines, report.dropped_bytes, APPEND_COUNT
                )
            } else {
                format!(
                    "store holds {} records after recovery, expected {APPEND_COUNT}",
                    loaded.len()
                )
            };
        }
        Err(e) => cycle.detail = format!("recovered store does not load: {e}"),
    }
    cycle
}

/// One two-process concurrency cycle: both children must survive, and
/// the union of their overlapping record ranges must land tear-free.
fn concurrent_append_cycle(scratch: &Path, index: usize) -> DrillCycle {
    let store = scratch.join(format!("concurrent-{index}.jsonl"));
    let _ = std::fs::remove_file(&store);
    let mut cycle = DrillCycle {
        stage: "concurrent-append".to_owned(),
        fault: String::new(),
        crashed: true, // nothing is armed; the "crash" criterion is moot
        resumed_from_generation: None,
        recovery_ms: 0.0,
        identical: false,
        detail: String::new(),
    };
    let spawn = |lo: i32, hi: i32| -> std::io::Result<std::process::Child> {
        let exe = std::env::current_exe()?;
        let mut cmd = Command::new(exe);
        cmd.env_remove("PE_FAULT")
            .env(ROLE_VAR, "append")
            .env("PE_DRILL_STORE", store.display().to_string())
            .env("PE_DRILL_LO", lo.to_string())
            .env("PE_DRILL_HI", hi.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        cmd.spawn()
    };
    let started = Instant::now();
    let children = (spawn(0, 20), spawn(10, 30));
    let (Ok(mut a), Ok(mut b)) = children else {
        cycle.crashed = false;
        cycle.detail = "cannot spawn concurrent writers".to_owned();
        return cycle;
    };
    let ok_a = a.wait().map(|s| s.success()).unwrap_or(false);
    let ok_b = b.wait().map(|s| s.success()).unwrap_or(false);
    cycle.recovery_ms = started.elapsed().as_secs_f64() * 1e3;
    if !(ok_a && ok_b) {
        cycle.crashed = false;
        cycle.detail = "a concurrent writer failed".to_owned();
        return cycle;
    }
    match DesignStore::load(&store) {
        Ok(loaded) => {
            cycle.identical = loaded.len() == 30;
            cycle.detail = if cycle.identical {
                "two processes appended 20+20 overlapping records; 30 unique survived tear-free"
                    .to_owned()
            } else {
                format!("store holds {} records, expected 30", loaded.len())
            };
        }
        Err(e) => cycle.detail = format!("concurrently-written store does not load: {e}"),
    }
    cycle
}

/// Run the whole drill under `scratch` (wiped first): one baseline
/// study, then 12 search kills (8 per-generation, 2 per-wave, 2 error
/// path), one island baseline plus 3 island-search kills at seeded
/// migration epochs, 4 torn atomic writes, 4 torn store appends, and 2
/// two-process concurrency checks — 25 cycles.
///
/// # Panics
///
/// Panics when the scratch directory or a baseline study cannot be
/// set up at all; individual cycle failures are reported, not fatal.
#[must_use]
pub fn run(scratch: &Path) -> FaultDrillReport {
    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch).expect("can create the drill scratch directory");

    let baseline_dir = scratch.join("baseline");
    let baseline = spawn_child("study", &study_envs(&baseline_dir, 9, None, 0))
        .expect("can spawn the baseline child");
    assert!(
        baseline.success,
        "uninterrupted baseline study failed: {}",
        baseline.stderr.trim()
    );
    let baseline_json = zeroed_selected(&baseline_dir).expect("baseline Selected artifact loads");

    // The island cycles compare against their own uninterrupted
    // archipelago run — a different engine, a different (equally
    // deterministic) merged front.
    let island_baseline_dir = scratch.join("island-baseline");
    let island_baseline = spawn_child(
        "study",
        &study_envs(&island_baseline_dir, 9, None, DRILL_ISLANDS),
    )
    .expect("can spawn the island baseline child");
    assert!(
        island_baseline.success,
        "uninterrupted island baseline study failed: {}",
        island_baseline.stderr.trim()
    );
    let island_baseline_json =
        zeroed_selected(&island_baseline_dir).expect("island baseline Selected artifact loads");

    let mut cycles = Vec::new();
    let span = DRILL_GENERATIONS - 1;
    for i in 0..8 {
        let fault = format!("kill@searched_generation:s{i}/{span}");
        cycles.push(search_cycle(scratch, i, &fault, &baseline_json, 0));
    }
    for i in 8..10 {
        let fault = format!("kill@eval_batch:s{i}/{DRILL_GENERATIONS}");
        cycles.push(search_cycle(scratch, i, &fault, &baseline_json, 0));
    }
    for i in 10..12 {
        let fault = format!("err@searched_generation:s{i}/{span}");
        cycles.push(search_cycle(scratch, i, &fault, &baseline_json, 0));
    }
    for i in 0..3 {
        let fault = format!("kill@island_migration:s{i}/{DRILL_MIGRATIONS}");
        cycles.push(search_cycle(
            scratch,
            i,
            &fault,
            &island_baseline_json,
            DRILL_ISLANDS,
        ));
    }
    for i in 0..4 {
        cycles.push(atomic_write_cycle(scratch, i));
    }
    for (i, kill_occurrence) in (2..=5).enumerate() {
        cycles.push(store_append_cycle(scratch, i, kill_occurrence));
    }
    for i in 0..2 {
        cycles.push(concurrent_append_cycle(scratch, i));
    }

    let green = cycles.iter().filter(|c| c.green()).count();
    let total = cycles.len();
    FaultDrillReport {
        baseline_ms: baseline.wall_ms,
        cycles,
        green,
        total,
    }
}

/// Render the cycles as a table.
#[must_use]
pub fn render(report: &FaultDrillReport) -> String {
    render_table(
        "Crash/resume drill (seeded PE_FAULT kills; recovery must be byte-exact)",
        &[
            "Stage",
            "Fault",
            "Crashed",
            "From gen",
            "Recover(ms)",
            "Green",
        ],
        &report
            .cycles
            .iter()
            .map(|c| {
                vec![
                    c.stage.clone(),
                    if c.fault.is_empty() {
                        "-".to_owned()
                    } else {
                        c.fault.clone()
                    },
                    if c.crashed { "yes" } else { "NO" }.to_owned(),
                    c.resumed_from_generation
                        .map_or_else(|| "-".to_owned(), |g| g.to_string()),
                    format!("{:.0}", c.recovery_ms),
                    if c.green() { "yes" } else { "NO" }.to_owned(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One-line drill headline.
#[must_use]
pub fn summary(report: &FaultDrillReport) -> String {
    let search: Vec<&DrillCycle> = report
        .cycles
        .iter()
        .filter(|c| c.stage == "search" && c.green())
        .collect();
    let mean_recovery = if search.is_empty() {
        0.0
    } else {
        search.iter().map(|c| c.recovery_ms).sum::<f64>() / search.len() as f64
    };
    format!(
        "fault drill: {}/{} cycles green; baseline study {:.0} ms, \
         mean search recovery {:.0} ms ({:.1}% of a full run)",
        report.green,
        report.total,
        report.baseline_ms,
        mean_recovery,
        if report.baseline_ms > 0.0 {
            100.0 * mean_recovery / report.baseline_ms
        } else {
            0.0
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_config_builds_a_valid_pipeline() {
        let pipeline = Study::for_dataset(Dataset::BreastCancer)
            .config(drill_config(9))
            .finish()
            .expect("drill config is valid");
        assert_eq!(
            pipeline.config().ga.nsga.generations,
            DRILL_GENERATIONS as usize
        );
    }

    #[test]
    fn drill_records_are_distinct_per_bias() {
        assert_ne!(
            drill_record(1).fingerprint,
            drill_record(2).fingerprint,
            "bias must change the dedup key"
        );
    }

    #[test]
    fn render_and_summary_handle_synthetic_reports() {
        let report = FaultDrillReport {
            baseline_ms: 1000.0,
            cycles: vec![DrillCycle {
                stage: "search".to_owned(),
                fault: "kill@searched_generation:s0/11".to_owned(),
                crashed: true,
                resumed_from_generation: Some(7),
                recovery_ms: 250.0,
                identical: true,
                detail: String::new(),
            }],
            green: 1,
            total: 1,
        };
        assert!(report.cycles[0].green());
        assert!(render(&report).contains("kill@searched_generation"));
        assert!(summary(&report).contains("1/1 cycles green"));
        assert!(summary(&report).contains("25.0%"));
    }
}
