//! Multi-technology / multi-voltage cost sweep (`BENCH_cost.json`).
//!
//! The unified cost layer makes "what would this design cost under
//! other conditions?" a pure query: this experiment re-costs every
//! study's exact baseline and selected approximate design under the
//! cross product of the built-in technology libraries and a supply
//! grid, classifying each point against the printed power sources of
//! Fig. 5. Every point is costed through **both** models — the
//! analytic [`FastCostModel`] produces the number, the
//! [`ExactCostModel`] confirms it — so the sweep doubles as a live
//! end-to-end parity check on real, GA-trained designs.
//!
//! The designs to re-cost come either from live studies
//! ([`designs_of_studies`]) or from a saved design store
//! ([`designs_from_store`]) — the `cost_sweep` bin reads `PE_STORE` to
//! pick the source, so `BENCH_cost.json`'s "ours" rows reproduce from a
//! store file in milliseconds, without re-training anything.

use serde::{Deserialize, Serialize};

use pe_hw::{
    CostScenario, ExactCostModel, FastCostModel, Feasibility, FeasibilityZones, MlpHardwareSpec,
    TechLibrary,
};
use pe_mlp::{ax_to_hardware, fixed_to_hardware};
use pe_store::DesignStore;
use printed_axc::{DatasetStudy, DesignNetwork};

use crate::format::render_table;

/// One re-costed design point of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Two-letter dataset code.
    pub dataset: String,
    /// Which design: `"baseline"` (exact bespoke) or `"ours"` (the
    /// study's selected approximate MLP).
    pub design: String,
    /// Technology library name.
    pub tech: String,
    /// Operating supply in volts.
    pub supply_v: f64,
    /// Gate equivalents (technology-independent).
    pub area_ge: f64,
    /// Area in cm².
    pub area_cm2: f64,
    /// Power in mW at the supply.
    pub power_mw: f64,
    /// Critical-path delay in ms at the supply.
    pub delay_ms: f64,
    /// Fig. 5 zone name at this point.
    pub zone: String,
    /// Whether a printed power source can drive the point
    /// ([`Feasibility::is_deployable`], recorded from the enum so the
    /// summary never re-derives it from display strings).
    pub deployable: bool,
}

/// The supply grid the sweep evaluates (clamped per technology to its
/// operating range).
pub const SUPPLY_GRID: [f64; 3] = [1.0, 0.8, 0.6];

fn zone_name(f: Feasibility) -> String {
    match f {
        Feasibility::Powered(src) => src.name().to_owned(),
        Feasibility::NoAdequatePowerSupply => "No Adequate Power Supply".to_owned(),
        Feasibility::UnsustainableArea => "Unsustainable Area".to_owned(),
    }
}

/// Cost one spec at one scenario through both models, panicking on any
/// fast/exact divergence (the sweep is also a live parity check).
///
/// The models are built once per technology by the caller — per-neuron
/// costs are voltage-independent, so their memos stay warm across the
/// whole supply grid and every design; only the final report is scaled
/// to the scenario's supply here.
fn cost_checked(
    spec: &MlpHardwareSpec,
    fast: &FastCostModel,
    exact: &ExactCostModel,
    scenario: &CostScenario,
) -> pe_hw::HwCost {
    let f = scenario.scale_report(fast.costed(spec).report);
    let e = scenario.scale_report(exact.costed(spec).report);
    assert_eq!(
        f,
        e,
        "fast/exact cost divergence for {} under {}",
        spec.name,
        scenario.label()
    );
    pe_hw::HwCost::of(&f, &scenario.tech)
}

/// One design the sweep re-costs: its dataset code, its `"baseline"` /
/// `"ours"` role, and the lowered hardware spec. Built from live
/// studies ([`designs_of_studies`]) or from a saved design store
/// ([`designs_from_store`]) — the sweep itself
/// ([`sweep_designs`]) is source-agnostic.
#[derive(Debug, Clone)]
pub struct SweepDesign {
    /// Two-letter dataset code.
    pub dataset: String,
    /// `"baseline"` or `"ours"` (see [`SweepPoint::design`]).
    pub design: String,
    /// The lowered circuit specification.
    pub spec: MlpHardwareSpec,
}

/// The sweep inputs of live studies: each study's exact baseline plus
/// its selected approximate design (when one was selected).
#[must_use]
pub fn designs_of_studies(studies: &[DatasetStudy]) -> Vec<SweepDesign> {
    let mut designs = Vec::new();
    for study in studies {
        let code = study.dataset.spec().short_name.to_owned();
        designs.push(SweepDesign {
            dataset: code.clone(),
            design: "baseline".to_owned(),
            spec: fixed_to_hardware(&study.baseline, format!("{code}_baseline")),
        });
        if let Some(selected) = &study.selected {
            if let DesignNetwork::Ax(mlp) = &selected.network {
                designs.push(SweepDesign {
                    dataset: code.clone(),
                    design: "ours".to_owned(),
                    spec: ax_to_hardware(mlp, format!("{code}_ours")),
                });
            }
        }
    }
    designs
}

/// The sweep inputs of a saved design store: each dataset's
/// `selected`-flagged record (the design the pipeline's select stage
/// picked), reconstructed to hardware — so `BENCH_cost.json`'s "ours"
/// rows reproduce from the store alone, without re-training anything.
/// Exact baselines are not stored (the store holds approximate
/// designs), so store-driven sweeps have no `"baseline"` rows.
#[must_use]
pub fn designs_from_store(store: &DesignStore) -> Vec<SweepDesign> {
    let mut designs = Vec::new();
    for name in store.datasets() {
        let Some(record) = store.selected(name) else {
            continue;
        };
        // Stored dataset names are display names; map back to the
        // short code live sweeps use where possible.
        let code = pe_datasets::Dataset::ALL
            .iter()
            .find(|d| d.spec().name == name)
            .map_or_else(|| name.to_owned(), |d| d.spec().short_name.to_owned());
        designs.push(SweepDesign {
            dataset: code.clone(),
            design: "ours".to_owned(),
            spec: record.hardware_spec(format!("{code}_ours")),
        });
    }
    designs
}

/// Sweep every study's baseline and selected design across the built-in
/// technologies and the supply grid.
///
/// # Panics
///
/// Panics if the fast and exact models ever disagree (they are proven
/// equal; a panic here is a real regression).
#[must_use]
pub fn sweep(studies: &[DatasetStudy]) -> Vec<SweepPoint> {
    sweep_designs(&designs_of_studies(studies))
}

/// Sweep arbitrary designs across the built-in technologies and the
/// supply grid (see [`sweep`]; store-driven runs feed
/// [`designs_from_store`] here).
///
/// # Panics
///
/// Panics as [`sweep`] does.
#[must_use]
pub fn sweep_designs(designs: &[SweepDesign]) -> Vec<SweepPoint> {
    let zones = FeasibilityZones::paper();
    let mut points = Vec::new();
    for tech in TechLibrary::builtin() {
        let fast = FastCostModel::new(CostScenario::nominal(tech.clone()));
        let exact = ExactCostModel::new(CostScenario::nominal(tech.clone()));
        // Clamp the grid to the library's operating range (both
        // ends — a future library may run nominally below 1 V) and
        // drop the duplicates clamping can create, so no point is
        // emitted or counted twice.
        let mut supplies: Vec<f64> = SUPPLY_GRID
            .iter()
            .map(|v| v.clamp(tech.min_vdd, tech.nominal_vdd))
            .collect();
        supplies.dedup();
        for supply in supplies {
            let scenario = CostScenario::nominal(tech.clone()).at_supply(supply);
            for design in designs {
                let cost = cost_checked(&design.spec, &fast, &exact, &scenario);
                let feasibility = zones.classify(cost.area_cm2, cost.power_mw);
                points.push(SweepPoint {
                    dataset: design.dataset.clone(),
                    design: design.design.clone(),
                    tech: tech.name.clone(),
                    supply_v: supply,
                    area_ge: cost.area_ge,
                    area_cm2: cost.area_cm2,
                    power_mw: cost.power_mw,
                    delay_ms: cost.delay_ms,
                    zone: zone_name(feasibility),
                    deployable: feasibility.is_deployable(),
                });
            }
        }
    }
    points
}

/// Render the sweep as a table — baseline rows included, so the
/// reduction from exact to approximate is visible per (tech, Vdd)
/// point ([`deployable_summary`] aggregates the "ours" rows only).
#[must_use]
pub fn render(points: &[SweepPoint]) -> String {
    render_table(
        "Cost sweep: selected designs across technologies and supplies (fast = exact, checked)",
        &[
            "Dataset",
            "Design",
            "Tech",
            "Vdd",
            "GE",
            "Area(cm2)",
            "Power(mW)",
            "Delay(ms)",
            "Zone",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.dataset.clone(),
                    p.design.clone(),
                    p.tech.clone(),
                    format!("{:.1}", p.supply_v),
                    format!("{:.0}", p.area_ge),
                    format!("{:.3}", p.area_cm2),
                    format!("{:.3}", p.power_mw),
                    format!("{:.0}", p.delay_ms),
                    p.zone.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Count how many swept "ours" points each printed power source can
/// drive — the sweep's headline: which (tech, Vdd) scenarios unlock
/// self-powered deployment.
#[must_use]
pub fn deployable_summary(points: &[SweepPoint]) -> String {
    let ours: Vec<&SweepPoint> = points.iter().filter(|p| p.design == "ours").collect();
    let deployable = ours.iter().filter(|p| p.deployable).count();
    let harvester = ours.iter().filter(|p| p.zone == "Harvester").count();
    format!(
        "swept {} (tech, vdd) points of our designs: {} deployable, {} self-powered (harvester)",
        ours.len(),
        deployable,
        harvester
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supply_grid_is_descending_and_in_range() {
        for w in SUPPLY_GRID.windows(2) {
            assert!(w[0] > w[1]);
        }
        for tech in TechLibrary::builtin() {
            for &v in &SUPPLY_GRID {
                assert!(v.max(tech.min_vdd) >= tech.min_vdd);
                assert!(v <= tech.nominal_vdd);
            }
        }
    }

    #[test]
    fn render_and_summary_handle_empty_sweeps() {
        let out = render(&[]);
        assert!(out.contains("Cost sweep"));
        assert!(deployable_summary(&[]).contains("swept 0"));
    }
}
