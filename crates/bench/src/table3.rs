//! Table III — training execution-time evaluation.
//!
//! Paper columns: Exec. time of (1) gradient training with only
//! accuracy as objective, (2) GA-based training with only accuracy,
//! (3) GA-based training with AxC techniques and both objectives.
//! The paper's numbers are minutes on an EPYC 7552; ours are measured
//! wall-clock at a matched *evaluation count* per trainer, so the
//! ratios — gradient ≪ GA ≈ GA-AxC — are the reproduction target
//! (absolute times are machine-dependent, see DESIGN.md §2).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use pe_datasets::Dataset;
use pe_hw::TechLibrary;
use pe_mlp::{DenseMlp, SgdTrainer, Topology, TrainConfig};
use pe_nsga::NsgaConfig;
use printed_axc::{
    AxTrainConfig, FloatTrained, NsgaEngine, PlainGaEngine, RunControl, SearchEngine, Study,
    StudyConfig,
};

use crate::format::render_table;

/// One Table III row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset display name.
    pub mlp: String,
    /// Gradient-training wall time, seconds.
    pub grad_secs: f64,
    /// Plain-GA wall time, seconds.
    pub ga_secs: f64,
    /// Hardware-aware GA (ours) wall time, seconds.
    pub ga_axc_secs: f64,
    /// Paper-reported minutes (grad, ga, ga-axc).
    pub paper_minutes: (f64, f64, f64),
}

/// Paper-reported Table III times in minutes.
#[must_use]
pub fn paper_minutes(dataset: Dataset) -> (f64, f64, f64) {
    match dataset {
        Dataset::BreastCancer => (0.5, 8.0, 9.0),
        Dataset::Cardio => (2.0, 42.0, 45.0),
        Dataset::Pendigits => (14.0, 298.0, 344.0),
        Dataset::RedWine => (2.0, 21.0, 22.0),
        Dataset::WhiteWine => (7.0, 77.0, 79.0),
    }
}

/// Budget knobs for the timing experiment.
#[derive(Debug, Clone, Copy)]
pub struct Table3Budget {
    /// SGD epochs for the gradient trainer.
    pub sgd_epochs: usize,
    /// GA population for both GA trainers.
    pub population: usize,
    /// GA generations for both GA trainers.
    pub generations: usize,
    /// Fitness subsample cap.
    pub subsample: usize,
}

impl Table3Budget {
    /// Quick preset (seconds per dataset).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            sgd_epochs: 15,
            population: 20,
            generations: 12,
            subsample: 300,
        }
    }

    /// Full preset.
    #[must_use]
    pub fn full() -> Self {
        Self {
            sgd_epochs: 100,
            population: 60,
            generations: 60,
            subsample: 1500,
        }
    }
}

/// Measure one dataset's three trainers.
///
/// Data preparation and baseline costing run through the staged
/// pipeline; the two GA rows come from the generic [`SearchEngine`]
/// interface (each outcome's `ga_wall` — the evolution loop proper,
/// matching the paper's Table III which excludes one-off synthesis).
/// The gradient row times a single SGD run, as the paper's "Grad."
/// column does.
///
/// # Panics
///
/// Panics if a stage or engine fails — these budgets are valid and
/// uncancelled, so a failure is a bug.
#[must_use]
pub fn measure(dataset: Dataset, budget: &Table3Budget, seed: u64) -> Table3Row {
    let spec = dataset.spec();
    let nsga_cfg = NsgaConfig {
        population: budget.population,
        generations: budget.generations,
        seed,
        ..NsgaConfig::default()
    };
    let ga_cfg = AxTrainConfig {
        fitness_subsample: Some(budget.subsample),
        nsga: nsga_cfg.clone(),
        ..AxTrainConfig::default()
    };
    let pipeline = Study::for_dataset(dataset)
        .config(StudyConfig {
            seed,
            ga: ga_cfg.clone(),
            ..StudyConfig::default()
        })
        .tech(TechLibrary::egfet())
        .finish()
        .expect("table3 budgets are valid");
    let prepared = pipeline.prepare().expect("prepare stage");

    // (1) Gradient training, accuracy objective only: one SGD run at
    // the row's epoch budget (the pipeline's own float stage does
    // best-of-3 restarts, which is not what the paper times here).
    let t0 = Instant::now();
    let mut float_mlp = DenseMlp::random(Topology::new(spec.topology()), seed);
    let _ = SgdTrainer::new(TrainConfig {
        epochs: budget.sgd_epochs,
        seed,
        ..TrainConfig::default()
    })
    .train(
        &mut float_mlp,
        &prepared.float_train.features,
        &prepared.float_train.labels,
    );
    let grad_secs = t0.elapsed().as_secs_f64();

    // Baseline costing through the pipeline stage, reusing the float
    // network trained above.
    let float_test_accuracy =
        float_mlp.accuracy(&prepared.float_test.features, &prepared.float_test.labels);
    let costed = pipeline
        .cost_baseline(FloatTrained {
            prepared,
            float_mlp,
            float_test_accuracy,
        })
        .expect("baseline stage");

    // (2) + (3): both GA trainers through the engine interface.
    let model = pe_hw::ExactCostModel::new(pe_hw::CostScenario::default());
    let ctx = costed.search_context(&model, 0.05);
    let engines: [Box<dyn SearchEngine>; 2] = [
        Box::new(PlainGaEngine::new(nsga_cfg, Some(budget.subsample))),
        Box::new(NsgaEngine::new(ga_cfg)),
    ];
    let walls: Vec<f64> = engines
        .iter()
        .map(|engine| {
            engine
                .search(&ctx, &RunControl::NONE)
                .unwrap_or_else(|e| panic!("engine {} failed: {e}", engine.name()))
                .ga_wall
                .as_secs_f64()
        })
        .collect();

    Table3Row {
        mlp: spec.name.to_owned(),
        grad_secs,
        ga_secs: walls[0],
        ga_axc_secs: walls[1],
        paper_minutes: paper_minutes(dataset),
    }
}

/// Render the table in the paper's layout.
#[must_use]
pub fn render(rows: &[Table3Row]) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mlp.clone(),
                format!("{:.2}", r.grad_secs),
                format!("{:.2}", r.ga_secs),
                format!("{:.2}", r.ga_axc_secs),
                format!(
                    "{:.1}/{:.0}/{:.0}",
                    r.paper_minutes.0, r.paper_minutes.1, r.paper_minutes.2
                ),
            ]
        })
        .collect();
    let avg = |f: fn(&Table3Row) -> f64| -> f64 {
        rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64
    };
    body.push(vec![
        "Average".into(),
        format!("{:.2}", avg(|r| r.grad_secs)),
        format!("{:.2}", avg(|r| r.ga_secs)),
        format!("{:.2}", avg(|r| r.ga_axc_secs)),
        "5/89/100".into(),
    ]);
    render_table(
        "Table III: Training execution times (seconds measured; paper minutes alongside)",
        &[
            "MLP",
            "Grad(s)",
            "GA(s)",
            "GA-AxC(s)",
            "Paper(min g/ga/axc)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_times_cover_all_datasets() {
        for d in Dataset::ALL {
            let (g, ga, ax) = paper_minutes(d);
            // Paper Table III: gradient is always the fastest; the
            // hardware-aware GA is never faster than the plain GA.
            assert!(g < ga, "{d:?}");
            assert!(ga <= ax, "{d:?}");
        }
    }

    #[test]
    fn quick_budget_is_smaller_than_full() {
        let q = Table3Budget::quick();
        let f = Table3Budget::full();
        assert!(q.sgd_epochs < f.sgd_epochs);
        assert!(q.population * q.generations < f.population * f.generations);
    }

    #[test]
    fn render_appends_average_row() {
        let rows = vec![Table3Row {
            mlp: "X".into(),
            grad_secs: 1.0,
            ga_secs: 10.0,
            ga_axc_secs: 11.0,
            paper_minutes: (1.0, 2.0, 3.0),
        }];
        let out = render(&rows);
        assert!(out.contains("Average"));
        assert!(out.contains("Table III"));
    }
}
