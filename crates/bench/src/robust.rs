//! Nominal vs variation-robust search comparison
//! (`BENCH_robust.json`).
//!
//! Runs every dataset's study twice at the same master seed — once
//! nominal, once with the GA optimizing the worst-case accuracy over
//! Monte-Carlo process-variation trials
//! ([`printed_axc::Study::variation`]) — then subjects **both** fronts
//! to the same held-out Monte-Carlo evaluation: fresh trial seeds
//! (distinct from the ones the robust search trained on), the test
//! split, and the uncached [`printed_axc::mc_accuracy`] oracle. The
//! headline is whether the robust search's best worst-case accuracy
//! beats the nominal search's on each dataset.

use serde::{Deserialize, Serialize};

use pe_datasets::Dataset;
use pe_hw::{VariationConfig, VariationModel};
use printed_axc::{derive_seed, mc_accuracy, Pipeline, Selected};

use crate::format::render_table;
use crate::study::{observed_options, study_config, BudgetPreset};

/// Monte-Carlo trials the *search* optimizes over (kept small — it
/// multiplies the fitness cost of every robust evaluation).
pub const SEARCH_TRIALS: usize = 8;

/// Monte-Carlo trials the *evaluation* judges both fronts with (held
/// out: more trials, different seeds than the search saw).
pub const EVAL_TRIALS: usize = 32;

/// Salt decorrelating the evaluation's trial seeds from the search's
/// (which derive from the per-dataset study seed itself).
const EVAL_SEED_SALT: u64 = 0xe7a1_5eed_0f0c_0de5;

/// One front design under held-out Monte-Carlo evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustPoint {
    /// Area in cm² at the study's scenario.
    pub area_cm2: f64,
    /// Power in mW at the study's scenario.
    pub power_mw: f64,
    /// Nominal (variation-free) test accuracy.
    pub test_accuracy: f64,
    /// Worst per-trial test accuracy over the evaluation trials.
    pub mc_worst: f64,
    /// 5th-percentile (P95-robust) per-trial test accuracy.
    pub mc_p95: f64,
    /// Mean per-trial test accuracy.
    pub mc_mean: f64,
}

/// One dataset's nominal-vs-robust comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustRow {
    /// Two-letter dataset code.
    pub dataset: String,
    /// The variation corner both searches were judged under.
    pub model: VariationModel,
    /// The nominal search's front under Monte-Carlo evaluation.
    pub nominal_front: Vec<RobustPoint>,
    /// The robust search's front under the same evaluation.
    pub robust_front: Vec<RobustPoint>,
    /// Best (maximum) `mc_worst` over the nominal front.
    pub nominal_best_worst: f64,
    /// Best (maximum) `mc_worst` over the robust front.
    pub robust_best_worst: f64,
    /// Whether the robust search held up at least as well as the
    /// nominal one under variation.
    pub robust_wins: bool,
}

/// Run the comparison for all datasets at the given budget.
///
/// # Panics
///
/// Panics if a study fails (the bench presets are valid and nothing
/// cancels them) or a front is empty.
#[must_use]
pub fn compare(budget: BudgetPreset, master_seed: u64) -> Vec<RobustRow> {
    let model = VariationModel::printed_egfet();
    let nominal_cfg = study_config(budget, master_seed);
    let mut robust_cfg = nominal_cfg.clone();
    robust_cfg.variation = Some(VariationConfig::new(model, SEARCH_TRIALS));

    let (nominal_opts, nominal_summary) = observed_options();
    let nominal = Pipeline::run_many_selected(&Dataset::ALL, &nominal_cfg, &nominal_opts)
        .expect("bench presets are valid and uncancelled");
    println!("nominal {}", nominal_summary.render());
    let (robust_opts, robust_summary) = observed_options();
    let robust = Pipeline::run_many_selected(&Dataset::ALL, &robust_cfg, &robust_opts)
        .expect("bench presets are valid and uncancelled");
    println!("robust {}", robust_summary.render());

    nominal
        .iter()
        .zip(&robust)
        .zip(Dataset::ALL)
        .map(|((n, r), dataset)| {
            let eval_seed = derive_seed(master_seed ^ EVAL_SEED_SALT, dataset);
            row(dataset, n, r, &model, eval_seed)
        })
        .collect()
}

fn row(
    dataset: Dataset,
    nominal: &Selected,
    robust: &Selected,
    model: &VariationModel,
    eval_seed: u64,
) -> RobustRow {
    let nominal_front = evaluated_front(nominal, model, eval_seed);
    let robust_front = evaluated_front(robust, model, eval_seed);
    let best_worst = |front: &[RobustPoint]| {
        front
            .iter()
            .map(|p| p.mc_worst)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let nominal_best_worst = best_worst(&nominal_front);
    let robust_best_worst = best_worst(&robust_front);
    RobustRow {
        dataset: dataset.spec().short_name.to_owned(),
        model: *model,
        nominal_front,
        robust_front,
        nominal_best_worst,
        robust_best_worst,
        robust_wins: robust_best_worst >= nominal_best_worst,
    }
}

/// Monte-Carlo-evaluate every approximate design on a study's front
/// against the held-out test split.
fn evaluated_front(
    selected: &Selected,
    model: &VariationModel,
    eval_seed: u64,
) -> Vec<RobustPoint> {
    let test = &selected.searched.costed.float.prepared.test;
    selected
        .searched
        .outcome
        .front
        .iter()
        .filter_map(|point| {
            let mlp = point.network.ax()?;
            let mc = mc_accuracy(
                mlp,
                &test.features,
                &test.labels,
                model,
                EVAL_TRIALS,
                eval_seed,
            );
            Some(RobustPoint {
                area_cm2: point.report.area_cm2,
                power_mw: point.report.power_mw,
                test_accuracy: point.test_accuracy,
                mc_worst: mc.worst,
                mc_p95: mc.p95,
                mc_mean: mc.mean,
            })
        })
        .collect()
}

/// Render the comparison as a table (one row per dataset).
#[must_use]
pub fn render(rows: &[RobustRow]) -> String {
    render_table(
        "Robust search: nominal vs variation-aware fronts under held-out Monte-Carlo evaluation",
        &[
            "Dataset",
            "Front(nom)",
            "Front(rob)",
            "BestWorst(nom)",
            "BestWorst(rob)",
            "Winner",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    format!("{}", r.nominal_front.len()),
                    format!("{}", r.robust_front.len()),
                    format!("{:.3}", r.nominal_best_worst),
                    format!("{:.3}", r.robust_best_worst),
                    if r.robust_wins { "robust" } else { "nominal" }.to_owned(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One headline line: on how many datasets the robust search held up
/// at least as well as the nominal one under variation.
#[must_use]
pub fn summary(rows: &[RobustRow]) -> String {
    let wins = rows.iter().filter(|r| r.robust_wins).count();
    format!(
        "robust search matches or beats nominal worst-case accuracy on {}/{} datasets",
        wins,
        rows.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_summary_handle_empty_runs() {
        assert!(render(&[]).contains("Robust search"));
        assert!(summary(&[]).contains("0/0"));
    }
}
