//! Fig. 4 — normalized area/power of ours vs the state of the art.
//!
//! The paper plots, per dataset and on a log axis, area and power
//! normalized to the exact baseline for: ours, TC'23 \[5\], TCAD'23 \[7\]
//! and the stochastic DATE'21 \[10\]. All methods share the same 5%
//! accuracy-loss budget except SC, which cannot reach it.
//!
//! The comparison iterates [`SearchEngine`]s generically over the
//! study's [`BaselineCosted`](printed_axc::BaselineCosted) stage —
//! adding a method to the figure is adding an engine to the list.

use serde::{Deserialize, Serialize};

use pe_baselines::{ScEngine, Tc23Engine, Tcad23Engine};
use pe_hw::{CostScenario, ExactCostModel, TechLibrary};
use printed_axc::{select_within_loss, RunControl, SearchEngine, Selected};

use crate::format::render_table;

/// Normalized results of one method on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodPoint {
    /// Area normalized to the exact baseline (lower is better).
    pub norm_area: f64,
    /// Power normalized to the exact baseline.
    pub norm_power: f64,
    /// Test accuracy of the compared design.
    pub accuracy: f64,
}

/// One compared engine's point, tagged with the engine name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedPoint {
    /// The engine ([`SearchEngine::name`]).
    pub engine: String,
    /// Its normalized design point.
    pub point: MethodPoint,
}

/// One Fig. 4 group: one dataset, ours plus every compared engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Two-letter dataset code (BC, Ca, PD, RW, WW).
    pub dataset: String,
    /// Our GA-trained design (the study's selected point).
    pub ours: Option<MethodPoint>,
    /// The compared engines, in input order.
    pub methods: Vec<NamedPoint>,
}

/// The paper's comparison set: TC'23 \[5\], TCAD'23 \[7\], DATE'21 \[10\].
#[must_use]
pub fn paper_engines() -> Vec<Box<dyn SearchEngine>> {
    vec![
        Box::new(Tc23Engine::default()),
        Box::new(Tcad23Engine::default()),
        Box::new(ScEngine::default()),
    ]
}

/// Build one Fig. 4 row from a completed study's stage artifacts by
/// running every engine against the same
/// [`SearchContext`](printed_axc::SearchContext) the study's own
/// search saw. `tech` must be the technology the study ran with, so
/// the engines' circuits and the baseline normalizer share one model;
/// the loss budget comes from the `Selected` stage itself, so every
/// method competes under the budget the study actually used.
///
/// Each engine's reported design is the smallest front member within
/// that budget, falling back to its most accurate design when none
/// qualifies (the paper's treatment of SC, which cannot reach the
/// budget).
///
/// # Panics
///
/// Panics if an engine fails — nothing cancels these searches, so a
/// failure is a bug.
#[must_use]
pub fn row(selected: &Selected, engines: &[Box<dyn SearchEngine>], tech: &TechLibrary) -> Fig4Row {
    let costed = &selected.searched.costed;
    let spec = costed.float.prepared.dataset.spec();
    let model = ExactCostModel::new(CostScenario::nominal(tech.clone()));
    let budget = selected.loss_budget;
    let ctx = costed.search_context(&model, budget);
    let base_area = costed.baseline_report.area_cm2;
    let base_power = costed.baseline_report.power_mw;

    let normalized = |p: &printed_axc::DesignPoint| MethodPoint {
        norm_area: p.report.area_cm2 / base_area,
        norm_power: p.report.power_mw / base_power,
        accuracy: p.test_accuracy,
    };

    let methods = engines
        .iter()
        .map(|engine| {
            let outcome = engine
                .search(&ctx, &RunControl::NONE)
                .unwrap_or_else(|e| panic!("engine {} failed: {e}", engine.name()));
            let representative =
                select_within_loss(&outcome.front, costed.baseline_test_accuracy, budget).or_else(
                    || {
                        outcome
                            .front
                            .iter()
                            .max_by(|a, b| a.test_accuracy.total_cmp(&b.test_accuracy))
                    },
                );
            NamedPoint {
                engine: engine.name().to_owned(),
                point: representative.map_or(
                    MethodPoint {
                        norm_area: f64::INFINITY,
                        norm_power: f64::INFINITY,
                        accuracy: 0.0,
                    },
                    normalized,
                ),
            }
        })
        .collect();

    Fig4Row {
        dataset: spec.short_name.to_owned(),
        ours: selected.selected.as_ref().map(normalized),
        methods,
    }
}

/// Render both panels of Fig. 4 as tables (normalized, log-scale data).
#[must_use]
pub fn render(rows: &[Fig4Row]) -> String {
    let engine_names: Vec<String> = rows.first().map_or_else(Vec::new, |r| {
        r.methods.iter().map(|m| m.engine.clone()).collect()
    });
    let mut header: Vec<&str> = vec!["Dataset", "ours"];
    header.extend(engine_names.iter().map(String::as_str));

    let panel = |title: &str, pick: fn(&MethodPoint) -> f64, precision: usize| {
        render_table(
            title,
            &header,
            &rows
                .iter()
                .map(|r| {
                    let mut cells = vec![
                        r.dataset.clone(),
                        r.ours
                            .as_ref()
                            .map_or("-".into(), |p| format!("{:.precision$}", pick(p))),
                    ];
                    cells.extend(
                        r.methods
                            .iter()
                            .map(|m| format!("{:.precision$}", pick(&m.point))),
                    );
                    cells
                })
                .collect::<Vec<_>>(),
        )
    };

    let area = panel(
        "Fig. 4a: Normalized area (vs exact baseline; lower is better)",
        |p| p.norm_area,
        4,
    );
    let power = panel(
        "Fig. 4b: Normalized power (vs exact baseline; lower is better)",
        |p| p.norm_power,
        4,
    );
    let acc = panel(
        "Fig. 4 (context): test accuracies of the compared designs",
        |p| p.accuracy,
        3,
    );
    format!("{area}\n{power}\n{acc}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(v: f64) -> MethodPoint {
        MethodPoint {
            norm_area: v,
            norm_power: v,
            accuracy: 0.9,
        }
    }

    #[test]
    fn render_derives_columns_from_the_engine_list() {
        let rows = vec![Fig4Row {
            dataset: "BC".into(),
            ours: Some(point(0.01)),
            methods: vec![
                NamedPoint {
                    engine: "tc23".into(),
                    point: point(0.5),
                },
                NamedPoint {
                    engine: "sc-date21".into(),
                    point: point(2.0),
                },
            ],
        }];
        let out = render(&rows);
        assert!(out.contains("tc23") && out.contains("sc-date21"));
        assert!(out.contains("0.0100") && out.contains("2.0000"));
    }
}
