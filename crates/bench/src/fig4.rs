//! Fig. 4 — normalized area/power of ours vs the state of the art.
//!
//! The paper plots, per dataset and on a log axis, area and power
//! normalized to the exact baseline for: ours, TC'23 \[5\], TCAD'23 \[7\]
//! and the stochastic DATE'21 \[10\]. All methods share the same 5%
//! accuracy-loss budget except SC, which cannot reach it.

use serde::{Deserialize, Serialize};

use pe_baselines::{
    approximate_tc23, approximate_tcad23, ScConfig, ScMlp, Tc23Config, Tcad23Config,
};
use pe_datasets::{generate, stratified_split, Dataset};
use pe_hw::{Elaborator, TechLibrary, VddModel};
use pe_mlp::Topology;
use printed_axc::DatasetStudy;

use crate::format::render_table;

/// Normalized results of one method on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodPoint {
    /// Area normalized to the exact baseline (lower is better).
    pub norm_area: f64,
    /// Power normalized to the exact baseline.
    pub norm_power: f64,
    /// Test accuracy of the compared design.
    pub accuracy: f64,
}

/// One Fig. 4 group (one dataset, four methods).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Two-letter dataset code (BC, Ca, PD, RW, WW).
    pub dataset: String,
    /// Our GA-trained design.
    pub ours: Option<MethodPoint>,
    /// TC'23 post-training co-design.
    pub tc23: MethodPoint,
    /// TCAD'23 VOS design.
    pub tcad23: MethodPoint,
    /// DATE'21 stochastic computing.
    pub sc: MethodPoint,
}

/// Build one Fig. 4 row from a completed study (reusing its baseline
/// and float network lineage by retraining the float MLP at the same
/// seed — cheap relative to the GA).
#[must_use]
pub fn row(study: &DatasetStudy, study_config: &printed_axc::StudyConfig, seed: u64) -> Fig4Row {
    let dataset: Dataset = study.dataset;
    let spec = dataset.spec();
    let tech = TechLibrary::egfet();
    let elab = Elaborator::new(tech.clone());
    let vdd = VddModel::egfet();
    let base_area = study.baseline_report.area_cm2;
    let base_power = study.baseline_report.power_mw;

    // Float network for the SC conversion (same lineage as the study:
    // identical data, split, and best-of-3 training).
    let data = generate(dataset, seed);
    let split = stratified_split(&data, 0.7, seed).expect("valid fraction");
    let sgd_cfg = study_config.sgd_for(&spec);
    let (float_mlp, _) = pe_mlp::train::train_best_of(
        &Topology::new(spec.topology()),
        &split.train.features,
        &split.train.labels,
        &sgd_cfg,
        3,
    );

    // TC'23.
    let tc = approximate_tc23(
        &study.baseline,
        &study.train.features,
        &study.train.labels,
        &Tc23Config::default(),
    );
    let tc_report = tc.hardware_report(&elab, "tc23");
    let tc_acc = tc.accuracy(&study.test.features, &study.test.labels);

    // TCAD'23 (VOS).
    let tcad = approximate_tcad23(
        &study.baseline,
        &study.train.features,
        &study.train.labels,
        spec.classes,
        &Tcad23Config::default(),
        &elab,
        &vdd,
    );
    let tcad_report = tcad.hardware_report(&elab, &vdd, "tcad23");
    let tcad_acc = tcad.vos_accuracy(
        tcad.design
            .accuracy(&study.test.features, &study.test.labels),
        spec.classes,
    );

    // DATE'21 SC.
    let sc = ScMlp::from_dense(&float_mlp, &split.train.features, &ScConfig::default());
    let sc_report = sc.hardware_report(&tech, "sc");
    let sc_acc = sc.accuracy(&split.test.features, &split.test.labels);

    Fig4Row {
        dataset: spec.short_name.to_owned(),
        ours: study.selected.as_ref().map(|d| MethodPoint {
            norm_area: d.report.area_cm2 / base_area,
            norm_power: d.report.power_mw / base_power,
            accuracy: d.test_accuracy,
        }),
        tc23: MethodPoint {
            norm_area: tc_report.area_cm2 / base_area,
            norm_power: tc_report.power_mw / base_power,
            accuracy: tc_acc,
        },
        tcad23: MethodPoint {
            norm_area: tcad_report.area_cm2 / base_area,
            norm_power: tcad_report.power_mw / base_power,
            accuracy: tcad_acc,
        },
        sc: MethodPoint {
            norm_area: sc_report.area_cm2 / base_area,
            norm_power: sc_report.power_mw / base_power,
            accuracy: sc_acc,
        },
    }
}

/// Render both panels of Fig. 4 as tables (normalized, log-scale data).
#[must_use]
pub fn render(rows: &[Fig4Row]) -> String {
    let fmt = |p: &MethodPoint| format!("{:.4}", p.norm_area);
    let fmt_p = |p: &MethodPoint| format!("{:.4}", p.norm_power);
    let area = render_table(
        "Fig. 4a: Normalized area (vs exact baseline; lower is better)",
        &["Dataset", "ours", "TC'23[5]", "TCAD'23[7]", "DATE'21[10]"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.ours.as_ref().map_or("-".into(), fmt),
                    fmt(&r.tc23),
                    fmt(&r.tcad23),
                    fmt(&r.sc),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let power = render_table(
        "Fig. 4b: Normalized power (vs exact baseline; lower is better)",
        &["Dataset", "ours", "TC'23[5]", "TCAD'23[7]", "DATE'21[10]"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.ours.as_ref().map_or("-".into(), fmt_p),
                    fmt_p(&r.tc23),
                    fmt_p(&r.tcad23),
                    fmt_p(&r.sc),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let acc = render_table(
        "Fig. 4 (context): test accuracies of the compared designs",
        &["Dataset", "ours", "TC'23[5]", "TCAD'23[7]", "DATE'21[10]"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.ours
                        .as_ref()
                        .map_or("-".into(), |p| format!("{:.3}", p.accuracy)),
                    format!("{:.3}", r.tc23.accuracy),
                    format!("{:.3}", r.tcad23.accuracy),
                    format!("{:.3}", r.sc.accuracy),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!("{area}\n{power}\n{acc}")
}
