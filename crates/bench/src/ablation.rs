//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! * [`doping`] — doped vs purely random initial populations: doping
//!   should reach the high-accuracy end of the front much earlier.
//! * [`objective`] — the paper's FA-count area proxy vs the full
//!   gate-equivalent objective, compared as two [`NsgaEngine`]
//!   configurations through the generic engine interface.
//! * [`fa_vs_netlist`] — the FA-count training proxy vs the full
//!   netlist cost: the proxy must rank designs consistently with the
//!   elaborated circuit (Spearman-style concordance).
//!
//! Data preparation runs through the staged pipeline (`prepare` /
//! `train_float` / `cost_baseline`), so the ablations see exactly the
//! splits and baselines the main experiments use.

use serde::{Deserialize, Serialize};

use pe_datasets::Dataset;
use pe_hw::{Elaborator, TechLibrary};
use pe_mlp::{ax_to_hardware, DenseMlp, SgdTrainer, Topology, TrainConfig};
use pe_nsga::{Nsga2, NsgaConfig};
use printed_axc::{
    doped_seeds, select_within_loss, AreaObjective, AxTrainConfig, AxTrainProblem, FloatTrained,
    HwAwareTrainer, NsgaEngine, RunControl, SearchEngine, Study, StudyConfig,
};

use crate::format::render_table;

/// The study configuration the ablations prepare data with.
fn ablation_config(seed: u64, ga: AxTrainConfig) -> StudyConfig {
    StudyConfig {
        seed,
        ga,
        sgd_epochs_scale: 0.4,
        ..StudyConfig::default()
    }
}

/// Result of the doping ablation on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DopingResult {
    /// Dataset code.
    pub dataset: String,
    /// Best training accuracy in the final front, doped init.
    pub doped_best_accuracy: f64,
    /// Best training accuracy in the final front, random init.
    pub random_best_accuracy: f64,
    /// First generation at which a feasible (within the 10% bound)
    /// candidate appeared, doped init (`None` = never).
    pub doped_first_feasible_gen: Option<usize>,
    /// Same for random init.
    pub random_first_feasible_gen: Option<usize>,
}

/// Run the doping ablation.
///
/// # Panics
///
/// Panics if a pipeline stage fails (valid configs, nothing cancels).
#[must_use]
pub fn doping(dataset: Dataset, population: usize, generations: usize, seed: u64) -> DopingResult {
    let spec = dataset.spec();
    let cfg = AxTrainConfig {
        fitness_subsample: Some(500),
        nsga: NsgaConfig {
            population,
            generations,
            seed,
            ..NsgaConfig::default()
        },
        ..AxTrainConfig::default()
    };
    let pipeline = Study::for_dataset(dataset)
        .config(ablation_config(seed, cfg.clone()))
        .tech(TechLibrary::egfet())
        .finish()
        .expect("valid ablation config");
    let prepared = pipeline.prepare().expect("prepare stage");

    // A deliberately weak float baseline (single short SGD run): the
    // ablation wants a GA problem with headroom, not a polished start.
    let mut float_mlp = DenseMlp::random(Topology::new(spec.topology()), seed);
    let _ = SgdTrainer::new(TrainConfig {
        epochs: 60,
        seed,
        ..TrainConfig::default()
    })
    .train(
        &mut float_mlp,
        &prepared.float_train.features,
        &prepared.float_train.labels,
    );
    let float_test_accuracy =
        float_mlp.accuracy(&prepared.float_test.features, &prepared.float_test.labels);
    let costed = pipeline
        .cost_baseline(FloatTrained {
            prepared,
            float_mlp,
            float_test_accuracy,
        })
        .expect("baseline stage");
    let train = &costed.float.prepared.train;
    let baseline = &costed.baseline;

    let trainer = HwAwareTrainer::new(cfg.clone());
    let genome = trainer.genome_spec_for(baseline);
    let n = 500.min(train.len());
    let problem = AxTrainProblem::new(
        genome.clone(),
        train.features.head(n),
        train.labels[..n].to_vec(),
        costed.baseline_train_accuracy,
        cfg.max_accuracy_loss,
    );
    let floor = problem.accuracy_floor();

    let run = |seeds: Vec<Vec<u32>>| {
        let mut first_feasible = None;
        let result = Nsga2::new(cfg.nsga.clone()).run_seeded(&problem, seeds, |s| {
            if first_feasible.is_none() && 1.0 - s.best_objectives[0] + 1e-12 >= floor {
                first_feasible = Some(s.generation);
            }
        });
        let best = result
            .pareto_front
            .iter()
            .map(|i| 1.0 - i.evaluation.objectives[0])
            .fold(0.0f64, f64::max);
        (best, first_feasible)
    };

    let doped = run(doped_seeds(
        &genome,
        baseline,
        cfg.max_shift(),
        cfg.bias_bits,
        population / 10 + 1,
        seed,
    ));
    let random = run(Vec::new());

    DopingResult {
        dataset: spec.short_name.to_owned(),
        doped_best_accuracy: doped.0,
        doped_first_feasible_gen: doped.1,
        random_best_accuracy: random.0,
        random_first_feasible_gen: random.1,
    }
}

/// Render the doping ablation.
#[must_use]
pub fn render_doping(rows: &[DopingResult]) -> String {
    render_table(
        "Ablation: doped (~10% near-exact) vs random initialization",
        &[
            "Dataset",
            "doped best acc",
            "random best acc",
            "doped 1st feasible",
            "random 1st feasible",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    format!("{:.3}", r.doped_best_accuracy),
                    format!("{:.3}", r.random_best_accuracy),
                    r.doped_first_feasible_gen
                        .map_or("never".into(), |g| g.to_string()),
                    r.random_first_feasible_gen
                        .map_or("never".into(), |g| g.to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Result of the area-objective ablation on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectiveResult {
    /// Dataset code.
    pub dataset: String,
    /// Selected-design area (cm²) under the paper's FA-count objective.
    pub fa_count_area: Option<f64>,
    /// Selected-design area (cm²) under the gate-equivalent objective.
    pub gate_equiv_area: Option<f64>,
    /// Selected-design accuracy under the FA-count objective.
    pub fa_count_accuracy: Option<f64>,
    /// Selected-design accuracy under the gate-equivalent objective.
    pub gate_equiv_accuracy: Option<f64>,
}

/// Compare the paper's FA-count objective against the full
/// gate-equivalent objective at a fixed GA budget: the same
/// [`NsgaEngine`] run twice through the generic engine interface, with
/// only `config.objective` differing.
///
/// # Panics
///
/// Panics if a stage or engine fails (valid configs, nothing cancels).
#[must_use]
pub fn objective(
    dataset: Dataset,
    population: usize,
    generations: usize,
    seed: u64,
) -> ObjectiveResult {
    let spec = dataset.spec();
    let cfg = AxTrainConfig {
        fitness_subsample: Some(800),
        nsga: NsgaConfig {
            population,
            generations,
            seed,
            ..NsgaConfig::default()
        },
        ..AxTrainConfig::default()
    };
    let study_cfg = ablation_config(seed, cfg.clone());
    let loss_budget = study_cfg.accuracy_loss_budget;
    let pipeline = Study::for_dataset(dataset)
        .config(study_cfg)
        .tech(TechLibrary::egfet())
        .finish()
        .expect("valid ablation config");
    let costed = pipeline.baseline_costed().expect("stages 1-3");

    let model = pe_hw::ExactCostModel::new(pe_hw::CostScenario::default());
    let ctx = costed.search_context(&model, loss_budget);

    let run = |objective: AreaObjective| {
        let engine = NsgaEngine::new(AxTrainConfig {
            objective,
            ..cfg.clone()
        });
        let outcome = engine
            .search(&ctx, &RunControl::NONE)
            .unwrap_or_else(|e| panic!("engine {} failed: {e}", engine.name()));
        select_within_loss(&outcome.front, costed.baseline_test_accuracy, loss_budget)
            .map(|d| (d.report.area_cm2, d.test_accuracy))
    };

    let fa = run(AreaObjective::FaCount);
    let ge = run(AreaObjective::GateEquivalents);
    ObjectiveResult {
        dataset: spec.short_name.to_owned(),
        fa_count_area: fa.map(|x| x.0),
        fa_count_accuracy: fa.map(|x| x.1),
        gate_equiv_area: ge.map(|x| x.0),
        gate_equiv_accuracy: ge.map(|x| x.1),
    }
}

/// Render the objective ablation.
#[must_use]
pub fn render_objective(rows: &[ObjectiveResult]) -> String {
    render_table(
        "Ablation: FA-count (paper Eq. 2) vs gate-equivalent area objective",
        &[
            "Dataset",
            "FA-count area",
            "GE area",
            "FA-count acc",
            "GE acc",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.fa_count_area.map_or("-".into(), |v| format!("{v:.3}")),
                    r.gate_equiv_area.map_or("-".into(), |v| format!("{v:.3}")),
                    r.fa_count_accuracy
                        .map_or("-".into(), |v| format!("{v:.3}")),
                    r.gate_equiv_accuracy
                        .map_or("-".into(), |v| format!("{v:.3}")),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Result of the estimator-vs-netlist concordance probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProxyConcordance {
    /// Number of sampled design pairs.
    pub pairs: usize,
    /// Fraction of pairs ranked identically by the FA proxy and the
    /// elaborated circuit area.
    pub concordant_fraction: f64,
    /// Mean relative gap between proxy-implied and elaborated area
    /// ratios.
    pub mean_ratio_gap: f64,
}

/// Sample random genomes of a dataset's genome space and compare the
/// FA-count proxy's ranking with the full netlist cost's ranking.
///
/// # Panics
///
/// Panics if a pipeline stage fails (valid configs, nothing cancels).
#[must_use]
pub fn fa_vs_netlist(dataset: Dataset, samples: usize, seed: u64) -> ProxyConcordance {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let spec = dataset.spec();
    let pipeline = Study::for_dataset(dataset)
        .config(ablation_config(seed, AxTrainConfig::default()))
        .tech(TechLibrary::egfet())
        .finish()
        .expect("valid ablation config");
    let prepared = pipeline.prepare().expect("prepare stage");

    let mut float_mlp = DenseMlp::random(Topology::new(spec.topology()), seed);
    let _ = SgdTrainer::new(TrainConfig {
        epochs: 20,
        seed,
        ..TrainConfig::default()
    })
    .train(
        &mut float_mlp,
        &prepared.float_train.features,
        &prepared.float_train.labels,
    );
    let float_test_accuracy =
        float_mlp.accuracy(&prepared.float_test.features, &prepared.float_test.labels);
    let costed = pipeline
        .cost_baseline(FloatTrained {
            prepared,
            float_mlp,
            float_test_accuracy,
        })
        .expect("baseline stage");

    let trainer = HwAwareTrainer::new(AxTrainConfig::default());
    let genome = trainer.genome_spec_for(&costed.baseline);
    let elab = Elaborator::new(TechLibrary::egfet());
    let estimator = pe_arith::AdderAreaEstimator::paper();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xb5ad_4ece_da1c_e2a9);
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(samples);
    for i in 0..samples {
        let genes = pe_nsga::random_genome(genome.bounds(), &mut rng);
        let mlp = genome.decode(&genes);
        let proxy = estimator.estimate_total(mlp.arith_specs().iter().flatten());
        let area = elab
            .elaborate(&ax_to_hardware(&mlp, format!("probe{i}")))
            .report
            .area_cm2;
        points.push((proxy, area));
    }

    let mut concordant = 0usize;
    let mut pairs = 0usize;
    let mut gap_sum = 0.0f64;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let (p1, a1) = points[i];
            let (p2, a2) = points[j];
            if (p1 - p2).abs() < 1e-9 || (a1 - a2).abs() < 1e-12 {
                continue;
            }
            pairs += 1;
            if (p1 < p2) == (a1 < a2) {
                concordant += 1;
            }
            let pr = (p1.max(1e-9) / p2.max(1e-9)).ln().abs();
            let ar = (a1 / a2).ln().abs();
            gap_sum += (pr - ar).abs();
        }
    }
    ProxyConcordance {
        pairs,
        concordant_fraction: if pairs == 0 {
            1.0
        } else {
            concordant as f64 / pairs as f64
        },
        mean_ratio_gap: if pairs == 0 {
            0.0
        } else {
            gap_sum / pairs as f64
        },
    }
}

/// Render the proxy-concordance ablation.
#[must_use]
pub fn render_concordance(dataset: &str, c: &ProxyConcordance) -> String {
    render_table(
        "Ablation: FA-count training proxy vs elaborated netlist area",
        &["Dataset", "pairs", "concordant", "mean log-ratio gap"],
        &[vec![
            dataset.to_owned(),
            c.pairs.to_string(),
            format!("{:.3}", c.concordant_fraction),
            format!("{:.3}", c.mean_ratio_gap),
        ]],
    )
}
