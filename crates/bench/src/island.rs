//! Island-model search scaling curve (`BENCH_islands.json`).
//!
//! Sweeps island count × evaluator worker threads on one dataset at a
//! fixed evaluation budget (same population, same generations — the
//! archipelago splits the population, it never grows it) and records,
//! per cell, the evolution-loop wall clock, the merged front's size
//! and 2-objective hypervolume, and the speedup vs the
//! single-population engine. Every cell's merged front is proven
//! byte-identical across worker counts before the report is written —
//! the determinism contract is part of the benchmark, not a caveat.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use pe_datasets::Dataset;
use printed_axc::{fingerprint_json, Study, TrainingOutcome};

use crate::format::render_table;
use crate::study::{study_config, BudgetPreset, EvalCacheSummary};

/// Island counts the sweep visits (1 = the single-population
/// [`printed_axc::NsgaEngine`] baseline).
pub const ISLAND_COUNTS: [usize; 3] = [1, 2, 4];

/// Evaluator worker budgets the sweep visits (what `PE_THREADS` would
/// set; the island scheduler splits each budget between island workers
/// and per-island evaluator threads).
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// One cell of the islands × threads sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IslandCell {
    /// Sub-population count (1 = single-population baseline).
    pub islands: usize,
    /// Total evaluator worker budget for this run.
    pub threads: usize,
    /// Wall clock of the evolution loop proper (the search stage's
    /// `ga_wall`, excluding seeding and hardware analysis).
    pub ga_wall_ms: f64,
    /// Chromosome evaluations spent (identical across the whole sweep
    /// — the budget is fixed by construction).
    pub evaluations: u64,
    /// Designs on the merged true Pareto front.
    pub front_size: usize,
    /// Dominated 2-objective (area, error) hypervolume of the merged
    /// front, against a reference point shared by the whole sweep.
    pub hypervolume: f64,
    /// FNV-1a fingerprint of the full search outcome (timing zeroed):
    /// equal fingerprints = byte-identical merged fronts + history.
    pub outcome_fingerprint: String,
    /// Speedup vs the single-population cell at the *same* thread
    /// budget (the engine-vs-engine comparison).
    pub speedup_vs_single_pop: f64,
    /// Speedup vs the serial single-population cell (islands=1,
    /// threads=1 — the end-to-end scaling curve).
    pub speedup_vs_serial: f64,
    /// The outcome fingerprint matches this island count's cell at
    /// every other thread budget (the determinism invariant).
    pub identical_across_threads: bool,
}

/// The whole sweep, as written to `BENCH_islands.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IslandScalingReport {
    /// Dataset the sweep ran on.
    pub dataset: String,
    /// Master seed of every cell.
    pub seed: u64,
    /// Total population (split across islands, never multiplied).
    pub population: usize,
    /// Generations per island (equal for every cell).
    pub generations: usize,
    /// Migration cadence in completed generations.
    pub migration_every: usize,
    /// Elites each island emits per migration epoch.
    pub migrants: usize,
    /// Hardware threads the host actually exposes — wall-clock speedup
    /// is bounded by this, not by the requested worker budget.
    pub host_threads: usize,
    /// Measurement caveat (single-core hosts cannot show wall-clock
    /// scaling; determinism is the machine-independent claim).
    pub note: String,
    /// The islands × threads grid, in sweep order.
    pub cells: Vec<IslandCell>,
}

/// Run the islands × threads sweep at the given budget.
///
/// # Panics
///
/// Panics if a study fails (the bench presets are valid and nothing
/// cancels them) or if any island count's merged front differs across
/// thread budgets — that would break the determinism contract the
/// island engine is built on.
#[must_use]
pub fn sweep(budget: BudgetPreset, master_seed: u64) -> IslandScalingReport {
    let dataset = Dataset::Pendigits;
    // Pin the island knobs: the sweep grid must not bend to
    // `PE_ISLANDS` (the builder overrides below control each cell).
    let mut config = study_config(budget, master_seed);
    config.islands = 0;
    config.migration_every = 0;
    config.migrants = 0;
    let summary = Arc::new(EvalCacheSummary::default());

    struct Raw {
        islands: usize,
        threads: usize,
        ga_wall_ms: f64,
        outcome: TrainingOutcome,
        fingerprint: u64,
    }
    let mut raws: Vec<Raw> = Vec::new();
    for islands in ISLAND_COUNTS {
        for threads in THREAD_COUNTS {
            let observer = Arc::clone(&summary);
            let pipeline = Study::for_dataset(dataset)
                .config(config.clone())
                .eval_threads(threads)
                .islands(islands)
                .progress(move |event| observer.observe(dataset, event))
                .finish()
                .expect("bench presets are valid");
            let searched = pipeline
                .searched()
                .expect("bench presets are valid and uncancelled");
            let outcome = searched.outcome;
            let ga_wall_ms = outcome.ga_wall.as_secs_f64() * 1e3;
            // Fingerprint everything but the timing: equal hashes mean
            // the merged front, estimated front, history and
            // evaluation count are byte-identical.
            let timeless = TrainingOutcome {
                ga_wall: std::time::Duration::ZERO,
                ..outcome.clone()
            };
            let fingerprint = fingerprint_json(&timeless);
            eprintln!(
                "islands={islands} threads={threads}: ga_wall {ga_wall_ms:.0} ms, \
                 front {}, fingerprint {fingerprint:016x}",
                outcome.front.len(),
            );
            raws.push(Raw {
                islands,
                threads,
                ga_wall_ms,
                outcome,
                fingerprint,
            });
        }
    }
    println!("{}", summary.render());

    // Shared hypervolume reference point: just past the worst corner
    // any cell's front reaches (deterministic — the fronts are).
    let (mut ref_area, mut ref_err) = (0.0_f64, 0.0_f64);
    for raw in &raws {
        for point in &raw.outcome.front {
            ref_area = ref_area.max(point.report.area_cm2);
            ref_err = ref_err.max(1.0 - point.test_accuracy);
        }
    }
    ref_area *= 1.05;
    ref_err = (ref_err + 0.01).min(1.0);

    let wall_of = |islands: usize, threads: usize| {
        raws.iter()
            .find(|r| r.islands == islands && r.threads == threads)
            .map(|r| r.ga_wall_ms)
            .unwrap_or(f64::NAN)
    };
    let serial_wall = wall_of(1, 1);
    let cells: Vec<IslandCell> = raws
        .iter()
        .map(|raw| {
            let identical_across_threads = raws
                .iter()
                .filter(|other| other.islands == raw.islands)
                .all(|other| other.fingerprint == raw.fingerprint);
            IslandCell {
                islands: raw.islands,
                threads: raw.threads,
                ga_wall_ms: raw.ga_wall_ms,
                evaluations: raw.outcome.evaluations,
                front_size: raw.outcome.front.len(),
                hypervolume: hypervolume(&raw.outcome, ref_area, ref_err),
                outcome_fingerprint: format!("{:016x}", raw.fingerprint),
                speedup_vs_single_pop: wall_of(1, raw.threads) / raw.ga_wall_ms.max(1e-9),
                speedup_vs_serial: serial_wall / raw.ga_wall_ms.max(1e-9),
                identical_across_threads,
            }
        })
        .collect();
    assert!(
        cells.iter().all(|c| c.identical_across_threads),
        "island determinism violated: a merged front changed with the worker count",
    );

    let nsga = &config.ga.nsga;
    IslandScalingReport {
        dataset: dataset.spec().short_name.to_owned(),
        seed: master_seed,
        population: nsga.population,
        generations: nsga.generations,
        migration_every: pe_nsga::DEFAULT_MIGRATION_EVERY,
        migrants: pe_nsga::DEFAULT_MIGRANTS,
        host_threads: std::thread::available_parallelism().map_or(1, usize::from),
        note: "wall-clock speedup is bounded by host_threads; on a single-core host the \
               curve is flat and the byte-identical fingerprints are the claim under test"
            .to_owned(),
        cells,
    }
}

/// Dominated 2-objective hypervolume of a front against a reference
/// point, both objectives minimized: area (cm²) and error
/// (1 − test accuracy).
fn hypervolume(outcome: &TrainingOutcome, ref_area: f64, ref_err: f64) -> f64 {
    // Keep the non-dominated subset inside the reference box, sorted
    // by ascending area (ties broken by error).
    let mut points: Vec<(f64, f64)> = outcome
        .front
        .iter()
        .map(|p| (p.report.area_cm2, 1.0 - p.test_accuracy))
        .filter(|&(a, e)| a < ref_area && e < ref_err)
        .collect();
    points.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));
    let mut hv = 0.0;
    let mut best_err = f64::INFINITY;
    for i in 0..points.len() {
        let (area, err) = points[i];
        if err >= best_err {
            continue; // dominated by an equal-or-smaller design
        }
        best_err = err;
        // Width up to the next *non-dominated* area (or the reference).
        let next_area = points[i + 1..]
            .iter()
            .find(|&&(_, e)| e < err)
            .map_or(ref_area, |&(a, _)| a);
        hv += (next_area - area) * (ref_err - err);
    }
    hv
}

/// Render the sweep as a table (one row per cell).
#[must_use]
pub fn render(report: &IslandScalingReport) -> String {
    render_table(
        &format!(
            "Island scaling on {} (pop {}, {} gens, migrate every {} x{}; host threads: {})",
            report.dataset,
            report.population,
            report.generations,
            report.migration_every,
            report.migrants,
            report.host_threads,
        ),
        &[
            "Islands",
            "Threads",
            "GA wall (ms)",
            "Front",
            "Hypervolume",
            "Speedup(vs 1-pop)",
            "Speedup(vs serial)",
            "Deterministic",
        ],
        &report
            .cells
            .iter()
            .map(|c| {
                vec![
                    format!("{}", c.islands),
                    format!("{}", c.threads),
                    format!("{:.0}", c.ga_wall_ms),
                    format!("{}", c.front_size),
                    format!("{:.4}", c.hypervolume),
                    format!("{:.2}x", c.speedup_vs_single_pop),
                    format!("{:.2}x", c.speedup_vs_serial),
                    format!("{}", c.identical_across_threads),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use printed_axc::{DesignNetwork, DesignPoint};

    fn outcome_with(points: &[(f64, f64)]) -> TrainingOutcome {
        TrainingOutcome {
            front: points
                .iter()
                .map(|&(area, err)| DesignPoint {
                    network: DesignNetwork::Stochastic,
                    train_accuracy: 1.0 - err,
                    test_accuracy: 1.0 - err,
                    estimated_area: area,
                    report: pe_hw::HardwareReport {
                        name: String::new(),
                        vdd: 0.0,
                        area_cm2: area,
                        power_mw: 0.0,
                        delay_ms: 0.0,
                        cells: pe_hw::CellCounts::default(),
                        critical_fa_depth: 0,
                    },
                })
                .collect(),
            estimated_front: Vec::new(),
            history: Vec::new(),
            evaluations: 0,
            ga_wall: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn hypervolume_of_a_staircase_front() {
        // Two non-dominated points + one dominated straggler against
        // the (10, 1.0) reference box.
        let outcome = outcome_with(&[(2.0, 0.5), (4.0, 0.2), (5.0, 0.4)]);
        let hv = hypervolume(&outcome, 10.0, 1.0);
        // (4-2)*(1-0.5) + (10-4)*(1-0.2) = 1.0 + 4.8
        assert!((hv - 5.8).abs() < 1e-9, "hv {hv}");
    }

    #[test]
    fn hypervolume_ignores_points_outside_the_reference_box() {
        let outcome = outcome_with(&[(12.0, 0.1), (2.0, 1.5)]);
        assert_eq!(hypervolume(&outcome, 10.0, 1.0), 0.0);
    }

    #[test]
    fn render_reports_every_cell() {
        let report = IslandScalingReport {
            dataset: "PD".into(),
            seed: 0,
            population: 32,
            generations: 24,
            migration_every: 5,
            migrants: 2,
            host_threads: 1,
            note: String::new(),
            cells: vec![IslandCell {
                islands: 2,
                threads: 8,
                ga_wall_ms: 123.0,
                evaluations: 800,
                front_size: 7,
                hypervolume: 1.5,
                outcome_fingerprint: "00".into(),
                speedup_vs_single_pop: 1.9,
                speedup_vs_serial: 2.1,
                identical_across_threads: true,
            }],
        };
        let table = render(&report);
        assert!(table.contains("1.90x"), "{table}");
        assert!(table.contains("true"), "{table}");
    }
}
