//! Kernel parity: every [`KernelKind`] must be **bit-exact** with the
//! scalar reference kernel, for random 4-bit networks and for neurons
//! driven straight at the per-column accumulators — including masks up
//! to the full `u16` range, shifts past the `i32`-safety cutoff (the
//! wide `i64` path), and weights sitting exactly on the bit-sliced
//! 16-bit lane boundary and the `i32` worst-case-bound boundary.
//!
//! The scalar kernel is itself pinned against the per-row oracle
//! elsewhere (`columnar.rs` unit tests and the core crate's
//! `columnar_parity` suite), so scalar equality here transitively pins
//! every mode to the paper's Eq. (4) semantics.

use proptest::prelude::*;

use pe_mlp::columnar::{
    accumulate_neuron_column, accumulate_neuron_column_kernel, fits_i32,
    predictions_columns_with_kernel,
};
use pe_mlp::{
    AxLayer, AxMlp, AxNeuron, AxWeight, ColumnarScratch, InferenceScratch, KernelKind,
    KernelScratch, QReluCfg, QuantMatrix,
};

const KERNELS: [KernelKind; 4] = [
    KernelKind::Scalar,
    KernelKind::Lut,
    KernelKind::BitSliced,
    KernelKind::Simd,
];

/// A weight drawn to stress the interesting regimes: plain 4/8-bit
/// masks, fully-masked (pruned) connections, masks with bits above the
/// 8-bit activation range, small shifts (the bit-sliceable regime) and
/// shifts past 22 (forcing the wide `i64` path).
fn weight() -> impl Strategy<Value = AxWeight> {
    let mask = prop_oneof![
        0u16..=0xFF,
        0u16..=0xFF,
        Just(0u16),
        Just(0xFFu16),
        0u16..=0xFFFF,
    ];
    let shift = prop_oneof![0u8..=8, 0u8..=8, Just(8u8), 0u8..=24];
    (mask, shift, any::<bool>()).prop_map(|(mask, shift, negative)| AxWeight {
        mask,
        shift,
        negative,
    })
}

fn neuron(max_fan_in: usize) -> impl Strategy<Value = AxNeuron> {
    (
        proptest::collection::vec(weight(), 1..=max_fan_in),
        -100_000i32..=100_000,
    )
        .prop_map(|(weights, bias)| AxNeuron { weights, bias })
}

/// Per-weight input columns (`fan_in × samples`), full `u8` range.
fn columns(fan_in: usize, samples: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), samples..=samples),
        fan_in..=fan_in,
    )
}

/// The scalar reference accumulation, widened to `i64`.
fn reference(neuron: &AxNeuron, inputs: &[Vec<u8>], samples: usize) -> Vec<i64> {
    let mut acc = Vec::new();
    let mut narrow = Vec::new();
    accumulate_neuron_column(neuron, inputs, samples, &mut acc, &mut narrow);
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single neuron, every kernel, random weights/inputs: the per-
    /// column accumulators must match the scalar reference bit-exactly
    /// in both the narrow (`i32`) and wide (`i64`) regimes.
    #[test]
    fn every_kernel_matches_the_scalar_accumulator(
        (neuron, inputs, samples) in (neuron(10), 0usize..=67).prop_flat_map(|(n, samples)| {
            let fan_in = n.weights.len();
            (Just(n), columns(fan_in, samples), Just(samples))
        }),
    ) {
        let expected = reference(&neuron, &inputs, samples);
        let mut scratch = KernelScratch::new();
        for kernel in KERNELS {
            let mut acc = Vec::new();
            let mut narrow = Vec::new();
            accumulate_neuron_column_kernel(
                kernel, &neuron, &inputs, samples, &mut acc, &mut narrow, &mut scratch,
            );
            prop_assert_eq!(&acc, &expected, "kernel {:?} diverged", kernel);
        }
    }

    /// Whole random two-hidden-layer 4-bit networks: every kernel's
    /// predictions must equal the per-row oracle's, sample for sample.
    #[test]
    fn every_kernel_matches_the_per_row_oracle_on_full_networks(
        l1_raw in proptest::collection::vec(neuron(5), 1..=6),
        l2_raw in proptest::collection::vec(neuron(6), 1..=5),
        out_raw in proptest::collection::vec(neuron(5), 2..=4),
        rows_raw in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 5..=5), 0..=41),
        shift1 in 0u32..=3,
        shift2 in 0u32..=3,
    ) {
        let fit = |mut ns: Vec<AxNeuron>, fan_in: usize| -> Vec<AxNeuron> {
            for n in &mut ns {
                let base = n.weights.clone();
                n.weights = (0..fan_in).map(|i| base[i % base.len()]).collect();
            }
            ns
        };
        let w1 = l1_raw.len();
        let w2 = l2_raw.len();
        let l1 = fit(l1_raw, 5);
        let l2 = fit(l2_raw, w1);
        let out = fit(out_raw, w2);
        let mlp = AxMlp {
            layers: vec![
                AxLayer {
                    input_bits: 4,
                    neurons: l1,
                    qrelu: Some(QReluCfg { out_bits: 8, shift: shift1 }),
                },
                AxLayer {
                    input_bits: 8,
                    neurons: l2,
                    qrelu: Some(QReluCfg { out_bits: 8, shift: shift2 }),
                },
                AxLayer {
                    input_bits: 8,
                    neurons: out,
                    qrelu: None,
                },
            ],
        };
        let rows: Vec<Vec<u8>> =
            rows_raw.iter().map(|r| r.iter().map(|&x| x & 0xF).collect()).collect();
        let cols = QuantMatrix::from_rows(&rows).columns();

        let mut oracle_scratch = InferenceScratch::new();
        let oracle: Vec<usize> =
            rows.iter().map(|r| mlp.predict_with(r, &mut oracle_scratch)).collect();

        let mut scratch = ColumnarScratch::new();
        let mut preds = Vec::new();
        for kernel in KERNELS {
            predictions_columns_with_kernel(&mlp, &cols, &mut scratch, &mut preds, kernel);
            prop_assert_eq!(&preds, &oracle, "kernel {:?} diverged", kernel);
        }
    }
}

/// Deterministic saturation boundaries: one weight set just inside the
/// `i32` worst-case bound (narrow path) and one just past it (wide
/// path), plus the bit-sliced lane boundary `(0xFF << 8) == 0xFF00`.
#[test]
fn kernels_agree_on_both_sides_of_the_i32_boundary() {
    let big = AxWeight {
        mask: 0xFF,
        shift: 22,
        negative: false,
    };
    let narrow = AxNeuron {
        weights: vec![big, big],
        bias: 5,
    };
    let wide = AxNeuron {
        weights: vec![big, big, big],
        bias: 5,
    };
    assert!(fits_i32(&narrow));
    assert!(!fits_i32(&wide));
    let lane_edge = AxNeuron {
        weights: vec![
            AxWeight {
                mask: 0xFF,
                shift: 8,
                negative: false,
            };
            6
        ],
        bias: -3,
    };
    assert!(fits_i32(&lane_edge));

    let samples = 33;
    let mut scratch = KernelScratch::new();
    for neuron in [&narrow, &wide, &lane_edge] {
        let inputs: Vec<Vec<u8>> = (0..neuron.weights.len())
            .map(|w| {
                (0..samples)
                    .map(|s| ((s * 37 + w * 11) % 256) as u8)
                    .collect()
            })
            .collect();
        let expected = reference(neuron, &inputs, samples);
        for kernel in KERNELS {
            let mut acc = Vec::new();
            let mut narrow_acc = Vec::new();
            accumulate_neuron_column_kernel(
                kernel,
                neuron,
                &inputs,
                samples,
                &mut acc,
                &mut narrow_acc,
                &mut scratch,
            );
            assert_eq!(acc, expected, "kernel {kernel:?} diverged at a boundary");
        }
    }
}
