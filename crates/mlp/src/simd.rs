//! Explicit `std::arch` x86_64 kernels for the narrow (`i32`) column
//! accumulation, runtime feature-detected.
//!
//! The scalar kernel in [`crate::columnar`] already auto-vectorizes
//! well, but the compiler must keep the `u8 → i32` widening, the AND
//! and the variable shift composable for any weight; writing the loop
//! directly against the ISA pins the exact instruction mix: load 8
//! column bytes, widen to 8 × `i32` lanes (`vpmovzxbd`), AND against
//! the broadcast mask, shift all lanes by the weight's scalar shift
//! count (`vpslld`), and add into (or subtract from) the accumulator
//! vector. One pass per weight over its contiguous column, exactly
//! like the scalar kernel — same order, same widths, so the sums are
//! identical bit for bit (the proptest parity suite pins this).
//!
//! AVX2 processes 8 samples per step, the SSE2 fallback 4 (SSE2 is
//! part of the x86_64 baseline, so that path needs no runtime check).
//! On other architectures — or with the `simd` cargo feature off —
//! [`accumulate_neuron_column_simd`] reports `false` and callers fall
//! back to the scalar kernel, keeping every target green without
//! `cfg` soup at the call sites.

use crate::axmlp::AxNeuron;
use crate::quant::QReluCfg;

/// Whether the explicit SIMD kernels can run on this host (compiled
/// in *and* the ISA baseline present). `false` means
/// [`accumulate_neuron_column_simd`] always declines and the caller's
/// scalar fallback serves.
#[must_use]
pub fn available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        true
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// [`accumulate_neuron_column_narrow`] via explicit `std::arch`
/// intrinsics where available. Returns `true` when the kernel ran
/// (results in `acc`, bit-exact with the scalar reference) and `false`
/// when the caller must fall back — off-target builds, the `simd`
/// feature disabled, or a neuron outside the narrow precondition.
///
/// [`accumulate_neuron_column_narrow`]: crate::columnar::accumulate_neuron_column_narrow
pub fn accumulate_neuron_column_simd<C: AsRef<[u8]>>(
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    acc: &mut Vec<i32>,
) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if !crate::columnar::fits_i32(neuron) {
            return false;
        }
        x86::accumulate(neuron, inputs, samples, acc);
        true
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (neuron, inputs, samples, acc);
        false
    }
}

/// Vectorized QReLU over a narrow accumulator column: shift, clamp to
/// `[0, 2^out_bits − 1]`, narrow to `u8` — bit-exact with the scalar
/// [`qrelu_column_narrow`]. Returns `true` when the vector path ran;
/// `false` (off-target, `simd` feature off, AVX2 absent, or
/// `out_bits > 8` where the scalar `as u8` narrowing could wrap) means
/// the caller must fall back.
///
/// [`qrelu_column_narrow`]: crate::columnar::qrelu_column_narrow
pub fn qrelu_column_narrow_simd(q: QReluCfg, acc: &[i32], out: &mut Vec<u8>) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if q.out_bits > 8 || q.shift >= 32 || !x86::has_avx2() {
            return false;
        }
        x86::qrelu(q, acc, out);
        true
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (q, acc, out);
        false
    }
}

/// One argmax column update, vectorized: for every sample `i` with
/// `col[i] > best_value[i]`, set `best_value[i] = col[i]` and
/// `best_index[i] = j`. Strictly-greater keeps ties at the lowest
/// index, exactly like the scalar sweep. Returns `false` when the
/// caller must run its scalar fallback.
///
/// # Panics
///
/// Panics if the three slices disagree in length.
pub fn argmax_update_narrow(
    j: u32,
    col: &[i32],
    best_index: &mut [u32],
    best_value: &mut [i32],
) -> bool {
    assert_eq!(col.len(), best_value.len(), "column length mismatch");
    assert_eq!(col.len(), best_index.len(), "column length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if !x86::has_avx2() {
            return false;
        }
        x86::argmax_update(j, col, best_index, best_value);
        true
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (j, col, best_index, best_value);
        false
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod x86 {
    //! The x86_64 lowering. `unsafe` is confined to this module: the
    //! intrinsics themselves (safe on any x86_64 for SSE2; gated by
    //! `is_x86_feature_detected!` for AVX2) and the
    //! `#[target_feature]` call boundary.

    use std::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_and_si256, _mm256_blendv_epi8, _mm256_cmpgt_epi32,
        _mm256_cvtepu8_epi32, _mm256_loadu_si256, _mm256_max_epi32, _mm256_min_epi32,
        _mm256_packus_epi16, _mm256_packus_epi32, _mm256_permutevar8x32_epi32, _mm256_set1_epi32,
        _mm256_set_epi32, _mm256_setzero_si256, _mm256_sll_epi32, _mm256_sra_epi32,
        _mm256_storeu_si256, _mm256_sub_epi32, _mm_add_epi32, _mm_and_si128, _mm_cvtsi32_si128,
        _mm_loadl_epi64, _mm_loadu_si128, _mm_set1_epi32, _mm_setzero_si128, _mm_sll_epi32,
        _mm_storeu_si128, _mm_sub_epi32, _mm_unpackhi_epi16, _mm_unpacklo_epi16, _mm_unpacklo_epi8,
    };
    use std::sync::OnceLock;

    use crate::axmlp::AxNeuron;
    use crate::quant::QReluCfg;

    /// Runtime AVX2 detection, probed once per process.
    pub(super) fn has_avx2() -> bool {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
    }

    /// Shift–clamp–narrow one column, 32 samples per step.
    /// Preconditions (checked by the caller): AVX2 present,
    /// `out_bits <= 8`, `shift < 32`.
    pub(super) fn qrelu(q: QReluCfg, acc: &[i32], out: &mut Vec<u8>) {
        let samples = acc.len();
        out.clear();
        out.resize(samples, 0);
        let chunks = samples / 32;
        // SAFETY: AVX2 was confirmed by the caller; every pointer stays
        // below `chunks * 32 <= samples` on both buffers.
        unsafe { qrelu_avx2(q, acc, out, chunks) };
        let kernel = q.kernel();
        for (o, &a) in out[chunks * 32..].iter_mut().zip(&acc[chunks * 32..]) {
            *o = kernel.apply(i64::from(a));
        }
    }

    /// # Safety
    ///
    /// The caller must ensure the host supports AVX2 and that both
    /// slices hold at least `chunks * 32` elements.
    #[target_feature(enable = "avx2")]
    unsafe fn qrelu_avx2(q: QReluCfg, acc: &[i32], out: &mut [u8], chunks: usize) {
        let count = _mm_cvtsi32_si128(q.shift as i32);
        let zero = _mm256_setzero_si256();
        let ceil = _mm256_set1_epi32((1 << q.out_bits) - 1);
        // packus interleaves 128-bit lanes; this dword order undoes it.
        let order = _mm256_set_epi32(7, 3, 6, 2, 5, 1, 4, 0);
        for c in 0..chunks {
            // SAFETY: `c * 32 + 32 <= samples` bounds the four loads
            // and the 32-byte store.
            unsafe {
                let at = |k: usize| -> std::arch::x86_64::__m256i {
                    let v = _mm256_loadu_si256(acc.as_ptr().add(c * 32 + k * 8).cast());
                    _mm256_min_epi32(_mm256_max_epi32(_mm256_sra_epi32(v, count), zero), ceil)
                };
                let lo = _mm256_packus_epi32(at(0), at(1));
                let hi = _mm256_packus_epi32(at(2), at(3));
                let bytes = _mm256_packus_epi16(lo, hi);
                let fixed = _mm256_permutevar8x32_epi32(bytes, order);
                _mm256_storeu_si256(out.as_mut_ptr().add(c * 32).cast(), fixed);
            }
        }
    }

    /// One argmax column update pass at 8 lanes per step.
    /// Precondition (checked by the caller): AVX2 present, equal slice
    /// lengths.
    pub(super) fn argmax_update(
        j: u32,
        col: &[i32],
        best_index: &mut [u32],
        best_value: &mut [i32],
    ) {
        let chunks = col.len() / 8;
        // SAFETY: AVX2 was confirmed by the caller; all pointers stay
        // below `chunks * 8 <= len` on all three equal-length buffers.
        unsafe { argmax_update_avx2(j, col, best_index, best_value, chunks) };
        for i in chunks * 8..col.len() {
            if col[i] > best_value[i] {
                best_value[i] = col[i];
                best_index[i] = j;
            }
        }
    }

    /// # Safety
    ///
    /// The caller must ensure the host supports AVX2 and that all three
    /// slices hold at least `chunks * 8` elements.
    #[target_feature(enable = "avx2")]
    unsafe fn argmax_update_avx2(
        j: u32,
        col: &[i32],
        best_index: &mut [u32],
        best_value: &mut [i32],
        chunks: usize,
    ) {
        let jv = _mm256_set1_epi32(j as i32);
        for c in 0..chunks {
            // SAFETY: `c * 8 + 8 <= len` bounds every load and store.
            unsafe {
                let x = _mm256_loadu_si256(col.as_ptr().add(c * 8).cast());
                let vs = best_value.as_mut_ptr().add(c * 8).cast();
                let is = best_index.as_mut_ptr().add(c * 8).cast();
                let v = _mm256_loadu_si256(vs);
                let take = _mm256_cmpgt_epi32(x, v);
                _mm256_storeu_si256(vs, _mm256_blendv_epi8(v, x, take));
                let idx = _mm256_loadu_si256(is);
                _mm256_storeu_si256(is, _mm256_blendv_epi8(idx, jv, take));
            }
        }
    }

    /// Dispatch one neuron's accumulation to the widest available ISA.
    /// Precondition (checked by the caller): `fits_i32(neuron)`.
    pub(super) fn accumulate<C: AsRef<[u8]>>(
        neuron: &AxNeuron,
        inputs: &[C],
        samples: usize,
        acc: &mut Vec<i32>,
    ) {
        assert_eq!(
            inputs.len(),
            neuron.weights.len(),
            "input column count mismatch"
        );
        acc.clear();
        acc.resize(samples, neuron.bias);
        if has_avx2() {
            // SAFETY: AVX2 confirmed present by `has_avx2`; the
            // target-feature function only requires that.
            unsafe { neuron_avx2(neuron, inputs, acc) };
            return;
        }
        for (w, col) in neuron.weights.iter().zip(inputs) {
            if w.mask == 0 {
                continue;
            }
            let col = col.as_ref();
            assert_eq!(col.len(), samples, "column length mismatch");
            weight_sse2(
                col,
                acc,
                i32::from(w.mask & 0xFF),
                u32::from(w.shift),
                w.negative,
            );
        }
    }

    /// How many weights one AVX2 stripe pass fuses: the accumulator
    /// vector stays in a register across the whole block, so the
    /// per-weight accumulator load/store of a weight-outer loop is
    /// paid once per block instead of once per weight.
    const BLOCK: usize = 8;

    /// The whole neuron at 8 `i32` lanes per step (AVX2), active
    /// weights processed in blocks of [`BLOCK`]. Per sample the
    /// weights contribute in their original order, so the wrapping
    /// `i32` sums are bit-identical with the weight-outer scalar
    /// kernel's.
    ///
    /// # Safety
    ///
    /// The caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn neuron_avx2<C: AsRef<[u8]>>(neuron: &AxNeuron, inputs: &[C], acc: &mut [i32]) {
        let samples = acc.len();
        let chunks = samples / 8;
        let mut cols: [&[u8]; BLOCK] = [&[]; BLOCK];
        let mut mask_v = [_mm256_setzero_si256(); BLOCK];
        let mut count_v = [_mm_setzero_si128(); BLOCK];
        let mut masks = [0i32; BLOCK];
        let mut shifts = [0u32; BLOCK];
        let mut negs = [false; BLOCK];
        let mut active = neuron
            .weights
            .iter()
            .zip(inputs)
            .filter(|(w, _)| w.mask != 0);
        loop {
            let mut len = 0;
            while len < BLOCK {
                let Some((w, col)) = active.next() else { break };
                let col = col.as_ref();
                assert_eq!(col.len(), samples, "column length mismatch");
                cols[len] = col;
                masks[len] = i32::from(w.mask & 0xFF);
                shifts[len] = u32::from(w.shift);
                negs[len] = w.negative;
                mask_v[len] = _mm256_set1_epi32(masks[len]);
                count_v[len] = _mm_cvtsi32_si128(shifts[len] as i32);
                len += 1;
            }
            if len == 0 {
                break;
            }
            for c in 0..chunks {
                // SAFETY: `c * 8 + 8 <= samples` bounds the unaligned
                // loads and the store; loadl reads exactly 8 bytes.
                unsafe {
                    let slot = acc.as_mut_ptr().add(c * 8).cast();
                    let mut cur = _mm256_loadu_si256(slot);
                    for j in 0..len {
                        let bytes: __m128i = _mm_loadl_epi64(cols[j].as_ptr().add(c * 8).cast());
                        let lanes = _mm256_cvtepu8_epi32(bytes);
                        let term = _mm256_sll_epi32(_mm256_and_si256(lanes, mask_v[j]), count_v[j]);
                        cur = if negs[j] {
                            _mm256_sub_epi32(cur, term)
                        } else {
                            _mm256_add_epi32(cur, term)
                        };
                    }
                    _mm256_storeu_si256(slot, cur);
                }
            }
            for j in 0..len {
                weight_tail(cols[j], acc, chunks * 8, masks[j], shifts[j], negs[j]);
            }
            if len < BLOCK {
                break;
            }
        }
    }

    /// One weight's pass at 4 `i32` lanes per step (SSE2 — the x86_64
    /// baseline, always safe to call).
    fn weight_sse2(col: &[u8], acc: &mut [i32], mask: i32, shift: u32, negative: bool) {
        let samples = acc.len();
        let chunks = samples / 8;
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline;
        // all pointer arithmetic stays below `chunks * 8 <= samples`.
        unsafe {
            let mask_v = _mm_set1_epi32(mask);
            let count = _mm_cvtsi32_si128(shift as i32);
            let zero = _mm_setzero_si128();
            for c in 0..chunks {
                let bytes = _mm_loadl_epi64(col.as_ptr().add(c * 8).cast());
                // u8 → u16 → two u32 quads, zero-extended.
                let w16 = _mm_unpacklo_epi8(bytes, zero);
                let lo = _mm_unpacklo_epi16(w16, zero);
                let hi = _mm_unpackhi_epi16(w16, zero);
                for (q, lanes) in [lo, hi].into_iter().enumerate() {
                    let term = _mm_sll_epi32(_mm_and_si128(lanes, mask_v), count);
                    let slot = acc.as_mut_ptr().add(c * 8 + q * 4).cast();
                    let cur = _mm_loadu_si128(slot);
                    let next = if negative {
                        _mm_sub_epi32(cur, term)
                    } else {
                        _mm_add_epi32(cur, term)
                    };
                    _mm_storeu_si128(slot, next);
                }
            }
        }
        weight_tail(col, acc, chunks * 8, mask, shift, negative);
    }

    /// Scalar tail past the last full vector chunk.
    fn weight_tail(
        col: &[u8],
        acc: &mut [i32],
        from: usize,
        mask: i32,
        shift: u32,
        negative: bool,
    ) {
        let mask8 = mask as u8;
        let tail = acc[from..].iter_mut().zip(&col[from..]);
        if negative {
            for (a, &x) in tail {
                *a -= i32::from(x & mask8) << shift;
            }
        } else {
            for (a, &x) in tail {
                *a += i32::from(x & mask8) << shift;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axmlp::AxWeight;
    use crate::columnar::{accumulate_neuron_column_narrow, QuantMatrix};

    #[test]
    fn simd_matches_the_scalar_narrow_kernel_when_available() {
        let neuron = AxNeuron {
            weights: vec![
                AxWeight {
                    mask: 0b1011,
                    shift: 3,
                    negative: true,
                },
                AxWeight {
                    mask: 0xFF,
                    shift: 11,
                    negative: false,
                },
                AxWeight {
                    mask: 0,
                    shift: 1,
                    negative: false,
                },
            ],
            bias: -412,
        };
        for samples in [0usize, 1, 5, 8, 13, 64, 200] {
            let rows: Vec<Vec<u8>> = (0..samples)
                .map(|s| (0..3).map(|f| ((s * 3 + f * 17) % 256) as u8).collect())
                .collect();
            let cols = QuantMatrix::from_rows(&rows).columns();
            let refs = if samples == 0 {
                vec![&[][..]; 3]
            } else {
                cols.col_refs()
            };
            let (mut want, mut got) = (Vec::new(), Vec::new());
            accumulate_neuron_column_narrow(&neuron, &refs, samples, &mut want);
            let ran = accumulate_neuron_column_simd(&neuron, &refs, samples, &mut got);
            assert_eq!(ran, available());
            if ran {
                assert_eq!(got, want, "samples {samples}");
            }
        }
    }

    #[test]
    fn vector_qrelu_matches_the_scalar_kernel_when_available() {
        let q = QReluCfg {
            out_bits: 5,
            shift: 2,
        };
        // 77 = 2 full 32-lane chunks + a 13-sample tail; values cover
        // negative, in-range and saturating accumulators.
        let acc: Vec<i32> = (0..77).map(|i| (i - 38) * 7 + (i % 5) * 1000).collect();
        let mut got = Vec::new();
        if qrelu_column_narrow_simd(q, &acc, &mut got) {
            assert!(available());
            let want: Vec<u8> = acc.iter().map(|&a| q.apply(i64::from(a))).collect();
            assert_eq!(got, want);
        }
        // Wider-than-u8 stages must decline (the scalar `as u8` wraps).
        let wide = QReluCfg {
            out_bits: 9,
            shift: 0,
        };
        assert!(!qrelu_column_narrow_simd(wide, &acc, &mut got));
    }

    #[test]
    fn vector_argmax_update_matches_the_scalar_sweep_when_available() {
        let cols: Vec<Vec<i32>> = (0..4)
            .map(|j| (0..27).map(|i| ((i * 7 + j * 13) % 29) - 11).collect())
            .collect();
        let mut value = cols[0].clone();
        let mut index = vec![0u32; 27];
        let mut ran = true;
        for (j, col) in cols.iter().enumerate().skip(1) {
            if !argmax_update_narrow(j as u32, col, &mut index, &mut value) {
                ran = false;
                break;
            }
        }
        if ran {
            assert!(available());
            let mut want_value = cols[0].clone();
            let mut want_index = vec![0u32; 27];
            for (j, col) in cols.iter().enumerate().skip(1) {
                for ((b, v), &x) in want_index.iter_mut().zip(&mut want_value).zip(col) {
                    if x > *v {
                        *b = j as u32;
                        *v = x;
                    }
                }
            }
            assert_eq!(value, want_value);
            assert_eq!(index, want_index, "ties must stay at the lowest index");
        }
    }

    #[test]
    fn simd_declines_non_narrow_neurons() {
        let extreme = AxNeuron {
            weights: vec![AxWeight {
                mask: 0xFF,
                shift: 40,
                negative: false,
            }],
            bias: 0,
        };
        let col = [0u8; 4];
        let mut acc = Vec::new();
        assert!(!accumulate_neuron_column_simd(
            &extreme,
            &[&col[..]],
            4,
            &mut acc
        ));
    }
}
