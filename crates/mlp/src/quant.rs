//! Post-training quantization: float MLP → integer bespoke baseline.
//!
//! The exact baseline circuits of the paper (§V-A, Table I) use 8-bit
//! fixed-point weights and 4-bit inputs. [`FixedMlp`] is that integer
//! network: weights quantized per layer to `[-127, 127]`, hidden
//! activations re-quantized to unsigned 8 bits through the QReLU of
//! §III-B (a right-shift followed by a clamp), and the output layer
//! decided by an integer argmax — bit-for-bit what the bespoke hardware
//! computes, so software accuracy equals circuit accuracy.

use serde::{Deserialize, Serialize};

use crate::columnar::QuantMatrix;
use crate::dense::DenseMlp;

/// Configuration of one QReLU stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QReluCfg {
    /// Output width in bits (8 in the paper).
    pub out_bits: u32,
    /// Static right-shift applied to the accumulator before clamping.
    pub shift: u32,
}

impl QReluCfg {
    /// Apply the QReLU: `clamp(acc >> shift, 0, 2^out_bits − 1)`.
    ///
    /// ```
    /// let q = pe_mlp::QReluCfg { out_bits: 8, shift: 2 };
    /// assert_eq!(q.apply(-17), 0);
    /// assert_eq!(q.apply(40), 10);
    /// assert_eq!(q.apply(9999), 255);
    /// ```
    #[inline]
    #[must_use]
    pub fn apply(self, acc: i64) -> u8 {
        self.kernel().apply(acc)
    }

    /// Precompile the stage into a [`QReluKernel`]: the saturation
    /// ceiling `2^out_bits − 1` is computed once instead of once per
    /// activation, which matters in the columnar inner loops that apply
    /// one QReLU to a whole dataset column.
    #[inline]
    #[must_use]
    pub fn kernel(self) -> QReluKernel {
        QReluKernel {
            shift: self.shift,
            max: (1i64 << self.out_bits) - 1,
        }
    }
}

/// A [`QReluCfg`] with its saturation ceiling precomputed.
///
/// [`apply`](QReluKernel::apply) is branch-free: a shift followed by a
/// `clamp`, which lowers to conditional-move min/max instructions — no
/// `2^out_bits` recompute and no data-dependent branch per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QReluKernel {
    shift: u32,
    max: i64,
}

impl QReluKernel {
    /// Apply the QReLU: `clamp(acc >> shift, 0, max)`.
    #[inline]
    #[must_use]
    pub fn apply(self, acc: i64) -> u8 {
        (acc >> self.shift).clamp(0, self.max) as u8
    }
}

/// One integer layer of the exact baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedLayer {
    /// `weights[j][i]`: quantized weight of input `i`, neuron `j`.
    pub weights: Vec<Vec<i32>>,
    /// Quantized biases, already in accumulator scale.
    pub biases: Vec<i32>,
    /// QReLU for hidden layers, `None` for the argmax output layer.
    pub qrelu: Option<QReluCfg>,
}

/// The exact bespoke integer MLP (8-bit weights, 4-bit inputs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedMlp {
    /// Width of the primary inputs in bits.
    pub input_bits: u32,
    /// Integer layers, first hidden layer first.
    pub layers: Vec<FixedLayer>,
}

/// Quantization hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Weight width in bits (8 in the paper: values in `[-127, 127]`).
    pub weight_bits: u32,
    /// Primary-input width in bits (4 in the paper).
    pub input_bits: u32,
    /// Hidden-activation width in bits (8 in the paper).
    pub activation_bits: u32,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self {
            weight_bits: 8,
            input_bits: 4,
            activation_bits: 8,
        }
    }
}

impl FixedMlp {
    /// Quantize a trained float network.
    ///
    /// `calibration_rows` (float features in `[0,1]`) drive the static
    /// choice of each hidden layer's QReLU shift: the shift is the
    /// smallest one mapping the largest observed accumulator into the
    /// activation range, mirroring how the paper sizes its 8-bit QReLU
    /// outputs "small enough \[to\] result in almost no accuracy
    /// degradation".
    ///
    /// # Panics
    ///
    /// Panics if `calibration_rows` is empty or widths mismatch.
    #[must_use]
    pub fn quantize(mlp: &DenseMlp, cfg: QuantConfig, calibration_rows: &[Vec<f32>]) -> Self {
        assert!(!calibration_rows.is_empty(), "calibration data required");
        let layer_count = mlp.topology().layer_count();
        let w_max = f64::from((1i64 << (cfg.weight_bits - 1)) as i32 - 1);
        let x_max = f64::from((1u32 << cfg.input_bits) - 1);
        let a_max = f64::from((1u32 << cfg.activation_bits) - 1);

        // Float activation traces for calibration of accumulator ranges.
        let traces: Vec<Vec<Vec<f32>>> = calibration_rows
            .iter()
            .map(|r| mlp.forward_trace(r))
            .collect();

        let mut layers = Vec::with_capacity(layer_count);
        // Scale of the integer input of the current layer: x = q * s_x.
        let mut s_x = 1.0 / x_max;

        for l in 0..layer_count {
            let max_w = mlp.weights()[l]
                .iter()
                .flatten()
                .fold(0.0f64, |m, &w| m.max(f64::from(w.abs())));
            let s_w = if max_w > 0.0 { max_w / w_max } else { 1.0 };

            let weights: Vec<Vec<i32>> = mlp.weights()[l]
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&w| (f64::from(w) / s_w).round() as i32)
                        .collect()
                })
                .collect();
            let biases: Vec<i32> = mlp.biases()[l]
                .iter()
                .map(|&b| (f64::from(b) / (s_w * s_x)).round() as i32)
                .collect();

            let last = l + 1 == layer_count;
            let qrelu = if last {
                None
            } else {
                // Largest float pre-activation over calibration data
                // (the trace stores post-ReLU values; pre-activation max
                // for positive side equals post-ReLU max).
                let max_act = traces
                    .iter()
                    .map(|t| t[l + 1].iter().fold(0.0f64, |m, &v| m.max(f64::from(v))))
                    .fold(0.0f64, f64::max)
                    .max(1e-9);
                // Quantized-domain accumulator at that activation.
                let acc_max = max_act / (s_w * s_x);
                let shift = (acc_max / a_max).log2().ceil().max(0.0) as u32;
                Some(QReluCfg {
                    out_bits: cfg.activation_bits,
                    shift,
                })
            };

            if !last {
                // Next layer consumes QReLU outputs: q_out = acc >> shift,
                // so s_out = s_w * s_x * 2^shift.
                let shift = qrelu.expect("hidden layer has qrelu").shift;
                s_x = s_w * s_x * (1u64 << shift) as f64;
            }

            layers.push(FixedLayer {
                weights,
                biases,
                qrelu,
            });
        }

        Self {
            input_bits: cfg.input_bits,
            layers,
        }
    }

    /// Integer-exact forward pass; returns the output-layer accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    #[must_use]
    pub fn accumulators(&self, x: &[u8]) -> Vec<i64> {
        let mut current: Vec<i64> = x.iter().map(|&v| i64::from(v)).collect();
        for layer in &self.layers {
            assert_eq!(current.len(), layer.weights[0].len(), "width mismatch");
            let accs: Vec<i64> = layer
                .weights
                .iter()
                .zip(&layer.biases)
                .map(|(row, &b)| {
                    row.iter()
                        .zip(&current)
                        .map(|(&w, &v)| i64::from(w) * v)
                        .sum::<i64>()
                        + i64::from(b)
                })
                .collect();
            match layer.qrelu {
                Some(q) => current = accs.iter().map(|&a| i64::from(q.apply(a))).collect(),
                None => return accs,
            }
        }
        current
    }

    /// Predicted class: integer argmax over the output accumulators.
    #[must_use]
    pub fn predict(&self, x: &[u8]) -> usize {
        let accs = self.accumulators(x);
        let mut best = 0;
        for (i, &a) in accs.iter().enumerate().skip(1) {
            if a > accs[best] {
                best = i;
            }
        }
        best
    }

    /// Accuracy over quantized rows. An empty dataset scores `0.0`,
    /// the workspace-wide convention of every accuracy API.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `labels` differ in length.
    #[must_use]
    pub fn accuracy(&self, rows: &QuantMatrix, labels: &[usize]) -> f64 {
        assert_eq!(rows.len(), labels.len());
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows
            .iter()
            .zip(labels)
            .filter(|&(r, &l)| self.predict(r) == l)
            .count();
        hits as f64 / rows.len() as f64
    }

    /// Number of weight layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn identityish_mlp() -> DenseMlp {
        // 2 inputs, 2 outputs, weights picking each input.
        DenseMlp::from_parameters(
            Topology::new(vec![2, 2]),
            vec![vec![vec![1.0, 0.0], vec![0.0, 1.0]]],
            vec![vec![0.0, 0.0]],
        )
    }

    #[test]
    fn qrelu_clamps_and_shifts() {
        let q = QReluCfg {
            out_bits: 8,
            shift: 3,
        };
        assert_eq!(q.apply(-100), 0);
        assert_eq!(q.apply(0), 0);
        assert_eq!(q.apply(8), 1);
        assert_eq!(q.apply(255 * 8), 255);
        assert_eq!(q.apply(i64::MAX / 2), 255);
    }

    #[test]
    fn qrelu_kernel_pins_the_saturation_boundaries() {
        // The precompiled kernel and the per-call path must agree at
        // (and just beyond) both clamp boundaries, for the widest and
        // narrowest stages the flow configures.
        for q in [
            QReluCfg {
                out_bits: 8,
                shift: 0,
            },
            QReluCfg {
                out_bits: 8,
                shift: 5,
            },
            QReluCfg {
                out_bits: 4,
                shift: 3,
            },
        ] {
            let k = q.kernel();
            let max = (1i64 << q.out_bits) - 1;
            let at_max = max << q.shift;
            for acc in [
                i64::MIN,
                -1,
                0,
                1,
                (1i64 << q.shift) - 1,
                1i64 << q.shift,
                at_max - 1,
                at_max,
                at_max + (1i64 << q.shift) - 1, // still rounds down to max
                at_max + (1i64 << q.shift),     // first saturating value
                i64::MAX,
            ] {
                let expected = (acc >> q.shift).clamp(0, max) as u8;
                assert_eq!(q.apply(acc), expected, "cfg {q:?} acc {acc}");
                assert_eq!(k.apply(acc), expected, "kernel {q:?} acc {acc}");
            }
            // Exact boundary values.
            assert_eq!(q.apply(at_max), max as u8);
            assert_eq!(q.apply(at_max + (1i64 << q.shift)), max as u8);
            assert_eq!(q.apply(-1), 0);
        }
    }

    #[test]
    fn quantized_single_layer_preserves_argmax() {
        let mlp = identityish_mlp();
        let cal = vec![vec![0.5, 0.5]];
        let q = FixedMlp::quantize(&mlp, QuantConfig::default(), &cal);
        assert_eq!(q.predict(&[12, 3]), 0);
        assert_eq!(q.predict(&[3, 12]), 1);
    }

    #[test]
    fn weights_fit_declared_width() {
        let mlp = DenseMlp::random(Topology::new(vec![6, 4, 3]), 9);
        let cal: Vec<Vec<f32>> = (0..8).map(|i| vec![(i as f32) / 8.0; 6]).collect();
        let q = FixedMlp::quantize(&mlp, QuantConfig::default(), &cal);
        for layer in &q.layers {
            for row in &layer.weights {
                for &w in row {
                    assert!((-127..=127).contains(&w), "weight {w}");
                }
            }
        }
    }

    #[test]
    fn hidden_layers_have_qrelu_output_does_not() {
        let mlp = DenseMlp::random(Topology::new(vec![4, 3, 2]), 1);
        let cal = vec![vec![0.3, 0.5, 0.7, 0.9]];
        let q = FixedMlp::quantize(&mlp, QuantConfig::default(), &cal);
        assert!(q.layers[0].qrelu.is_some());
        assert!(q.layers[1].qrelu.is_none());
    }

    #[test]
    fn quantization_tracks_float_accuracy_on_trained_net() {
        // Train on two separable blobs, then check the 8-bit/4-bit
        // quantized network agrees with the float one on most samples.
        use crate::train::{SgdTrainer, TrainConfig};
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let t = (i % 30) as f32 / 30.0;
            if i < 30 {
                rows.push(vec![0.15 + 0.2 * t, 0.2 + 0.1 * t]);
                labels.push(0);
            } else {
                rows.push(vec![0.65 + 0.2 * t, 0.75 + 0.1 * t]);
                labels.push(1);
            }
        }
        let mut mlp = DenseMlp::random(Topology::new(vec![2, 3, 2]), 4);
        let _ = SgdTrainer::new(TrainConfig {
            epochs: 120,
            ..TrainConfig::default()
        })
        .train(&mut mlp, &rows, &labels);
        let q = FixedMlp::quantize(&mlp, QuantConfig::default(), &rows);
        let q_rows: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| (v * 15.0).round() as u8).collect())
            .collect();
        let q_rows = QuantMatrix::from_rows(&q_rows);
        let float_acc = mlp.accuracy(&rows, &labels);
        let fixed_acc = q.accuracy(&q_rows, &labels);
        assert!(float_acc > 0.95);
        assert!(
            fixed_acc > float_acc - 0.1,
            "float {float_acc} fixed {fixed_acc}"
        );
    }
}
