//! From-scratch mini-batch SGD backpropagation.
//!
//! Implements the conventional gradient-based training the paper uses
//! both for the exact baselines (before quantization) and as the
//! "Grad." reference row of Table III. Softmax cross-entropy loss,
//! ReLU hidden layers, SGD with momentum.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dense::DenseMlp;

/// Hyperparameters for [`SgdTrainer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffling / initialization seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            momentum: 0.9,
            epochs: 200,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs actually executed.
    pub epochs: usize,
    /// Final accuracy on the training data.
    pub train_accuracy: f64,
    /// Final mean cross-entropy on the training data.
    pub train_loss: f64,
    /// Number of forward/backward sample evaluations performed.
    pub evaluations: u64,
}

/// Mini-batch SGD trainer with momentum.
#[derive(Debug, Clone)]
pub struct SgdTrainer {
    config: TrainConfig,
}

impl SgdTrainer {
    /// Trainer with the given hyperparameters.
    #[must_use]
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Train `mlp` in place on `(rows, labels)`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `labels` differ in length, rows don't match
    /// the network's input width, or a label exceeds the output width.
    pub fn train(&self, mlp: &mut DenseMlp, rows: &[Vec<f32>], labels: &[usize]) -> TrainReport {
        self.train_observed(mlp, rows, labels, |_| true)
    }

    /// Train with a per-epoch observer: `on_epoch(epoch)` runs after
    /// each completed epoch and returns whether to keep training —
    /// `false` stops early (cooperative cancellation). The report's
    /// `epochs` field records the epochs actually executed; up to the
    /// stopping point the run is bit-identical to a full one.
    ///
    /// # Panics
    ///
    /// Panics as [`train`](Self::train) does.
    pub fn train_observed(
        &self,
        mlp: &mut DenseMlp,
        rows: &[Vec<f32>],
        labels: &[usize],
        mut on_epoch: impl FnMut(usize) -> bool,
    ) -> TrainReport {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty(), "training data must be non-empty");
        let classes = mlp.topology().outputs();
        assert!(labels.iter().all(|&l| l < classes), "label out of range");

        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xa076_1d64_78bd_642f);
        let layer_count = mlp.topology().layer_count();

        // Momentum buffers mirroring the parameter shapes.
        let mut vel_w: Vec<Vec<Vec<f32>>> = mlp
            .weights()
            .iter()
            .map(|l| l.iter().map(|r| vec![0.0; r.len()]).collect())
            .collect();
        let mut vel_b: Vec<Vec<f32>> = mlp.biases().iter().map(|l| vec![0.0; l.len()]).collect();

        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut evaluations = 0u64;

        let mut executed = 0usize;
        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.config.batch_size.max(1)) {
                // Accumulate gradients over the batch.
                let mut grad_w: Vec<Vec<Vec<f32>>> = mlp
                    .weights()
                    .iter()
                    .map(|l| l.iter().map(|r| vec![0.0; r.len()]).collect())
                    .collect();
                let mut grad_b: Vec<Vec<f32>> =
                    mlp.biases().iter().map(|l| vec![0.0; l.len()]).collect();

                for &idx in batch {
                    evaluations += 1;
                    let trace = mlp.forward_trace(&rows[idx]);
                    let logits = trace.last().expect("trace non-empty");
                    let probs = softmax(logits);
                    // dL/dlogit = softmax - onehot.
                    let mut delta: Vec<f32> = probs;
                    delta[labels[idx]] -= 1.0;

                    for l in (0..layer_count).rev() {
                        let input = &trace[l];
                        for (j, d) in delta.iter().enumerate() {
                            grad_b[l][j] += d;
                            for (i, &v) in input.iter().enumerate() {
                                grad_w[l][j][i] += d * v;
                            }
                        }
                        if l > 0 {
                            // Propagate through weights and the ReLU of
                            // layer l-1's output.
                            let prev_out = &trace[l];
                            let mut next = vec![0.0f32; prev_out.len()];
                            for (j, d) in delta.iter().enumerate() {
                                for (i, n) in next.iter_mut().enumerate() {
                                    *n += d * mlp.weights()[l][j][i];
                                }
                            }
                            for (n, &o) in next.iter_mut().zip(prev_out) {
                                if o <= 0.0 {
                                    *n = 0.0;
                                }
                            }
                            delta = next;
                        }
                    }
                }

                let scale = self.config.learning_rate / batch.len() as f32;
                let (weights, biases) = mlp.params_mut();
                for l in 0..layer_count {
                    for j in 0..weights[l].len() {
                        for i in 0..weights[l][j].len() {
                            let v = &mut vel_w[l][j][i];
                            *v = self.config.momentum * *v - scale * grad_w[l][j][i];
                            weights[l][j][i] += *v;
                        }
                        let vb = &mut vel_b[l][j];
                        *vb = self.config.momentum * *vb - scale * grad_b[l][j];
                        biases[l][j] += *vb;
                    }
                }
            }
            executed = epoch + 1;
            if !on_epoch(epoch) {
                break;
            }
        }

        let train_accuracy = mlp.accuracy(rows, labels);
        let train_loss = mean_cross_entropy(mlp, rows, labels);
        TrainReport {
            epochs: executed,
            train_accuracy,
            train_loss,
            evaluations,
        }
    }
}

/// Train `restarts` randomly initialized networks and keep the one with
/// the lowest final training loss.
///
/// The paper's topologies have as few as two hidden units, where single
/// initializations occasionally die (all-ReLU-dead); best-of-N restarts
/// is the standard remedy and stays deterministic in `seed`.
///
/// # Panics
///
/// Panics if `restarts` is zero or the data is empty.
#[must_use]
pub fn train_best_of(
    topology: &crate::topology::Topology,
    rows: &[Vec<f32>],
    labels: &[usize],
    config: &TrainConfig,
    restarts: u64,
) -> (DenseMlp, TrainReport) {
    train_best_of_observed(topology, rows, labels, config, restarts, |_, _| true)
}

/// [`train_best_of`] with a per-epoch observer: `on_epoch(restart,
/// epoch)` runs after every completed epoch of every restart and
/// returns whether to keep training. Returning `false` abandons the
/// remaining epochs and restarts; the best network trained so far is
/// still returned (callers deciding to cancel typically discard it).
///
/// # Panics
///
/// Panics if `restarts` is zero or the data is empty.
#[must_use]
pub fn train_best_of_observed(
    topology: &crate::topology::Topology,
    rows: &[Vec<f32>],
    labels: &[usize],
    config: &TrainConfig,
    restarts: u64,
    mut on_epoch: impl FnMut(u64, usize) -> bool,
) -> (DenseMlp, TrainReport) {
    assert!(restarts > 0, "at least one restart required");
    let trainer = SgdTrainer::new(config.clone());
    let mut best: Option<(DenseMlp, TrainReport)> = None;
    for r in 0..restarts {
        let mut stopped = false;
        let mut mlp = DenseMlp::random(topology.clone(), config.seed ^ (r * 0x9e37_79b9));
        let report = trainer.train_observed(&mut mlp, rows, labels, |epoch| {
            let keep_going = on_epoch(r, epoch);
            stopped = !keep_going;
            keep_going
        });
        if best
            .as_ref()
            .is_none_or(|(_, b)| report.train_loss < b.train_loss)
        {
            best = Some((mlp, report));
        }
        if stopped {
            break;
        }
    }
    best.expect("restarts > 0")
}

/// Numerically-stable softmax.
#[must_use]
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter()
        .map(|&e| e / sum.max(f32::MIN_POSITIVE))
        .collect()
}

/// Mean softmax cross-entropy of `mlp` over a labelled set.
///
/// # Panics
///
/// Panics if `rows` and `labels` differ in length.
#[must_use]
pub fn mean_cross_entropy(mlp: &DenseMlp, rows: &[Vec<f32>], labels: &[usize]) -> f64 {
    assert_eq!(rows.len(), labels.len());
    if rows.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (row, &l) in rows.iter().zip(labels) {
        let probs = softmax(&mlp.logits(row));
        total -= f64::from(probs[l].max(1e-12)).ln();
    }
    total / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    /// Two well-separated blobs in 2D.
    fn toy_problem() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let t = (i % 20) as f32 / 20.0;
            if i < 20 {
                rows.push(vec![0.1 + 0.2 * t, 0.2]);
                labels.push(0);
            } else {
                rows.push(vec![0.7 + 0.2 * t, 0.8]);
                labels.push(1);
            }
        }
        (rows, labels)
    }

    #[test]
    fn learns_separable_blobs() {
        let (rows, labels) = toy_problem();
        let mut mlp = DenseMlp::random(Topology::new(vec![2, 4, 2]), 3);
        let report = SgdTrainer::new(TrainConfig {
            epochs: 150,
            learning_rate: 0.1,
            ..TrainConfig::default()
        })
        .train(&mut mlp, &rows, &labels);
        assert!(
            report.train_accuracy > 0.95,
            "accuracy {}",
            report.train_accuracy
        );
        assert!(report.train_loss < 0.3, "loss {}", report.train_loss);
    }

    #[test]
    fn loss_decreases_with_training() {
        let (rows, labels) = toy_problem();
        let topo = Topology::new(vec![2, 4, 2]);
        let untrained = DenseMlp::random(topo.clone(), 3);
        let before = mean_cross_entropy(&untrained, &rows, &labels);
        let mut trained = untrained.clone();
        let _ = SgdTrainer::new(TrainConfig {
            epochs: 50,
            ..TrainConfig::default()
        })
        .train(&mut trained, &rows, &labels);
        let after = mean_cross_entropy(&trained, &rows, &labels);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn training_is_deterministic() {
        let (rows, labels) = toy_problem();
        let run = || {
            let mut mlp = DenseMlp::random(Topology::new(vec![2, 3, 2]), 5);
            let _ = SgdTrainer::new(TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            })
            .train(&mut mlp, &rows, &labels);
            mlp
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observed_training_can_stop_early_and_matches_the_full_prefix() {
        let (rows, labels) = toy_problem();
        let cfg = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        };
        let mut observed = DenseMlp::random(Topology::new(vec![2, 3, 2]), 5);
        let report =
            SgdTrainer::new(cfg.clone()).train_observed(&mut observed, &rows, &labels, |e| e < 4);
        assert_eq!(report.epochs, 5);
        assert_eq!(report.evaluations, 5 * rows.len() as u64);

        // Identical to simply configuring 5 epochs.
        let mut direct = DenseMlp::random(Topology::new(vec![2, 3, 2]), 5);
        let _ =
            SgdTrainer::new(TrainConfig { epochs: 5, ..cfg }).train(&mut direct, &rows, &labels);
        assert_eq!(observed, direct);
    }

    #[test]
    fn best_of_observed_stops_across_restarts() {
        let (rows, labels) = toy_problem();
        let cfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        let mut calls = 0u64;
        let (_, report) = train_best_of_observed(
            &Topology::new(vec![2, 3, 2]),
            &rows,
            &labels,
            &cfg,
            3,
            |restart, _| {
                calls += 1;
                restart == 0 // cancel as soon as the second restart begins
            },
        );
        assert_eq!(calls, 11); // 10 epochs of restart 0 + 1 of restart 1
        assert_eq!(report.epochs, 10);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn evaluation_count_matches_epochs_times_samples() {
        let (rows, labels) = toy_problem();
        let mut mlp = DenseMlp::random(Topology::new(vec![2, 3, 2]), 5);
        let report = SgdTrainer::new(TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        })
        .train(&mut mlp, &rows, &labels);
        assert_eq!(report.evaluations, 3 * rows.len() as u64);
    }
}
