//! The approximate printed MLP of the paper: integer-exact inference
//! with power-of-two weights, bit masks and QReLU (Eq. (4)).
//!
//! Every neuron output is
//! `QReLU( Σ_i s_i · ((m_i ⊙ x_i) << k_i) + b )` — a sum of masked,
//! shifted input activations with hard-wired signs and a constant bias.
//! [`AxMlp`] evaluates exactly what the bespoke circuit computes, so GA
//! fitness accuracy equals hardware accuracy by construction.

use serde::{Deserialize, Serialize};

use pe_arith::{NeuronArithSpec, WeightArith};

use crate::columnar::QuantMatrix;
use crate::quant::{FixedMlp, QReluCfg};

/// One approximate weight: the `(m, s, k)` triple of Eq. (1)/(4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AxWeight {
    /// Pruning mask over input-activation bits; `0` removes the
    /// connection entirely (hardware-equivalent to weight zero, §III-B).
    pub mask: u16,
    /// Power-of-two exponent `k` of the weight magnitude.
    pub shift: u8,
    /// Sign `s = −1` when true.
    pub negative: bool,
}

impl AxWeight {
    /// The represented weight value `s · 2^k` (0 when fully masked).
    #[inline]
    #[must_use]
    pub fn value(self) -> i32 {
        if self.mask == 0 {
            0
        } else {
            let mag = 1i32 << self.shift;
            if self.negative {
                -mag
            } else {
                mag
            }
        }
    }
}

/// One approximate neuron: weights plus an integer bias.
///
/// Hashable so evaluation layers can memoize per-neuron results (gate
/// counts, output columns) by the decoded spec.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AxNeuron {
    /// Per-input approximate weights.
    pub weights: Vec<AxWeight>,
    /// Constant bias added to the accumulation.
    pub bias: i32,
}

impl AxNeuron {
    /// Evaluate the accumulation of Eq. (4) for quantized inputs.
    ///
    /// # Panics
    ///
    /// Panics if `x` and the weights disagree in length.
    #[inline]
    #[must_use]
    pub fn accumulate(&self, x: &[u8]) -> i64 {
        assert_eq!(x.len(), self.weights.len(), "input width mismatch");
        let mut acc = i64::from(self.bias);
        for (w, &xi) in self.weights.iter().zip(x) {
            if w.mask == 0 {
                continue;
            }
            let v = i64::from(u16::from(xi) & w.mask) << w.shift;
            if w.negative {
                acc -= v;
            } else {
                acc += v;
            }
        }
        acc
    }

    /// Lower to the arithmetic spec consumed by the area estimator and
    /// the hardware elaborator.
    #[must_use]
    pub fn to_arith_spec(&self, input_bits: u32) -> NeuronArithSpec {
        let mut spec = NeuronArithSpec {
            input_bits,
            weights: Vec::new(),
            bias: 0,
        };
        self.to_arith_spec_into(input_bits, &mut spec);
        spec
    }

    /// [`to_arith_spec`](Self::to_arith_spec) into a reused spec buffer
    /// — the GA's area objective probes a per-neuron memo with a spec
    /// per neuron per genome, and reusing one buffer keeps that probe
    /// allocation-free.
    pub fn to_arith_spec_into(&self, input_bits: u32, spec: &mut NeuronArithSpec) {
        spec.input_bits = input_bits;
        spec.bias = i64::from(self.bias);
        spec.weights.clear();
        spec.weights
            .extend(self.weights.iter().map(|w| WeightArith {
                mask: u64::from(w.mask),
                shift: u32::from(w.shift),
                negative: w.negative,
            }));
    }
}

/// One layer of the approximate MLP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxLayer {
    /// Width of this layer's input activations in bits.
    pub input_bits: u32,
    /// The layer's neurons.
    pub neurons: Vec<AxNeuron>,
    /// QReLU for hidden layers; `None` on the argmax output layer.
    pub qrelu: Option<QReluCfg>,
}

/// The complete approximate printed MLP.
///
/// `Default` is the empty network — the seed state for decode-in-place
/// scratch buffers that are filled by `GenomeSpec::decode_into` before
/// every use.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxMlp {
    /// Layers, first hidden layer first.
    pub layers: Vec<AxLayer>,
}

/// Reusable flat buffers for [`AxMlp`] inference.
///
/// The GA fitness loop predicts hundreds of thousands of rows per
/// generation; allocating per-sample activation and accumulator `Vec`s
/// dominates that loop. A scratch holds one flat accumulator buffer and
/// a pair of activation buffers that every
/// [`predict_with`](AxMlp::predict_with) /
/// [`accuracy_batch`](AxMlp::accuracy_batch) call reuses — buffers grow
/// to the widest layer once and never shrink, so steady-state inference
/// performs **zero** allocations per sample.
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    acc: Vec<i64>,
    act_in: Vec<u8>,
    act_out: Vec<u8>,
}

impl InferenceScratch {
    /// A fresh (empty) scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AxMlp {
    /// Integer-exact forward pass; returns output-layer accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the first layer's fan-in.
    #[must_use]
    pub fn accumulators(&self, x: &[u8]) -> Vec<i64> {
        let mut current: Vec<u8> = x.to_vec();
        for layer in &self.layers {
            let accs: Vec<i64> = layer
                .neurons
                .iter()
                .map(|n| n.accumulate(&current))
                .collect();
            match layer.qrelu {
                Some(q) => current = accs.iter().map(|&a| q.apply(a)).collect(),
                None => return accs,
            }
        }
        // A network whose last layer has a QReLU (unusual): return the
        // activations as accumulators.
        current.iter().map(|&v| i64::from(v)).collect()
    }

    /// Predicted class: integer argmax over the output accumulators.
    #[must_use]
    pub fn predict(&self, x: &[u8]) -> usize {
        self.predict_with(x, &mut InferenceScratch::new())
    }

    /// [`predict`](Self::predict) against caller-provided scratch
    /// buffers: the allocation-free hot path (ties break to the lowest
    /// class index, exactly like the argmax comparator in hardware).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the first layer's fan-in.
    #[must_use]
    pub fn predict_with(&self, x: &[u8], scratch: &mut InferenceScratch) -> usize {
        scratch.act_in.clear();
        scratch.act_in.extend_from_slice(x);
        for layer in &self.layers {
            scratch.acc.clear();
            for n in &layer.neurons {
                scratch.acc.push(n.accumulate(&scratch.act_in));
            }
            match layer.qrelu {
                Some(q) => {
                    scratch.act_out.clear();
                    scratch
                        .act_out
                        .extend(scratch.acc.iter().map(|&a| q.apply(a)));
                    std::mem::swap(&mut scratch.act_in, &mut scratch.act_out);
                }
                None => return argmax_i64(&scratch.acc),
            }
        }
        // A network whose last layer has a QReLU (unusual): argmax over
        // the final activations, mirroring `accumulators` + argmax.
        scratch.acc.clear();
        scratch
            .acc
            .extend(scratch.act_in.iter().map(|&v| i64::from(v)));
        argmax_i64(&scratch.acc)
    }

    /// Accuracy over quantized rows. An empty dataset scores `0.0` —
    /// the workspace-wide convention shared by
    /// [`accuracy_batch`](Self::accuracy_batch),
    /// [`FixedMlp::accuracy`](crate::FixedMlp::accuracy) and
    /// [`columnar::accuracy_columns`](crate::columnar::accuracy_columns).
    ///
    /// Allocates one scratch for the whole batch; use
    /// [`accuracy_batch`](Self::accuracy_batch) to reuse buffers across
    /// calls (e.g. across a GA population).
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `labels` differ in length.
    #[must_use]
    pub fn accuracy(&self, rows: &QuantMatrix, labels: &[usize]) -> f64 {
        self.accuracy_batch(rows, labels, &mut InferenceScratch::new())
    }

    /// Accuracy over quantized rows with reusable scratch buffers —
    /// the per-row reference path (one [`predict_with`](Self::predict_with)
    /// per sample), kept as the oracle the columnar engine is proven
    /// against. Empty datasets score `0.0` by convention.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `labels` differ in length.
    #[must_use]
    pub fn accuracy_batch(
        &self,
        rows: &QuantMatrix,
        labels: &[usize],
        scratch: &mut InferenceScratch,
    ) -> f64 {
        assert_eq!(rows.len(), labels.len());
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows
            .iter()
            .zip(labels)
            .filter(|&(r, &l)| self.predict_with(r, scratch) == l)
            .count();
        hits as f64 / rows.len() as f64
    }

    /// Derive the doped "nearly non-approximate" network from the exact
    /// baseline (paper §IV-A: the initial population is doped with ~10%
    /// near-exact solutions): every 8-bit weight is rounded to the
    /// nearest power of two (capped at `2^max_shift`), masks are full,
    /// biases are clamped into `bias_bits`.
    ///
    /// The *output* layer is first rescaled by the argmax-invariant
    /// factor `α ∈ [2^-0.5, 2^0.5)` that best aligns its weights with
    /// the pow2 grid (ReLU/argmax networks are insensitive to a uniform
    /// positive scaling of the final layer, so this is free accuracy).
    #[must_use]
    pub fn from_fixed(fixed: &FixedMlp, max_shift: u8, bias_bits: u32) -> Self {
        Self::from_fixed_calibrated(fixed, max_shift, bias_bits, &QuantMatrix::default())
    }

    /// [`AxMlp::from_fixed`] with data-driven bias compensation: the
    /// per-weight pow2 rounding residuals, multiplied by the mean input
    /// activation observed on `calibration_rows`, are folded into each
    /// neuron's bias — first-order error feedback that markedly
    /// improves the doped seeds on multi-class datasets.
    #[must_use]
    pub fn from_fixed_calibrated(
        fixed: &FixedMlp,
        max_shift: u8,
        bias_bits: u32,
        calibration_rows: &QuantMatrix,
    ) -> Self {
        let bias_max = (1i64 << (bias_bits - 1)) - 1;
        let bias_min = -(1i64 << (bias_bits - 1));
        let layer_count = fixed.layers.len();

        // Mean input activation of every layer over the calibration
        // data (integer-exact forward of the baseline itself).
        let mean_inputs: Vec<Vec<f64>> = mean_layer_inputs(fixed, calibration_rows);

        let mut input_bits = fixed.input_bits;
        let layers = fixed
            .layers
            .iter()
            .enumerate()
            .map(|(li, layer)| {
                let full_mask = ((1u32 << input_bits) - 1) as u16;
                let last = li + 1 == layer_count;
                // Argmax-invariant pow2-grid alignment for the output
                // layer: minimize the weighted squared log-distance to
                // the grid over alpha.
                let alpha = if last {
                    best_pow2_alignment(&layer.weights, max_shift)
                } else {
                    1.0
                };
                let neurons = layer
                    .weights
                    .iter()
                    .zip(&layer.biases)
                    .map(|(row, &b)| {
                        let mut bias_f = f64::from(b) * alpha;
                        let weights = row
                            .iter()
                            .enumerate()
                            .map(|(wi, &w)| {
                                if w == 0 {
                                    return AxWeight {
                                        mask: 0,
                                        shift: 0,
                                        negative: false,
                                    };
                                }
                                let target = f64::from(w) * alpha;
                                let k = target.abs().log2().round().clamp(0.0, f64::from(max_shift))
                                    as u8;
                                let approx = if target < 0.0 {
                                    -f64::from(1u32 << k)
                                } else {
                                    f64::from(1u32 << k)
                                };
                                // First-order error feedback: the
                                // rounding residual times the mean
                                // activation moves into the bias.
                                if let Some(means) = mean_inputs.get(li) {
                                    if let Some(&mx) = means.get(wi) {
                                        bias_f += (target - approx) * mx;
                                    }
                                }
                                AxWeight {
                                    mask: full_mask,
                                    shift: k,
                                    negative: target < 0.0,
                                }
                            })
                            .collect();
                        AxNeuron {
                            weights,
                            bias: (bias_f.round() as i64).clamp(bias_min, bias_max) as i32,
                        }
                    })
                    .collect();
                let out = AxLayer {
                    input_bits,
                    neurons,
                    qrelu: layer.qrelu,
                };
                if let Some(q) = layer.qrelu {
                    input_bits = q.out_bits;
                }
                out
            })
            .collect();
        Self { layers }
    }

    /// Lower every neuron to its [`NeuronArithSpec`], layer by layer
    /// (input to the area objective, Eq. (2)).
    #[must_use]
    pub fn arith_specs(&self) -> Vec<Vec<NeuronArithSpec>> {
        self.layers
            .iter()
            .map(|l| {
                l.neurons
                    .iter()
                    .map(|n| n.to_arith_spec(l.input_bits))
                    .collect()
            })
            .collect()
    }

    /// Total number of `(m, s, k)` weight triples.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.neurons.iter().map(|n| n.weights.len()))
            .sum()
    }
}

/// Integer argmax with ties to the lowest index (the hardware
/// comparator's behavior).
#[inline]
fn argmax_i64(accs: &[i64]) -> usize {
    let mut best = 0;
    for (i, &a) in accs.iter().enumerate().skip(1) {
        if a > accs[best] {
            best = i;
        }
    }
    best
}

/// Propagate compile-time constants through an approximate MLP, as a
/// bespoke synthesis flow would: a hidden neuron with *no* active mask
/// bits computes `QReLU(bias)` — a constant — so it contributes no
/// hardware; its downstream products `s·((const ⊙ m) << k)` fold into
/// the receiving neurons' biases and the dead neuron is removed from
/// the circuit (shrinking the next layer's fan-in). Applied iteratively
/// until a fixed point.
///
/// Inference is unchanged by construction (the folded network computes
/// the same function); only the lowered hardware gets cheaper. Both the
/// GA's gate-equivalent objective and the hardware lowering apply this,
/// giving the optimizer a path to the near-constant circuits the paper
/// reports for the wine datasets.
#[must_use]
pub fn fold_constants(mlp: &AxMlp) -> AxMlp {
    let mut out = mlp.clone();
    loop {
        let mut changed = false;
        for li in 0..out.layers.len().saturating_sub(1) {
            // Constant neurons of layer li (hidden layers only — they
            // have a QReLU giving a concrete constant output).
            let Some(q) = out.layers[li].qrelu else {
                continue;
            };
            let const_vals: Vec<Option<u8>> = out.layers[li]
                .neurons
                .iter()
                .map(|n| {
                    n.weights
                        .iter()
                        .all(|w| w.mask == 0)
                        .then(|| q.apply(i64::from(n.bias)))
                })
                .collect();
            if const_vals.iter().all(Option::is_none) {
                continue;
            }
            changed = true;
            // Fold constant activations into the next layer's biases.
            for neuron in &mut out.layers[li + 1].neurons {
                let mut folded: i64 = i64::from(neuron.bias);
                for (w, cv) in neuron.weights.iter_mut().zip(&const_vals) {
                    if let Some(v) = cv {
                        let term = i64::from(u16::from(*v) & w.mask) << w.shift;
                        folded += if w.negative { -term } else { term };
                        *w = AxWeight {
                            mask: 0,
                            shift: 0,
                            negative: false,
                        };
                    }
                }
                neuron.bias = folded.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
            }
            // Remove the dead neurons and the corresponding next-layer
            // weight slots.
            let keep: Vec<bool> = const_vals.iter().map(Option::is_none).collect();
            let mut idx = 0;
            out.layers[li].neurons.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
            for neuron in &mut out.layers[li + 1].neurons {
                let mut idx = 0;
                neuron.weights.retain(|_| {
                    let k = keep[idx];
                    idx += 1;
                    k
                });
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Mean input activation of every layer of `fixed` over calibration
/// rows (empty input → all-zero means, disabling error feedback).
fn mean_layer_inputs(fixed: &FixedMlp, rows: &QuantMatrix) -> Vec<Vec<f64>> {
    let mut sums: Vec<Vec<f64>> = fixed
        .layers
        .iter()
        .map(|l| vec![0.0; l.weights.first().map_or(0, Vec::len)])
        .collect();
    if rows.is_empty() {
        return sums;
    }
    for row in rows {
        let mut current: Vec<i64> = row.iter().map(|&v| i64::from(v)).collect();
        for (li, layer) in fixed.layers.iter().enumerate() {
            for (s, &v) in sums[li].iter_mut().zip(&current) {
                *s += v as f64;
            }
            let accs: Vec<i64> = layer
                .weights
                .iter()
                .zip(&layer.biases)
                .map(|(w, &b)| {
                    w.iter()
                        .zip(&current)
                        .map(|(&wi, &x)| i64::from(wi) * x)
                        .sum::<i64>()
                        + i64::from(b)
                })
                .collect();
            match layer.qrelu {
                Some(q) => current = accs.iter().map(|&a| i64::from(q.apply(a))).collect(),
                None => break,
            }
        }
    }
    for layer_sums in &mut sums {
        for s in layer_sums.iter_mut() {
            *s /= rows.len() as f64;
        }
    }
    sums
}

/// Find `alpha ∈ [2^-0.5, 2^0.5)` minimizing the magnitude-weighted
/// squared distance of `log2|alpha·w|` to the *clamped* pow2 exponent
/// grid `{0, …, max_shift}`.
fn best_pow2_alignment(weights: &[Vec<i32>], max_shift: u8) -> f64 {
    let logs: Vec<(f64, f64)> = weights
        .iter()
        .flatten()
        .filter(|&&w| w != 0)
        .map(|&w| (f64::from(w.abs()).log2(), f64::from(w) * f64::from(w)))
        .collect();
    if logs.is_empty() {
        return 1.0;
    }
    let mut best = (f64::INFINITY, 1.0);
    for step in 0..64 {
        let a = -0.5 + f64::from(step) / 64.0;
        let cost: f64 = logs
            .iter()
            .map(|&(l, wgt)| {
                let k = (l + a).round().clamp(0.0, f64::from(max_shift));
                let d = l + a - k;
                wgt * d * d
            })
            .sum();
        if cost < best.0 {
            best = (cost, a);
        }
    }
    best.1.exp2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::FixedLayer;

    fn neuron(weights: Vec<AxWeight>, bias: i32) -> AxNeuron {
        AxNeuron { weights, bias }
    }

    #[test]
    fn accumulate_implements_equation_4() {
        // acc = +((x0 & 0b1010) << 1) - ((x1 & 0b0110) << 2) + 3
        let n = neuron(
            vec![
                AxWeight {
                    mask: 0b1010,
                    shift: 1,
                    negative: false,
                },
                AxWeight {
                    mask: 0b0110,
                    shift: 2,
                    negative: true,
                },
            ],
            3,
        );
        let x = [0b1111u8, 0b1111];
        let expected = ((0b1010i64) << 1) - ((0b0110i64) << 2) + 3;
        assert_eq!(n.accumulate(&x), expected);
    }

    #[test]
    fn masked_out_weight_contributes_nothing() {
        let n = neuron(
            vec![AxWeight {
                mask: 0,
                shift: 5,
                negative: true,
            }],
            -1,
        );
        assert_eq!(n.accumulate(&[0xFF]), -1);
        assert_eq!(n.weights[0].value(), 0);
    }

    #[test]
    fn two_layer_network_forward() {
        // Hidden neuron passes x0; output neurons compare h to a bias.
        let mlp = AxMlp {
            layers: vec![
                AxLayer {
                    input_bits: 4,
                    neurons: vec![neuron(
                        vec![AxWeight {
                            mask: 0b1111,
                            shift: 2,
                            negative: false,
                        }],
                        0,
                    )],
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 0,
                    }),
                },
                AxLayer {
                    input_bits: 8,
                    neurons: vec![
                        neuron(
                            vec![AxWeight {
                                mask: 0xFF,
                                shift: 0,
                                negative: false,
                            }],
                            0,
                        ),
                        neuron(
                            vec![AxWeight {
                                mask: 0,
                                shift: 0,
                                negative: false,
                            }],
                            30,
                        ),
                    ],
                    qrelu: None,
                },
            ],
        };
        // x=15 -> h=min(60,255)=60 -> class 0 (60 > 30).
        assert_eq!(mlp.predict(&[15]), 0);
        // x=1 -> h=4 -> class 1 (4 < 30).
        assert_eq!(mlp.predict(&[1]), 1);
    }

    #[test]
    fn from_fixed_rounds_to_nearest_pow2() {
        let fixed = FixedMlp {
            input_bits: 4,
            layers: vec![FixedLayer {
                weights: vec![vec![5, -96, 0, 1]],
                biases: vec![7],
                qrelu: None,
            }],
        };
        let ax = AxMlp::from_fixed(&fixed, 6, 12);
        let w = &ax.layers[0].neurons[0].weights;
        assert_eq!(w[0].shift, 2); // 5·alpha -> 4
        assert!(!w[0].negative);
        assert_eq!(w[1].shift, 6); // 96 dominates the alignment -> 2^6
        assert!(w[1].negative);
        assert_eq!(w[2].mask, 0); // zero weight -> zero mask
        assert_eq!(w[3].shift, 0); // 1 -> 2^0
                                   // The output-layer alignment scales the bias by the same
                                   // argmax-invariant alpha (here ~2^-0.5, so 7 -> ~5).
        let bias = ax.layers[0].neurons[0].bias;
        assert!((4..=7).contains(&bias), "bias {bias}");
    }

    #[test]
    fn from_fixed_clamps_bias() {
        let fixed = FixedMlp {
            input_bits: 4,
            layers: vec![FixedLayer {
                weights: vec![vec![1]],
                biases: vec![100_000],
                qrelu: None,
            }],
        };
        let ax = AxMlp::from_fixed(&fixed, 6, 8);
        assert_eq!(ax.layers[0].neurons[0].bias, 127);
    }

    #[test]
    fn arith_specs_mirror_structure() {
        let mlp = AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![neuron(
                    vec![AxWeight {
                        mask: 0b1001,
                        shift: 3,
                        negative: true,
                    }],
                    -4,
                )],
                qrelu: None,
            }],
        };
        let specs = mlp.arith_specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0][0].input_bits, 4);
        assert_eq!(specs[0][0].weights[0].mask, 0b1001);
        assert_eq!(specs[0][0].weights[0].shift, 3);
        assert!(specs[0][0].weights[0].negative);
        assert_eq!(specs[0][0].bias, -4);
    }

    #[test]
    fn scratch_inference_matches_the_allocating_path() {
        // A 2-hidden-layer network with negative weights, saturation
        // and argmax ties, driven across the whole 4-bit input space:
        // predict_with must agree with argmax over `accumulators` on
        // every row, and one scratch must be reusable across rows and
        // across networks of different widths.
        let wide = AxMlp {
            layers: vec![
                AxLayer {
                    input_bits: 4,
                    neurons: vec![
                        neuron(
                            vec![AxWeight {
                                mask: 0b1111,
                                shift: 3,
                                negative: false,
                            }],
                            -20,
                        ),
                        neuron(
                            vec![AxWeight {
                                mask: 0b0110,
                                shift: 1,
                                negative: true,
                            }],
                            40,
                        ),
                        neuron(
                            vec![AxWeight {
                                mask: 0b1001,
                                shift: 0,
                                negative: false,
                            }],
                            0,
                        ),
                    ],
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 1,
                    }),
                },
                AxLayer {
                    input_bits: 8,
                    neurons: vec![
                        neuron(
                            vec![
                                AxWeight {
                                    mask: 0xFF,
                                    shift: 0,
                                    negative: false,
                                };
                                3
                            ],
                            -5,
                        ),
                        neuron(
                            vec![
                                AxWeight {
                                    mask: 0x0F,
                                    shift: 2,
                                    negative: true,
                                },
                                AxWeight {
                                    mask: 0,
                                    shift: 0,
                                    negative: false,
                                },
                                AxWeight {
                                    mask: 0xF0,
                                    shift: 0,
                                    negative: false,
                                },
                            ],
                            17,
                        ),
                    ],
                    qrelu: None,
                },
            ],
        };
        let narrow = AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    neuron(
                        vec![AxWeight {
                            mask: 0b1111,
                            shift: 0,
                            negative: false,
                        }],
                        0,
                    ),
                    neuron(
                        vec![AxWeight {
                            mask: 0,
                            shift: 0,
                            negative: false,
                        }],
                        3,
                    ),
                ],
                qrelu: None,
            }],
        };
        let mut scratch = InferenceScratch::new();
        for x in 0..16u8 {
            let accs = wide.accumulators(&[x]);
            let expected = argmax_i64(&accs);
            assert_eq!(wide.predict_with(&[x], &mut scratch), expected, "x={x}");
        }
        // Reuse the same scratch on a structurally different network.
        for x in 0..16u8 {
            // `narrow`'s second neuron is fully masked: constant 3, so
            // it wins the argmax only strictly (x < 3).
            let expected = usize::from(i64::from(x) < 3);
            assert_eq!(narrow.predict(&[x]), expected);
            assert_eq!(narrow.predict_with(&[x], &mut scratch), expected);
        }
    }

    #[test]
    fn accuracy_batch_equals_accuracy() {
        let mlp = AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    neuron(
                        vec![AxWeight {
                            mask: 0b1111,
                            shift: 0,
                            negative: false,
                        }],
                        0,
                    ),
                    neuron(
                        vec![AxWeight {
                            mask: 0b1111,
                            shift: 0,
                            negative: true,
                        }],
                        10,
                    ),
                ],
                qrelu: None,
            }],
        };
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v]).collect();
        let rows = QuantMatrix::from_rows(&rows);
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v <= 5)).collect();
        let mut scratch = InferenceScratch::new();
        let batch = mlp.accuracy_batch(&rows, &labels, &mut scratch);
        assert!((batch - mlp.accuracy(&rows, &labels)).abs() < 1e-15);
        // Empty input stays well-defined: 0.0 by convention.
        let empty = QuantMatrix::default();
        assert_eq!(mlp.accuracy_batch(&empty, &[], &mut scratch), 0.0);
        assert_eq!(mlp.accuracy(&empty, &[]), 0.0);
    }

    #[test]
    fn accuracy_counts_hits() {
        let mlp = AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    neuron(
                        vec![AxWeight {
                            mask: 0b1111,
                            shift: 0,
                            negative: false,
                        }],
                        0,
                    ),
                    neuron(
                        vec![AxWeight {
                            mask: 0b1111,
                            shift: 0,
                            negative: true,
                        }],
                        10,
                    ),
                ],
                qrelu: None,
            }],
        };
        // Neuron0 = x, neuron1 = 10 - x: class 0 iff x > 5.
        let rows = QuantMatrix::from_rows(&[vec![9u8], vec![1], vec![7], vec![3]]);
        let labels = vec![0, 1, 0, 0];
        assert!((mlp.accuracy(&rows, &labels) - 0.75).abs() < 1e-12);
    }
}
