//! Lowering of integer MLPs to bespoke hardware descriptions.
//!
//! Closes the loop of the paper's Fig. 2: trained coefficient sets
//! (exact [`FixedMlp`] baselines or approximate [`AxMlp`] designs) are
//! "automatically translated into an HDL description" — here, into a
//! [`MlpHardwareSpec`] that `pe-hw` elaborates, costs, and can emit as
//! Verilog.

use pe_hw::{ExactNeuronSpec, LayerActivation, LayerSpec, MlpHardwareSpec, NeuronSpec};

use crate::axmlp::AxMlp;
use crate::quant::FixedMlp;

/// Lower an exact baseline MLP to its bespoke hardware description.
///
/// Output-layer biases are normalized by subtracting their minimum —
/// an argmax-invariant shift that narrows the class accumulators and
/// the comparator tree, as a bespoke synthesis flow would do.
#[must_use]
pub fn fixed_to_hardware(fixed: &FixedMlp, name: impl Into<String>) -> MlpHardwareSpec {
    let mut input_bits = fixed.input_bits;
    let inputs = fixed.layers.first().map_or(0, |l| l.weights[0].len());
    let mut layers = Vec::with_capacity(fixed.layers.len());
    let last = fixed.layers.len().saturating_sub(1);
    for (li, layer) in fixed.layers.iter().enumerate() {
        let bias_shift = if li == last {
            layer.biases.iter().copied().min().unwrap_or(0)
        } else {
            0
        };
        let neurons: Vec<NeuronSpec> = layer
            .weights
            .iter()
            .zip(&layer.biases)
            .map(|(row, &b)| {
                NeuronSpec::Exact(ExactNeuronSpec {
                    input_bits,
                    weights: row.iter().map(|&w| i64::from(w)).collect(),
                    bias: i64::from(b - bias_shift),
                    trunc_bits: 0,
                    csd_multipliers: false,
                })
            })
            .collect();
        let activation = match layer.qrelu {
            Some(q) => LayerActivation::QRelu {
                out_bits: q.out_bits,
                shift: q.shift,
            },
            None => LayerActivation::Argmax,
        };
        if let Some(q) = layer.qrelu {
            input_bits = q.out_bits;
        }
        layers.push(LayerSpec {
            neurons,
            activation,
        });
    }
    MlpHardwareSpec {
        name: name.into(),
        inputs,
        input_bits: fixed.input_bits,
        layers,
    }
}

/// Lower an approximate MLP to its bespoke hardware description.
///
/// Applies constant folding ([`crate::axmlp::fold_constants`]) and the
/// same argmax-invariant output-bias normalization as
/// [`fixed_to_hardware`].
#[must_use]
pub fn ax_to_hardware(ax: &AxMlp, name: impl Into<String>) -> MlpHardwareSpec {
    let ax = &crate::axmlp::fold_constants(ax);
    let inputs = ax
        .layers
        .first()
        .map_or(0, |l| l.neurons.first().map_or(0, |n| n.weights.len()));
    let input_bits = ax.layers.first().map_or(4, |l| l.input_bits);
    let last = ax.layers.len().saturating_sub(1);
    let layers = ax
        .layers
        .iter()
        .enumerate()
        .map(|(li, layer)| {
            let bias_shift = if li == last {
                layer.neurons.iter().map(|n| n.bias).min().unwrap_or(0)
            } else {
                0
            };
            LayerSpec {
                neurons: layer
                    .neurons
                    .iter()
                    .map(|n| {
                        let mut spec = n.to_arith_spec(layer.input_bits);
                        spec.bias -= i64::from(bias_shift);
                        NeuronSpec::Approximate(spec)
                    })
                    .collect(),
                activation: match layer.qrelu {
                    Some(q) => LayerActivation::QRelu {
                        out_bits: q.out_bits,
                        shift: q.shift,
                    },
                    None => LayerActivation::Argmax,
                },
            }
        })
        .collect();
    MlpHardwareSpec {
        name: name.into(),
        inputs,
        input_bits,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axmlp::{AxLayer, AxNeuron, AxWeight};
    use crate::quant::{FixedLayer, QReluCfg};
    use pe_hw::{Elaborator, TechLibrary};

    fn small_fixed() -> FixedMlp {
        FixedMlp {
            input_bits: 4,
            layers: vec![
                FixedLayer {
                    weights: vec![vec![33, -72], vec![-5, 19]],
                    biases: vec![10, -4],
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 2,
                    }),
                },
                FixedLayer {
                    weights: vec![vec![7, -7], vec![-3, 3]],
                    biases: vec![0, 1],
                    qrelu: None,
                },
            ],
        }
    }

    #[test]
    fn fixed_lowering_preserves_shape_and_widths() {
        let spec = fixed_to_hardware(&small_fixed(), "t");
        assert_eq!(spec.inputs, 2);
        assert_eq!(spec.input_bits, 4);
        assert_eq!(spec.layers.len(), 2);
        assert_eq!(spec.layers[0].neurons[0].input_bits(), 4);
        assert_eq!(spec.layers[1].neurons[0].input_bits(), 8);
        assert_eq!(spec.classes(), 2);
    }

    #[test]
    fn ax_lowering_elaborates_end_to_end() {
        let ax = AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    AxNeuron {
                        weights: vec![AxWeight {
                            mask: 0b1111,
                            shift: 1,
                            negative: false,
                        }],
                        bias: 1,
                    },
                    AxNeuron {
                        weights: vec![AxWeight {
                            mask: 0b1100,
                            shift: 0,
                            negative: true,
                        }],
                        bias: 9,
                    },
                ],
                qrelu: None,
            }],
        };
        let spec = ax_to_hardware(&ax, "ax");
        let report = Elaborator::new(TechLibrary::egfet())
            .elaborate(&spec)
            .report;
        assert!(report.area_cm2 > 0.0);
    }
}
