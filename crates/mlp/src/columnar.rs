//! Columnar (structure-of-arrays) inference: flat quantized datasets
//! and branch-free per-weight LUT kernels.
//!
//! The GA fitness loop scores every genome against the full training
//! split. The row-major path ([`AxMlp::predict_with`]) walks one sample
//! at a time through `Vec<Vec<u8>>` rows, paying a mask branch, a sign
//! branch and a pointer chase per weight. This module flips the loop
//! nest to neuron-major over a column-major dataset:
//!
//! * [`QuantMatrix`] stores a quantized dataset as **one contiguous
//!   `Vec<u8>` plus a stride** — the end-to-end container used by
//!   `pe-datasets`' `QuantizedData` and every accuracy API.
//! * [`ColumnMatrix`] is its transpose: each *feature* column is
//!   contiguous, so a neuron's accumulation streams samples linearly.
//! * [`weight_lut`] compiles one [`AxWeight`] into a small `i32`
//!   lookup table (16 entries for the paper's 4-bit inputs): for every
//!   possible activation `x`, `lut[x] = s · ((x ⊙ m) ≪ k)`. The inner
//!   loop over samples is the branch-free, contiguous
//!   `acc[s] += lut[x[s]]` — with the LUT entry evaluated
//!   *analytically* (AND, widening shift, add; sign hoisted out of the
//!   loop) so the compiler vectorizes it without a gather, and at
//!   `i32` lane width whenever the accumulator provably fits
//!   ([`fits_i32`], [`accumulate_neuron_column`]).
//! * [`qrelu_column`] applies the saturation of Eq. (4) to a whole
//!   accumulator column at once via the precomputed
//!   [`QReluKernel`](crate::quant::QReluKernel).
//!
//! [`predictions_columns`] / [`accuracy_columns`] drive a whole
//! [`AxMlp`] this way. They are **bit-exact** with the row-major path —
//! same integer accumulators, same QReLU saturation, same
//! argmax-ties-to-lowest — which the test-suite proves exhaustively and
//! by property tests; the per-row API stays available as the reference
//! oracle.
//!
//! # Kernel modes
//!
//! The per-weight accumulation itself comes in four interchangeable
//! [`KernelKind`]s, all bit-exact with each other (integer sums
//! without overflow are representation-agnostic, which the proptest
//! parity suite pins down):
//!
//! * [`KernelKind::Scalar`] — the analytic AND/shift/add loop above,
//!   left to the auto-vectorizer. The reference.
//! * [`KernelKind::Lut`] — the literal `acc[s] += lut[x[s]]` gather
//!   over tables compiled by [`weight_lut`] into one scratch reused
//!   across weights and neurons ([`KernelScratch`]).
//! * [`KernelKind::BitSliced`] — portable SWAR ([`crate::bitslice`]):
//!   8 samples per `u64`, the LUT entry evaluated with AND/shift/add
//!   across 16-bit lanes.
//! * [`KernelKind::Simd`] — explicit `std::arch` x86_64 SSE2/AVX2
//!   ([`crate::simd`]), runtime feature-detected, with the scalar
//!   kernel as the fallback everywhere else.
//!
//! [`kernel_mode`] picks the process-wide default (the `PE_KERNEL`
//! environment variable, `auto` preferring SIMD where available);
//! [`predictions_columns_with_kernel`] and the `*_kernel` accumulators
//! accept an explicit kind for benches and parity tests.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::axmlp::{AxMlp, AxNeuron, AxWeight};
use crate::quant::QReluCfg;

/// A quantized dataset as one flat row-major buffer plus a stride.
///
/// `row(i)` is `data[i * width .. (i + 1) * width]` — the same bytes a
/// `Vec<Vec<u8>>` would hold, without the per-row allocation and
/// pointer chase. [`ColumnMatrix`] (via [`QuantMatrix::columns`]) is
/// the transposed view the columnar kernels consume.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantMatrix {
    data: Vec<u8>,
    width: usize,
    rows: usize,
}

impl QuantMatrix {
    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * rows`.
    #[must_use]
    pub fn from_flat(data: Vec<u8>, width: usize, rows: usize) -> Self {
        assert_eq!(data.len(), width * rows, "flat buffer size mismatch");
        Self { data, width, rows }
    }

    /// Build from per-sample rows (all rows must share one length).
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    #[must_use]
    pub fn from_rows<R: AsRef<[u8]>>(rows: &[R]) -> Self {
        let width = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(width * rows.len());
        for row in rows {
            assert_eq!(row.as_ref().len(), width, "ragged row");
            data.extend_from_slice(row.as_ref());
        }
        Self {
            data,
            width,
            rows: rows.len(),
        }
    }

    /// Number of samples (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Features per sample (the stride).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// One sample's features.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[u8] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterate the sample rows in order.
    pub fn iter(&self) -> Rows<'_> {
        Rows {
            matrix: self,
            index: 0,
        }
    }

    /// The underlying flat row-major buffer.
    #[must_use]
    pub fn as_flat(&self) -> &[u8] {
        &self.data
    }

    /// An owned copy of the first `n` rows (deterministic subsampling —
    /// splits are already shuffled).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    #[must_use]
    pub fn head(&self, n: usize) -> Self {
        assert!(n <= self.rows, "head {n} out of {}", self.rows);
        Self {
            data: self.data[..n * self.width].to_vec(),
            width: self.width,
            rows: n,
        }
    }

    /// An owned copy of the selected rows (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.width);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self {
            data,
            width: self.width,
            rows: indices.len(),
        }
    }

    /// Transpose into the column-major layout the kernels consume.
    #[must_use]
    pub fn columns(&self) -> ColumnMatrix {
        let mut data = vec![0u8; self.data.len()];
        for f in 0..self.width {
            let col = &mut data[f * self.rows..(f + 1) * self.rows];
            for (s, slot) in col.iter_mut().enumerate() {
                *slot = self.data[s * self.width + f];
            }
        }
        ColumnMatrix {
            data,
            samples: self.rows,
            width: self.width,
        }
    }
}

impl std::ops::Index<usize> for QuantMatrix {
    type Output = [u8];

    fn index(&self, i: usize) -> &[u8] {
        self.row(i)
    }
}

impl<'a> IntoIterator for &'a QuantMatrix {
    type Item = &'a [u8];
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`QuantMatrix`]'s sample rows, in order.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    matrix: &'a QuantMatrix,
    index: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.index >= self.matrix.rows {
            return None;
        }
        let row = self.matrix.row(self.index);
        self.index += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.matrix.rows - self.index;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Rows<'_> {}

/// The transpose of a [`QuantMatrix`]: each feature's values over all
/// samples are contiguous (`col(f)`), which is what makes the
/// neuron-major kernels stream linearly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnMatrix {
    data: Vec<u8>,
    samples: usize,
    width: usize,
}

impl ColumnMatrix {
    /// Number of samples (each column's length).
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of feature columns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// One feature's values over all samples.
    ///
    /// # Panics
    ///
    /// Panics if `f >= width()`.
    #[inline]
    #[must_use]
    pub fn col(&self, f: usize) -> &[u8] {
        assert!(f < self.width, "column {f} out of {}", self.width);
        &self.data[f * self.samples..(f + 1) * self.samples]
    }

    /// All columns, in feature order.
    #[must_use]
    pub fn col_refs(&self) -> Vec<&[u8]> {
        let mut refs = Vec::new();
        self.col_refs_into(&mut refs);
        refs
    }

    /// All columns, in feature order, into a reused buffer — the
    /// allocation-free variant the fitness path uses (`out` is cleared
    /// first; its capacity survives across calls).
    pub fn col_refs_into<'a>(&'a self, out: &mut Vec<&'a [u8]>) {
        out.clear();
        out.extend((0..self.width).map(|f| self.col(f)));
    }
}

/// Compile one weight into its activation lookup table:
/// `lut[x] = s · ((x ⊙ m) ≪ k)` for every reachable activation `x`.
///
/// The table covers `2^input_bits` entries — 16 for the paper's 4-bit
/// inputs — widened (up to the full 256 `u8` values) when a hand-built
/// weight carries mask bits above `input_bits`, so the kernel is exact
/// for *any* `u8` activation stream: indexing wraps with
/// `x & (lut.len() - 1)`, and every mask bit that can ever meet a set
/// activation bit lies inside the table.
///
/// Entries fit `i32` for every encodable weight (`x ⊙ m ≤ 255`,
/// `k ≤ 22`); the per-sample accumulation widens to `i64`, exactly like
/// [`AxNeuron::accumulate`].
pub fn weight_lut(w: AxWeight, input_bits: u32, lut: &mut Vec<i32>) {
    debug_assert!(w.shift <= 22, "shift {} overflows the i32 LUT", w.shift);
    // Bits that can influence `x & mask` for a u8 activation.
    let mask8 = w.mask & 0xFF;
    let need = 16 - mask8.leading_zeros();
    let bits = input_bits.max(need).min(8);
    let size = 1usize << bits;
    lut.clear();
    lut.resize(size, 0);
    if w.mask == 0 {
        return;
    }
    for (x, slot) in lut.iter_mut().enumerate() {
        let v = i32::from(x as u16 & w.mask) << w.shift;
        *slot = if w.negative { -v } else { v };
    }
}

/// Accumulate one neuron's Eq. (4) sum over a whole dataset at once:
/// `acc[s] = bias + Σ_i lut_i[x_i[s]]`, one branch-free pass per
/// weight over its contiguous input column.
///
/// The weight's LUT entry `lut[x] = s · ((x ⊙ m) ≪ k)` is evaluated
/// *analytically* in the inner loop — an AND, a widening shift and an
/// add with the sign branch hoisted out of the loop — rather than
/// through an indexed load: the arithmetic form auto-vectorizes (no
/// gather), which is worth several× on the miss path. [`weight_lut`]
/// remains the executable specification of the same function and the
/// parity tests pin the two to each other.
///
/// Bit-exact with running [`AxNeuron::accumulate`] on every sample.
///
/// Input columns are anything slice-like (`&[u8]`, `Vec<u8>`,
/// `Arc<[u8]>`), so callers can pass their column storage directly
/// without building a `Vec<&[u8]>` per layer.
///
/// # Panics
///
/// Panics if `inputs` and the weights disagree in count, or a column's
/// length differs from `samples`.
pub fn accumulate_neuron_column<C: AsRef<[u8]>>(
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    acc: &mut Vec<i64>,
    narrow: &mut Vec<i32>,
) {
    // When the worst-case |accumulator| provably fits `i32`
    // ([`fits_i32`]), run the whole accumulation at half the lane
    // width (twice the SIMD throughput) and widen once at the end —
    // bit-exact, because integer addition without overflow is
    // width-agnostic. Every genome-encodable neuron fits by orders of
    // magnitude; the i64 path covers hand-built extremes.
    if fits_i32(neuron) {
        accumulate_neuron_column_narrow(neuron, inputs, samples, narrow);
        acc.clear();
        acc.extend(narrow.iter().map(|&a| i64::from(a)));
        return;
    }
    assert_eq!(
        inputs.len(),
        neuron.weights.len(),
        "input column count mismatch"
    );
    for col in inputs {
        assert_eq!(col.as_ref().len(), samples, "column length mismatch");
    }
    acc.clear();
    acc.resize(samples, i64::from(neuron.bias));
    for (w, col) in neuron.weights.iter().zip(inputs) {
        if w.mask == 0 {
            continue;
        }
        let col = col.as_ref();
        let mask = (w.mask & 0xFF) as u8;
        let shift = w.shift;
        if w.negative {
            for (a, &x) in acc.iter_mut().zip(col) {
                *a -= i64::from(x & mask) << shift;
            }
        } else {
            for (a, &x) in acc.iter_mut().zip(col) {
                *a += i64::from(x & mask) << shift;
            }
        }
    }
}

/// Whether `neuron`'s accumulator provably fits an `i32` for every
/// possible `u8` activation stream (the precondition of
/// [`accumulate_neuron_column_narrow`]). True for every
/// genome-encodable neuron by orders of magnitude.
#[must_use]
pub fn fits_i32(neuron: &AxNeuron) -> bool {
    let small_shifts = neuron.weights.iter().all(|w| w.mask == 0 || w.shift <= 22);
    small_shifts && {
        let bound: i64 = neuron
            .weights
            .iter()
            .filter(|w| w.mask != 0)
            .map(|w| i64::from(w.mask & 0xFF) << w.shift)
            .sum::<i64>()
            + i64::from(neuron.bias).abs();
        bound <= i64::from(i32::MAX)
    }
}

/// [`accumulate_neuron_column`] at `i32` width, for neurons where
/// [`fits_i32`] holds: downstream consumers that only compare or
/// saturate the accumulators (argmax, QReLU) can then stay at the
/// narrow width end to end. Bit-exact with the `i64` path — integer
/// addition without overflow is width-agnostic.
///
/// # Panics
///
/// Panics if `inputs` and the weights disagree in count, a column's
/// length differs from `samples`, or `fits_i32` is violated (debug).
pub fn accumulate_neuron_column_narrow<C: AsRef<[u8]>>(
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    acc: &mut Vec<i32>,
) {
    debug_assert!(fits_i32(neuron), "narrow accumulation would overflow");
    assert_eq!(
        inputs.len(),
        neuron.weights.len(),
        "input column count mismatch"
    );
    // The first active weight *writes* `bias ± term` instead of adding
    // onto a pre-filled buffer, saving one full store pass per neuron.
    let bias = neuron.bias;
    acc.clear();
    for (w, col) in neuron.weights.iter().zip(inputs) {
        if w.mask == 0 {
            continue;
        }
        let col = col.as_ref();
        assert_eq!(col.len(), samples, "column length mismatch");
        let mask = (w.mask & 0xFF) as u8;
        let shift = w.shift;
        match (acc.is_empty(), w.negative) {
            (true, true) => acc.extend(col.iter().map(|&x| bias - (i32::from(x & mask) << shift))),
            (true, false) => {
                acc.extend(col.iter().map(|&x| bias + (i32::from(x & mask) << shift)));
            }
            (false, true) => {
                for (a, &x) in acc.iter_mut().zip(col) {
                    *a -= i32::from(x & mask) << shift;
                }
            }
            (false, false) => {
                for (a, &x) in acc.iter_mut().zip(col) {
                    *a += i32::from(x & mask) << shift;
                }
            }
        }
    }
    if acc.is_empty() {
        acc.resize(samples, bias);
    }
}

/// Which accumulation kernel evaluates Eq. (4) columns. All four are
/// bit-exact with each other (proven by the proptest parity suite);
/// they differ only in how the per-weight LUT entry is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// The analytic AND/shift/add loop, left to the auto-vectorizer
    /// ([`accumulate_neuron_column_narrow`]). The reference kernel.
    Scalar,
    /// The literal LUT gather `acc[s] += lut[x[s]]` over tables
    /// compiled by [`weight_lut`] ([`accumulate_neuron_column_lut`]).
    Lut,
    /// Portable SWAR bit-slicing, 8 samples per `u64`
    /// ([`crate::bitslice`]).
    BitSliced,
    /// Explicit `std::arch` x86_64 SSE2/AVX2 ([`crate::simd`]),
    /// runtime feature-detected; falls back to [`KernelKind::Scalar`]
    /// where unavailable.
    Simd,
}

impl KernelKind {
    /// Parse a `PE_KERNEL` value (`scalar` / `lut` / `bitsliced` /
    /// `simd`); anything else is `None` (= auto).
    #[must_use]
    pub fn parse(value: &str) -> Option<KernelKind> {
        match value {
            "scalar" => Some(KernelKind::Scalar),
            "lut" => Some(KernelKind::Lut),
            "bitsliced" => Some(KernelKind::BitSliced),
            "simd" => Some(KernelKind::Simd),
            _ => None,
        }
    }

    /// Stable lowercase name (the `PE_KERNEL` spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Lut => "lut",
            KernelKind::BitSliced => "bitsliced",
            KernelKind::Simd => "simd",
        }
    }
}

/// The process-wide kernel mode: the `PE_KERNEL` environment variable
/// (`scalar` / `lut` / `bitsliced` / `simd`), or — unset or `auto` —
/// [`KernelKind::Simd`] where the explicit kernels are available and
/// [`KernelKind::Scalar`] everywhere else. Read once and cached: the
/// mode is a performance knob only — every kernel is bit-exact with
/// every other, so artifacts never depend on it.
#[must_use]
pub fn kernel_mode() -> KernelKind {
    static MODE: OnceLock<KernelKind> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("PE_KERNEL")
            .ok()
            .as_deref()
            .and_then(KernelKind::parse)
            .unwrap_or_else(|| {
                if crate::simd::available() {
                    KernelKind::Simd
                } else {
                    KernelKind::Scalar
                }
            })
    })
}

/// Reusable buffers of the non-scalar kernels, plumbed through the
/// evaluation loop like `to_arith_spec_into`'s spec buffer: the
/// per-weight LUT is compiled into one `Vec<i32>` reused across
/// weights *and* neurons instead of regrown per weight, and the SWAR
/// lane accumulators persist across neurons the same way.
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    /// [`weight_lut`] output, shared across every weight and neuron
    /// scored through this scratch.
    pub(crate) lut: Vec<i32>,
    /// 16-bit SWAR lane accumulators of [`crate::bitslice`].
    pub(crate) planes: Vec<u64>,
}

impl KernelScratch {
    /// A fresh (empty) scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`accumulate_neuron_column`] through the process-wide
/// [`kernel_mode`]: the entry point of the fitness hot path. Identical
/// results to the scalar reference for every mode.
pub fn accumulate_neuron_column_auto<C: AsRef<[u8]>>(
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    acc: &mut Vec<i64>,
    narrow: &mut Vec<i32>,
    scratch: &mut KernelScratch,
) {
    accumulate_neuron_column_kernel(kernel_mode(), neuron, inputs, samples, acc, narrow, scratch);
}

/// [`accumulate_neuron_column`] through an explicit [`KernelKind`].
/// The wide (`i64`) result lands in `acc` exactly like the reference;
/// kernels that cannot handle the neuron (a non-[`fits_i32`] extreme,
/// SIMD off-target, a bit-slice lane overflow) fall back to the scalar
/// reference — bit-exact either way.
pub fn accumulate_neuron_column_kernel<C: AsRef<[u8]>>(
    kernel: KernelKind,
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    acc: &mut Vec<i64>,
    narrow: &mut Vec<i32>,
    scratch: &mut KernelScratch,
) {
    if fits_i32(neuron) {
        accumulate_neuron_column_narrow_kernel(kernel, neuron, inputs, samples, narrow, scratch);
        acc.clear();
        acc.extend(narrow.iter().map(|&a| i64::from(a)));
        return;
    }
    // Hand-built extremes beyond i32: always the scalar i64 reference.
    accumulate_neuron_column(neuron, inputs, samples, acc, narrow);
}

/// [`accumulate_neuron_column_narrow`] through an explicit
/// [`KernelKind`], with per-neuron fallback to the scalar reference
/// when the chosen kernel cannot serve this neuron. Requires
/// [`fits_i32`] like the scalar narrow path.
pub fn accumulate_neuron_column_narrow_kernel<C: AsRef<[u8]>>(
    kernel: KernelKind,
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    acc: &mut Vec<i32>,
    scratch: &mut KernelScratch,
) {
    match kernel {
        KernelKind::Scalar => accumulate_neuron_column_narrow(neuron, inputs, samples, acc),
        KernelKind::Lut => {
            accumulate_neuron_column_lut(neuron, inputs, samples, acc, &mut scratch.lut);
        }
        KernelKind::BitSliced => {
            if crate::bitslice::supported(neuron) {
                crate::bitslice::accumulate_neuron_column_bitsliced(
                    neuron,
                    inputs,
                    samples,
                    acc,
                    &mut scratch.planes,
                );
            } else {
                accumulate_neuron_column_narrow(neuron, inputs, samples, acc);
            }
        }
        KernelKind::Simd => {
            if !crate::simd::accumulate_neuron_column_simd(neuron, inputs, samples, acc) {
                accumulate_neuron_column_narrow(neuron, inputs, samples, acc);
            }
        }
    }
}

/// The literal LUT-gather kernel: per weight, compile the activation
/// table with [`weight_lut`] into the shared `lut` scratch (reused
/// across weights and neurons — never regrown per weight) and run
/// `acc[s] += lut[x[s]]` over the contiguous column. Tables are
/// compiled at full `u8` width, so the gather is exact for any
/// activation stream. Requires [`fits_i32`]; bit-exact with the
/// analytic kernels.
///
/// # Panics
///
/// Panics if `inputs` and the weights disagree in count or an active
/// weight's column length differs from `samples`.
pub fn accumulate_neuron_column_lut<C: AsRef<[u8]>>(
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    acc: &mut Vec<i32>,
    lut: &mut Vec<i32>,
) {
    debug_assert!(fits_i32(neuron), "narrow accumulation would overflow");
    assert_eq!(
        inputs.len(),
        neuron.weights.len(),
        "input column count mismatch"
    );
    acc.clear();
    acc.resize(samples, neuron.bias);
    for (w, col) in neuron.weights.iter().zip(inputs) {
        if w.mask == 0 {
            continue;
        }
        let col = col.as_ref();
        assert_eq!(col.len(), samples, "column length mismatch");
        weight_lut(*w, 8, lut);
        let idx_mask = lut.len() - 1;
        for (a, &x) in acc.iter_mut().zip(col) {
            *a += lut[usize::from(x) & idx_mask];
        }
    }
}

/// Apply a QReLU to a whole accumulator column (into a reused buffer).
pub fn qrelu_column(q: QReluCfg, acc: &[i64], out: &mut Vec<u8>) {
    let kernel = q.kernel();
    out.clear();
    out.extend(acc.iter().map(|&a| kernel.apply(a)));
}

/// [`qrelu_column`] straight off a narrow (`i32`) accumulator column.
/// Bit-exact with widening first: `clamp(a >> s, 0, max)` commutes
/// with the sign extension because `>>` is arithmetic at both widths.
pub fn qrelu_column_narrow(q: QReluCfg, acc: &[i32], out: &mut Vec<u8>) {
    let kernel = q.kernel();
    out.clear();
    out.extend(acc.iter().map(|&a| kernel.apply(i64::from(a))));
}

/// One hidden column end to end: accumulate through `kernel`, then
/// QReLU into `out` — staying at `i32` lane width whenever the narrow
/// precondition holds, so the widening pass the wide path would run
/// (one full `i64` store per sample) is skipped entirely.
#[allow(clippy::too_many_arguments)] // mirrors the kernel dispatchers: scratch buffers are explicit
pub fn hidden_column_kernel<C: AsRef<[u8]>>(
    kernel: KernelKind,
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    q: QReluCfg,
    acc: &mut Vec<i64>,
    narrow: &mut Vec<i32>,
    scratch: &mut KernelScratch,
    out: &mut Vec<u8>,
) {
    if fits_i32(neuron) {
        accumulate_neuron_column_narrow_kernel(kernel, neuron, inputs, samples, narrow, scratch);
        if kernel != KernelKind::Simd || !crate::simd::qrelu_column_narrow_simd(q, narrow, out) {
            qrelu_column_narrow(q, narrow, out);
        }
    } else {
        accumulate_neuron_column_kernel(kernel, neuron, inputs, samples, acc, narrow, scratch);
        qrelu_column(q, acc, out);
    }
}

/// Column-major argmax with ties to the lowest index — the hardware
/// comparator's behavior, applied per sample across neuron columns.
///
/// # Panics
///
/// Panics if `columns` is empty or lengths disagree with `samples`.
pub fn argmax_columns<T: Copy + PartialOrd, C: AsRef<[T]>>(
    columns: &[C],
    samples: usize,
) -> Vec<usize> {
    assert!(!columns.is_empty(), "argmax over zero neurons");
    for col in columns {
        assert_eq!(col.as_ref().len(), samples, "column length mismatch");
    }
    // Neuron-major sweep with a running best *value* per sample: each
    // pass is a linear walk over two contiguous arrays (no indexed
    // loads through the winner's column), and strictly-greater keeps
    // ties at the lowest index.
    let mut best = vec![0usize; samples];
    let mut best_value: Vec<T> = columns[0].as_ref().to_vec();
    for (j, col) in columns.iter().enumerate().skip(1) {
        for ((b, v), &x) in best.iter_mut().zip(best_value.iter_mut()).zip(col.as_ref()) {
            if x > *v {
                *b = j;
                *v = x;
            }
        }
    }
    best
}

/// Reusable buffers for the columnar forward pass: LUT and accumulator
/// scratch plus double-buffered activation columns. Buffers grow to the
/// widest layer once; steady-state inference allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct ColumnarScratch {
    acc: Vec<i64>,
    narrow: Vec<i32>,
    act: Vec<Vec<u8>>,
    next: Vec<Vec<u8>>,
    out_accs: Vec<Vec<i64>>,
    kernel: KernelScratch,
}

impl ColumnarScratch {
    /// A fresh (empty) scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-sample class predictions of `mlp` over a column-major dataset,
/// written into `preds` — the allocation-free batch entry point,
/// through the process-wide [`kernel_mode`].
///
/// Bit-exact with [`AxMlp::predict_with`] per row (same accumulators,
/// same QReLU, argmax ties to the lowest class).
///
/// # Panics
///
/// Panics if the dataset width disagrees with the first layer's fan-in.
pub fn predictions_columns_with(
    mlp: &AxMlp,
    cols: &ColumnMatrix,
    scratch: &mut ColumnarScratch,
    preds: &mut Vec<usize>,
) {
    predictions_columns_with_kernel(mlp, cols, scratch, preds, kernel_mode());
}

/// [`predictions_columns_with`] through an explicit [`KernelKind`] —
/// the parity tests and kernel benches drive each mode directly
/// through this entry point. Bit-exact across modes.
///
/// # Panics
///
/// Panics if the dataset width disagrees with the first layer's fan-in.
pub fn predictions_columns_with_kernel(
    mlp: &AxMlp,
    cols: &ColumnMatrix,
    scratch: &mut ColumnarScratch,
    preds: &mut Vec<usize>,
    kernel: KernelKind,
) {
    let samples = cols.samples();
    preds.clear();
    if samples == 0 {
        return;
    }
    let ColumnarScratch {
        acc,
        narrow,
        act,
        next,
        out_accs,
        kernel: kscratch,
    } = scratch;
    let mut refs: Vec<&[u8]> = Vec::new();
    let mut first = true;
    for layer in &mlp.layers {
        if first {
            cols.col_refs_into(&mut refs);
        }
        match layer.qrelu {
            Some(q) => {
                next.resize(layer.neurons.len(), Vec::new());
                for (neuron, out) in layer.neurons.iter().zip(next.iter_mut()) {
                    if first {
                        hidden_column_kernel(
                            kernel, neuron, &refs, samples, q, acc, narrow, kscratch, out,
                        );
                    } else {
                        hidden_column_kernel(
                            kernel,
                            neuron,
                            &act[..],
                            samples,
                            q,
                            acc,
                            narrow,
                            kscratch,
                            out,
                        );
                    }
                }
                refs.clear();
                std::mem::swap(act, next);
                first = false;
            }
            None => {
                out_accs.resize(layer.neurons.len(), Vec::new());
                for (neuron, out) in layer.neurons.iter().zip(out_accs.iter_mut()) {
                    if first {
                        accumulate_neuron_column_kernel(
                            kernel, neuron, &refs, samples, acc, narrow, kscratch,
                        );
                    } else {
                        accumulate_neuron_column_kernel(
                            kernel,
                            neuron,
                            &act[..],
                            samples,
                            acc,
                            narrow,
                            kscratch,
                        );
                    }
                    std::mem::swap(acc, out);
                }
                *preds = argmax_columns(&out_accs[..layer.neurons.len()], samples);
                return;
            }
        }
    }
    // A network whose last layer has a QReLU (unusual): argmax over the
    // final activation columns, mirroring the row-major path. With no
    // layers at all, the argmax runs over the inputs themselves.
    if first {
        cols.col_refs_into(&mut refs);
        *preds = argmax_columns(&refs, samples);
    } else {
        *preds = argmax_columns(&act[..], samples);
    }
}

/// [`predictions_columns_with`] with a fresh scratch, returning the
/// predictions.
#[must_use]
pub fn predictions_columns(mlp: &AxMlp, cols: &ColumnMatrix) -> Vec<usize> {
    let mut preds = Vec::new();
    predictions_columns_with(mlp, cols, &mut ColumnarScratch::new(), &mut preds);
    preds
}

/// Accuracy of `mlp` over a column-major dataset. Empty datasets score
/// `0.0`, the workspace-wide convention of every accuracy API.
///
/// # Panics
///
/// Panics if `labels` disagrees with the sample count.
#[must_use]
pub fn accuracy_columns(mlp: &AxMlp, cols: &ColumnMatrix, labels: &[usize]) -> f64 {
    assert_eq!(cols.samples(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let preds = predictions_columns(mlp, cols);
    let hits = preds.iter().zip(labels).filter(|&(p, l)| p == l).count();
    hits as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axmlp::{AxLayer, InferenceScratch};

    fn weight(mask: u16, shift: u8, negative: bool) -> AxWeight {
        AxWeight {
            mask,
            shift,
            negative,
        }
    }

    fn two_layer_net() -> AxMlp {
        AxMlp {
            layers: vec![
                AxLayer {
                    input_bits: 4,
                    neurons: vec![
                        AxNeuron {
                            weights: vec![weight(0b1011, 2, false), weight(0b0110, 1, true)],
                            bias: -7,
                        },
                        AxNeuron {
                            weights: vec![weight(0, 3, true), weight(0b1111, 0, false)],
                            bias: 40,
                        },
                        AxNeuron {
                            weights: vec![weight(0b1111, 3, false), weight(0b1001, 0, true)],
                            bias: -120,
                        },
                    ],
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 1,
                    }),
                },
                AxLayer {
                    input_bits: 8,
                    neurons: vec![
                        AxNeuron {
                            weights: vec![
                                weight(0xFF, 0, false),
                                weight(0x0F, 2, true),
                                weight(0xF0, 0, false),
                            ],
                            bias: 17,
                        },
                        AxNeuron {
                            weights: vec![
                                weight(0xFF, 1, true),
                                weight(0, 0, false),
                                weight(0xFF, 0, false),
                            ],
                            bias: 90,
                        },
                    ],
                    qrelu: None,
                },
            ],
        }
    }

    fn exhaustive_rows() -> QuantMatrix {
        let rows: Vec<Vec<u8>> = (0..=255u16)
            .map(|v| vec![(v & 0x0F) as u8, (v >> 4) as u8])
            .collect();
        QuantMatrix::from_rows(&rows)
    }

    #[test]
    fn quant_matrix_layout_round_trips() {
        let rows = vec![vec![1u8, 2, 3], vec![4, 5, 6]];
        let m = QuantMatrix::from_rows(&rows);
        assert_eq!(m.len(), 2);
        assert_eq!(m.width(), 3);
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert_eq!(&m[0], &[1, 2, 3]);
        assert_eq!(m.as_flat(), &[1, 2, 3, 4, 5, 6]);
        assert_eq!(m, QuantMatrix::from_flat(vec![1, 2, 3, 4, 5, 6], 3, 2));
        let collected: Vec<&[u8]> = m.iter().collect();
        assert_eq!(collected, vec![&[1u8, 2, 3][..], &[4, 5, 6][..]]);
        assert_eq!(m.head(1).row(0), &[1, 2, 3]);
        assert_eq!(m.select(&[1, 0, 1]).row(0), &[4, 5, 6]);
        let cols = m.columns();
        assert_eq!(cols.samples(), 2);
        assert_eq!(cols.col(0), &[1, 4]);
        assert_eq!(cols.col(2), &[3, 6]);
    }

    #[test]
    fn empty_matrix_is_well_defined() {
        let m = QuantMatrix::default();
        assert!(m.is_empty());
        assert_eq!(m.width(), 0);
        assert_eq!(m.columns().samples(), 0);
        // Width survives even with zero rows.
        let m = QuantMatrix::from_flat(Vec::new(), 5, 0);
        assert_eq!(m.width(), 5);
        assert_eq!(m.head(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_rows_are_rejected() {
        let _ = QuantMatrix::from_rows(&[vec![1u8, 2], vec![3u8]]);
    }

    #[test]
    fn lut_matches_the_scalar_weight_math() {
        for &(mask, shift, negative) in &[
            (0b1010u16, 1u8, false),
            (0b0110, 2, true),
            (0, 5, true),
            (0b1111, 0, false),
        ] {
            let w = weight(mask, shift, negative);
            let mut lut = Vec::new();
            weight_lut(w, 4, &mut lut);
            assert_eq!(lut.len(), 16);
            let n = AxNeuron {
                weights: vec![w],
                bias: 0,
            };
            for x in 0..16u8 {
                assert_eq!(
                    i64::from(lut[usize::from(x)]),
                    n.accumulate(&[x]),
                    "mask {mask:#b} shift {shift} neg {negative} x {x}"
                );
            }
        }
    }

    #[test]
    fn lut_widens_for_masks_beyond_the_declared_input_width() {
        // A hand-built weight with mask bits above input_bits=4 must
        // still agree with `accumulate` on every u8 activation.
        let w = weight(0xFFFF, 1, false);
        let mut lut = Vec::new();
        weight_lut(w, 4, &mut lut);
        assert_eq!(lut.len(), 256);
        let idx_mask = lut.len() - 1;
        let n = AxNeuron {
            weights: vec![w],
            bias: 0,
        };
        for x in 0..=255u8 {
            assert_eq!(
                i64::from(lut[usize::from(x) & idx_mask]),
                n.accumulate(&[x])
            );
        }
    }

    #[test]
    fn neuron_column_equals_per_sample_accumulate() {
        let neuron = AxNeuron {
            weights: vec![weight(0b1011, 3, true), weight(0b0101, 1, false)],
            bias: 23,
        };
        let m = exhaustive_rows();
        let cols = m.columns();
        let refs = cols.col_refs();
        let (mut acc, mut narrow) = (Vec::new(), Vec::new());
        accumulate_neuron_column(&neuron, &refs, m.len(), &mut acc, &mut narrow);
        for (s, row) in m.iter().enumerate() {
            assert_eq!(acc[s], neuron.accumulate(row), "sample {s}");
        }
    }

    #[test]
    fn argmax_ties_break_to_the_lowest_index() {
        let a = [5i64, 1, 7];
        let b = [5i64, 2, 6];
        let c = [4i64, 2, 7];
        // s0: tie between neurons 0 and 1 -> 0; s1: tie between 1 and
        // 2 -> 1; s2: tie between 0 and 2 -> 0.
        let preds = argmax_columns(&[&a, &b, &c], 3);
        assert_eq!(preds, vec![0, 1, 0]);
    }

    #[test]
    fn columnar_forward_is_bit_exact_with_the_row_oracle() {
        let mlp = two_layer_net();
        let m = exhaustive_rows();
        let cols = m.columns();
        let preds = predictions_columns(&mlp, &cols);
        let mut scratch = InferenceScratch::new();
        for (s, row) in m.iter().enumerate() {
            assert_eq!(preds[s], mlp.predict_with(row, &mut scratch), "sample {s}");
        }
        // Accuracy agrees with the row-major API on the same labels.
        let labels: Vec<usize> = (0..m.len()).map(|i| i % 2).collect();
        assert_eq!(
            accuracy_columns(&mlp, &cols, &labels),
            mlp.accuracy(&m, &labels)
        );
    }

    #[test]
    fn trailing_qrelu_network_argmaxes_the_activations() {
        // All-QReLU network: the row path argmaxes final activations.
        let mlp = AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    AxNeuron {
                        weights: vec![weight(0b1111, 0, false)],
                        bias: 0,
                    },
                    AxNeuron {
                        weights: vec![weight(0b1111, 0, true)],
                        bias: 9,
                    },
                ],
                qrelu: Some(QReluCfg {
                    out_bits: 4,
                    shift: 0,
                }),
            }],
        };
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v]).collect();
        let m = QuantMatrix::from_rows(&rows);
        let preds = predictions_columns(&mlp, &m.columns());
        let mut scratch = InferenceScratch::new();
        for (s, row) in m.iter().enumerate() {
            assert_eq!(preds[s], mlp.predict_with(row, &mut scratch), "x={s}");
        }
    }

    #[test]
    fn empty_dataset_scores_zero_by_convention() {
        let mlp = two_layer_net();
        let empty = QuantMatrix::from_flat(Vec::new(), 2, 0);
        assert_eq!(accuracy_columns(&mlp, &empty.columns(), &[]), 0.0);
        assert!(predictions_columns(&mlp, &empty.columns()).is_empty());
    }

    #[test]
    fn scratch_is_reusable_across_network_shapes() {
        let wide = two_layer_net();
        let narrow = AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    AxNeuron {
                        weights: vec![weight(0b1111, 0, false), weight(0, 0, false)],
                        bias: 0,
                    },
                    AxNeuron {
                        weights: vec![weight(0, 0, false), weight(0, 0, false)],
                        bias: 3,
                    },
                ],
                qrelu: None,
            }],
        };
        let m = exhaustive_rows();
        let cols = m.columns();
        let mut scratch = ColumnarScratch::new();
        let mut preds = Vec::new();
        for mlp in [&wide, &narrow, &wide] {
            predictions_columns_with(mlp, &cols, &mut scratch, &mut preds);
            let mut row_scratch = InferenceScratch::new();
            for (s, row) in m.iter().enumerate() {
                assert_eq!(preds[s], mlp.predict_with(row, &mut row_scratch));
            }
        }
    }
}
