//! MLP substrate for printed-electronics classifiers.
//!
//! Three network representations, in decreasing precision:
//!
//! * [`DenseMlp`] — `f32` MLP with ReLU hidden layers, trained by the
//!   from-scratch backprop in [`train`] (the paper's conventional
//!   gradient baseline, Table III "Grad.").
//! * [`FixedMlp`] — the exact bespoke baseline: 8-bit weights, 4-bit
//!   inputs, 8-bit QReLU activations, integer argmax (§V-A, Table I).
//! * [`AxMlp`] — the paper's approximate MLP: power-of-two weights,
//!   per-weight bit masks, folded signs; evaluates Eq. (4) integer-
//!   exactly, so software accuracy equals circuit accuracy.
//!
//! [`hardware`] lowers the integer networks into `pe-hw` circuit
//! descriptions; [`metrics`] provides accuracy/confusion helpers;
//! [`columnar`] holds the structure-of-arrays inference engine —
//! [`QuantMatrix`] flat datasets, per-weight LUT kernels and
//! column-major batch prediction, bit-exact with the per-row path.
//!
//! # Example: train, quantize, approximate
//!
//! ```
//! use pe_mlp::{DenseMlp, FixedMlp, AxMlp, QuantConfig, Topology};
//! use pe_mlp::train::{SgdTrainer, TrainConfig};
//!
//! let rows = vec![vec![0.1, 0.2], vec![0.9, 0.8]];
//! let labels = vec![0, 1];
//! let mut mlp = DenseMlp::random(Topology::new(vec![2, 3, 2]), 1);
//! let _ = SgdTrainer::new(TrainConfig { epochs: 30, ..TrainConfig::default() })
//!     .train(&mut mlp, &rows, &labels);
//! let fixed = FixedMlp::quantize(&mlp, QuantConfig::default(), &rows);
//! let doped = AxMlp::from_fixed(&fixed, 6, 12);
//! assert_eq!(doped.layers.len(), 2);
//! ```

// `deny`, not `forbid`: the `simd` module needs `std::arch` intrinsics
// and opts back in with a module-scoped allow; everything else in the
// crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod axmlp;
pub mod bitslice;
pub mod columnar;
pub mod dense;
pub mod hardware;
pub mod metrics;
pub mod quant;
pub mod simd;
pub mod topology;
pub mod train;

pub use axmlp::{fold_constants, AxLayer, AxMlp, AxNeuron, AxWeight, InferenceScratch};
pub use columnar::{ColumnMatrix, ColumnarScratch, KernelKind, KernelScratch, QuantMatrix};
pub use dense::{argmax, DenseMlp};
pub use hardware::{ax_to_hardware, fixed_to_hardware};
pub use quant::{FixedLayer, FixedMlp, QReluCfg, QReluKernel, QuantConfig};
pub use topology::Topology;
pub use train::{train_best_of, train_best_of_observed, SgdTrainer, TrainConfig, TrainReport};
