//! MLP topology description.

use serde::{Deserialize, Serialize};

/// Layer sizes of a multilayer perceptron, `(inputs, hidden..., outputs)`.
///
/// The paper's Table I notates topologies the same way, e.g.
/// `(10,3,2)` for Breast Cancer.
///
/// ```
/// let t = pe_mlp::Topology::new(vec![10, 3, 2]);
/// assert_eq!(t.parameter_count(), 41); // 10·3+3 + 3·2+2
/// assert_eq!(t.layer_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    sizes: Vec<usize>,
}

impl Topology {
    /// Create a topology from layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    #[must_use]
    pub fn new(sizes: Vec<usize>) -> Self {
        assert!(sizes.len() >= 2, "topology needs input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        Self { sizes }
    }

    /// All layer sizes including input and output.
    #[must_use]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of input features.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.sizes[0]
    }

    /// Number of output classes.
    #[must_use]
    pub fn outputs(&self) -> usize {
        *self.sizes.last().expect("at least two sizes")
    }

    /// Number of weight layers (connections between consecutive sizes).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Fan-in and fan-out of weight layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= layer_count()`.
    #[must_use]
    pub fn layer_dims(&self, l: usize) -> (usize, usize) {
        (self.sizes[l], self.sizes[l + 1])
    }

    /// Total number of parameters (weights and biases).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Topology::new(vec![16, 5, 10]);
        assert_eq!(t.inputs(), 16);
        assert_eq!(t.outputs(), 10);
        assert_eq!(t.layer_count(), 2);
        assert_eq!(t.layer_dims(0), (16, 5));
        assert_eq!(t.layer_dims(1), (5, 10));
        assert_eq!(t.parameter_count(), 16 * 5 + 5 + 5 * 10 + 10);
    }

    #[test]
    #[should_panic(expected = "input and output")]
    fn rejects_single_layer() {
        let _ = Topology::new(vec![4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_width() {
        let _ = Topology::new(vec![4, 0, 2]);
    }
}
