//! Float (`f32`) MLP with ReLU hidden layers.
//!
//! This is the substrate for the conventional gradient-trained baseline:
//! the paper's exact bespoke circuits start from a backprop-trained
//! float MLP which is then quantized to 8-bit weights / 4-bit inputs
//! ([`crate::quant`]). It is also the "Grad." row of Table III.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::topology::Topology;

/// A dense multilayer perceptron with ReLU hidden activations and a
/// linear (pre-softmax) output layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMlp {
    topology: Topology,
    /// `weights[l][j][i]`: input `i` of neuron `j` of layer `l`.
    weights: Vec<Vec<Vec<f32>>>,
    /// `biases[l][j]`.
    biases: Vec<Vec<f32>>,
}

impl DenseMlp {
    /// He-initialized random network.
    #[must_use]
    pub fn random(topology: Topology, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03);
        let mut weights = Vec::with_capacity(topology.layer_count());
        let mut biases = Vec::with_capacity(topology.layer_count());
        for l in 0..topology.layer_count() {
            let (fan_in, fan_out) = topology.layer_dims(l);
            let scale = (2.0 / fan_in as f32).sqrt();
            weights.push(
                (0..fan_out)
                    .map(|_| {
                        (0..fan_in)
                            .map(|_| {
                                // Approximate normal via sum of uniforms
                                // (Irwin–Hall, variance 1 with 12 terms).
                                let s: f32 =
                                    (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() - 6.0;
                                s * scale
                            })
                            .collect()
                    })
                    .collect(),
            );
            biases.push(vec![0.0; fan_out]);
        }
        Self {
            topology,
            weights,
            biases,
        }
    }

    /// Build from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameter shapes do not match the topology.
    #[must_use]
    pub fn from_parameters(
        topology: Topology,
        weights: Vec<Vec<Vec<f32>>>,
        biases: Vec<Vec<f32>>,
    ) -> Self {
        assert_eq!(weights.len(), topology.layer_count());
        assert_eq!(biases.len(), topology.layer_count());
        for l in 0..topology.layer_count() {
            let (fan_in, fan_out) = topology.layer_dims(l);
            assert_eq!(weights[l].len(), fan_out, "layer {l} fan-out");
            assert!(
                weights[l].iter().all(|row| row.len() == fan_in),
                "layer {l} fan-in"
            );
            assert_eq!(biases[l].len(), fan_out, "layer {l} biases");
        }
        Self {
            topology,
            weights,
            biases,
        }
    }

    /// The network's topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Weight tensor (`[layer][neuron][input]`).
    #[must_use]
    pub fn weights(&self) -> &[Vec<Vec<f32>>] {
        &self.weights
    }

    /// Bias matrix (`[layer][neuron]`).
    #[must_use]
    pub fn biases(&self) -> &[Vec<f32>] {
        &self.biases
    }

    /// Mutable parameter access for the trainer.
    pub(crate) fn params_mut(&mut self) -> (&mut Vec<Vec<Vec<f32>>>, &mut Vec<Vec<f32>>) {
        (&mut self.weights, &mut self.biases)
    }

    /// Forward pass returning every layer's post-activation values
    /// (index 0 is the input itself); the last entry is the logits.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    #[must_use]
    pub fn forward_trace(&self, x: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(x.len(), self.topology.inputs(), "input width mismatch");
        let mut trace = Vec::with_capacity(self.topology.layer_count() + 1);
        trace.push(x.to_vec());
        for l in 0..self.topology.layer_count() {
            let input = &trace[l];
            let last = l + 1 == self.topology.layer_count();
            let out: Vec<f32> = self.weights[l]
                .iter()
                .zip(&self.biases[l])
                .map(|(row, &b)| {
                    let acc: f32 = row.iter().zip(input).map(|(&w, &v)| w * v).sum::<f32>() + b;
                    if last {
                        acc
                    } else {
                        acc.max(0.0)
                    }
                })
                .collect();
            trace.push(out);
        }
        trace
    }

    /// Output logits for one sample.
    #[must_use]
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        self.forward_trace(x).pop().expect("trace is never empty")
    }

    /// Predicted class (argmax of the logits).
    #[must_use]
    pub fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.logits(x))
    }

    /// Classification accuracy over a set of rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `labels` have different lengths.
    #[must_use]
    pub fn accuracy(&self, rows: &[Vec<f32>], labels: &[usize]) -> f64 {
        assert_eq!(rows.len(), labels.len());
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows
            .iter()
            .zip(labels)
            .filter(|&(row, &l)| self.predict(row) == l)
            .count();
        hits as f64 / rows.len() as f64
    }
}

/// Index of the maximum value (first on ties).
///
/// # Panics
///
/// Panics if `v` is empty.
#[must_use]
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_network_has_expected_shapes() {
        let mlp = DenseMlp::random(Topology::new(vec![4, 3, 2]), 1);
        assert_eq!(mlp.weights().len(), 2);
        assert_eq!(mlp.weights()[0].len(), 3);
        assert_eq!(mlp.weights()[0][0].len(), 4);
        assert_eq!(mlp.biases()[1].len(), 2);
    }

    #[test]
    fn forward_trace_applies_relu_on_hidden_only() {
        let mlp = DenseMlp::from_parameters(
            Topology::new(vec![1, 1, 1]),
            vec![vec![vec![-1.0]], vec![vec![1.0]]],
            vec![vec![0.0], vec![-5.0]],
        );
        let trace = mlp.forward_trace(&[2.0]);
        assert_eq!(trace[1], vec![0.0]); // ReLU clips -2
        assert_eq!(trace[2], vec![-5.0]); // linear output keeps negative
    }

    #[test]
    fn predict_is_argmax_of_logits() {
        let mlp = DenseMlp::from_parameters(
            Topology::new(vec![2, 2]),
            vec![vec![vec![1.0, 0.0], vec![0.0, 1.0]]],
            vec![vec![0.0, 0.0]],
        );
        assert_eq!(mlp.predict(&[3.0, 1.0]), 0);
        assert_eq!(mlp.predict(&[1.0, 3.0]), 1);
    }

    #[test]
    fn determinism_by_seed() {
        let a = DenseMlp::random(Topology::new(vec![5, 4, 3]), 7);
        let b = DenseMlp::random(Topology::new(vec![5, 4, 3]), 7);
        assert_eq!(a, b);
        let c = DenseMlp::random(Topology::new(vec![5, 4, 3]), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.3, 0.2]), 1);
    }
}
