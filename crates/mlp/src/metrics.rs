//! Classification metrics.

use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to the labels.
///
/// Returns 0 for empty inputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// ```
/// assert_eq!(pe_mlp::metrics::accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
/// ```
#[must_use]
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / predictions.len() as f64
}

/// A square confusion matrix (`rows = true class`, `cols = predicted`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Build from parallel prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or a value is `>= classes`.
    #[must_use]
    pub fn from_predictions(predictions: &[usize], labels: &[usize], classes: usize) -> Self {
        assert_eq!(predictions.len(), labels.len());
        let mut counts = vec![0u64; classes * classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!(p < classes && l < classes, "class out of range");
            counts[l * classes + p] += 1;
        }
        Self { classes, counts }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of samples with true class `label` predicted as `pred`.
    #[must_use]
    pub fn count(&self, label: usize, pred: usize) -> u64 {
        self.counts[label * self.classes + pred]
    }

    /// Overall accuracy (trace over total).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let trace: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        trace as f64 / total as f64
    }

    /// Per-class recall (diagonal over row sum); `None` for absent
    /// classes.
    #[must_use]
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        (row > 0).then(|| self.count(class, class) as f64 / row as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
        assert_eq!(accuracy(&[0, 1], &[1, 0]), 0.0);
    }

    #[test]
    fn confusion_counts_and_recall() {
        let preds = [0, 0, 1, 1, 1, 2];
        let labels = [0, 1, 1, 1, 2, 2];
        let m = ConfusionMatrix::from_predictions(&preds, &labels, 3);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.count(1, 1), 2);
        assert_eq!(m.count(2, 1), 1);
        assert_eq!(m.count(2, 2), 1);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(2).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_of_absent_class_is_none() {
        let m = ConfusionMatrix::from_predictions(&[0], &[0], 2);
        assert_eq!(m.recall(1), None);
    }
}
