//! Portable SWAR bit-sliced column accumulation: 8 samples per `u64`.
//!
//! Activations are bytes (4-bit in the paper, at most 8 bits anywhere
//! in the workspace), and a weight's contribution is
//! `±((x & mask) << shift)`. Loading 8 consecutive samples of a column
//! as one little-endian `u64` lets a single AND against the
//! byte-broadcast mask evaluate `x & mask` for all 8 lanes at once.
//! The masked word is then split into even and odd bytes, widening
//! each byte into its own 16-bit lane, and the whole word is shifted
//! left by the weight's `shift` — one shift applies to all lanes
//! simultaneously, carry-free as long as each lane stays within its
//! 16 bits.
//!
//! Positive and negative weights accumulate into separate lane planes
//! (subtraction would need borrows across lanes); a running worst-case
//! bound per lane decides when to flush the 16-bit lanes into the
//! `i32` accumulator *before* any lane could overflow. Because
//! [`fits_i32`](crate::columnar::fits_i32) already bounds the total
//! sum, every partial sum is exact, and integer addition is
//! order-agnostic — so the result is bit-exact with the scalar
//! reference, which the proptest parity suite pins down.
//!
//! Samples beyond the last full 8-lane chunk run through a scalar
//! tail. Pure safe code; no `std::arch`, so this mode works on every
//! target ([`KernelKind::BitSliced`](crate::columnar::KernelKind)).

use crate::axmlp::AxNeuron;

/// Low byte of each 16-bit lane pair: selects the even-index samples
/// of a masked 8-byte word (odd samples after a `>> 8`).
const EVEN_BYTES: u64 = 0x00FF_00FF_00FF_00FF;
/// Broadcasts one byte to all 8 byte lanes of a `u64`.
const BROADCAST: u64 = 0x0101_0101_0101_0101;
/// Worst-case value a 16-bit lane may reach before it must be flushed
/// into the `i32` accumulator.
const LANE_MAX: u32 = 0xFFFF;

/// Whether the bit-sliced kernel can evaluate `neuron` exactly: the
/// accumulator must fit `i32` (the flush target) and every active
/// weight's single-sample contribution `(x & mask) << shift` must fit
/// one 16-bit lane. Genome-encodable weights (4-bit masked
/// activations, small shifts) pass comfortably; hand-built extremes
/// fall back to the scalar kernel.
#[must_use]
pub fn supported(neuron: &AxNeuron) -> bool {
    crate::columnar::fits_i32(neuron)
        && neuron
            .weights
            .iter()
            .filter(|w| w.mask != 0)
            .all(|w| w.shift <= 8 && (u32::from(w.mask & 0xFF) << w.shift) <= LANE_MAX)
}

/// Add a positive (`negative == false`) or subtract a negative plane's
/// 16-bit lanes into the scalar accumulator and zero the plane.
/// `planes[2c]` holds the even samples of chunk `c` (lane `j` =
/// sample `8c + 2j`), `planes[2c + 1]` the odd ones.
fn flush(planes: &mut [u64], acc: &mut [i32], negative: bool) {
    for (c, pair) in planes.chunks_exact_mut(2).enumerate() {
        let chunk = &mut acc[c * 8..c * 8 + 8];
        let (even, odd) = (pair[0], pair[1]);
        for j in 0..4 {
            let lane_e = ((even >> (16 * j)) & 0xFFFF) as i32;
            let lane_o = ((odd >> (16 * j)) & 0xFFFF) as i32;
            if negative {
                chunk[2 * j] -= lane_e;
                chunk[2 * j + 1] -= lane_o;
            } else {
                chunk[2 * j] += lane_e;
                chunk[2 * j + 1] += lane_o;
            }
        }
        pair[0] = 0;
        pair[1] = 0;
    }
}

/// Bit-sliced [`accumulate_neuron_column_narrow`]: same contract, same
/// results, 8 samples per `u64` word.
///
/// `planes` is the reusable lane-accumulator scratch (grown to
/// `2 × ⌊samples/8⌋` words per polarity on first use).
///
/// [`accumulate_neuron_column_narrow`]: crate::columnar::accumulate_neuron_column_narrow
///
/// # Panics
///
/// Panics if `inputs` and the weights disagree in count, an active
/// weight's column length differs from `samples`, or [`supported`] is
/// violated (debug).
pub fn accumulate_neuron_column_bitsliced<C: AsRef<[u8]>>(
    neuron: &AxNeuron,
    inputs: &[C],
    samples: usize,
    acc: &mut Vec<i32>,
    planes: &mut Vec<u64>,
) {
    debug_assert!(supported(neuron), "unsupported neuron for bit-slicing");
    assert_eq!(
        inputs.len(),
        neuron.weights.len(),
        "input column count mismatch"
    );
    acc.clear();
    acc.resize(samples, neuron.bias);
    let chunks = samples / 8;
    let words = 2 * chunks;
    planes.clear();
    planes.resize(2 * words, 0);
    let (pos, neg) = planes.split_at_mut(words);
    // Worst case any single 16-bit lane of each polarity may hold so
    // far; exceeded bounds trigger a flush *before* the weight lands.
    let (mut pos_bound, mut neg_bound) = (0u32, 0u32);
    for (w, col) in neuron.weights.iter().zip(inputs) {
        if w.mask == 0 {
            continue;
        }
        let col = col.as_ref();
        assert_eq!(col.len(), samples, "column length mismatch");
        let mask8 = u64::from(w.mask & 0xFF);
        let broadcast = mask8 * BROADCAST;
        let term_max = (mask8 as u32) << w.shift;
        let (target, bound) = if w.negative {
            (&mut *neg, &mut neg_bound)
        } else {
            (&mut *pos, &mut pos_bound)
        };
        if *bound + term_max > LANE_MAX {
            flush(target, acc, w.negative);
            *bound = 0;
        }
        *bound += term_max;
        for (c, chunk) in col[..chunks * 8].chunks_exact(8).enumerate() {
            let x = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let m = x & broadcast;
            target[2 * c] += (m & EVEN_BYTES) << w.shift;
            target[2 * c + 1] += ((m >> 8) & EVEN_BYTES) << w.shift;
        }
        // Scalar tail over the samples past the last full chunk.
        let mask = (w.mask & 0xFF) as u8;
        let tail = acc[chunks * 8..].iter_mut().zip(&col[chunks * 8..]);
        if w.negative {
            for (a, &x) in tail {
                *a -= i32::from(x & mask) << w.shift;
            }
        } else {
            for (a, &x) in tail {
                *a += i32::from(x & mask) << w.shift;
            }
        }
    }
    flush(pos, acc, false);
    flush(neg, acc, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axmlp::AxWeight;
    use crate::columnar::{accumulate_neuron_column_narrow, ColumnMatrix, QuantMatrix};

    fn weight(mask: u16, shift: u8, negative: bool) -> AxWeight {
        AxWeight {
            mask,
            shift,
            negative,
        }
    }

    fn columns(width: usize, samples: usize, seed: u8) -> ColumnMatrix {
        let rows: Vec<Vec<u8>> = (0..samples)
            .map(|s| {
                (0..width)
                    .map(|f| ((s * 7 + f * 13 + usize::from(seed) * 31) % 16) as u8)
                    .collect()
            })
            .collect();
        QuantMatrix::from_rows(&rows).columns()
    }

    #[test]
    fn matches_the_scalar_narrow_kernel() {
        let neuron = AxNeuron {
            weights: vec![
                weight(0b1011, 3, true),
                weight(0b0101, 1, false),
                weight(0, 7, true),
                weight(0b1111, 0, false),
            ],
            bias: -23,
        };
        assert!(supported(&neuron));
        // Sample counts straddling the 8-lane chunk boundary.
        for samples in [0usize, 1, 7, 8, 9, 16, 100, 257] {
            let cols = columns(neuron.weights.len(), samples, 5);
            let refs = if samples == 0 {
                vec![&[][..]; neuron.weights.len()]
            } else {
                cols.col_refs()
            };
            let (mut want, mut got, mut planes) = (Vec::new(), Vec::new(), Vec::new());
            accumulate_neuron_column_narrow(&neuron, &refs, samples, &mut want);
            accumulate_neuron_column_bitsliced(&neuron, &refs, samples, &mut got, &mut planes);
            assert_eq!(got, want, "samples {samples}");
        }
    }

    #[test]
    fn forced_lane_flushes_stay_exact() {
        // Many max-magnitude weights of one polarity: each contributes
        // up to 255 << 8 = 0xFF00 per lane, so every weight beyond the
        // first forces a flush — the flush path runs repeatedly.
        let neuron = AxNeuron {
            weights: (0..6)
                .map(|i| weight(0xFF, 8, i % 2 == 0))
                .collect::<Vec<_>>(),
            bias: 1000,
        };
        assert!(supported(&neuron));
        let rows: Vec<Vec<u8>> = (0..33usize)
            .map(|s| (0..6).map(|f| ((s * 5 + f * 11) % 256) as u8).collect())
            .collect();
        let cols = QuantMatrix::from_rows(&rows).columns();
        let refs = cols.col_refs();
        let (mut want, mut got, mut planes) = (Vec::new(), Vec::new(), Vec::new());
        accumulate_neuron_column_narrow(&neuron, &refs, 33, &mut want);
        accumulate_neuron_column_bitsliced(&neuron, &refs, 33, &mut got, &mut planes);
        assert_eq!(got, want);
    }

    #[test]
    fn rejects_lane_overflowing_weights() {
        // (0xFF << 9) exceeds a 16-bit lane: must fall back.
        let wide = AxNeuron {
            weights: vec![weight(0xFF, 9, false)],
            bias: 0,
        };
        assert!(!supported(&wide));
        // Mask 0 deactivates the weight, making the same shift fine.
        let inactive = AxNeuron {
            weights: vec![weight(0, 9, false)],
            bias: 0,
        };
        assert!(supported(&inactive));
    }
}
