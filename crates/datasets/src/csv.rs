//! Minimal CSV loading for real UCI data files.
//!
//! The synthetic generators in [`crate::synth`] are the default data
//! source, but if the real UCI CSVs are available they can be loaded
//! here: numeric feature columns followed by an integer class label in
//! the last column. A non-numeric first line is treated as a header and
//! skipped. No external CSV crate is needed for this fixed format.

use std::fs;
use std::io;
use std::path::Path;

use crate::data::TabularData;
use crate::error::DatasetError;

/// Errors from [`load_csv`]: I/O or parse failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Filesystem error.
    Io(io::Error),
    /// Structural/parse error with location information.
    Parse(DatasetError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "cannot read csv: {e}"),
            CsvError::Parse(e) => write!(f, "cannot parse csv: {e}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse(e) => Some(e),
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<DatasetError> for CsvError {
    fn from(e: DatasetError) -> Self {
        CsvError::Parse(e)
    }
}

/// Load a `features...,label` CSV file.
///
/// Labels may be arbitrary integers; they are re-indexed densely to
/// `0..classes` in order of first appearance of the sorted distinct
/// values, so `{3,5,6,7,8}`-style wine-quality labels work directly.
///
/// # Errors
///
/// Returns [`CsvError::Io`] on filesystem problems and
/// [`CsvError::Parse`] on malformed content.
pub fn load_csv(path: impl AsRef<Path>) -> Result<TabularData, CsvError> {
    let text = fs::read_to_string(path)?;
    parse_csv(&text).map_err(CsvError::from)
}

/// Parse CSV text in the `features...,label` format (see [`load_csv`]).
///
/// # Errors
///
/// Returns [`DatasetError`] describing the first malformed cell or row.
pub fn parse_csv(text: &str) -> Result<TabularData, DatasetError> {
    let mut features: Vec<Vec<f32>> = Vec::new();
    let mut raw_labels: Vec<i64> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split([',', ';']).map(str::trim).collect();
        if cells.is_empty() || cells.iter().all(|c| c.is_empty()) {
            return Err(DatasetError::EmptyLine { line: lineno + 1 });
        }
        let parsed: Result<Vec<f64>, usize> = cells
            .iter()
            .enumerate()
            .map(|(ci, c)| c.parse::<f64>().map_err(|_| ci))
            .collect();
        match parsed {
            Err(col) if lineno == 0 => {
                // Non-numeric first row: header, skip silently.
                let _ = col;
                continue;
            }
            Err(column) => {
                return Err(DatasetError::ParseCell {
                    line: lineno + 1,
                    column,
                    cell: cells[column].to_owned(),
                });
            }
            Ok(values) => {
                if values.len() < 2 {
                    return Err(DatasetError::RaggedRow {
                        row: features.len(),
                        expected: 2,
                        found: values.len(),
                    });
                }
                let (label, feats) = values.split_last().expect("length checked");
                features.push(feats.iter().map(|&v| v as f32).collect());
                raw_labels.push(label.round() as i64);
            }
        }
    }

    // Dense re-indexing of labels.
    let mut distinct: Vec<i64> = raw_labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let labels: Vec<usize> = raw_labels
        .iter()
        .map(|l| distinct.binary_search(l).expect("label present"))
        .collect();

    TabularData::new(features, labels, distinct.len().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_numeric_csv() {
        let d = parse_csv("1.0,2.0,0\n3.0,4.0,1\n").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.feature_count(), 2);
        assert_eq!(d.classes, 2);
        assert_eq!(d.labels, vec![0, 1]);
    }

    #[test]
    fn skips_header_row() {
        let d = parse_csv("f1,f2,quality\n0.5,0.1,5\n0.2,0.9,7\n").unwrap();
        assert_eq!(d.len(), 2);
        // Labels 5 and 7 re-indexed densely.
        assert_eq!(d.labels, vec![0, 1]);
    }

    #[test]
    fn reindexes_sparse_labels() {
        let d = parse_csv("0,3\n0,8\n0,5\n0,3\n").unwrap();
        assert_eq!(d.classes, 3);
        assert_eq!(d.labels, vec![0, 2, 1, 0]);
    }

    #[test]
    fn reports_parse_errors_with_location() {
        let err = parse_csv("1,2,0\n1,x,1\n").unwrap_err();
        assert_eq!(
            err,
            DatasetError::ParseCell {
                line: 2,
                column: 1,
                cell: "x".into()
            }
        );
    }

    #[test]
    fn semicolon_separated_wine_format() {
        let d = parse_csv("7.4;0.7;5\n7.8;0.88;6\n").unwrap();
        assert_eq!(d.feature_count(), 2);
        assert_eq!(d.classes, 2);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let d = parse_csv("1,0\n\n2,1\n\n").unwrap();
        assert_eq!(d.len(), 2);
    }
}
