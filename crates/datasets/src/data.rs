//! Tabular labelled data containers.

use serde::{Deserialize, Serialize};

pub use pe_mlp::columnar::QuantMatrix;

use crate::error::DatasetError;

/// A labelled tabular dataset with `f32` features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabularData {
    /// One row per sample; all rows have the same length.
    pub features: Vec<Vec<f32>>,
    /// Class label per sample, in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl TabularData {
    /// Construct and validate a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if rows are ragged, labels are out of
    /// range, or the feature/label counts disagree.
    pub fn new(
        features: Vec<Vec<f32>>,
        labels: Vec<usize>,
        classes: usize,
    ) -> Result<Self, DatasetError> {
        if features.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                features: features.len(),
                labels: labels.len(),
            });
        }
        if classes == 0 {
            return Err(DatasetError::NoClasses);
        }
        let width = features.first().map_or(0, Vec::len);
        for (i, row) in features.iter().enumerate() {
            if row.len() != width {
                return Err(DatasetError::RaggedRow {
                    row: i,
                    expected: width,
                    found: row.len(),
                });
            }
        }
        if let Some((i, &l)) = labels.iter().enumerate().find(|&(_, &l)| l >= classes) {
            return Err(DatasetError::LabelOutOfRange {
                row: i,
                label: l,
                classes,
            });
        }
        Ok(Self {
            features,
            labels,
            classes,
        })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample (0 for an empty dataset).
    #[must_use]
    pub fn feature_count(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Min-max normalize every feature column into `[0, 1]`, in place,
    /// as the paper does before quantization (§V-A). Constant columns
    /// become all-zeros.
    pub fn normalize_unit(&mut self) {
        let width = self.feature_count();
        for c in 0..width {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for row in &self.features {
                lo = lo.min(row[c]);
                hi = hi.max(row[c]);
            }
            let span = hi - lo;
            for row in &mut self.features {
                row[c] = if span > 0.0 {
                    (row[c] - lo) / span
                } else {
                    0.0
                };
            }
        }
    }

    /// Extract a subset by sample indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Self {
        Self {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        }
    }
}

/// A dataset quantized for bespoke hardware: unsigned integer features
/// of `input_bits` each (the paper uses 4-bit inputs, §III-B).
///
/// Features live in a flat [`QuantMatrix`] (one contiguous buffer plus
/// a stride) rather than a `Vec<Vec<u8>>`, so inference engines can
/// stream rows without pointer chasing and transpose to the columnar
/// layout ([`QuantMatrix::columns`]) once per study.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedData {
    /// One row per sample, each value in `0 .. 2^input_bits`.
    pub features: QuantMatrix,
    /// Class label per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Bits per feature.
    pub input_bits: u32,
}

impl QuantizedData {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample.
    #[must_use]
    pub fn feature_count(&self) -> usize {
        self.features.width()
    }
}

/// Quantize `[0,1]`-normalized features to unsigned `input_bits`-bit
/// integers by uniform rounding.
///
/// Values outside `[0,1]` are clamped first, so the function is safe on
/// un-normalized data (though lossy).
///
/// ```
/// use pe_datasets::data::{quantize, TabularData};
///
/// let data = TabularData::new(vec![vec![0.0, 0.5, 1.0]], vec![0], 1).unwrap();
/// let q = quantize(&data, 4);
/// assert_eq!(&q.features[0], &[0, 8, 15]);
/// ```
#[must_use]
pub fn quantize(data: &TabularData, input_bits: u32) -> QuantizedData {
    let max = ((1u32 << input_bits) - 1) as f32;
    let width = data.feature_count();
    let mut flat = Vec::with_capacity(width * data.len());
    for row in &data.features {
        flat.extend(row.iter().map(|&v| (v.clamp(0.0, 1.0) * max).round() as u8));
    }
    QuantizedData {
        features: QuantMatrix::from_flat(flat, width, data.len()),
        labels: data.labels.clone(),
        classes: data.classes,
        input_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_shape() {
        assert!(TabularData::new(vec![vec![1.0], vec![2.0]], vec![0], 1).is_err());
        assert!(TabularData::new(vec![vec![1.0], vec![2.0, 3.0]], vec![0, 0], 1).is_err());
        assert!(TabularData::new(vec![vec![1.0]], vec![5], 2).is_err());
        assert!(TabularData::new(vec![vec![1.0]], vec![0], 0).is_err());
        assert!(TabularData::new(vec![vec![1.0]], vec![0], 1).is_ok());
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let mut d = TabularData::new(
            vec![vec![-5.0, 100.0], vec![5.0, 100.0], vec![0.0, 100.0]],
            vec![0, 0, 0],
            1,
        )
        .unwrap();
        d.normalize_unit();
        assert_eq!(d.features[0], vec![0.0, 0.0]);
        assert_eq!(d.features[1], vec![1.0, 0.0]);
        assert_eq!(d.features[2], vec![0.5, 0.0]);
    }

    #[test]
    fn quantization_covers_full_range() {
        let d = TabularData::new(vec![vec![0.0, 1.0, 0.49, 2.0, -1.0]], vec![0], 1).unwrap();
        let q = quantize(&d, 4);
        assert_eq!(&q.features[0], &[0, 15, 7, 15, 0]);
        assert_eq!(q.features.width(), 5);
        assert_eq!(q.input_bits, 4);
    }

    #[test]
    fn class_counts_and_subset() {
        let d = TabularData::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 1, 1, 0],
            2,
        )
        .unwrap();
        assert_eq!(d.class_counts(), vec![2, 2]);
        let s = d.subset(&[1, 3]);
        assert_eq!(s.labels, vec![1, 0]);
        assert_eq!(s.features[0], vec![1.0]);
    }
}
