//! Error type for dataset construction and loading.

use std::fmt;

/// Errors from dataset validation, generation or CSV parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// Feature row count differs from label count.
    LengthMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A feature row has the wrong number of columns.
    RaggedRow {
        /// Row index.
        row: usize,
        /// Expected column count.
        expected: usize,
        /// Actual column count.
        found: usize,
    },
    /// A label is not in `0..classes`.
    LabelOutOfRange {
        /// Row index.
        row: usize,
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// A dataset must have at least one class.
    NoClasses,
    /// A CSV cell failed to parse as a number.
    ParseCell {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
        /// Cell contents.
        cell: String,
    },
    /// A CSV line had no columns at all.
    EmptyLine {
        /// 1-based line number.
        line: usize,
    },
    /// A split fraction was outside `(0, 1)`.
    BadSplitFraction {
        /// The offending fraction.
        fraction: f64,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { features, labels } => {
                write!(f, "{features} feature rows but {labels} labels")
            }
            DatasetError::RaggedRow {
                row,
                expected,
                found,
            } => {
                write!(f, "row {row} has {found} columns, expected {expected}")
            }
            DatasetError::LabelOutOfRange {
                row,
                label,
                classes,
            } => {
                write!(f, "row {row} has label {label}, outside 0..{classes}")
            }
            DatasetError::NoClasses => write!(f, "dataset must declare at least one class"),
            DatasetError::ParseCell { line, column, cell } => {
                write!(
                    f,
                    "line {line}, column {column}: cannot parse {cell:?} as a number"
                )
            }
            DatasetError::EmptyLine { line } => write!(f, "line {line} is empty"),
            DatasetError::BadSplitFraction { fraction } => {
                write!(f, "split fraction {fraction} outside (0, 1)")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DatasetError::ParseCell {
            line: 3,
            column: 2,
            cell: "abc".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('2') && msg.contains("abc"));
    }
}
