//! Descriptions of the five evaluation datasets.
//!
//! The paper evaluates on five UCI datasets (§V-A) that earlier printed-
//! ML papers also use: Breast Cancer, Cardiotocography, Pendigits,
//! Red Wine and White Wine. [`DatasetSpec`] records each dataset's
//! dimensionality, class structure and sample count, the MLP topology
//! the paper assigns to it, and the paper's reported baseline figures
//! (Table I) used for calibration checks and the experiment reports.

use serde::{Deserialize, Serialize};

/// The five benchmark datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dataset {
    /// Breast Cancer Wisconsin (diagnostic screening), topology (10,3,2).
    BreastCancer,
    /// Cardiotocography (fetal state), topology (21,3,3).
    Cardio,
    /// Pen-based handwritten digit recognition, topology (16,5,10).
    Pendigits,
    /// Red wine quality, topology (11,2,6).
    RedWine,
    /// White wine quality, topology (11,4,7).
    WhiteWine,
}

impl Dataset {
    /// All datasets in the paper's table order.
    pub const ALL: [Dataset; 5] = [
        Dataset::BreastCancer,
        Dataset::Cardio,
        Dataset::Pendigits,
        Dataset::RedWine,
        Dataset::WhiteWine,
    ];

    /// Full specification of this dataset.
    #[must_use]
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::BreastCancer => DatasetSpec {
                dataset: self,
                name: "Breast Cancer",
                short_name: "BC",
                features: 10,
                classes: 2,
                samples: 569,
                hidden: &[3],
                // Breast Cancer Wisconsin: 357 benign / 212 malignant.
                class_weights: Some(&[0.627, 0.373]),
                paper: PaperBaseline {
                    parameters: 38,
                    accuracy: 0.980,
                    area_cm2: 12.0,
                    power_mw: 40.0,
                },
                synth: SynthParams {
                    separation: 4.0,
                    cluster_std: 0.55,
                    arrangement: ClassArrangement::OrdinalLine,
                    label_noise: 0.005,
                },
                sgd: SgdHint {
                    learning_rate: 0.05,
                    epochs: 200,
                },
            },
            Dataset::Cardio => DatasetSpec {
                dataset: self,
                name: "Cardio",
                short_name: "Ca",
                features: 21,
                classes: 3,
                samples: 2126,
                hidden: &[3],
                // Cardiotocography NSP: 1655 normal / 295 suspect / 176 pathologic.
                class_weights: Some(&[0.778, 0.139, 0.083]),
                paper: PaperBaseline {
                    parameters: 78,
                    accuracy: 0.881,
                    area_cm2: 33.4,
                    power_mw: 124.0,
                },
                synth: SynthParams {
                    separation: 2.6,
                    cluster_std: 0.60,
                    arrangement: ClassArrangement::Subspace { dims: 2 },
                    label_noise: 0.05,
                },
                sgd: SgdHint {
                    learning_rate: 0.05,
                    epochs: 200,
                },
            },
            Dataset::Pendigits => DatasetSpec {
                dataset: self,
                name: "Pendigits",
                short_name: "PD",
                features: 16,
                classes: 10,
                samples: 10992,
                hidden: &[5],
                // Pendigits is (nearly) balanced across the ten digits.
                class_weights: None,
                paper: PaperBaseline {
                    parameters: 145,
                    accuracy: 0.937,
                    area_cm2: 67.0,
                    power_mw: 213.0,
                },
                synth: SynthParams {
                    separation: 4.4,
                    cluster_std: 0.50,
                    arrangement: ClassArrangement::Subspace { dims: 4 },
                    label_noise: 0.005,
                },
                sgd: SgdHint {
                    learning_rate: 0.05,
                    epochs: 200,
                },
            },
            Dataset::RedWine => DatasetSpec {
                dataset: self,
                name: "RedWine",
                short_name: "RW",
                features: 11,
                classes: 6,
                samples: 1599,
                hidden: &[2],
                // Red wine quality 3..8: 10/53/681/638/199/18.
                class_weights: Some(&[0.006, 0.033, 0.426, 0.399, 0.124, 0.011]),
                paper: PaperBaseline {
                    parameters: 42,
                    accuracy: 0.564,
                    area_cm2: 17.6,
                    power_mw: 73.5,
                },
                synth: SynthParams {
                    separation: 1.35,
                    cluster_std: 0.80,
                    arrangement: ClassArrangement::OrdinalLine,
                    label_noise: 0.02,
                },
                sgd: SgdHint {
                    learning_rate: 0.02,
                    epochs: 600,
                },
            },
            Dataset::WhiteWine => DatasetSpec {
                dataset: self,
                name: "WhiteWine",
                short_name: "WW",
                features: 11,
                classes: 7,
                samples: 4898,
                hidden: &[4],
                // White wine quality 3..9: 20/163/1457/2198/880/175/5.
                class_weights: Some(&[0.004, 0.033, 0.297, 0.449, 0.180, 0.036, 0.001]),
                paper: PaperBaseline {
                    parameters: 83,
                    accuracy: 0.537,
                    area_cm2: 31.2,
                    power_mw: 126.0,
                },
                synth: SynthParams {
                    separation: 1.05,
                    cluster_std: 0.80,
                    arrangement: ClassArrangement::OrdinalLine,
                    label_noise: 0.02,
                },
                sgd: SgdHint {
                    learning_rate: 0.05,
                    epochs: 200,
                },
            },
        }
    }
}

/// Paper-reported Table I baseline figures (for reporting and
/// calibration sanity checks — never fed back into the models).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperBaseline {
    /// MLP parameter count from Table I.
    pub parameters: u32,
    /// Baseline test accuracy.
    pub accuracy: f64,
    /// Baseline bespoke area in cm².
    pub area_cm2: f64,
    /// Baseline bespoke power in mW.
    pub power_mw: f64,
}

/// How the synthetic generator arranges class centers.
///
/// Real tabular datasets have *low-dimensional* class structure — wine
/// quality is ordinal (classes along one latent direction), digits live
/// on a low-dimensional manifold. The paper's MLPs have 2–5 hidden
/// units, which only works because of that structure, so the synthetic
/// stand-ins must reproduce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassArrangement {
    /// Class centers equally spaced along one latent direction, in
    /// class order — adjacent classes overlap most, like the ordinal
    /// wine-quality labels.
    OrdinalLine,
    /// Class centers sampled in a random `dims`-dimensional subspace
    /// with a minimum pairwise distance.
    Subspace {
        /// Intrinsic dimensionality of the class structure.
        dims: u32,
    },
}

/// Recommended gradient-training hyperparameters for the dataset.
///
/// The imbalanced ordinal datasets (wines) need a gentler learning
/// rate and more epochs to escape the majority-class local optimum;
/// the others train comfortably at the defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdHint {
    /// Learning rate.
    pub learning_rate: f32,
    /// Full-budget epoch count (scaled down for quick runs).
    pub epochs: usize,
}

/// Parameters of the synthetic Gaussian-mixture stand-in generator.
///
/// Chosen per dataset so the achievable accuracy of a small MLP lands
/// near the paper's baseline accuracy (documented in DESIGN.md §2): easy
/// well-separated classes for Breast Cancer / Pendigits, heavily
/// overlapping ordinal classes for the wine datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthParams {
    /// Distance between (adjacent/nearest) class centers, in units of
    /// the cluster standard deviation.
    pub separation: f64,
    /// Standard deviation of each Gaussian cluster (pre-normalization).
    pub cluster_std: f64,
    /// Geometric arrangement of the class centers.
    pub arrangement: ClassArrangement,
    /// Probability that a sample's label is replaced by a random class.
    pub label_noise: f64,
}

/// Full specification of one benchmark dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Display name as in the paper's tables.
    pub name: &'static str,
    /// Two-letter code used in Fig. 4/5.
    pub short_name: &'static str,
    /// Number of input features.
    pub features: usize,
    /// Number of target classes.
    pub classes: usize,
    /// Total sample count (before the 70/30 split).
    pub samples: usize,
    /// Hidden-layer sizes of the paper's MLP topology.
    pub hidden: &'static [usize],
    /// Class prior probabilities of the real UCI dataset (`None` =
    /// uniform). Imbalance is load-bearing: the heavily skewed wine and
    /// Cardio distributions are what allow aggressively pruned circuits
    /// to stay within the 5% accuracy budget, as in the paper.
    pub class_weights: Option<&'static [f64]>,
    /// Paper-reported baseline figures.
    pub paper: PaperBaseline,
    /// Synthetic generator parameters.
    pub synth: SynthParams,
    /// Recommended gradient-training hyperparameters.
    pub sgd: SgdHint,
}

impl DatasetSpec {
    /// The full MLP topology `(inputs, hidden..., classes)` as in
    /// Table I's "MLP Topology" column.
    #[must_use]
    pub fn topology(&self) -> Vec<usize> {
        let mut t = Vec::with_capacity(self.hidden.len() + 2);
        t.push(self.features);
        t.extend_from_slice(self.hidden);
        t.push(self.classes);
        t
    }

    /// Parameter count of the topology (weights + biases), matching the
    /// paper's "Parameters" column.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        let t = self.topology();
        t.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_match_table_i() {
        assert_eq!(Dataset::BreastCancer.spec().topology(), vec![10, 3, 2]);
        assert_eq!(Dataset::Cardio.spec().topology(), vec![21, 3, 3]);
        assert_eq!(Dataset::Pendigits.spec().topology(), vec![16, 5, 10]);
        assert_eq!(Dataset::RedWine.spec().topology(), vec![11, 2, 6]);
        assert_eq!(Dataset::WhiteWine.spec().topology(), vec![11, 4, 7]);
    }

    #[test]
    fn parameter_counts_match_table_i() {
        // Weights + biases reproduces the paper's "Parameters" column for
        // four of five rows. Breast Cancer is the exception: (10,3,2)
        // has 41 weights+biases but Table I prints 38 — an internal
        // inconsistency of the paper we document rather than replicate.
        for d in Dataset::ALL {
            let spec = d.spec();
            if d == Dataset::BreastCancer {
                assert_eq!(spec.parameter_count(), 41);
            } else {
                assert_eq!(
                    spec.parameter_count(),
                    spec.paper.parameters as usize,
                    "{}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn wine_datasets_are_hardest() {
        let easy = Dataset::BreastCancer.spec().synth;
        for wine in [Dataset::RedWine, Dataset::WhiteWine] {
            let s = wine.spec().synth;
            assert!(s.separation < easy.separation);
            assert!(s.label_noise > easy.label_noise);
        }
    }
}
