//! Stratified train/test splitting.
//!
//! The paper splits every dataset 70%/30% train/test, stratified so each
//! class keeps its proportion in both sets (§V-A).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::TabularData;
use crate::error::DatasetError;

/// A train/test partition of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training portion.
    pub train: TabularData,
    /// Held-out test portion.
    pub test: TabularData,
}

/// Stratified split: `train_fraction` of each class goes to the training
/// set (rounded), the rest to the test set; order is shuffled
/// deterministically by `seed`.
///
/// # Errors
///
/// Returns [`DatasetError::BadSplitFraction`] unless
/// `0 < train_fraction < 1`.
///
/// ```
/// use pe_datasets::{split::stratified_split, synth::generate, Dataset};
///
/// let data = generate(Dataset::BreastCancer, 1);
/// let split = stratified_split(&data, 0.7, 99)?;
/// assert_eq!(split.train.len() + split.test.len(), data.len());
/// # Ok::<(), pe_datasets::DatasetError>(())
/// ```
pub fn stratified_split(
    data: &TabularData,
    train_fraction: f64,
    seed: u64,
) -> Result<Split, DatasetError> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(DatasetError::BadSplitFraction {
            fraction: train_fraction,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);

    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in 0..data.classes {
        let mut members: Vec<usize> = (0..data.len())
            .filter(|&i| data.labels[i] == class)
            .collect();
        members.shuffle(&mut rng);
        let n_train = (members.len() as f64 * train_fraction).round() as usize;
        let n_train = n_train.min(members.len());
        train_idx.extend_from_slice(&members[..n_train]);
        test_idx.extend_from_slice(&members[n_train..]);
    }
    train_idx.shuffle(&mut rng);
    test_idx.shuffle(&mut rng);

    Ok(Split {
        train: data.subset(&train_idx),
        test: data.subset(&test_idx),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Dataset;
    use crate::synth::generate;

    #[test]
    fn split_is_exhaustive_and_disjoint_in_size() {
        let data = generate(Dataset::Cardio, 5);
        let s = stratified_split(&data, 0.7, 1).unwrap();
        assert_eq!(s.train.len() + s.test.len(), data.len());
        let frac = s.train.len() as f64 / data.len() as f64;
        assert!((frac - 0.7).abs() < 0.02, "train fraction {frac}");
    }

    #[test]
    fn stratification_preserves_class_balance() {
        let data = generate(Dataset::Pendigits, 5);
        let s = stratified_split(&data, 0.7, 1).unwrap();
        let total = data.class_counts();
        let train = s.train.class_counts();
        for c in 0..data.classes {
            let expected = total[c] as f64 * 0.7;
            assert!(
                (train[c] as f64 - expected).abs() <= 1.0,
                "class {c}: {} vs {expected}",
                train[c]
            );
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let data = generate(Dataset::RedWine, 5);
        let a = stratified_split(&data, 0.7, 9).unwrap();
        let b = stratified_split(&data, 0.7, 9).unwrap();
        assert_eq!(a.train, b.train);
        let c = stratified_split(&data, 0.7, 10).unwrap();
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn bad_fractions_are_rejected() {
        let data = generate(Dataset::RedWine, 5);
        for f in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(stratified_split(&data, f, 0).is_err(), "{f}");
        }
    }
}
