//! Benchmark datasets for printed-MLP experiments.
//!
//! The paper evaluates on five UCI datasets (Breast Cancer, Cardio,
//! Pendigits, RedWine, WhiteWine — §V-A). This crate provides:
//!
//! * [`spec`] — each dataset's dimensions, paper topology and Table I
//!   baseline figures.
//! * [`synth`] — deterministic synthetic stand-ins (Gaussian mixtures
//!   with per-dataset separability) used when the real UCI files are
//!   unavailable, as in this reproduction (DESIGN.md §2).
//! * [`csv`] — a loader for the real UCI CSVs, drop-in compatible.
//! * [`split`] — the paper's stratified 70/30 train/test split.
//! * [`data`] — tabular containers, `[0,1]` normalization and the
//!   4-bit input quantization of §III-B.
//!
//! # Example
//!
//! ```
//! use pe_datasets::{Dataset, synth::generate, split::stratified_split, data::quantize};
//!
//! let data = generate(Dataset::BreastCancer, 42);
//! let split = stratified_split(&data, 0.7, 42)?;
//! let train = quantize(&split.train, 4);
//! assert_eq!(train.feature_count(), 10);
//! # Ok::<(), pe_datasets::DatasetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod data;
pub mod error;
pub mod spec;
pub mod split;
pub mod synth;

pub use csv::{load_csv, parse_csv, CsvError};
pub use data::{quantize, QuantMatrix, QuantizedData, TabularData};
pub use error::DatasetError;
pub use spec::{ClassArrangement, Dataset, DatasetSpec, PaperBaseline, SgdHint, SynthParams};
pub use split::{stratified_split, Split};
pub use synth::{generate, generate_from_spec};
