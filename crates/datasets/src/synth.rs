//! Synthetic Gaussian-mixture stand-ins for the UCI datasets.
//!
//! The reproduction environment has no network access to the UCI
//! repository, so each benchmark dataset is replaced by a deterministic
//! synthetic generator matching its dimensionality, class count, sample
//! count and — via per-dataset separability parameters — its approximate
//! difficulty (see DESIGN.md §2 for why this preserves the paper's
//! evaluation). Real UCI CSV files can be dropped in through
//! [`crate::csv::load_csv`] instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::TabularData;
use crate::spec::{Dataset, DatasetSpec};

/// Draw one standard-normal sample (Box–Muller; avoids a `rand_distr`
/// dependency).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generate the synthetic stand-in for `dataset`, normalized to `[0,1]`.
///
/// The generator is fully deterministic in `seed`: identical seeds yield
/// identical datasets across runs and platforms.
///
/// Class structure follows the spec's [`crate::spec::ClassArrangement`]:
/// centers live in a *low-dimensional* random subspace of feature space
/// (ordinal line for the wine datasets, a few dimensions for the
/// others), because that is what makes the paper's 2–5-hidden-unit MLPs
/// viable on the real datasets. Samples are isotropic Gaussians around
/// their class center; `label_noise` relabels a fraction uniformly,
/// bounding the Bayes accuracy below 1 exactly as the hard (wine)
/// datasets do.
#[must_use]
pub fn generate(dataset: Dataset, seed: u64) -> TabularData {
    let spec = dataset.spec();
    generate_from_spec(&spec, seed)
}

/// Draw an orthonormal basis of `dims` vectors in `features` dimensions
/// (Gram–Schmidt over Gaussian draws).
fn orthonormal_basis(features: usize, dims: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(dims);
    while basis.len() < dims {
        let mut v: Vec<f64> = (0..features).map(|_| normal(rng)).collect();
        for b in &basis {
            let dot: f64 = v.iter().zip(b).map(|(x, y)| x * y).sum();
            for (x, y) in v.iter_mut().zip(b) {
                *x -= dot * y;
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-6 {
            for x in &mut v {
                *x /= norm;
            }
            basis.push(v);
        }
    }
    basis
}

/// Generate a synthetic dataset from an explicit [`DatasetSpec`]
/// (useful for custom-topology experiments in the examples).
///
/// # Panics
///
/// Panics if the spec declares zero classes, features or samples, or
/// requests more intrinsic dimensions than features.
#[must_use]
pub fn generate_from_spec(spec: &DatasetSpec, seed: u64) -> TabularData {
    assert!(
        spec.classes > 0 && spec.features > 0 && spec.samples > 0,
        "degenerate spec"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let p = spec.synth;
    let min_dist = p.separation * p.cluster_std;

    // Class centers in the low-dimensional latent structure, embedded
    // into feature space by an orthonormal basis.
    let centers: Vec<Vec<f64>> = match p.arrangement {
        crate::spec::ClassArrangement::OrdinalLine => {
            let basis = orthonormal_basis(spec.features, 1, &mut rng);
            (0..spec.classes)
                .map(|c| {
                    let t = (c as f64 - (spec.classes as f64 - 1.0) / 2.0) * min_dist;
                    basis[0].iter().map(|&b| b * t).collect()
                })
                .collect()
        }
        crate::spec::ClassArrangement::Subspace { dims } => {
            let dims = (dims as usize).min(spec.features).max(1);
            assert!(dims <= spec.features, "intrinsic dims exceed features");
            let basis = orthonormal_basis(spec.features, dims, &mut rng);
            // Rejection-sample latent centers with the minimum pairwise
            // distance; grow the sampling radius on failure so the loop
            // always terminates.
            let mut latent: Vec<Vec<f64>> = Vec::with_capacity(spec.classes);
            let mut radius = min_dist * (spec.classes as f64).powf(1.0 / dims as f64);
            let mut attempts = 0u32;
            while latent.len() < spec.classes {
                let cand: Vec<f64> = (0..dims).map(|_| rng.gen_range(-radius..radius)).collect();
                let ok = latent.iter().all(|c| {
                    let d2: f64 = c.iter().zip(&cand).map(|(a, b)| (a - b) * (a - b)).sum();
                    d2.sqrt() >= min_dist
                });
                if ok {
                    latent.push(cand);
                } else {
                    attempts += 1;
                    if attempts.is_multiple_of(200) {
                        radius *= 1.2;
                    }
                }
            }
            latent
                .iter()
                .map(|l| {
                    let mut center = vec![0.0f64; spec.features];
                    for (coef, b) in l.iter().zip(&basis) {
                        for (c, &bv) in center.iter_mut().zip(b) {
                            *c += coef * bv;
                        }
                    }
                    center
                })
                .collect()
        }
    };

    // Per-class sample counts follow the real dataset's class priors
    // (uniform when no weights are given); every class keeps at least
    // one sample so stratified splitting stays well-defined.
    let class_of: Vec<usize> = {
        let weights: Vec<f64> = match spec.class_weights {
            Some(w) => {
                assert_eq!(w.len(), spec.classes, "class weight count mismatch");
                w.to_vec()
            }
            None => vec![1.0; spec.classes],
        };
        let total: f64 = weights.iter().sum();
        let mut counts: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * spec.samples as f64).round().max(2.0) as usize)
            .collect();
        // Adjust to the exact sample count by trimming/padding the
        // largest class.
        let largest = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let assigned: usize = counts.iter().sum();
        if assigned > spec.samples {
            counts[largest] -= (assigned - spec.samples).min(counts[largest] - 2);
        } else {
            counts[largest] += spec.samples - assigned;
        }
        let mut order = Vec::with_capacity(spec.samples);
        for (c, &n) in counts.iter().enumerate() {
            order.extend(std::iter::repeat_n(c, n));
        }
        order.truncate(spec.samples);
        order
    };

    let mut features = Vec::with_capacity(spec.samples);
    let mut labels = Vec::with_capacity(spec.samples);
    for &class in class_of.iter() {
        let center = &centers[class];
        let row: Vec<f32> = center
            .iter()
            .map(|&c| (c + normal(&mut rng) * p.cluster_std) as f32)
            .collect();
        let label = if rng.gen_bool(p.label_noise.clamp(0.0, 1.0)) {
            rng.gen_range(0..spec.classes)
        } else {
            class
        };
        features.push(row);
        labels.push(label);
    }

    let mut data = TabularData::new(features, labels, spec.classes)
        .expect("generator output is structurally valid");
    data.normalize_unit();
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_specs() {
        for d in Dataset::ALL {
            let spec = d.spec();
            let data = generate(d, 7);
            assert_eq!(data.len(), spec.samples, "{}", spec.name);
            assert_eq!(data.feature_count(), spec.features, "{}", spec.name);
            assert_eq!(data.classes, spec.classes, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Dataset::RedWine, 42);
        let b = generate(Dataset::RedWine, 42);
        assert_eq!(a, b);
        let c = generate(Dataset::RedWine, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn features_are_normalized() {
        let data = generate(Dataset::Cardio, 1);
        for row in &data.features {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn classes_are_roughly_balanced() {
        let data = generate(Dataset::Pendigits, 3);
        let counts = data.class_counts();
        let expect = data.len() / data.classes;
        for (c, &n) in counts.iter().enumerate() {
            // Label noise moves a few samples between classes.
            assert!(
                (n as i64 - expect as i64).unsigned_abs() < (expect / 3) as u64,
                "class {c}: {n} vs {expect}"
            );
        }
    }

    #[test]
    fn nearest_centroid_separability_ordering() {
        // A 1-NN-to-class-centroid probe should find Breast Cancer far
        // easier than WhiteWine, mirroring the real datasets.
        fn centroid_accuracy(d: Dataset) -> f64 {
            let data = generate(d, 11);
            let spec = d.spec();
            let mut centroids = vec![vec![0.0f64; spec.features]; spec.classes];
            let counts = data.class_counts();
            for (row, &l) in data.features.iter().zip(&data.labels) {
                for (c, &v) in row.iter().enumerate() {
                    centroids[l][c] += f64::from(v);
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                for v in centroid.iter_mut() {
                    *v /= counts[c].max(1) as f64;
                }
            }
            let mut hits = 0usize;
            for (row, &l) in data.features.iter().zip(&data.labels) {
                let best = centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da: f64 = row
                            .iter()
                            .zip(*a)
                            .map(|(&x, &c)| (f64::from(x) - c).powi(2))
                            .sum();
                        let db: f64 = row
                            .iter()
                            .zip(*b)
                            .map(|(&x, &c)| (f64::from(x) - c).powi(2))
                            .sum();
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("at least one class");
                hits += usize::from(best == l);
            }
            hits as f64 / data.len() as f64
        }
        let bc = centroid_accuracy(Dataset::BreastCancer);
        let ww = centroid_accuracy(Dataset::WhiteWine);
        assert!(bc > 0.9, "BC centroid accuracy {bc}");
        assert!(ww < 0.7, "WW centroid accuracy {ww}");
        assert!(bc > ww + 0.2);
    }
}
