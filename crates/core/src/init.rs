//! Doped initial populations (paper §IV-A).
//!
//! "To facilitate the convergence of the evolutionary algorithm ... we
//! create an initial population of semi-random chromosomes ... doped
//! with a small percentage (~10%) of nearly non-approximate solutions,
//! exploring solutions of high accuracy at the early stages of
//! evolution."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pe_mlp::{AxMlp, FixedMlp, QuantMatrix};

use crate::genome::GenomeSpec;

/// Build the doped seed genomes for [`pe_nsga::Nsga2::run_seeded`].
///
/// `doped_count` copies of the baseline-derived pow2 network are
/// injected: the first verbatim, the rest with a few random mask bits
/// cleared (light, accuracy-preserving perturbations that diversify the
/// high-accuracy end of the initial population). The remaining
/// population slots are filled randomly by the optimizer itself.
#[must_use]
pub fn doped_seeds(
    spec: &GenomeSpec,
    baseline: &FixedMlp,
    max_shift: u8,
    bias_bits: u32,
    doped_count: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    doped_seeds_calibrated(
        spec,
        baseline,
        max_shift,
        bias_bits,
        doped_count,
        seed,
        &QuantMatrix::default(),
    )
}

/// [`doped_seeds`] with data-calibrated pow2 conversion (see
/// [`AxMlp::from_fixed_calibrated`]): bias error-feedback makes the
/// doped seeds genuinely "nearly non-approximate" on multi-class
/// datasets.
#[must_use]
pub fn doped_seeds_calibrated(
    spec: &GenomeSpec,
    baseline: &FixedMlp,
    max_shift: u8,
    bias_bits: u32,
    doped_count: usize,
    seed: u64,
    calibration_rows: &QuantMatrix,
) -> Vec<Vec<u32>> {
    doped_seeds_refined(
        spec,
        baseline,
        max_shift,
        bias_bits,
        doped_count,
        seed,
        calibration_rows,
        None,
    )
}

/// [`doped_seeds_calibrated`] plus greedy [`refine_doped`] sweeps
/// against the given labelled rows; pass `None` to skip refinement.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn doped_seeds_refined(
    spec: &GenomeSpec,
    baseline: &FixedMlp,
    max_shift: u8,
    bias_bits: u32,
    doped_count: usize,
    seed: u64,
    calibration_rows: &QuantMatrix,
    refine: Option<(&QuantMatrix, &[usize])>,
) -> Vec<Vec<u32>> {
    let mut doped: AxMlp =
        AxMlp::from_fixed_calibrated(baseline, max_shift, bias_bits, calibration_rows);
    if let Some((rows, labels)) = refine {
        doped = refine_doped(&doped, rows, labels, max_shift, bias_bits, 2);
    }
    let base_genes = spec.encode(&doped);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x27d4_eb2f_1656_67c5);
    let mut seeds = Vec::with_capacity(doped_count + 3);
    for i in 0..doped_count {
        let mut genes = base_genes.clone();
        if i > 0 {
            perturb_masks(spec, &mut genes, &mut rng);
        }
        seeds.push(genes);
    }
    // Anchor the *sparse* end of the front too: the all-masks-zero
    // chromosome (a constant classifier — on imbalanced datasets this
    // already sits near the majority-class accuracy at near-zero area)
    // plus variants keeping a couple of random connections. Together
    // with the doped seeds this spans the whole trade-off from
    // generation 0.
    let mut sparse = base_genes.clone();
    zero_all_masks(spec, &mut sparse);
    seeds.push(sparse.clone());
    for _ in 0..2 {
        let mut genes = sparse.clone();
        restore_random_masks(spec, &base_genes, &mut genes, 2, &mut rng);
        seeds.push(genes);
    }
    seeds
}

/// Zero every mask gene in place.
fn zero_all_masks(spec: &GenomeSpec, genes: &mut [u32]) {
    for_each_mask_gene(spec, |idx| genes[idx] = 0);
}

/// Restore `count` random mask genes to their doped values.
fn restore_random_masks(
    spec: &GenomeSpec,
    base: &[u32],
    genes: &mut [u32],
    count: usize,
    rng: &mut StdRng,
) {
    let mut mask_indices = Vec::new();
    for_each_mask_gene(spec, |idx| mask_indices.push(idx));
    for _ in 0..count {
        if mask_indices.is_empty() {
            break;
        }
        let pick = mask_indices[rng.gen_range(0..mask_indices.len())];
        genes[pick] = base[pick];
    }
}

/// Visit the genome index of every mask gene.
fn for_each_mask_gene(spec: &GenomeSpec, mut visit: impl FnMut(usize)) {
    let mut idx = 0usize;
    for layer in spec.layers() {
        for _ in 0..layer.neurons {
            for _ in 0..layer.fan_in {
                visit(idx);
                idx += 3;
            }
            idx += 1;
        }
    }
}

/// Greedy coordinate-descent refinement of a doped network: sweeps
/// every weight's pow2 exponent (±1), sign, and every bias (exponential
/// step sizes), keeping changes that improve training-subsample
/// accuracy. This stands in for the paper's vastly larger GA budget
/// (26M chromosome evaluations on an EPYC server, Table III): after a
/// couple of sweeps the doped seed is genuinely "nearly
/// non-approximate" even on the multi-class datasets, and the NSGA-II
/// run then explores the accuracy/area trade-off around it.
#[must_use]
pub fn refine_doped(
    mlp: &pe_mlp::AxMlp,
    rows: &QuantMatrix,
    labels: &[usize],
    max_shift: u8,
    bias_bits: u32,
    passes: usize,
) -> pe_mlp::AxMlp {
    let mut best = mlp.clone();
    if rows.is_empty() {
        return best;
    }
    let bias_lo = -(1i64 << (bias_bits - 1)) as i32;
    let bias_hi = ((1i64 << (bias_bits - 1)) - 1) as i32;
    let mut best_acc = best.accuracy(rows, labels);

    for _ in 0..passes {
        let improved_before = best_acc;
        let layer_count = best.layers.len();
        for li in 0..layer_count {
            for ni in 0..best.layers[li].neurons.len() {
                for wi in 0..best.layers[li].neurons[ni].weights.len() {
                    let current = best.layers[li].neurons[ni].weights[wi];
                    if current.mask == 0 {
                        continue;
                    }
                    let mut candidates = Vec::with_capacity(3);
                    if current.shift > 0 {
                        candidates.push(pe_mlp::AxWeight {
                            shift: current.shift - 1,
                            ..current
                        });
                    }
                    if current.shift < max_shift {
                        candidates.push(pe_mlp::AxWeight {
                            shift: current.shift + 1,
                            ..current
                        });
                    }
                    candidates.push(pe_mlp::AxWeight {
                        negative: !current.negative,
                        ..current
                    });
                    for cand in candidates {
                        best.layers[li].neurons[ni].weights[wi] = cand;
                        let acc = best.accuracy(rows, labels);
                        if acc > best_acc {
                            best_acc = acc;
                        } else {
                            best.layers[li].neurons[ni].weights[wi] = current;
                        }
                    }
                }
                // Bias refinement with exponential steps.
                let mut step = 1i32 << (bias_bits.min(12) - 2);
                while step >= 1 {
                    for delta in [step, -step] {
                        let current = best.layers[li].neurons[ni].bias;
                        let cand = current.saturating_add(delta).clamp(bias_lo, bias_hi);
                        if cand == current {
                            continue;
                        }
                        best.layers[li].neurons[ni].bias = cand;
                        let acc = best.accuracy(rows, labels);
                        if acc > best_acc {
                            best_acc = acc;
                        } else {
                            best.layers[li].neurons[ni].bias = current;
                        }
                    }
                    step /= 2;
                }
            }
        }
        if best_acc <= improved_before {
            break;
        }
    }
    best
}

/// Clear a handful of random mask bits in place (~2% of mask genes get
/// one bit dropped).
fn perturb_masks(spec: &GenomeSpec, genes: &mut [u32], rng: &mut StdRng) {
    let mut idx = 0usize;
    for layer in spec.layers() {
        for _ in 0..layer.neurons {
            for _ in 0..layer.fan_in {
                let mask_idx = idx;
                idx += 3; // skip s and k
                if rng.gen_bool(0.02) && genes[mask_idx] != 0 {
                    let bit = rng.gen_range(0..layer.input_bits);
                    genes[mask_idx] &= !(1u32 << bit);
                }
            }
            idx += 1; // bias gene
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::LayerGenomeSpec;
    use pe_mlp::{FixedLayer, QReluCfg};

    fn baseline() -> FixedMlp {
        FixedMlp {
            input_bits: 4,
            layers: vec![
                FixedLayer {
                    weights: vec![vec![40, -17, 3], vec![-2, 80, 9]],
                    biases: vec![5, -11],
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 3,
                    }),
                },
                FixedLayer {
                    weights: vec![vec![10, -10], vec![-5, 5]],
                    biases: vec![0, 2],
                    qrelu: None,
                },
            ],
        }
    }

    fn spec() -> GenomeSpec {
        GenomeSpec::new(
            vec![
                LayerGenomeSpec {
                    fan_in: 3,
                    neurons: 2,
                    input_bits: 4,
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 3,
                    }),
                },
                LayerGenomeSpec {
                    fan_in: 2,
                    neurons: 2,
                    input_bits: 8,
                    qrelu: None,
                },
            ],
            8,
            12,
        )
    }

    #[test]
    fn seeds_have_correct_shape_and_count() {
        // doped_count doped seeds plus 3 sparse anchors.
        let seeds = doped_seeds(&spec(), &baseline(), 6, 12, 5, 3);
        assert_eq!(seeds.len(), 5 + 3);
        for s in &seeds {
            assert_eq!(s.len(), spec().gene_count());
        }
        // The sparse anchor has every mask gene zeroed.
        let sparse = &seeds[5];
        let decoded = spec().decode(sparse);
        for layer in &decoded.layers {
            for n in &layer.neurons {
                // At most the 2 restored connections are active across
                // the pure-sparse seed (index 5): none.
                assert!(n.weights.iter().all(|w| w.mask == 0));
            }
        }
    }

    #[test]
    fn first_seed_is_the_unperturbed_doped_network() {
        let s = spec();
        let seeds = doped_seeds(&s, &baseline(), 6, 12, 3, 3);
        let expected = s.encode(&pe_mlp::AxMlp::from_fixed(&baseline(), 6, 12));
        assert_eq!(seeds[0], expected);
    }

    #[test]
    fn perturbed_seeds_only_lose_mask_bits() {
        let s = spec();
        let seeds = doped_seeds(&s, &baseline(), 6, 12, 10, 9);
        let base = &seeds[0];
        for seed in &seeds[1..] {
            for (i, (&a, &b)) in seed.iter().zip(base).enumerate() {
                if a != b {
                    // Differences only at mask genes, only clearing bits.
                    assert_eq!(a & !b, 0, "gene {i} gained bits: {b:#b} -> {a:#b}");
                }
            }
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let s = spec();
        let a = doped_seeds(&s, &baseline(), 6, 12, 4, 42);
        let b = doped_seeds(&s, &baseline(), 6, 12, 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_decode_within_bounds() {
        let s = spec();
        for seed in doped_seeds(&s, &baseline(), 6, 12, 6, 1) {
            for (g, b) in seed.iter().zip(s.bounds()) {
                assert!(g < b, "gene {g} out of bound {b}");
            }
            let _ = s.decode(&seed); // must not panic
        }
    }
}
