//! Configuration of the hardware-aware GA training flow.

use serde::{Deserialize, Serialize};

use pe_nsga::NsgaConfig;

use crate::fitness::AreaObjective;

/// Hyperparameters of the DATE'24 training framework.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxTrainConfig {
    /// Weight representation width `n`: pow2 exponents range over
    /// `[0, n-1)` (Eq. (1); `n = 8` gives `k ∈ 0..=6`).
    pub weight_bits: u32,
    /// Width of the quantized bias genes in bits (two's complement).
    pub bias_bits: u32,
    /// Primary-input width in bits (4 in the paper).
    pub input_bits: u32,
    /// Hidden QReLU activation width in bits (8 in the paper).
    pub activation_bits: u32,
    /// Training-time accuracy-loss bound relative to the exact baseline
    /// (the paper imposes 10%, §IV-A); candidates below
    /// `baseline − bound` are treated as constraint violators.
    pub max_accuracy_loss: f64,
    /// Fraction of the initial population doped with nearly
    /// non-approximate solutions (~10% in the paper, §IV-A).
    pub doping_fraction: f64,
    /// Upper bound on training samples used per fitness evaluation
    /// (`None` = all). Deterministically subsampled; keeps Pendigits-
    /// scale fitness affordable exactly as large-scale GA practice does.
    pub fitness_subsample: Option<usize>,
    /// Which area model the GA minimizes (see [`AreaObjective`]; the
    /// `ablation_objective` experiment compares both).
    #[serde(default)]
    pub objective: AreaObjective,
    /// NSGA-II settings (population, generations, operator rates, seed).
    pub nsga: NsgaConfig,
}

impl Default for AxTrainConfig {
    fn default() -> Self {
        Self {
            weight_bits: 8,
            bias_bits: 12,
            input_bits: 4,
            activation_bits: 8,
            max_accuracy_loss: 0.10,
            doping_fraction: 0.10,
            fitness_subsample: Some(2000),
            objective: AreaObjective::default(),
            nsga: NsgaConfig::default(),
        }
    }
}

impl AxTrainConfig {
    /// Largest pow2 exponent a weight gene may take (`n − 2`).
    #[must_use]
    pub fn max_shift(&self) -> u8 {
        (self.weight_bits - 2) as u8
    }

    /// A scaled-down budget for tests and CI-speed benches.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            fitness_subsample: Some(400),
            nsga: NsgaConfig {
                population: 24,
                generations: 20,
                seed,
                ..NsgaConfig::default()
            },
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = AxTrainConfig::default();
        assert_eq!(c.weight_bits, 8);
        assert_eq!(c.input_bits, 4);
        assert_eq!(c.activation_bits, 8);
        assert_eq!(c.max_shift(), 6);
        assert!((c.max_accuracy_loss - 0.10).abs() < 1e-12);
        assert!((c.doping_fraction - 0.10).abs() < 1e-12);
        assert!((c.nsga.crossover_prob - 0.7).abs() < 1e-12);
    }
}
