//! Pareto analysis: from the GA's estimated front to the true
//! hardware-evaluated front (paper Fig. 2, right half).
//!
//! The GA optimizes against the fast FA-count area estimate; the flow
//! then pushes every front member through the hardware model (our
//! stand-in for synthesis + power analysis) and re-evaluates accuracy
//! on the held-out test split, keeping only the designs that remain
//! non-dominated in (test error, synthesized area).

use serde::{Deserialize, Serialize};

use pe_hw::{CostModel, HardwareReport};
use pe_mlp::{ax_to_hardware, AxMlp, FixedMlp};

/// The network realization behind a [`DesignPoint`].
///
/// Every [`SearchEngine`](crate::engine::SearchEngine) reports its
/// designs as `DesignPoint`s; this enum captures the structurally
/// different network families the engines produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DesignNetwork {
    /// The DATE'24 approximate MLP (power-of-two weights + bit masks) —
    /// the NSGA-II engine's native form.
    Ax(AxMlp),
    /// A fixed-point network with per-layer accumulator truncation —
    /// the TC'23 / TCAD'23 / plain-GA families.
    Truncated {
        /// The integer network.
        mlp: FixedMlp,
        /// Dropped low accumulator bits per layer (`0` = exact).
        trunc_bits: Vec<u32>,
    },
    /// A stochastic-computing design; only the evaluated metrics are
    /// retained (see `pe_baselines::ScMlp` for the generator).
    Stochastic,
}

impl DesignNetwork {
    /// The approximate MLP, when this design is one.
    #[must_use]
    pub fn ax(&self) -> Option<&AxMlp> {
        match self {
            DesignNetwork::Ax(mlp) => Some(mlp),
            _ => None,
        }
    }
}

/// One fully evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The network realization.
    pub network: DesignNetwork,
    /// Accuracy on the training split (the search's view).
    pub train_accuracy: f64,
    /// Accuracy on the held-out test split (reported, as in the paper).
    pub test_accuracy: f64,
    /// Search-time area estimate, in the units of the configured
    /// [`crate::fitness::AreaObjective`] for the GA engines (gate
    /// equivalents by default) and the evaluated cm² for post-training
    /// engines.
    pub estimated_area: f64,
    /// Hardware evaluation at the design's operating supply.
    pub report: HardwareReport,
}

impl DesignPoint {
    /// `true` if `self` Pareto-dominates `other` in
    /// (test error, synthesized area).
    #[must_use]
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let (e1, a1) = (1.0 - self.test_accuracy, self.report.area_cm2);
        let (e2, a2) = (1.0 - other.test_accuracy, other.report.area_cm2);
        (e1 <= e2 && a1 <= a2) && (e1 < e2 || a1 < a2)
    }
}

/// Evaluate a set of candidate networks in hardware through a
/// [`CostModel`] and keep the true Pareto front.
///
/// The model defines the costing conditions (technology, supply
/// voltage): reports land at the model's scenario, so a 0.6 V study
/// produces a 0.6 V front. Returns the front sorted by ascending area.
/// `name_prefix` labels the costed circuits (e.g. the dataset name).
#[must_use]
pub fn true_pareto_front(
    candidates: Vec<DesignCandidate>,
    model: &dyn CostModel,
    name_prefix: &str,
) -> Vec<DesignPoint> {
    let mut points: Vec<DesignPoint> = candidates
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            // Front members are sibling designs sharing most of their
            // neurons, so the models' per-neuron memoization costs each
            // distinct neuron once (and fast ≡ exact is
            // property-tested, so which model backs this is a
            // performance choice, not a semantic one).
            let spec = ax_to_hardware(&c.mlp, format!("{name_prefix}_p{i}"));
            let report = model.report(&spec);
            DesignPoint {
                network: DesignNetwork::Ax(c.mlp),
                train_accuracy: c.train_accuracy,
                test_accuracy: c.test_accuracy,
                estimated_area: c.estimated_area,
                report,
            }
        })
        .collect();

    let keep: Vec<bool> = points
        .iter()
        .map(|p| !points.iter().any(|q| q.dominates(p)))
        .collect();
    let mut front: Vec<DesignPoint> = points
        .drain(..)
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect();
    front.sort_by(|a, b| {
        a.report
            .area_cm2
            .partial_cmp(&b.report.area_cm2)
            .expect("areas are finite")
    });
    front.dedup_by(|a, b| {
        (a.report.area_cm2 - b.report.area_cm2).abs() < 1e-12
            && (a.test_accuracy - b.test_accuracy).abs() < 1e-12
    });
    front
}

/// A candidate entering hardware analysis (accuracies already known).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignCandidate {
    /// The approximate network.
    pub mlp: AxMlp,
    /// Training-split accuracy.
    pub train_accuracy: f64,
    /// Test-split accuracy.
    pub test_accuracy: f64,
    /// GA-time area estimate (objective units).
    pub estimated_area: f64,
}

/// Pick the design the paper reports in Table II: the smallest-area
/// front member whose test accuracy is within `max_loss` of
/// `baseline_accuracy`.
///
/// Returns `None` if no front member meets the bound.
#[must_use]
pub fn select_within_loss(
    front: &[DesignPoint],
    baseline_accuracy: f64,
    max_loss: f64,
) -> Option<&DesignPoint> {
    select_within_budgets(front, baseline_accuracy, max_loss, None)
}

/// [`select_within_loss`] under an additional power budget: the
/// smallest-area front member within the accuracy-loss bound **and**
/// whose evaluated power fits `power_budget_mw` (inclusive boundary,
/// matching the Fig. 5 zone classifier). `None` as the budget imposes
/// no power constraint; `None` as the result means the feasible set is
/// empty — a real outcome for tight budgets, which callers must
/// surface rather than paper over.
#[must_use]
pub fn select_within_budgets(
    front: &[DesignPoint],
    baseline_accuracy: f64,
    max_loss: f64,
    power_budget_mw: Option<f64>,
) -> Option<&DesignPoint> {
    front
        .iter()
        .filter(|p| p.test_accuracy + 1e-12 >= baseline_accuracy - max_loss)
        .filter(|p| power_budget_mw.is_none_or(|budget| p.report.power_mw <= budget))
        .min_by(|a, b| {
            a.report
                .area_cm2
                .partial_cmp(&b.report.area_cm2)
                .expect("areas are finite")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_hw::{CostScenario, ExactCostModel};
    use pe_mlp::{AxLayer, AxNeuron, AxWeight};

    fn model() -> ExactCostModel {
        ExactCostModel::new(CostScenario::default())
    }

    fn tiny_mlp(mask: u16) -> AxMlp {
        // Three identical summands: every kept mask bit forms a 3-high
        // column, so area strictly grows with the mask's popcount.
        AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask,
                                shift: 0,
                                negative: false
                            };
                            3
                        ],
                        bias: 0,
                    },
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0,
                                shift: 0,
                                negative: false
                            };
                            3
                        ],
                        bias: 5,
                    },
                ],
                qrelu: None,
            }],
        }
    }

    fn candidate(mask: u16, test_acc: f64) -> DesignCandidate {
        DesignCandidate {
            mlp: tiny_mlp(mask),
            train_accuracy: test_acc,
            test_accuracy: test_acc,
            estimated_area: f64::from(mask.count_ones()),
        }
    }

    #[test]
    fn dominated_points_are_filtered() {
        let elab = model();
        // Full mask with *lower* accuracy is dominated by the cheaper,
        // more accurate pruned design.
        let front = true_pareto_front(
            vec![candidate(0b1111, 0.80), candidate(0b0011, 0.90)],
            &elab,
            "t",
        );
        assert_eq!(front.len(), 1);
        assert!((front[0].test_accuracy - 0.90).abs() < 1e-12);
    }

    #[test]
    fn trade_off_points_both_survive() {
        let elab = model();
        let front = true_pareto_front(
            vec![candidate(0b1111, 0.95), candidate(0b0001, 0.85)],
            &elab,
            "t",
        );
        assert_eq!(front.len(), 2);
        // Sorted by ascending area.
        assert!(front[0].report.area_cm2 <= front[1].report.area_cm2);
        assert!(front[0].test_accuracy < front[1].test_accuracy);
    }

    #[test]
    fn selection_honors_the_loss_budget() {
        let elab = model();
        let front = true_pareto_front(
            vec![
                candidate(0b1111, 0.95),
                candidate(0b0011, 0.92),
                candidate(0b0001, 0.70),
            ],
            &elab,
            "t",
        );
        let pick = select_within_loss(&front, 0.95, 0.05).expect("a design qualifies");
        assert!(
            (pick.test_accuracy - 0.92).abs() < 1e-12,
            "picked {}",
            pick.test_accuracy
        );
        assert!(select_within_loss(&front, 0.95, 0.001).is_some()); // the 0.95 one
        assert!(select_within_loss(&front, 2.0, 0.0).is_none());
    }

    #[test]
    fn selection_on_an_empty_front_is_none() {
        assert!(select_within_loss(&[], 0.9, 0.05).is_none());
        // Degenerate inputs stay well-defined too.
        assert!(select_within_loss(&[], 0.0, 1.0).is_none());
    }

    #[test]
    fn selection_when_every_candidate_exceeds_the_budget_is_none() {
        let elab = model();
        let front = true_pareto_front(
            vec![candidate(0b1111, 0.80), candidate(0b0001, 0.60)],
            &elab,
            "t",
        );
        assert_eq!(front.len(), 2);
        // Baseline 0.95, budget 5%: the floor is 0.90 and nothing reaches it.
        assert!(select_within_loss(&front, 0.95, 0.05).is_none());
    }

    #[test]
    fn selection_keeps_an_exact_tie_on_the_loss_boundary() {
        let elab = model();
        // 0.90 sits exactly on baseline − budget; the cheaper design at
        // the boundary must win over the pricier, more accurate one.
        let front = true_pareto_front(
            vec![candidate(0b1111, 0.95), candidate(0b0001, 0.90)],
            &elab,
            "t",
        );
        assert_eq!(front.len(), 2);
        let pick = select_within_loss(&front, 0.95, 0.05).expect("boundary design qualifies");
        assert!(
            (pick.test_accuracy - 0.90).abs() < 1e-12,
            "picked {}",
            pick.test_accuracy
        );
        assert!(pick.report.area_cm2 <= front[1].report.area_cm2);
    }

    #[test]
    fn power_budget_filters_the_selection() {
        let elab = model();
        // Full mask: big and accurate. Narrow mask: small and cheap.
        let front = true_pareto_front(
            vec![candidate(0b1111, 0.95), candidate(0b0001, 0.91)],
            &elab,
            "t",
        );
        assert_eq!(front.len(), 2);
        let (small, big) = (&front[0], &front[1]);
        assert!(small.report.power_mw < big.report.power_mw);

        // Unbudgeted: the small design already wins on area.
        let pick = select_within_budgets(&front, 0.95, 0.05, None).expect("selects");
        assert_eq!(pick.report.area_cm2, small.report.area_cm2);

        // A budget between the two powers forces the small design even
        // under a loss bound the big one also meets.
        let budget = (small.report.power_mw + big.report.power_mw) / 2.0;
        let pick = select_within_budgets(&front, 0.95, 0.05, Some(budget)).expect("selects");
        assert_eq!(pick.report.area_cm2, small.report.area_cm2);

        // Exactly on the boundary: inclusive, the design still counts.
        let pick = select_within_budgets(&front, 0.95, 0.05, Some(small.report.power_mw))
            .expect("boundary is inclusive");
        assert_eq!(pick.report.area_cm2, small.report.area_cm2);
    }

    #[test]
    fn power_budget_with_empty_feasible_set_is_none() {
        let elab = model();
        let front = true_pareto_front(
            vec![candidate(0b1111, 0.95), candidate(0b0001, 0.91)],
            &elab,
            "t",
        );
        assert_eq!(front.len(), 2);
        // A budget below every design's draw: nothing qualifies, and
        // the selection reports that honestly.
        let tiny = front[0].report.power_mw / 1e6;
        assert!(select_within_budgets(&front, 0.95, 0.05, Some(tiny)).is_none());
        // Both constraints empty at once stays well-defined.
        assert!(select_within_budgets(&front, 2.0, 0.0, Some(tiny)).is_none());
        assert!(select_within_budgets(&[], 0.9, 0.05, Some(1.0)).is_none());
    }

    #[test]
    fn network_accessor_distinguishes_families() {
        let ax = DesignNetwork::Ax(tiny_mlp(1));
        assert!(ax.ax().is_some());
        let fixed = DesignNetwork::Truncated {
            mlp: pe_mlp::FixedMlp {
                input_bits: 4,
                layers: vec![],
            },
            trunc_bits: vec![],
        };
        assert!(fixed.ax().is_none());
        assert!(DesignNetwork::Stochastic.ax().is_none());
    }
}
