//! The population-level neuron-column cache.
//!
//! A hidden neuron's post-QReLU output **column** over the (fixed)
//! fitness dataset is a pure function of its decoded spec — weights,
//! bias, layer input width, QReLU — plus, for deeper layers, the
//! identity of the previous layer's column set. NSGA-II's elitist
//! (μ+λ) selection and low mutation rates mean offspring share most
//! hidden neurons with their parents, so without a cache the same
//! columns are recomputed thousands of times per study.
//!
//! [`NeuronColumnCache`] memoizes those columns in an N-way **sharded**
//! set of bounded [`pe_arith::BoundedCache`]s shared across the whole
//! population and every evaluation thread (interior mutability behind
//! per-shard mutexes, so one cache serves `&self` evaluators):
//!
//! * **hidden columns** — `Arc<[u8]>` post-QReLU activations. Each key
//!   carries a **precomputed 64-bit fingerprint** over its entire
//!   coordinate set — `(layer, input-signature, input_bits, qrelu,
//!   device, position)` plus the full neuron spec — computed *once*
//!   per probe: it selects the shard (top bits) and is the only thing
//!   the shard map hashes, so a lookup no longer re-hashes the key per
//!   map operation. The `device`/`position` coordinates separate
//!   Monte-Carlo variation trials and the position-dependent
//!   per-device draws. Each entry carries its full neuron spec, which
//!   is compared on every hash hit: a fingerprint collision is simply
//!   treated as a miss, so hashing can never alias two different
//!   neurons.
//! * **input signatures** — deeper layers see the previous layer's
//!   columns as input. Signatures are *interned*, not hashed-and-hoped:
//!   a full `(layer, previous-signature, qrelu, neurons)` key maps to a
//!   unique id from a monotone counter, and ids are never reused even when the
//!   intern table evicts — two different column sets can never alias.
//!   The intern table is probed once per layer (not per neuron), so it
//!   stays a single mutex.
//!
//! The shard count defaults to [`DEFAULT_SHARDS`], is overridable
//! per-process with the `PE_CACHE_SHARDS` environment variable or
//! per-cache with [`NeuronColumnCache::with_shards`], and is always a
//! power of two in `1..=256`. Per-shard hit/miss/contention counters
//! ([`ShardStats`], aggregated in [`ColumnCacheStats`]) make lock
//! pressure observable; `contended` counts probes that found their
//! shard lock held.
//!
//! Output (argmax) layers are deliberately **not** cached: their
//! accumulators depend on every hidden column at once, so any upstream
//! mutation would invalidate them wholesale, and exact genome repeats
//! are already absorbed by the genome memo in
//! [`crate::eval::CachedEvaluator`]; the columnar kernels recompute
//! them directly into scratch.
//!
//! Caching is an optimization, never a semantic: every value is a pure
//! function of its full key, so any mix of hits, misses, evictions,
//! shard counts and thread interleavings yields byte-identical
//! evaluations — which the sharded-cache determinism test pins down.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, TryLockError};

use pe_arith::cache::FxHasher;
use pe_arith::BoundedCache;
use pe_mlp::{AxNeuron, QReluCfg};

/// The signature of the *dataset itself* — the input of layer 0.
pub const ROOT_SIGNATURE: u64 = 0;

/// Shard count used when neither `PE_CACHE_SHARDS` nor
/// [`NeuronColumnCache::with_shards`] says otherwise.
pub const DEFAULT_SHARDS: usize = 8;

/// Snapshot of a [`NeuronColumnCache`]'s counters, aggregated over all
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnCacheStats {
    /// Neuron columns served from the cache (lifetime).
    pub hits: u64,
    /// Neuron columns actually computed (lifetime).
    pub misses: u64,
    /// Columns currently resident.
    pub entries: usize,
    /// Probes that found their shard lock already held (lifetime).
    pub contended: u64,
    /// Number of shards the column map is split across.
    pub shards: usize,
}

/// One shard's counter snapshot ([`NeuronColumnCache::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Columns this shard served from its map (lifetime).
    pub hits: u64,
    /// Columns computed after missing in this shard (lifetime).
    pub misses: u64,
    /// Probes that found this shard's lock already held (lifetime).
    pub contended: u64,
    /// Columns currently resident in this shard.
    pub entries: usize,
}

/// Cache key of one hidden neuron's column. The layer index, input
/// signature, input width and QReLU pin down the neuron's entire input
/// context; `fingerprint` is the precomputed hash over *all* of that
/// plus the neuron spec itself — the only thing the shard map hashes
/// (the cached entry carries the full spec for exact confirmation).
/// The `device` slot separates Monte-Carlo variation trials: `0` is the
/// nominal device, `t + 1` is the perturbed device of trial `t`, whose
/// column differs through the trial's gain/offset draw and perturbed
/// inputs. Because a trial's per-device draw is keyed by the neuron's
/// *position* within its layer, variation devices also carry that
/// position: identical specs at different positions produce different
/// perturbed columns and must never alias. The nominal column is
/// position-independent, so nominal lookups use position `0` and
/// duplicate specs keep sharing one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HiddenKey {
    layer: u32,
    signature: u64,
    input_bits: u32,
    qrelu: QReluCfg,
    device: u32,
    position: u32,
    fingerprint: u64,
}

impl Hash for HiddenKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The fingerprint already covers every coordinate (and the
        // neuron spec); feeding only it means one hash computation per
        // probe instead of one per map operation. `PartialEq` still
        // compares all coordinates, and the entry's stored spec is
        // confirmed on every hit, so collisions stay harmless.
        state.write_u64(self.fingerprint);
    }
}

/// Intern key of one layer's column set (the next layer's input): the
/// producing layer's full configuration — neurons *and* the QReLU that
/// shaped its activations — on top of its own input signature. Like
/// [`HiddenKey`], the neurons themselves live in the entry (probing
/// must not clone a whole layer); the key carries their fingerprint
/// and every hit confirms the stored spec, so collisions cost a fresh
/// signature, never a wrong one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LayerKey {
    layer: u32,
    signature: u64,
    qrelu: QReluCfg,
    /// One [`FxHasher`] pass over the coordinates above plus the
    /// layer's neuron specs.
    fingerprint: u64,
}

impl Hash for LayerKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The fingerprint already covers every coordinate; equality
        // still compares them all, and the interned entry's stored
        // spec is confirmed on every hit.
        state.write_u64(self.fingerprint);
    }
}

/// One interned layer signature: the producing layer's neuron specs
/// (for exact key confirmation) plus the signature id itself.
type LayerEntry = (Arc<[AxNeuron]>, u64);

/// One cached column: the full neuron spec (for exact key
/// confirmation) plus the post-QReLU activation column itself.
type HiddenEntry = (Arc<AxNeuron>, Arc<[u8]>);

/// One lock-striped slice of the hidden-column map, with its own
/// counters so contention is observable per shard.
#[derive(Debug)]
struct Shard {
    map: Mutex<BoundedCache<HiddenKey, HiddenEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: Mutex::new(BoundedCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Lock this shard's map, counting the probe as contended when the
    /// lock is already held by another thread.
    fn lock(&self) -> MutexGuard<'_, BoundedCache<HiddenKey, HiddenEntry>> {
        match self.map.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.map
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            }
        }
    }
}

/// Round a requested shard count into the supported range: a power of
/// two in `1..=256` (rounding up).
fn clamp_shards(requested: usize) -> usize {
    requested.clamp(1, 256).next_power_of_two()
}

/// The process-wide default shard count: `PE_CACHE_SHARDS` (clamped to
/// a power of two in `1..=256`) or [`DEFAULT_SHARDS`]. Read once.
fn env_shards() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        std::env::var("PE_CACHE_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(DEFAULT_SHARDS, clamp_shards)
    })
}

/// Bounded, thread-shared, sharded memo of hidden-neuron output
/// columns. See the [module docs](self).
#[derive(Debug)]
pub struct NeuronColumnCache {
    /// Power-of-two shard array; a key's precomputed fingerprint picks
    /// the shard by its top bits.
    shards: Box<[Shard]>,
    layers: Mutex<BoundedCache<LayerKey, LayerEntry>>,
    /// Next intern id. Starts above [`ROOT_SIGNATURE`] and only grows,
    /// so a signature can never collide with the dataset's or a
    /// previously interned layer's.
    next_signature: AtomicU64,
}

impl NeuronColumnCache {
    /// A cache bounded to roughly `capacity` columns per eviction
    /// generation, split across the process-default shard count
    /// (`PE_CACHE_SHARDS` or [`DEFAULT_SHARDS`]).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, env_shards())
    }

    /// A cache bounded to roughly `capacity` columns total, split
    /// across an explicit shard count (clamped to a power of two in
    /// `1..=256`). Shard count is a concurrency knob only: any count
    /// produces byte-identical evaluations.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = clamp_shards(shards);
        let per_shard = (capacity / shards).max(1);
        Self {
            shards: (0..shards).map(|_| Shard::new(per_shard)).collect(),
            layers: Mutex::new(BoundedCache::new(capacity)),
            next_signature: AtomicU64::new(ROOT_SIGNATURE + 1),
        }
    }

    /// A cache sized for a dataset of `samples` rows: the bound targets
    /// a fixed memory budget (tens of MB at paper-scale subsamples),
    /// clamped to a useful range.
    #[must_use]
    pub fn for_samples(samples: usize) -> Self {
        Self::new(Self::budget_capacity(samples))
    }

    /// [`NeuronColumnCache::for_samples`] with an explicit shard count
    /// (the engine-level override used by determinism tests).
    #[must_use]
    pub fn for_samples_with_shards(samples: usize, shards: usize) -> Self {
        Self::with_shards(Self::budget_capacity(samples), shards)
    }

    /// Column budget for a dataset of `samples` rows.
    fn budget_capacity(samples: usize) -> usize {
        // ~32 MiB of u8 columns per hot generation (double that
        // transiently across generations).
        const BUDGET_BYTES: usize = 32 << 20;
        (BUDGET_BYTES / samples.max(1)).clamp(128, 1 << 15)
    }

    fn lock<'a, K: std::hash::Hash + Eq + Clone, V: Clone>(
        cache: &'a Mutex<BoundedCache<K, V>>,
    ) -> MutexGuard<'a, BoundedCache<K, V>> {
        cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The shard a fingerprint maps to. Top bits: `FxHasher` finishes
    /// with a multiply, so the high bits are its best-mixed.
    fn shard_of(&self, fingerprint: u64) -> &Shard {
        let count = self.shards.len();
        let index = if count == 1 {
            0
        } else {
            (fingerprint >> (64 - count.trailing_zeros())) as usize
        };
        &self.shards[index]
    }

    /// Snapshot the aggregated counters.
    #[must_use]
    pub fn stats(&self) -> ColumnCacheStats {
        let mut stats = ColumnCacheStats {
            shards: self.shards.len(),
            ..ColumnCacheStats::default()
        };
        for shard in &self.shards {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            stats.contended += shard.contended.load(Ordering::Relaxed);
            stats.entries += shard.lock().len();
        }
        stats
    }

    /// Per-shard counter snapshots, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| ShardStats {
                hits: shard.hits.load(Ordering::Relaxed),
                misses: shard.misses.load(Ordering::Relaxed),
                contended: shard.contended.load(Ordering::Relaxed),
                entries: shard.lock().len(),
            })
            .collect()
    }

    /// A hidden neuron's post-QReLU column: served from the cache, or
    /// computed by `compute` and published. `compute` runs outside the
    /// cache lock; concurrent misses on one key may both compute (pure,
    /// identical results) and the last insert wins. A fingerprint
    /// collision (same key hash, different neuron) is handled as a
    /// miss whose result replaces the colliding entry. `device` is `0`
    /// for the nominal device and `t + 1` for Monte-Carlo variation
    /// trial `t` (whose draws reshape the column); `position` is the
    /// neuron's index within its layer and **must** be passed for every
    /// variation device, because the trial's gain/offset draw is keyed
    /// by it — identical specs at different positions get different
    /// draws, hence different columns. Nominal columns are
    /// position-independent: pass `0` there so duplicate specs share.
    #[allow(clippy::too_many_arguments)] // the six cache coordinates + payload
    pub fn hidden_column(
        &self,
        layer: usize,
        signature: u64,
        input_bits: u32,
        qrelu: QReluCfg,
        device: u32,
        position: u32,
        neuron: &AxNeuron,
        compute: impl FnOnce() -> Arc<[u8]>,
    ) -> Arc<[u8]> {
        // One hash pass over the whole coordinate set + neuron spec:
        // this fingerprint picks the shard *and* is the only input the
        // shard map's hasher sees.
        let mut hasher = FxHasher::default();
        (layer as u32, signature, input_bits, qrelu, device, position).hash(&mut hasher);
        neuron.hash(&mut hasher);
        let fingerprint = hasher.finish();
        let key = HiddenKey {
            layer: layer as u32,
            signature,
            input_bits,
            qrelu,
            device,
            position,
            fingerprint,
        };
        let shard = self.shard_of(fingerprint);
        if let Some((stored, col)) = shard.lock().get(&key) {
            if *stored == *neuron {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return col;
            }
        }
        let col = compute();
        shard.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .lock()
            .insert(key, (Arc::new(neuron.clone()), col.clone()));
        col
    }

    /// Intern a layer's column set, returning the signature that keys
    /// the *next* layer's columns. Equal `(layer, signature, qrelu,
    /// neurons)` always return the same id while resident; an evicted
    /// entry is re-interned under a **fresh** id (never reused),
    /// trading cache warmth for guaranteed exactness.
    pub fn layer_signature(
        &self,
        layer: usize,
        signature: u64,
        qrelu: QReluCfg,
        neurons: &[AxNeuron],
    ) -> u64 {
        let mut hasher = FxHasher::default();
        (layer as u32, signature, qrelu).hash(&mut hasher);
        neurons.hash(&mut hasher);
        let key = LayerKey {
            layer: layer as u32,
            signature,
            qrelu,
            fingerprint: hasher.finish(),
        };
        let mut layers = Self::lock(&self.layers);
        if let Some((stored, id)) = layers.get(&key) {
            if *stored == *neurons {
                return id;
            }
        }
        let id = self.next_signature.fetch_add(1, Ordering::Relaxed);
        layers.insert(key, (Arc::from(neurons), id));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_mlp::AxWeight;

    fn neuron(bias: i32) -> AxNeuron {
        AxNeuron {
            weights: vec![AxWeight {
                mask: 0b1111,
                shift: 1,
                negative: false,
            }],
            bias,
        }
    }

    const Q: QReluCfg = QReluCfg {
        out_bits: 8,
        shift: 0,
    };

    #[test]
    fn hidden_columns_are_memoized_by_full_key() {
        let cache = NeuronColumnCache::new(8);
        let n = neuron(3);
        let col: Arc<[u8]> = Arc::from(vec![1u8, 2, 3].as_slice());
        let a = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 0, 0, &n, || col.clone());
        // Second lookup: served from cache, compute must not run.
        let b = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 0, 0, &n, || unreachable!());
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A different bias is a different key.
        let c = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 0, 0, &neuron(4), || {
            Arc::from(vec![9u8].as_slice())
        });
        assert_eq!(&c[..], &[9]);
        // A different signature is a different key too.
        let d = cache.hidden_column(0, 17, 4, Q, 0, 0, &n, || Arc::from(vec![7u8].as_slice()));
        assert_eq!(&d[..], &[7]);
        // And so is a different QReLU at the same layer/signature.
        let q2 = QReluCfg {
            out_bits: 4,
            shift: 2,
        };
        let e = cache.hidden_column(0, ROOT_SIGNATURE, 4, q2, 0, 0, &n, || {
            Arc::from(vec![5u8].as_slice())
        });
        assert_eq!(&e[..], &[5]);
        // A Monte-Carlo trial device never aliases the nominal column.
        let f = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 1, 0, &n, || {
            Arc::from(vec![6u8].as_slice())
        });
        assert_eq!(&f[..], &[6]);
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn variation_devices_key_columns_by_neuron_position() {
        // Under a variation device the per-device draw depends on the
        // neuron's position, so the *same spec* at two positions must
        // occupy two entries — while the nominal device stays
        // position-blind and keeps sharing one column.
        let cache = NeuronColumnCache::new(8);
        let n = neuron(3);
        let p0 = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 1, 0, &n, || {
            Arc::from(vec![1u8].as_slice())
        });
        let p2 = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 1, 2, &n, || {
            Arc::from(vec![2u8].as_slice())
        });
        assert_eq!(&p0[..], &[1]);
        assert_eq!(
            &p2[..],
            &[2],
            "positions must not alias under a trial device"
        );
        // Both entries stay resident and are served independently.
        let p0_again = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 1, 0, &n, || unreachable!());
        let p2_again = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 1, 2, &n, || unreachable!());
        assert_eq!(p0, p0_again);
        assert_eq!(p2, p2_again);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn every_shard_count_serves_the_same_columns() {
        // Shard count is a concurrency knob, not a semantic: for any
        // count, every key hits after its first miss and distinct keys
        // never alias.
        for shards in [1usize, 2, 4, 16, 256] {
            let cache = NeuronColumnCache::with_shards(512, shards);
            assert_eq!(cache.stats().shards, shards);
            for bias in 0..32 {
                let expect = [bias as u8; 3];
                let col = cache.hidden_column(0, ROOT_SIGNATURE, 4, Q, 0, 0, &neuron(bias), || {
                    Arc::from(expect.as_slice())
                });
                assert_eq!(&col[..], &expect[..], "shards {shards} bias {bias}");
            }
            for bias in 0..32 {
                let expect = [bias as u8; 3];
                let col = cache.hidden_column(
                    0,
                    ROOT_SIGNATURE,
                    4,
                    Q,
                    0,
                    0,
                    &neuron(bias),
                    || unreachable!(),
                );
                assert_eq!(&col[..], &expect[..], "shards {shards} bias {bias}");
            }
            let stats = cache.stats();
            assert_eq!((stats.hits, stats.misses), (32, 32), "shards {shards}");
            assert_eq!(stats.entries, 32);
            // Per-shard counters reconcile with the aggregate.
            let per: Vec<ShardStats> = cache.shard_stats();
            assert_eq!(per.len(), shards);
            assert_eq!(per.iter().map(|s| s.hits).sum::<u64>(), stats.hits);
            assert_eq!(per.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
            assert_eq!(per.iter().map(|s| s.entries).sum::<usize>(), stats.entries);
        }
    }

    #[test]
    fn shard_counts_clamp_to_powers_of_two() {
        assert_eq!(NeuronColumnCache::with_shards(64, 0).stats().shards, 1);
        assert_eq!(NeuronColumnCache::with_shards(64, 3).stats().shards, 4);
        assert_eq!(NeuronColumnCache::with_shards(64, 1000).stats().shards, 256);
    }

    #[test]
    fn layer_signatures_are_stable_and_distinct() {
        let cache = NeuronColumnCache::new(8);
        let a = vec![neuron(1), neuron(2)];
        let b = vec![neuron(1), neuron(3)];
        let sig_a = cache.layer_signature(0, ROOT_SIGNATURE, Q, &a);
        let sig_b = cache.layer_signature(0, ROOT_SIGNATURE, Q, &b);
        assert_ne!(sig_a, sig_b);
        assert_ne!(sig_a, ROOT_SIGNATURE);
        assert_eq!(cache.layer_signature(0, ROOT_SIGNATURE, Q, &a), sig_a);
        // The same neurons fed by different inputs sign differently.
        assert_ne!(cache.layer_signature(0, sig_a, Q, &a), sig_a);
        // And the same neurons under a different QReLU produce a
        // different column set, so they must sign differently too.
        let q2 = QReluCfg {
            out_bits: 4,
            shift: 2,
        };
        assert_ne!(cache.layer_signature(0, ROOT_SIGNATURE, q2, &a), sig_a);
    }

    #[test]
    fn evicted_signatures_are_never_reused() {
        let cache = NeuronColumnCache::new(1); // evicts almost immediately
        let mut seen = std::collections::HashSet::new();
        for bias in 0..50 {
            let sig = cache.layer_signature(0, ROOT_SIGNATURE, Q, &[neuron(bias)]);
            assert!(seen.insert(sig), "signature {sig} reused");
        }
        // Re-interning an evicted key yields a fresh (still unique) id.
        let again = cache.layer_signature(0, ROOT_SIGNATURE, Q, &[neuron(0)]);
        assert!(seen.insert(again), "evicted signature was reused");
    }

    #[test]
    fn capacity_scales_with_sample_count() {
        // Tiny datasets get the upper clamp, huge ones the lower.
        let small = NeuronColumnCache::for_samples(16);
        let large = NeuronColumnCache::for_samples(10_000_000);
        // Both behave as caches; the clamp bounds are internal, so just
        // exercise them.
        let n = neuron(1);
        let _ = small.hidden_column(0, 0, 4, Q, 0, 0, &n, || Arc::from(vec![0u8].as_slice()));
        let _ = large.hidden_column(0, 0, 4, Q, 0, 0, &n, || Arc::from(vec![0u8].as_slice()));
        assert_eq!(small.stats().misses, 1);
        assert_eq!(large.stats().misses, 1);
        assert_eq!(small.stats().entries, 1);
    }
}
