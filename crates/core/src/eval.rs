//! The shared evaluation core: parallel, memoized batch evaluation of
//! GA populations.
//!
//! Virtually all of a study's wall-clock time is spent inside
//! [`IntProblem::evaluate`] — full-dataset [`pe_mlp::AxMlp`] inference
//! plus a gate-equivalent hardware costing per genome, tens of
//! thousands of times per run. This module turns that hot path into a
//! reusable substrate:
//!
//! * [`CachedEvaluator`] wraps any [`IntProblem`] and overrides
//!   [`IntProblem::evaluate_batch`] so each NSGA-II wave
//!   1. is looked up in a bounded genome-keyed memo
//!      ([`pe_arith::BoundedCache`]) — elitist (μ+λ) selection and
//!      low mutation rates re-submit many identical genomes across
//!      generations, and duplicates *within* a wave are computed once;
//!   2. fans the remaining misses out over a fixed-size
//!      `std::thread::scope` worker pool (no work stealing: workers pop
//!      indices from one atomic counter, results land in preallocated
//!      order-indexed slots), so
//!   3. evaluations return **in input order**, byte-identical to a
//!      serial loop, regardless of thread count.
//! * [`thread_budget`] is the one place the `PE_THREADS` knob is read —
//!   shared by [`Pipeline::run_many`](crate::Pipeline::run_many)'s
//!   dataset-level pool and the within-study batch evaluator, so
//!   `PE_THREADS=1` forces the whole flow sequential and `0`/unset uses
//!   one worker per core.
//!
//! Correctness rests on one contract: `evaluate` must be a pure,
//! deterministic function of the genes (see [`IntProblem::evaluate`]).
//! Under that contract neither caching nor parallelism can change any
//! result — only how much work is re-done — which is what keeps
//! `PE_THREADS=1` and `PE_THREADS=32` runs byte-identical.
//!
//! Cache effectiveness is observable: [`CachedEvaluator::stats`]
//! snapshots hit/miss counters, and the GA engines forward them as
//! [`ProgressEvent::EvalCache`](crate::ProgressEvent::EvalCache) once
//! per generation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use pe_arith::cache::FxBuildHasher;
use pe_arith::BoundedCache;
use pe_nsga::{Evaluation, IntProblem};

/// Worker-thread budget for parallel evaluation, from the `PE_THREADS`
/// environment variable: unset, unparsable or `0` means one worker per
/// available core; any other value is used verbatim. Always at least 1.
///
/// Both [`Pipeline::run_many`](crate::Pipeline::run_many) and
/// [`CachedEvaluator::new`] resolve their defaults through this single
/// helper, so one knob governs every pool in the flow.
#[must_use]
pub fn thread_budget() -> usize {
    match std::env::var("PE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        None | Some(0) => {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
        Some(t) => t,
    }
}

/// Default bound on memoized genomes per cache generation (a paper-size
/// genome is a few hundred `u32`s, so a full cache stays tens of MB).
pub const GENOME_CACHE_CAPACITY: usize = 1 << 14;

/// Snapshot of a [`CachedEvaluator`]'s cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Genome evaluations served from the memo (lifetime).
    pub hits: u64,
    /// Genome evaluations actually computed by the inner problem
    /// (lifetime).
    pub misses: u64,
    /// Genomes currently resident in the memo.
    pub entries: usize,
}

/// A memoizing, batch-parallel wrapper around any [`IntProblem`].
///
/// `evaluate` and `evaluate_batch` return exactly what the inner
/// problem would return (the inner `evaluate` must be pure and
/// deterministic); the wrapper only changes *how often* and *on how
/// many threads* the inner problem runs. See the [module
/// docs](self) for the design.
///
/// The wrapper can own its problem or borrow it (`IntProblem` is
/// implemented for `&T`), so a trainer can keep using the problem
/// after the GA finishes:
///
/// ```
/// use pe_nsga::{Evaluation, IntProblem};
/// use printed_axc::eval::CachedEvaluator;
///
/// struct Square;
/// impl IntProblem for Square {
///     fn bounds(&self) -> &[u32] {
///         &[100]
///     }
///     fn evaluate(&self, genes: &[u32]) -> Evaluation {
///         let x = f64::from(genes[0]);
///         Evaluation::feasible(vec![x * x])
///     }
/// }
///
/// let problem = Square;
/// let evaluator = CachedEvaluator::new(&problem);
/// let batch = evaluator.evaluate_batch(&[vec![3], vec![4], vec![3]]);
/// assert_eq!(batch[0], problem.evaluate(&[3]));
/// assert_eq!(batch[0], batch[2]);
/// assert_eq!(evaluator.stats().misses, 2); // the duplicate was free
/// ```
pub struct CachedEvaluator<P> {
    inner: P,
    cache: Mutex<BoundedCache<Vec<u32>, Evaluation>>,
    /// Genome evaluations served from the memo (including intra-batch
    /// duplicates). Tracked here rather than via the cache's own
    /// counters, which also see the wrapper's bookkeeping lookups.
    hits: AtomicU64,
    /// Genome evaluations computed by the inner problem.
    misses: AtomicU64,
    threads: usize,
}

impl<P: IntProblem + Sync> CachedEvaluator<P> {
    /// Wrap `inner` with the default cache capacity and the
    /// [`thread_budget`] worker count.
    pub fn new(inner: P) -> Self {
        Self::with_options(inner, GENOME_CACHE_CAPACITY, thread_budget())
    }

    /// Wrap `inner` with an explicit memo capacity (per cache
    /// generation) and worker count (`threads <= 1` evaluates inline,
    /// spawning nothing).
    pub fn with_options(inner: P, capacity: usize, threads: usize) -> Self {
        Self {
            inner,
            cache: Mutex::new(BoundedCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            threads: threads.max(1),
        }
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The worker count batches fan out over.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot the cache counters.
    pub fn stats(&self) -> EvalCacheStats {
        let entries = self.lock_cache().len();
        EvalCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, BoundedCache<Vec<u32>, Evaluation>> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Evaluate the deduplicated cache misses of a batch, in parallel
    /// when both the miss count and the thread budget allow it.
    /// `miss_rows[k]` is the batch index of the `k`-th unique miss;
    /// returns the evaluations in miss order.
    fn compute_misses(&self, genomes: &[Vec<u32>], miss_rows: &[usize]) -> Vec<Evaluation> {
        let workers = self.threads.min(miss_rows.len());
        if workers <= 1 {
            return miss_rows
                .iter()
                .map(|&i| self.inner.evaluate(&genomes[i]))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Evaluation>>> =
            miss_rows.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::SeqCst);
                    let Some(&i) = miss_rows.get(k) else {
                        break;
                    };
                    let e = self.inner.evaluate(&genomes[i]);
                    *slots[k]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(e);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every miss slot is filled before the scope ends")
            })
            .collect()
    }
}

impl<P: IntProblem + Sync> IntProblem for CachedEvaluator<P> {
    fn bounds(&self) -> &[u32] {
        self.inner.bounds()
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        if let Some(e) = self.lock_cache().get(genes) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e;
        }
        let e = self.inner.evaluate(genes);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.lock_cache().insert(genes.to_vec(), e.clone());
        e
    }

    fn evaluate_batch(&self, genomes: &[Vec<u32>]) -> Vec<Evaluation> {
        // `PE_FAULT` drill site: one arrival per evaluation wave. Free
        // (one initialization check) when no plan is armed.
        match pe_store::fault::check(pe_store::fault::SITE_EVAL_BATCH) {
            Some(pe_store::FaultAction::Kill) => pe_store::fault::kill_now(),
            Some(pe_store::FaultAction::Err) => {
                panic!("injected fault: eval_batch")
            }
            None => {}
        }
        let mut results: Vec<Option<Evaluation>> = vec![None; genomes.len()];

        // Phase 1 — one cache pass: resolve hits, deduplicate misses.
        // `miss_of[genome]` is the index into `miss_rows`/`computed`
        // for every genome the inner problem has to score.
        let mut miss_rows: Vec<usize> = Vec::new();
        let mut miss_of: HashMap<&[u32], usize, FxBuildHasher> = HashMap::default();
        {
            let mut cache = self.lock_cache();
            for (i, genome) in genomes.iter().enumerate() {
                if let Some(e) = cache.get(genome.as_slice()) {
                    results[i] = Some(e);
                } else if !miss_of.contains_key(genome.as_slice()) {
                    miss_of.insert(genome.as_slice(), miss_rows.len());
                    miss_rows.push(i);
                }
            }
        }

        // Phase 2 — compute the unique misses (parallel, input-ordered).
        let computed = self.compute_misses(genomes, &miss_rows);
        self.misses
            .fetch_add(miss_rows.len() as u64, Ordering::Relaxed);
        self.hits
            .fetch_add((genomes.len() - miss_rows.len()) as u64, Ordering::Relaxed);

        // Phase 3 — publish to the cache and fill the remaining rows
        // (unique misses and their intra-batch duplicates) straight
        // from the computed list, so even immediate eviction from a
        // tiny cache cannot lose a result.
        {
            let mut cache = self.lock_cache();
            for (&i, e) in miss_rows.iter().zip(&computed) {
                cache.insert(genomes[i].clone(), e.clone());
            }
        }
        for (i, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                let k = miss_of[genomes[i].as_slice()];
                *slot = Some(computed[k].clone());
            }
        }
        results
            .into_iter()
            .map(|e| e.expect("every batch row resolves to an evaluation"))
            .collect()
    }
}

/// Run an NSGA-II search through a [`CachedEvaluator`] with the shared
/// progress protocol: per-generation stats are recorded into `history`
/// and a [`ProgressEvent::GaGeneration`] followed by a
/// [`ProgressEvent::EvalCache`] snapshot is emitted per generation;
/// cancellation is honored at generation granularity. The single
/// implementation behind [`HwAwareTrainer`](crate::HwAwareTrainer) and
/// [`PlainGaEngine`](crate::PlainGaEngine).
///
/// `problem_stats` snapshots the problem's own caches — the
/// neuron-column cache and the cost layer's gate-count memo — for the
/// [`ProgressEvent::EvalCache`] event (`None` for problems without
/// them, e.g. the plain GA — those counters report zero).
///
/// `checkpoint` makes the run crash-safe: a valid snapshot at the
/// spec's path resumes the GA mid-stream (RNG state, population
/// annotations and counters restored bit-exactly — the resumed run is
/// byte-identical to an uninterrupted one), and new snapshots are
/// flushed through [`pe_store::atomic_write`] every `spec.every`
/// generations plus once on completion or cancellation. `None` keeps
/// the historical single-shot behavior.
// Internal plumbing shared by exactly two engines; a parameter struct
// would only move the argument list one level up.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_ga_cached<P: IntProblem + Sync>(
    nsga: &pe_nsga::Nsga2,
    problem: &P,
    seeds: Vec<Vec<u32>>,
    eval_threads: usize,
    ctl: &crate::progress::RunControl<'_>,
    history: &mut Vec<pe_nsga::GenerationStats>,
    problem_stats: &(dyn Fn() -> Option<ProblemCacheStats> + Sync),
    checkpoint: Option<&crate::checkpoint::CheckpointSpec>,
) -> pe_nsga::NsgaResult {
    use crate::progress::ProgressEvent;
    let generations = nsga.config().generations;
    let evaluator = CachedEvaluator::with_options(problem, GENOME_CACHE_CAPACITY, eval_threads);

    let checkpoint = checkpoint.filter(|spec| spec.is_active());
    let resume =
        checkpoint.and_then(|spec| crate::checkpoint::load(spec, nsga.config(), problem.bounds()));
    if let Some(cp) = &resume {
        // The observer below only sees the *new* generations; the
        // already-run prefix comes straight from the snapshot so the
        // outcome's history matches an uninterrupted run exactly.
        history.extend(cp.history.iter().cloned());
    }
    let sink = checkpoint.map(|spec| crate::checkpoint::FileSink::new(&spec.path, ctl));
    let plan = checkpoint
        .zip(sink.as_ref())
        .map(|(spec, sink)| pe_nsga::CheckpointPlan {
            every: spec.every,
            sink,
        });

    nsga.run_checkpointed(&evaluator, seeds, resume, plan, |s| {
        // `PE_FAULT` drill site: one arrival per completed generation,
        // *before* this generation's checkpoint can flush — a kill here
        // loses at most `every` generations of work, never durability.
        match pe_store::fault::check(pe_store::fault::SITE_SEARCHED_GENERATION) {
            Some(pe_store::FaultAction::Kill) => pe_store::fault::kill_now(),
            Some(pe_store::FaultAction::Err) => {
                panic!("injected fault: searched_generation")
            }
            None => {}
        }
        history.push(s.clone());
        ctl.emit(&ProgressEvent::GaGeneration {
            generation: s.generation,
            generations,
            evaluations: s.evaluations,
        });
        let cache = evaluator.stats();
        let problem = problem_stats().unwrap_or_default();
        let columns = problem.columns;
        ctl.emit(&ProgressEvent::EvalCache {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.entries,
            column_hits: columns.hits,
            column_misses: columns.misses,
            column_entries: columns.entries,
            column_contended: columns.contended,
            column_shards: columns.shards,
            cost_hits: problem.cost_hits,
            cost_misses: problem.cost_misses,
            store_ingested: problem.store.ingested,
            store_deduplicated: problem.store.deduplicated,
            store_bytes: problem.store.bytes_written,
        });
        !ctl.is_cancelled()
    })
}

/// Run an island-model NSGA-II search with the shared progress
/// protocol — the parallel counterpart of [`run_ga_cached`], driving
/// [`pe_nsga::IslandModel`]'s epoch legs over a `std::thread::scope`
/// worker pool.
///
/// The worker budget splits two levels deep, exactly like
/// [`Pipeline::run_many`](crate::Pipeline::run_many): `workers =
/// budget.clamp(1, islands)` island legs run concurrently, each over a
/// private [`CachedEvaluator`] with `budget / workers` evaluation
/// threads — pools multiply up to the budget instead of
/// oversubscribing. Each island keeps its *own* genome memo for the
/// whole run (the memo's hit pattern is then a pure function of that
/// island's deterministic stream, so worker count cannot change any
/// counter, let alone any result); shared problem-level caches remain
/// safe because [`IntProblem::evaluate`] is pure.
///
/// Events: per-generation [`ProgressEvent::GaGeneration`] and
/// genome-memo-only [`ProgressEvent::EvalCache`] events arrive wrapped
/// in [`ProgressEvent::Island`] (islands interleave arbitrarily — fold
/// tagged streams per island); each barrier emits one
/// [`ProgressEvent::Migration`] per island, also tagged; the
/// coordinator reports the shared problem-level cache counters in one
/// *untagged* [`ProgressEvent::EvalCache`] per epoch, with the
/// per-island memo fields zeroed, so aggregating consumers never
/// double-count.
///
/// Crash safety: each leg forwards its cadence flushes to a per-island
/// file next to the spec's path (see `island_path`), and every barrier
/// persists a post-migration [`pe_nsga::IslandCheckpoint`] at the spec
/// path itself. On resume the epoch file restores the barrier state
/// and any strictly-newer island file fast-forwards its island, so a
/// kill anywhere — mid-epoch or mid-migration — resumes bit-exactly.
///
/// The final history is the concatenation of the islands' recorded
/// histories in island order (never the live interleave), keeping the
/// outcome byte-identical at any worker count.
#[allow(clippy::too_many_arguments)] // mirrors `run_ga_cached`
pub(crate) fn run_ga_islands<P: IntProblem + Sync>(
    model: &pe_nsga::IslandModel,
    problem: &P,
    seeds: Vec<Vec<u32>>,
    eval_threads: usize,
    ctl: &crate::progress::RunControl<'_>,
    history: &mut Vec<pe_nsga::GenerationStats>,
    problem_stats: &(dyn Fn() -> Option<ProblemCacheStats> + Sync),
    checkpoint: Option<&crate::checkpoint::CheckpointSpec>,
) -> pe_nsga::NsgaResult {
    use crate::progress::ProgressEvent;
    use pe_nsga::SearchCheckpoint;

    let cfg = model.config();
    let n = cfg.islands;
    let generations = cfg.nsga.generations;

    // Two-level thread split: island workers × per-island evaluation
    // threads, multiplying to at most the budget.
    let budget = eval_threads.max(1);
    let workers = budget.clamp(1, n.max(1));
    let per_island_threads = (budget / workers).max(1);

    let evaluators: Vec<CachedEvaluator<&P>> = (0..n)
        .map(|_| CachedEvaluator::with_options(problem, GENOME_CACHE_CAPACITY, per_island_threads))
        .collect();

    // Doped seeds deal round-robin across the archipelago.
    let mut island_seeds: Vec<Vec<Vec<u32>>> = (0..n).map(|_| Vec::new()).collect();
    for (index, genome) in seeds.into_iter().enumerate() {
        island_seeds[index % n].push(genome);
    }

    // Resume: the epoch file is the post-migration barrier state;
    // island files override their slot only when strictly ahead of it
    // (equal generations mean the island file is the stale
    // pre-migration flush of an already-persisted barrier).
    let checkpoint = checkpoint.filter(|spec| spec.is_active());
    let island_paths: Vec<std::path::PathBuf> = (0..n)
        .map(|island| {
            checkpoint.map_or_else(std::path::PathBuf::new, |spec| {
                crate::checkpoint::island_path(&spec.path, island)
            })
        })
        .collect();
    let mut migrated_through = 0usize;
    let mut states: Vec<Option<SearchCheckpoint>> = (0..n).map(|_| None).collect();
    if let Some(spec) = checkpoint {
        if let Some(cp) = crate::checkpoint::load_island(spec, cfg, problem.bounds()) {
            migrated_through = cp.generation;
            states = cp.islands.into_iter().map(Some).collect();
        }
        for (island, slot) in states.iter_mut().enumerate() {
            let island_spec = crate::checkpoint::CheckpointSpec {
                path: island_paths[island].clone(),
                every: spec.every,
            };
            if let Some(cp) = crate::checkpoint::load(
                &island_spec,
                &model.island_configs()[island],
                problem.bounds(),
            ) {
                if slot.as_ref().is_none_or(|s| cp.generation > s.generation) {
                    *slot = Some(cp);
                }
            }
        }
    }

    let mut stopped = false;
    for target in cfg.epoch_targets() {
        if target <= migrated_through {
            continue;
        }

        // One epoch leg: every island advances to the barrier, the
        // standard claim-by-counter worker pool from `run_many`.
        // One cell per island: its carried-over state plus any not-yet
        // consumed seed genomes, claimed exactly once by the worker
        // that picks the island up.
        type LegInput = (Option<pe_nsga::SearchCheckpoint>, Vec<Vec<u32>>);
        let inputs: Vec<Mutex<LegInput>> = states
            .iter_mut()
            .zip(island_seeds.iter_mut())
            .map(|(state, seeds)| Mutex::new((state.take(), std::mem::take(seeds))))
            .collect();
        let outputs: Vec<Mutex<Option<SearchCheckpoint>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let island = next.fetch_add(1, Ordering::SeqCst);
                    if island >= n {
                        break;
                    }
                    let (state, leg_seeds) = {
                        let mut guard = inputs[island]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        (guard.0.take(), std::mem::take(&mut guard.1))
                    };
                    // Cadence flushes of this leg go to the island's own
                    // durable file, reported as island-tagged events.
                    let tagger = |e: &ProgressEvent| {
                        ctl.emit(&ProgressEvent::Island {
                            island,
                            event: Box::new(e.clone()),
                        });
                    };
                    let island_ctl = crate::progress::RunControl::new(Some(&tagger), None);
                    let sink = checkpoint.map(|_| {
                        crate::checkpoint::FileSink::new(&island_paths[island], &island_ctl)
                    });
                    let forward =
                        checkpoint
                            .zip(sink.as_ref())
                            .map(|(spec, sink)| pe_nsga::CheckpointPlan {
                                every: spec.every,
                                sink,
                            });
                    let done = model.run_island_to(
                        island,
                        &evaluators[island],
                        leg_seeds,
                        state,
                        target,
                        forward,
                        &mut |s| {
                            // `PE_FAULT` drill site: same per-generation
                            // arrival the single-population path has.
                            match pe_store::fault::check(pe_store::fault::SITE_SEARCHED_GENERATION)
                            {
                                Some(pe_store::FaultAction::Kill) => pe_store::fault::kill_now(),
                                Some(pe_store::FaultAction::Err) => {
                                    panic!("injected fault: searched_generation")
                                }
                                None => {}
                            }
                            ctl.emit(&ProgressEvent::Island {
                                island,
                                event: Box::new(ProgressEvent::GaGeneration {
                                    generation: s.generation,
                                    generations,
                                    evaluations: s.evaluations,
                                }),
                            });
                            let cache = evaluators[island].stats();
                            ctl.emit(&ProgressEvent::Island {
                                island,
                                event: Box::new(ProgressEvent::EvalCache {
                                    hits: cache.hits,
                                    misses: cache.misses,
                                    entries: cache.entries,
                                    // Problem-level caches are shared across
                                    // islands; the coordinator reports them
                                    // untagged so folds never double-count.
                                    column_hits: 0,
                                    column_misses: 0,
                                    column_entries: 0,
                                    column_contended: 0,
                                    column_shards: 0,
                                    cost_hits: 0,
                                    cost_misses: 0,
                                    store_ingested: 0,
                                    store_deduplicated: 0,
                                    store_bytes: 0,
                                }),
                            });
                            !ctl.is_cancelled()
                        },
                    );
                    *outputs[island]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(done);
                });
            }
        });
        for (slot, output) in states.iter_mut().zip(outputs) {
            let state = output
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every island leg returns a state");
            stopped |= state.generation < target;
            *slot = Some(state);
        }

        // Shared problem-level cache counters, once per epoch,
        // untagged (memo fields zero — those live in the island
        // streams).
        let shared = problem_stats().unwrap_or_default();
        let columns = shared.columns;
        ctl.emit(&ProgressEvent::EvalCache {
            hits: 0,
            misses: 0,
            entries: 0,
            column_hits: columns.hits,
            column_misses: columns.misses,
            column_entries: columns.entries,
            column_contended: columns.contended,
            column_shards: columns.shards,
            cost_hits: shared.cost_hits,
            cost_misses: shared.cost_misses,
            store_ingested: shared.store.ingested,
            store_deduplicated: shared.store.deduplicated,
            store_bytes: shared.store.bytes_written,
        });
        if stopped {
            break;
        }

        if target < generations {
            // `PE_FAULT` drill site: one arrival per interior barrier,
            // *before* the exchange and its epoch checkpoint — a kill
            // here must resume from the per-island files and re-run
            // the migration deterministically.
            match pe_store::fault::check(pe_store::fault::SITE_ISLAND_MIGRATION) {
                Some(pe_store::FaultAction::Kill) => pe_store::fault::kill_now(),
                Some(pe_store::FaultAction::Err) => {
                    panic!("injected fault: island_migration")
                }
                None => {}
            }
            let mut barrier: Vec<SearchCheckpoint> = states
                .iter_mut()
                .map(|slot| slot.take().expect("every island reached the barrier"))
                .collect();
            model.migrate(&mut barrier);
            migrated_through = target;
            for (slot, state) in states.iter_mut().zip(barrier) {
                *slot = Some(state);
            }
            for island in 0..n {
                ctl.emit(&ProgressEvent::Island {
                    island,
                    event: Box::new(ProgressEvent::Migration {
                        generation: target,
                        migrants: cfg.migrants,
                    }),
                });
            }
        }

        if let Some(spec) = checkpoint {
            crate::checkpoint::save_island(
                &spec.path,
                ctl,
                &pe_nsga::IslandCheckpoint {
                    generation: target,
                    islands: states
                        .iter()
                        .map(|slot| slot.clone().expect("every island holds a state"))
                        .collect(),
                },
            );
        }
    }

    let finals: Vec<SearchCheckpoint> = states.into_iter().flatten().collect();
    // The outcome's history is the islands' recorded histories in
    // island order — a pure function of the deterministic streams,
    // never the live event interleave.
    for state in &finals {
        history.extend(state.history.iter().cloned());
    }
    if !stopped {
        // The run completed: the mid-epoch island files are superseded
        // by the final epoch checkpoint (the pipeline deletes that one
        // once the stage artifact is safely cached).
        for path in &island_paths {
            if checkpoint.is_some() {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    model.merge(&finals)
}

/// Snapshot of an [`IntProblem`]'s internal caches for the
/// [`ProgressEvent::EvalCache`](crate::ProgressEvent::EvalCache)
/// stream: the columnar engine's neuron-column cache, the cost layer's
/// per-neuron gate-count memo, and the design-store sink counters
/// (all-zero when no store is attached).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ProblemCacheStats {
    pub(crate) columns: crate::columns::ColumnCacheStats,
    pub(crate) cost_hits: u64,
    pub(crate) cost_misses: u64,
    pub(crate) store: pe_store::StoreStats,
}

impl<P: std::fmt::Debug> std::fmt::Debug for CachedEvaluator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedEvaluator")
            .field("inner", &self.inner)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap but non-trivial deterministic problem.
    struct Poly {
        bounds: Vec<u32>,
    }

    impl IntProblem for Poly {
        fn bounds(&self) -> &[u32] {
            &self.bounds
        }
        fn evaluate(&self, genes: &[u32]) -> Evaluation {
            let s: f64 = genes
                .iter()
                .enumerate()
                .map(|(i, &g)| f64::from(g) * (i as f64 + 1.0))
                .sum();
            let objectives = vec![s, 1000.0 - s];
            if s < 5.0 {
                Evaluation::infeasible(objectives, 5.0 - s)
            } else {
                Evaluation::feasible(objectives)
            }
        }
    }

    fn genomes(n: usize, modulo: u32) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| (0..4).map(|j| ((i as u32) * 7 + j * 13) % modulo).collect())
            .collect()
    }

    #[test]
    fn batch_matches_serial_loop_in_order() {
        let problem = Poly {
            bounds: vec![32; 4],
        };
        let pop = genomes(50, 32);
        let expected: Vec<Evaluation> = pop.iter().map(|g| problem.evaluate(g)).collect();
        for threads in [1, 4] {
            let evaluator = CachedEvaluator::with_options(&problem, 64, threads);
            assert_eq!(
                evaluator.evaluate_batch(&pop),
                expected,
                "{threads} threads"
            );
            // Warm pass: all hits, identical output.
            assert_eq!(evaluator.evaluate_batch(&pop), expected);
        }
    }

    #[test]
    fn duplicates_are_computed_once_and_counters_add_up() {
        let problem = Poly { bounds: vec![8; 4] };
        // modulo 2 forces heavy duplication across 40 genomes.
        let pop = genomes(40, 2);
        let unique: std::collections::HashSet<&[u32]> = pop.iter().map(Vec::as_slice).collect();
        let evaluator = CachedEvaluator::with_options(&problem, 64, 4);
        let _ = evaluator.evaluate_batch(&pop);
        let stats = evaluator.stats();
        assert_eq!(stats.misses, unique.len() as u64);
        assert_eq!(stats.hits + stats.misses, pop.len() as u64);
        assert_eq!(stats.entries, unique.len());
    }

    #[test]
    fn single_evaluate_is_cached_too() {
        let problem = Poly { bounds: vec![9; 4] };
        let evaluator = CachedEvaluator::with_options(&problem, 16, 1);
        let g = vec![1, 2, 3, 4];
        let a = evaluator.evaluate(&g);
        let b = evaluator.evaluate(&g);
        assert_eq!(a, b);
        assert_eq!(a, problem.evaluate(&g));
        assert_eq!(
            evaluator.stats(),
            EvalCacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn eviction_never_changes_results() {
        let problem = Poly {
            bounds: vec![64; 4],
        };
        // Capacity 2 per generation: almost everything gets evicted.
        let evaluator = CachedEvaluator::with_options(&problem, 2, 2);
        let pop = genomes(30, 64);
        let expected: Vec<Evaluation> = pop.iter().map(|g| problem.evaluate(g)).collect();
        assert_eq!(evaluator.evaluate_batch(&pop), expected);
        assert_eq!(evaluator.evaluate_batch(&pop), expected);
    }

    #[test]
    fn thread_budget_is_positive() {
        assert!(thread_budget() >= 1);
    }
}
