//! Chromosome encoding of the approximate MLP (paper Fig. 3).
//!
//! Genes are grouped by weight — `(m, s, k)` triples — then by neuron
//! (with a trailing bias gene), then by layer, exactly as the paper's
//! encoding figure shows. Each gene is a bounded integer:
//!
//! | gene | meaning | bound |
//! |------|---------|-------|
//! | `m`  | pruning mask over the input's bits | `2^input_bits` |
//! | `s`  | sign (0 = +1, 1 = −1) | `2` |
//! | `k`  | pow2 exponent | `weight_bits − 1` (i.e. `k ∈ [0, n−1)`) |
//! | `b`  | biased-encoded quantized bias | `2^bias_bits` |

use serde::{Deserialize, Serialize};

use pe_mlp::{AxLayer, AxMlp, AxNeuron, AxWeight, QReluCfg};

/// Shape information for one layer's genes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerGenomeSpec {
    /// Fan-in of each neuron in this layer.
    pub fan_in: usize,
    /// Number of neurons.
    pub neurons: usize,
    /// Width of this layer's input activations in bits.
    pub input_bits: u32,
    /// QReLU of this layer (`None` for the argmax output layer).
    pub qrelu: Option<QReluCfg>,
}

/// Complete genome shape: decodes gene vectors into [`AxMlp`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenomeSpec {
    layers: Vec<LayerGenomeSpec>,
    weight_bits: u32,
    bias_bits: u32,
    bounds: Vec<u32>,
}

impl GenomeSpec {
    /// Build a genome spec from layer shapes.
    ///
    /// # Panics
    ///
    /// Panics if shapes are degenerate (no layers, zero fan-in/neurons)
    /// or widths are out of the supported ranges.
    #[must_use]
    pub fn new(layers: Vec<LayerGenomeSpec>, weight_bits: u32, bias_bits: u32) -> Self {
        assert!(!layers.is_empty(), "at least one layer required");
        assert!((2..=16).contains(&weight_bits), "weight bits out of range");
        assert!((2..=24).contains(&bias_bits), "bias bits out of range");
        for l in &layers {
            assert!(l.fan_in > 0 && l.neurons > 0, "degenerate layer");
            assert!((1..=12).contains(&l.input_bits), "input bits out of range");
        }
        let mut bounds = Vec::new();
        for l in &layers {
            let mask_bound = 1u32 << l.input_bits;
            for _ in 0..l.neurons {
                for _ in 0..l.fan_in {
                    bounds.push(mask_bound); // m
                    bounds.push(2); // s
                    bounds.push(weight_bits - 1); // k in [0, n-1)
                }
                bounds.push(1u32 << bias_bits); // b (biased encoding)
            }
        }
        Self {
            layers,
            weight_bits,
            bias_bits,
            bounds,
        }
    }

    /// Per-gene exclusive bounds (the NSGA-II search space).
    #[must_use]
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// Layer shapes.
    #[must_use]
    pub fn layers(&self) -> &[LayerGenomeSpec] {
        &self.layers
    }

    /// Total number of genes.
    #[must_use]
    pub fn gene_count(&self) -> usize {
        self.bounds.len()
    }

    /// Number of trainable parameters in the paper's sense: one mask,
    /// one sign and one exponent per connection plus one bias per
    /// neuron. (Table III notes that adding masks "doubles the
    /// trainable parameters" versus plain GA training.)
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.neurons * (3 * l.fan_in) + l.neurons)
            .sum()
    }

    /// Decode a gene vector into the approximate MLP it represents.
    ///
    /// # Panics
    ///
    /// Panics if `genes` has the wrong length or violates the bounds.
    #[must_use]
    pub fn decode(&self, genes: &[u32]) -> AxMlp {
        let mut out = AxMlp::default();
        self.decode_into(genes, &mut out);
        out
    }

    /// [`decode`](Self::decode) into a caller-owned network, reusing
    /// its layer/neuron/weight allocations — the GA evaluation loop
    /// decodes one genome per fitness call, and with a per-thread
    /// scratch network the decode performs zero allocations in steady
    /// state. Any previous contents of `out` (including a different
    /// shape) are fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `genes.len()` disagrees with the spec's gene count.
    pub fn decode_into(&self, genes: &[u32], out: &mut AxMlp) {
        assert_eq!(genes.len(), self.bounds.len(), "genome length mismatch");
        let bias_offset = 1i64 << (self.bias_bits - 1);
        let mut cursor = 0usize;
        let mut take = |bound: u32| -> u32 {
            let g = genes[cursor];
            debug_assert!(g < bound, "gene {cursor} = {g} out of bound {bound}");
            cursor += 1;
            g
        };
        out.layers.truncate(self.layers.len());
        for (li, l) in self.layers.iter().enumerate() {
            let mask_bound = 1u32 << l.input_bits;
            if li == out.layers.len() {
                out.layers.push(AxLayer {
                    input_bits: l.input_bits,
                    neurons: Vec::with_capacity(l.neurons),
                    qrelu: l.qrelu,
                });
            }
            let layer = &mut out.layers[li];
            layer.input_bits = l.input_bits;
            layer.qrelu = l.qrelu;
            layer.neurons.truncate(l.neurons);
            for ni in 0..l.neurons {
                if ni == layer.neurons.len() {
                    layer.neurons.push(AxNeuron {
                        weights: Vec::with_capacity(l.fan_in),
                        bias: 0,
                    });
                }
                let neuron = &mut layer.neurons[ni];
                neuron.weights.clear();
                for _ in 0..l.fan_in {
                    let mask = take(mask_bound) as u16;
                    let negative = take(2) == 1;
                    let shift = take(self.weight_bits - 1) as u8;
                    neuron.weights.push(AxWeight {
                        mask,
                        shift,
                        negative,
                    });
                }
                let bias_gene = i64::from(take(1u32 << self.bias_bits));
                neuron.bias = (bias_gene - bias_offset) as i32;
            }
        }
    }

    /// Encode an approximate MLP back into genes (inverse of
    /// [`GenomeSpec::decode`]); out-of-range values are clamped into the
    /// gene bounds — this is how doped seeds derived from the exact
    /// baseline enter the population.
    ///
    /// # Panics
    ///
    /// Panics if `mlp`'s shape disagrees with the spec.
    #[must_use]
    pub fn encode(&self, mlp: &AxMlp) -> Vec<u32> {
        assert_eq!(mlp.layers.len(), self.layers.len(), "layer count mismatch");
        let bias_offset = 1i64 << (self.bias_bits - 1);
        let bias_max = (1i64 << self.bias_bits) - 1;
        let mut genes = Vec::with_capacity(self.bounds.len());
        for (l, spec) in mlp.layers.iter().zip(&self.layers) {
            assert_eq!(l.neurons.len(), spec.neurons, "neuron count mismatch");
            let mask_max = (1u32 << spec.input_bits) - 1;
            for n in &l.neurons {
                assert_eq!(n.weights.len(), spec.fan_in, "fan-in mismatch");
                for w in &n.weights {
                    genes.push(u32::from(w.mask).min(mask_max));
                    genes.push(u32::from(w.negative));
                    genes.push(u32::from(w.shift).min(self.weight_bits - 2));
                }
                let b = (i64::from(n.bias) + bias_offset).clamp(0, bias_max);
                genes.push(b as u32);
            }
        }
        genes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer_spec() -> GenomeSpec {
        GenomeSpec::new(
            vec![
                LayerGenomeSpec {
                    fan_in: 3,
                    neurons: 2,
                    input_bits: 4,
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 3,
                    }),
                },
                LayerGenomeSpec {
                    fan_in: 2,
                    neurons: 2,
                    input_bits: 8,
                    qrelu: None,
                },
            ],
            8,
            12,
        )
    }

    #[test]
    fn gene_count_matches_figure_3_layout() {
        let spec = two_layer_spec();
        // Layer 1: 2 neurons x (3 weights x 3 genes + 1 bias) = 20
        // Layer 2: 2 neurons x (2 weights x 3 genes + 1 bias) = 14
        assert_eq!(spec.gene_count(), 34);
        assert_eq!(spec.bounds().len(), 34);
    }

    #[test]
    fn bounds_follow_the_encoding_table() {
        let spec = two_layer_spec();
        let b = spec.bounds();
        // First weight triple of layer 1: mask 2^4, sign 2, k bound 7.
        assert_eq!(b[0], 16);
        assert_eq!(b[1], 2);
        assert_eq!(b[2], 7);
        // First neuron's bias gene.
        assert_eq!(b[9], 1 << 12);
        // Layer 2 masks cover 8-bit activations.
        assert_eq!(b[20], 256);
    }

    #[test]
    fn decode_encode_round_trip() {
        let spec = two_layer_spec();
        // A deterministic pseudo-random in-bounds genome.
        let genes: Vec<u32> = spec
            .bounds()
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as u32 * 7 + 3) % b)
            .collect();
        let mlp = spec.decode(&genes);
        let back = spec.encode(&mlp);
        assert_eq!(genes, back);
    }

    #[test]
    fn decode_produces_consistent_structure() {
        let spec = two_layer_spec();
        let genes = vec![0u32; spec.gene_count()];
        let mlp = spec.decode(&genes);
        assert_eq!(mlp.layers.len(), 2);
        assert_eq!(mlp.layers[0].neurons.len(), 2);
        assert_eq!(mlp.layers[0].neurons[0].weights.len(), 3);
        assert_eq!(mlp.layers[1].input_bits, 8);
        // All-zero genes: zero masks, bias = -2^(bias_bits-1).
        assert_eq!(mlp.layers[0].neurons[0].bias, -(1 << 11));
    }

    #[test]
    fn bias_encoding_is_offset_binary() {
        let spec = GenomeSpec::new(
            vec![LayerGenomeSpec {
                fan_in: 1,
                neurons: 1,
                input_bits: 4,
                qrelu: None,
            }],
            8,
            8,
        );
        let mut genes = vec![0u32; spec.gene_count()];
        genes[3] = 128; // bias gene at offset 3 (after one m,s,k triple)
        assert_eq!(spec.decode(&genes).layers[0].neurons[0].bias, 0);
        genes[3] = 255;
        assert_eq!(spec.decode(&genes).layers[0].neurons[0].bias, 127);
        genes[3] = 0;
        assert_eq!(spec.decode(&genes).layers[0].neurons[0].bias, -128);
    }

    #[test]
    fn parameter_count_reports_trainables() {
        let spec = two_layer_spec();
        // (2*(3*3)+2) + (2*(2*3)+2) = 20 + 14 = 34... parameters in the
        // paper's sense: 3 per connection + 1 per neuron.
        assert_eq!(spec.parameter_count(), 2 * 9 + 2 + 2 * 6 + 2);
    }

    #[test]
    fn encode_clamps_out_of_range_values() {
        use pe_mlp::{AxLayer, AxNeuron, AxWeight};
        let spec = GenomeSpec::new(
            vec![LayerGenomeSpec {
                fan_in: 1,
                neurons: 1,
                input_bits: 4,
                qrelu: None,
            }],
            8,
            8,
        );
        let mlp = AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![AxNeuron {
                    weights: vec![AxWeight {
                        mask: 0xFFFF,
                        shift: 30,
                        negative: true,
                    }],
                    bias: 100_000,
                }],
                qrelu: None,
            }],
        };
        let genes = spec.encode(&mlp);
        assert_eq!(genes[0], 15); // mask clamped to 4 bits
        assert_eq!(genes[2], 6); // shift clamped to n-2
        assert_eq!(genes[3], 255); // bias clamped to top of range
    }
}
