//! Error type of the staged pipeline API.

use std::fmt;

use pe_datasets::DatasetError;

use crate::progress::StageKind;

/// Everything that can go wrong while building or running a pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Dataset generation, validation or splitting failed.
    Dataset(DatasetError),
    /// Cooperative cancellation was observed while running `stage`.
    Cancelled {
        /// The stage that observed the cancellation.
        stage: StageKind,
    },
    /// The builder rejected the study configuration.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A search engine failed for an engine-specific reason.
    Engine {
        /// The engine's [`name`](crate::engine::SearchEngine::name).
        engine: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The design store could not be opened, read or written
    /// (see [`pe_store::StoreError`]).
    Store {
        /// Human-readable reason (the underlying store error).
        reason: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Dataset(e) => write!(f, "dataset error: {e}"),
            FlowError::Cancelled { stage } => write!(f, "cancelled during the {stage} stage"),
            FlowError::InvalidConfig { reason } => write!(f, "invalid study config: {reason}"),
            FlowError::Engine { engine, reason } => {
                write!(f, "search engine {engine:?} failed: {reason}")
            }
            FlowError::Store { reason } => write!(f, "design store error: {reason}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for FlowError {
    fn from(e: DatasetError) -> Self {
        FlowError::Dataset(e)
    }
}

impl From<pe_store::StoreError> for FlowError {
    fn from(e: pe_store::StoreError) -> Self {
        FlowError::Store {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failing_part() {
        let e = FlowError::Cancelled {
            stage: StageKind::Searched,
        };
        assert!(e.to_string().contains("searched"));
        let e = FlowError::Engine {
            engine: "tc23".into(),
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("tc23") && e.to_string().contains("boom"));
        let e: FlowError = DatasetError::NoClasses.into();
        assert!(e.to_string().contains("class"));
        let e: FlowError = pe_store::StoreError::Corrupt {
            path: "designs.jsonl".into(),
            line: 3,
            reason: "bad json".into(),
        }
        .into();
        assert!(
            e.to_string().contains("design store")
                && e.to_string().contains("line 3")
                && e.to_string().contains("bad json"),
            "{e}"
        );
    }
}
