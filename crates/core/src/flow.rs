//! Legacy one-call flow: the complete pipeline of the paper's
//! evaluation, from raw data to the Table II row.
//!
//! Steps (matching §V-A): generate/load the dataset → stratified 70/30
//! split → backprop-train the float MLP at the paper's topology →
//! quantize to the exact bespoke baseline (8-bit weights, 4-bit inputs)
//! → elaborate and cost the baseline circuit (the Table I row) → run
//! the hardware-aware GA → hardware-analyse the front → select the
//! smallest design within the 5% accuracy-loss budget (the Table II
//! row).
//!
//! [`run_study`] is now a deprecated shim over the staged API in
//! [`crate::pipeline`], which exposes each step as a serializable,
//! cacheable, resumable stage artifact with progress reporting and
//! cooperative cancellation.

use serde::{Deserialize, Serialize};

use pe_datasets::{Dataset, DatasetSpec, QuantizedData};
use pe_hw::{HardwareReport, TechLibrary};
use pe_mlp::{FixedMlp, TrainConfig};

use crate::config::AxTrainConfig;
use crate::pareto::DesignPoint;
use crate::train::TrainingOutcome;

/// Configuration of a full study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Master seed (data generation, split, SGD, GA).
    pub seed: u64,
    /// GA training configuration.
    pub ga: AxTrainConfig,
    /// Scale on each dataset's recommended SGD epoch budget
    /// ([`pe_datasets::SgdHint`]); 1.0 = full, smaller = quicker.
    pub sgd_epochs_scale: f64,
    /// Reporting accuracy-loss budget (5% in Tables II / Fig. 4-5).
    pub accuracy_loss_budget: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            ga: AxTrainConfig::default(),
            sgd_epochs_scale: 1.0,
            accuracy_loss_budget: 0.05,
        }
    }
}

impl StudyConfig {
    /// A scaled-down configuration for tests and smoke benches.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            ga: AxTrainConfig::quick(seed),
            sgd_epochs_scale: 0.3,
            accuracy_loss_budget: 0.05,
        }
    }

    /// The SGD configuration this study uses for a given dataset.
    #[must_use]
    pub fn sgd_for(&self, spec: &DatasetSpec) -> TrainConfig {
        TrainConfig {
            learning_rate: spec.sgd.learning_rate,
            epochs: ((spec.sgd.epochs as f64 * self.sgd_epochs_scale).round() as usize).max(10),
            seed: self.seed,
            ..TrainConfig::default()
        }
    }
}

/// All artifacts of one dataset's evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStudy {
    /// Which dataset.
    pub dataset: Dataset,
    /// Float baseline accuracy on the test split.
    pub float_test_accuracy: f64,
    /// The exact bespoke baseline network.
    pub baseline: FixedMlp,
    /// Baseline accuracy on the (full) training split.
    pub baseline_train_accuracy: f64,
    /// Baseline accuracy on the test split (the Table I "Acc" column).
    pub baseline_test_accuracy: f64,
    /// Baseline circuit evaluation (the Table I area/power columns).
    pub baseline_report: HardwareReport,
    /// GA outcome: fronts, history, timings.
    pub outcome: TrainingOutcome,
    /// The Table II design: smallest area within the loss budget.
    pub selected: Option<DesignPoint>,
    /// The quantized training split (kept for follow-up experiments).
    pub train: QuantizedData,
    /// The quantized test split.
    pub test: QuantizedData,
}

impl DatasetStudy {
    /// Area reduction factor of the selected design vs the baseline
    /// (the Table II "Area Reduction" column).
    #[must_use]
    pub fn area_reduction(&self) -> Option<f64> {
        self.selected
            .as_ref()
            .map(|d| self.baseline_report.area_cm2 / d.report.area_cm2.max(f64::MIN_POSITIVE))
    }

    /// Power reduction factor of the selected design vs the baseline.
    #[must_use]
    pub fn power_reduction(&self) -> Option<f64> {
        self.selected
            .as_ref()
            .map(|d| self.baseline_report.power_mw / d.report.power_mw.max(f64::MIN_POSITIVE))
    }
}

/// Run the full pipeline for one dataset.
///
/// Deterministic in `config.seed`. The `tech` library is used for both
/// baseline and approximate circuit evaluation, so reduction factors
/// are internally consistent.
///
/// Thin legacy shim over the staged API — new code should build a
/// [`crate::Study`] and inspect/cache/resume the stages it needs.
///
/// # Panics
///
/// Panics if the configuration is rejected by
/// [`Study::finish`](crate::Study::finish) (the staged API returns
/// [`crate::FlowError`] instead).
#[deprecated(
    since = "0.1.0",
    note = "use the staged pipeline: `Study::for_dataset(d).config(c).tech(t).finish()?.run_study()`"
)]
#[must_use]
pub fn run_study(dataset: Dataset, config: &StudyConfig, tech: &TechLibrary) -> DatasetStudy {
    crate::pipeline::Study::for_dataset(dataset)
        .config(config.clone())
        .tech(tech.clone())
        .finish()
        .and_then(|pipeline| pipeline.run_study())
        .unwrap_or_else(|e| panic!("legacy run_study: {e}"))
}

#[cfg(test)]
#[allow(deprecated)] // exercises the legacy shim on purpose
mod tests {
    use super::*;

    #[test]
    fn quick_study_on_breast_cancer_end_to_end() {
        let study = run_study(
            Dataset::BreastCancer,
            &StudyConfig::quick(1),
            &TechLibrary::egfet(),
        );
        // The synthetic BC dataset is easy: the float baseline should be
        // strong even with a quick budget.
        assert!(
            study.float_test_accuracy > 0.85,
            "float {}",
            study.float_test_accuracy
        );
        assert!(
            study.baseline_test_accuracy > 0.80,
            "baseline {}",
            study.baseline_test_accuracy
        );
        assert!(
            study.baseline_report.area_cm2 > 1.0,
            "baseline should be cm2-scale"
        );
        assert!(!study.outcome.front.is_empty());
        if let Some(sel) = &study.selected {
            assert!(sel.test_accuracy >= study.baseline_test_accuracy - 0.05 - 1e-9);
            let reduction = study.area_reduction().expect("selected exists");
            assert!(reduction > 1.0, "area reduction {reduction}");
        }
    }

    #[test]
    fn studies_are_reproducible() {
        let cfg = StudyConfig::quick(7);
        let tech = TechLibrary::egfet();
        let a = run_study(Dataset::RedWine, &cfg, &tech);
        let b = run_study(Dataset::RedWine, &cfg, &tech);
        assert_eq!(a.baseline, b.baseline);
        assert_eq!(a.baseline_test_accuracy, b.baseline_test_accuracy);
        assert_eq!(a.outcome.front.len(), b.outcome.front.len());
        assert_eq!(a.outcome.evaluations, b.outcome.evaluations);
    }
}
