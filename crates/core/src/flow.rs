//! The record types of a complete one-dataset study: its configuration
//! ([`StudyConfig`]) and its flattened artifacts ([`DatasetStudy`]).
//!
//! The study itself runs through the staged API in [`crate::pipeline`]
//! — generate/load the dataset → stratified 70/30 split →
//! backprop-train the float MLP at the paper's topology → quantize to
//! the exact bespoke baseline (8-bit weights, 4-bit inputs) → cost the
//! baseline circuit (the Table I row) → run the hardware-aware GA →
//! hardware-analyse the front → select the smallest design within the
//! 5% accuracy-loss budget (the Table II row) — each step a
//! serializable, cacheable, resumable stage artifact with progress
//! reporting and cooperative cancellation.
//! [`Pipeline::run_study`](crate::Pipeline::run_study) flattens the
//! final stage into a [`DatasetStudy`].

use serde::{Deserialize, Serialize};

use pe_datasets::{Dataset, DatasetSpec, QuantizedData};
use pe_hw::{CostScenario, HardwareReport};
use pe_mlp::{FixedMlp, TrainConfig};

use crate::config::AxTrainConfig;
use crate::pareto::DesignPoint;
use crate::train::TrainingOutcome;

/// Configuration of a full study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Master seed (data generation, split, SGD, GA).
    pub seed: u64,
    /// GA training configuration.
    pub ga: AxTrainConfig,
    /// Scale on each dataset's recommended SGD epoch budget
    /// ([`pe_datasets::SgdHint`]); 1.0 = full, smaller = quicker.
    pub sgd_epochs_scale: f64,
    /// Reporting accuracy-loss budget (5% in Tables II / Fig. 4-5).
    pub accuracy_loss_budget: f64,
    /// The cost scenario the whole study runs under — technology
    /// library, Vdd model, operating supply, optional power budget. A
    /// first-class serializable input: it keys the stage caches, drives
    /// the GA's objectives and constraints, costs the baseline, and
    /// sets the voltage every report lands at. Defaults to nominal
    /// EGFET with no budget (the paper's conditions).
    #[serde(default)]
    pub scenario: CostScenario,
    /// Monte-Carlo variation request of a robust study: the search
    /// optimizes the configured robust statistic over M perturbed
    /// trials instead of nominal accuracy (see
    /// [`pe_hw::VariationConfig`] and the
    /// [`Study::variation`](crate::pipeline::Study::variation)
    /// builder). `None` (the default, and what any pre-variation cached
    /// config deserializes to) reproduces the nominal pipeline bit for
    /// bit. Keys the stage caches.
    #[serde(default)]
    pub variation: Option<pe_hw::VariationConfig>,
    /// Island count of an island-model search (`0` or `1` — the
    /// default, and what any pre-island cached config deserializes
    /// to — keeps the single-population engine and its cache keys
    /// byte for byte; ≥ 2 selects
    /// [`IslandEngine`](crate::engine::IslandEngine)). The `PE_ISLANDS`
    /// knob is read by the bench harness into this field (see
    /// [`islands_from_env`]).
    #[serde(default)]
    pub islands: usize,
    /// Migration cadence in completed generations (`0` = the
    /// [`pe_nsga::DEFAULT_MIGRATION_EVERY`] default; `PE_MIGRATE_EVERY`
    /// lands here, see [`migrate_every_from_env`]). Only meaningful
    /// with `islands >= 2`.
    #[serde(default)]
    pub migration_every: usize,
    /// Elites each island emits per migration epoch (`0` = the
    /// [`pe_nsga::DEFAULT_MIGRANTS`] default). Only meaningful with
    /// `islands >= 2`.
    #[serde(default)]
    pub migrants: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            ga: AxTrainConfig::default(),
            sgd_epochs_scale: 1.0,
            accuracy_loss_budget: 0.05,
            scenario: CostScenario::default(),
            variation: None,
            islands: 0,
            migration_every: 0,
            migrants: 0,
        }
    }
}

impl StudyConfig {
    /// A scaled-down configuration for tests and smoke benches.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            ga: AxTrainConfig::quick(seed),
            sgd_epochs_scale: 0.3,
            ..Self::default()
        }
    }

    /// Apply the island-search environment knobs (`PE_ISLANDS`,
    /// `PE_MIGRATE_EVERY`) on top of this configuration — what the
    /// bench bins call right after choosing a budget preset. Unset or
    /// unparsable variables leave the corresponding field untouched.
    #[must_use]
    pub fn with_env_islands(mut self) -> Self {
        if let Some(islands) = islands_from_env() {
            self.islands = islands;
        }
        if let Some(every) = migrate_every_from_env() {
            self.migration_every = every;
        }
        self
    }

    /// The SGD configuration this study uses for a given dataset.
    #[must_use]
    pub fn sgd_for(&self, spec: &DatasetSpec) -> TrainConfig {
        TrainConfig {
            learning_rate: spec.sgd.learning_rate,
            epochs: ((spec.sgd.epochs as f64 * self.sgd_epochs_scale).round() as usize).max(10),
            seed: self.seed,
            ..TrainConfig::default()
        }
    }
}

/// Island count from the `PE_ISLANDS` environment variable: unset or
/// unparsable means `None` (leave the configured value); `0`/`1` force
/// the single-population path; ≥ 2 selects the island engine.
#[must_use]
pub fn islands_from_env() -> Option<usize> {
    std::env::var("PE_ISLANDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
}

/// Migration cadence from the `PE_MIGRATE_EVERY` environment variable:
/// unset or unparsable means `None` (leave the configured value); `0`
/// restores the [`pe_nsga::DEFAULT_MIGRATION_EVERY`] default.
#[must_use]
pub fn migrate_every_from_env() -> Option<usize> {
    std::env::var("PE_MIGRATE_EVERY")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
}

/// All artifacts of one dataset's evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStudy {
    /// Which dataset.
    pub dataset: Dataset,
    /// Float baseline accuracy on the test split.
    pub float_test_accuracy: f64,
    /// The exact bespoke baseline network.
    pub baseline: FixedMlp,
    /// Baseline accuracy on the (full) training split.
    pub baseline_train_accuracy: f64,
    /// Baseline accuracy on the test split (the Table I "Acc" column).
    pub baseline_test_accuracy: f64,
    /// Baseline circuit evaluation (the Table I area/power columns).
    pub baseline_report: HardwareReport,
    /// GA outcome: fronts, history, timings.
    pub outcome: TrainingOutcome,
    /// The Table II design: smallest area within the loss budget.
    pub selected: Option<DesignPoint>,
    /// The quantized training split (kept for follow-up experiments).
    pub train: QuantizedData,
    /// The quantized test split.
    pub test: QuantizedData,
}

impl DatasetStudy {
    /// Area reduction factor of the selected design vs the baseline
    /// (the Table II "Area Reduction" column).
    #[must_use]
    pub fn area_reduction(&self) -> Option<f64> {
        self.selected
            .as_ref()
            .map(|d| self.baseline_report.area_cm2 / d.report.area_cm2.max(f64::MIN_POSITIVE))
    }

    /// Power reduction factor of the selected design vs the baseline.
    #[must_use]
    pub fn power_reduction(&self) -> Option<f64> {
        self.selected
            .as_ref()
            .map(|d| self.baseline_report.power_mw / d.report.power_mw.max(f64::MIN_POSITIVE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_hw::TechLibrary;

    #[test]
    fn quick_study_on_breast_cancer_end_to_end() {
        let study = crate::pipeline::Study::for_dataset(Dataset::BreastCancer)
            .config(StudyConfig::quick(1))
            .tech(TechLibrary::egfet())
            .finish()
            .expect("quick config is valid")
            .run_study()
            .expect("uncancelled study succeeds");
        // The synthetic BC dataset is easy: the float baseline should be
        // strong even with a quick budget.
        assert!(
            study.float_test_accuracy > 0.85,
            "float {}",
            study.float_test_accuracy
        );
        assert!(
            study.baseline_test_accuracy > 0.80,
            "baseline {}",
            study.baseline_test_accuracy
        );
        assert!(
            study.baseline_report.area_cm2 > 1.0,
            "baseline should be cm2-scale"
        );
        assert!(!study.outcome.front.is_empty());
        if let Some(sel) = &study.selected {
            assert!(sel.test_accuracy >= study.baseline_test_accuracy - 0.05 - 1e-9);
            let reduction = study.area_reduction().expect("selected exists");
            assert!(reduction > 1.0, "area reduction {reduction}");
        }
    }
}
