//! Design-store integration: the eval-path ingest sink and the
//! front-level query adapters.
//!
//! [`pe_store`] provides the persistence substrate (records, dedup,
//! the on-disk format, scenario re-costing); this module connects it
//! to the search flow:
//!
//! * [`StoreSink`] — the hook the GA's fitness path calls once per
//!   *unique* design (the [`CachedEvaluator`](crate::eval::CachedEvaluator)
//!   already deduplicates genomes, so ingest overhead is bounded by
//!   the number of distinct designs, not evaluations). The sink is a
//!   pure side channel: it never touches the GA's RNG streams or
//!   results, so a store-enabled run produces byte-identical fronts
//!   and artifacts. It also captures — once, at creation, before the
//!   run it belongs to writes anything — the stored front of its
//!   dataset as warm-start candidates.
//! * [`store_front`] / [`select_from_store`] — scenario queries that
//!   reuse the pipeline's own Pareto machinery
//!   ([`true_pareto_front`], [`select_within_budgets`]) over stored
//!   designs, so a query against a populated store answers exactly
//!   what re-running the selection on a live front would.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pe_hw::{CostModel, CostScenario, FastCostModel};
use pe_mlp::AxMlp;
use pe_store::{fingerprint_of, DesignRecord, DesignStore, StoreStats, StoreWriter};

use crate::pareto::{select_within_budgets, true_pareto_front, DesignCandidate, DesignPoint};

/// A shared, cloneable handle that lets one search populate a design
/// store as a side effect.
///
/// All clones (the fitness problem keeps one per thread-shared
/// problem, the trainer another) share the same writer and counters.
/// Ingest failures are reported to stderr once and then ignored — a
/// broken store file must never fail or perturb a search.
#[derive(Clone)]
pub struct StoreSink {
    writer: Arc<StoreWriter>,
    dataset: String,
    counters: Arc<SinkCounters>,
    /// Stored front members of this dataset, captured at sink
    /// creation (pre-existing records only), best test accuracy
    /// first — the warm-start seed pool. Empty unless warm-start was
    /// requested.
    warm: Arc<Vec<AxMlp>>,
}

#[derive(Debug, Default)]
struct SinkCounters {
    ingested: AtomicU64,
    deduplicated: AtomicU64,
    bytes: AtomicU64,
    failed: AtomicBool,
}

impl StoreSink {
    /// A sink writing `dataset`'s designs through `writer`. With
    /// `warm_start`, the writer's *current* records of this dataset
    /// that carry a test accuracy (i.e. prior front members) become
    /// the warm-start candidate pool, ordered best-first.
    #[must_use]
    pub fn new(writer: Arc<StoreWriter>, dataset: &str, warm_start: bool) -> Self {
        let warm = if warm_start {
            let mut front: Vec<DesignRecord> = writer
                .snapshot(Some(dataset))
                .into_iter()
                .filter(|r| r.test_accuracy.is_some())
                .collect();
            front.sort_by(|a, b| {
                b.query_accuracy()
                    .total_cmp(&a.query_accuracy())
                    .then(a.fingerprint.cmp(&b.fingerprint))
            });
            front.into_iter().map(|r| r.mlp).collect()
        } else {
            Vec::new()
        };
        Self {
            writer,
            dataset: dataset.to_string(),
            counters: Arc::default(),
            warm: Arc::new(warm),
        }
    }

    /// The dataset name this sink records under.
    #[must_use]
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The shared writer behind this sink.
    #[must_use]
    pub fn writer(&self) -> &Arc<StoreWriter> {
        &self.writer
    }

    /// The warm-start candidate pool (empty unless requested at
    /// creation): stored front members of this dataset, best first.
    #[must_use]
    pub fn warm_candidates(&self) -> &[AxMlp] {
        &self.warm
    }

    /// Sorted fingerprints of the warm-start pool — the stable
    /// identity the pipeline mixes into its stage-cache key when (and
    /// only when) warm-start seeds actually enter a search.
    #[must_use]
    pub fn warm_fingerprints(&self) -> Vec<u64> {
        let mut fps: Vec<u64> = self.warm.iter().map(fingerprint_of).collect();
        fps.sort_unstable();
        fps
    }

    /// This sink's own ingest counters (not the writer's globals, which
    /// may aggregate several datasets' sinks).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            ingested: self.counters.ingested.load(Ordering::Relaxed),
            deduplicated: self.counters.deduplicated.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes.load(Ordering::Relaxed),
        }
    }

    /// Record one evaluated design from the fitness path: nominal
    /// training-subsample accuracy, the robust statistic when the
    /// search runs under variation, and the GA's area objective.
    pub fn record_evaluation(
        &self,
        mlp: &AxMlp,
        train_accuracy: f64,
        robust_accuracy: Option<f64>,
        estimated_area: f64,
    ) {
        let mut record =
            DesignRecord::new(&self.dataset, mlp.clone(), train_accuracy, estimated_area);
        record.robust_accuracy = robust_accuracy;
        self.push(record);
    }

    /// Record a front member after the GA finished, carrying its
    /// held-out test accuracy (merges into the evaluation record when
    /// the design was already ingested).
    pub fn annotate_front(&self, candidate: &DesignCandidate) {
        let mut record = DesignRecord::new(
            &self.dataset,
            candidate.mlp.clone(),
            candidate.train_accuracy,
            candidate.estimated_area,
        );
        record.test_accuracy = Some(candidate.test_accuracy);
        self.push(record);
    }

    /// Mark the design a pipeline select stage picked (`cost_sweep`
    /// reproduces its "ours" rows from this flag).
    pub fn mark_selected(&self, point: &DesignPoint) {
        let Some(mlp) = point.network.ax() else {
            return; // only approximate networks are storable
        };
        let mut record = DesignRecord::new(
            &self.dataset,
            mlp.clone(),
            point.train_accuracy,
            point.estimated_area,
        );
        record.test_accuracy = Some(point.test_accuracy);
        record.selected = true;
        self.push(record);
    }

    fn push(&self, record: DesignRecord) {
        match self.writer.ingest(record) {
            Ok(outcome) => {
                if outcome.new_design {
                    self.counters.ingested.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.counters.deduplicated.fetch_add(1, Ordering::Relaxed);
                }
                self.counters
                    .bytes
                    .fetch_add(outcome.bytes, Ordering::Relaxed);
            }
            Err(err) => {
                if !self.counters.failed.swap(true, Ordering::Relaxed) {
                    eprintln!("warning: design store ingest disabled: {err}");
                }
            }
        }
    }
}

impl std::fmt::Debug for StoreSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSink")
            .field("path", &self.writer.path())
            .field("dataset", &self.dataset)
            .field("warm_candidates", &self.warm.len())
            .finish_non_exhaustive()
    }
}

/// The evaluated Pareto front of `dataset`'s stored designs under
/// `model`'s scenario — the store-side equivalent of the front a live
/// search hands to selection, computed by the same
/// [`true_pareto_front`] over the records that carry a test accuracy
/// (front members are annotated when their search finishes).
#[must_use]
pub fn store_front(store: &DesignStore, dataset: &str, model: &dyn CostModel) -> Vec<DesignPoint> {
    let candidates: Vec<DesignCandidate> = store
        .dataset(dataset)
        .filter_map(|r| {
            r.test_accuracy.map(|test_accuracy| DesignCandidate {
                mlp: r.mlp.clone(),
                train_accuracy: r.train_accuracy,
                test_accuracy,
                estimated_area: r.estimated_area,
            })
        })
        .collect();
    true_pareto_front(candidates, model, &format!("{dataset}_store"))
}

/// Answer "best design within these budgets under this scenario" from
/// the store alone: [`store_front`] under a fast cost model for
/// `scenario`, then the pipeline's own [`select_within_budgets`] rule.
/// A pure read — microseconds against a populated store, no GA.
#[must_use]
pub fn select_from_store(
    store: &DesignStore,
    dataset: &str,
    scenario: CostScenario,
    baseline_accuracy: f64,
    max_loss: f64,
    power_budget_mw: Option<f64>,
) -> Option<DesignPoint> {
    let model = FastCostModel::new(scenario);
    let front = store_front(store, dataset, &model);
    select_within_budgets(&front, baseline_accuracy, max_loss, power_budget_mw).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_mlp::{AxLayer, AxNeuron, AxWeight, QReluCfg};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn scratch_path(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "printed-axc-store-test-{}-{tag}-{unique}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn mlp(mask: u16) -> AxMlp {
        AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask,
                                shift: 2,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0b0011,
                                shift: 1,
                                negative: true,
                            },
                        ],
                        bias: 3,
                    },
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0b0110,
                                shift: 0,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0,
                                shift: 0,
                                negative: false,
                            },
                        ],
                        bias: -3,
                    },
                ],
                qrelu: Some(QReluCfg {
                    out_bits: 8,
                    shift: 2,
                }),
            }],
        }
    }

    #[test]
    fn sink_counts_and_warm_pool_reflect_the_store() {
        let path = scratch_path("sink");
        let writer = Arc::new(StoreWriter::open(&path).expect("open"));
        let sink = StoreSink::new(Arc::clone(&writer), "demo", false);
        sink.record_evaluation(&mlp(0b1111), 0.9, None, 20.0);
        sink.record_evaluation(&mlp(0b1111), 0.9, None, 20.0);
        sink.record_evaluation(&mlp(0b0001), 0.8, None, 5.0);
        let stats = sink.stats();
        assert_eq!((stats.ingested, stats.deduplicated), (2, 1));
        assert!(stats.bytes_written > 0);
        assert!(sink.warm_candidates().is_empty());

        // Annotate one design as a front member; a later warm-start
        // sink sees exactly that design.
        sink.annotate_front(&DesignCandidate {
            mlp: mlp(0b1111),
            train_accuracy: 0.9,
            test_accuracy: 0.88,
            estimated_area: 20.0,
        });
        let warm_sink = StoreSink::new(Arc::clone(&writer), "demo", true);
        assert_eq!(warm_sink.warm_candidates(), &[mlp(0b1111)]);
        assert_eq!(warm_sink.warm_fingerprints().len(), 1);
        // Another dataset's sink sees nothing.
        let other = StoreSink::new(Arc::clone(&writer), "other", true);
        assert!(other.warm_candidates().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_front_and_selection_reuse_the_pareto_rules() {
        let path = scratch_path("front");
        let writer = Arc::new(StoreWriter::open(&path).expect("open"));
        let sink = StoreSink::new(Arc::clone(&writer), "demo", false);
        // Two annotated front members and one unannotated evaluation.
        sink.annotate_front(&DesignCandidate {
            mlp: mlp(0b1111),
            train_accuracy: 0.95,
            test_accuracy: 0.93,
            estimated_area: 20.0,
        });
        sink.annotate_front(&DesignCandidate {
            mlp: mlp(0b0001),
            train_accuracy: 0.82,
            test_accuracy: 0.80,
            estimated_area: 5.0,
        });
        sink.record_evaluation(&mlp(0b0111), 0.5, None, 9.0);
        drop(sink);

        let store = DesignStore::load(&path).expect("load");
        let scenario = CostScenario::default();
        let model = FastCostModel::new(scenario.clone());
        let front = store_front(&store, "demo", &model);
        assert_eq!(front.len(), 2, "only annotated designs reach the front");
        assert!(front[0].report.area_cm2 <= front[1].report.area_cm2);

        // Tight budget: the accurate design; loose budget: the small
        // one — the exact select_within_budgets behavior.
        let tight = select_from_store(&store, "demo", scenario.clone(), 0.93, 0.05, None)
            .expect("accurate design qualifies");
        assert_eq!(tight.test_accuracy, 0.93);
        let loose = select_from_store(&store, "demo", scenario, 0.93, 0.20, None)
            .expect("small design qualifies");
        assert_eq!(loose.test_accuracy, 0.80);
        let _ = std::fs::remove_file(&path);
    }
}
