//! The multi-objective fitness of Eq. (3):
//! `min [1 − Accuracy(θ, D), Area(θ)]`.
//!
//! Accuracy is the integer-exact inference of Eq. (4) on the training
//! split; area is the fast FA-count estimate of Eq. (2). The paper's
//! 10% accuracy-loss bound (§IV-A) is enforced through Deb's
//! constrained domination rather than a penalty term, so infeasible
//! chromosomes are still ordered by how close to feasibility they are.

use pe_arith::{AdderAreaEstimator, MemoAreaEstimator};
use pe_hw::{argmax_gate_counts, qrelu_gate_counts, TechLibrary};
use pe_mlp::InferenceScratch;
use pe_nsga::{Evaluation, IntProblem};
use serde::{Deserialize, Serialize};

use crate::genome::GenomeSpec;

/// Which area model the GA minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AreaObjective {
    /// The paper's Eq. (2): per-neuron FA count of the adder trees.
    /// Blind to accumulator width downstream of the trees (QReLU and
    /// argmax comparators), which the paper's far larger GA budget
    /// compensates for.
    FaCount,
    /// Full analytic gate-equivalent estimate: adder trees plus NOT
    /// gates, QReLU saturation units and the argmax comparator tree —
    /// the same formulas the netlist elaborator instantiates, so the
    /// GA's view and the synthesized cost cannot diverge. Default for
    /// this reproduction; the `ablation_objective` bench compares both.
    GateEquivalents,
}

impl Default for AreaObjective {
    /// [`AreaObjective::GateEquivalents`], this reproduction's default.
    fn default() -> Self {
        AreaObjective::GateEquivalents
    }
}

/// The GA training problem: genomes decode to approximate MLPs which
/// are scored on (training error, estimated area).
///
/// Scoring is a pure function of the genes, so the problem composes
/// with [`crate::eval::CachedEvaluator`] for memoized, batch-parallel
/// evaluation; internally, per-neuron gate counts are memoized by
/// weight signature ([`MemoAreaEstimator`], shared across clones and
/// threads), so sibling genomes only pay for the neurons they changed.
#[derive(Debug, Clone)]
pub struct AxTrainProblem {
    spec: GenomeSpec,
    rows: Vec<Vec<u8>>,
    labels: Vec<usize>,
    estimator: MemoAreaEstimator,
    objective: AreaObjective,
    tech: TechLibrary,
    /// Exact-baseline accuracy on the same rows.
    baseline_accuracy: f64,
    /// Maximum tolerated accuracy loss during training (0.10).
    max_loss: f64,
}

impl AxTrainProblem {
    /// Create a training problem.
    ///
    /// `rows`/`labels` are the (possibly subsampled) quantized training
    /// split; `baseline_accuracy` is the exact baseline's accuracy used
    /// for the feasibility bound.
    ///
    /// # Panics
    ///
    /// Panics if rows and labels differ in length or are empty.
    #[must_use]
    pub fn new(
        spec: GenomeSpec,
        rows: Vec<Vec<u8>>,
        labels: Vec<usize>,
        baseline_accuracy: f64,
        max_loss: f64,
    ) -> Self {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty(), "fitness data must be non-empty");
        Self {
            spec,
            rows,
            labels,
            estimator: MemoAreaEstimator::new(AdderAreaEstimator::paper()),
            objective: AreaObjective::GateEquivalents,
            tech: TechLibrary::egfet(),
            baseline_accuracy,
            max_loss,
        }
    }

    /// Override the area objective (see [`AreaObjective`]).
    #[must_use]
    pub fn with_objective(mut self, objective: AreaObjective) -> Self {
        self.objective = objective;
        self
    }

    /// The genome layout being optimized.
    #[must_use]
    pub fn genome_spec(&self) -> &GenomeSpec {
        &self.spec
    }

    /// Number of fitness samples.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.rows.len()
    }

    /// The feasibility threshold: training accuracies below
    /// `baseline − max_loss` violate the constraint.
    #[must_use]
    pub fn accuracy_floor(&self) -> f64 {
        (self.baseline_accuracy - self.max_loss).max(0.0)
    }

    /// Score a decoded network directly (shared by the GA and the
    /// ablation benches). Returns `(accuracy, estimated area)` in the
    /// units of the configured [`AreaObjective`].
    #[must_use]
    pub fn score(&self, mlp: &pe_mlp::AxMlp) -> (f64, f64) {
        self.score_with(mlp, &mut InferenceScratch::new())
    }

    /// [`score`](Self::score) against caller-provided inference
    /// scratch buffers — the allocation-free batch hot path.
    #[must_use]
    pub fn score_with(&self, mlp: &pe_mlp::AxMlp, scratch: &mut InferenceScratch) -> (f64, f64) {
        let accuracy = mlp.accuracy_batch(&self.rows, &self.labels, scratch);
        let area = match self.objective {
            AreaObjective::FaCount => mlp
                .arith_specs()
                .iter()
                .flatten()
                .map(|n| self.estimator.counts(n).fa_equivalent())
                .sum(),
            AreaObjective::GateEquivalents => self.gate_equivalents(mlp),
        };
        (accuracy, area)
    }

    /// Analytic gate-equivalent area of a decoded network, mirroring
    /// the netlist elaborator: adder-tree FAs/HAs, sign-inversion NOTs,
    /// QReLU units, and the argmax comparator over bias-normalized
    /// output accumulators.
    #[must_use]
    pub fn gate_equivalents(&self, mlp: &pe_mlp::AxMlp) -> f64 {
        let mlp = &pe_mlp::fold_constants(mlp);
        let mut ge = 0.0f64;
        let last = mlp.layers.len().saturating_sub(1);
        for (li, layer) in mlp.layers.iter().enumerate() {
            let bias_shift = if li == last {
                layer.neurons.iter().map(|n| n.bias).min().unwrap_or(0)
            } else {
                0
            };
            let mut max_width = 1u32;
            for n in &layer.neurons {
                let mut spec = n.to_arith_spec(layer.input_bits);
                spec.bias -= i64::from(bias_shift);
                let counts = self.estimator.counts(&spec);
                ge += f64::from(counts.full_adders) * self.tech.ge(pe_hw::Cell::Fa)
                    + f64::from(counts.half_adders) * self.tech.ge(pe_hw::Cell::Ha)
                    + f64::from(counts.not_gates) * self.tech.ge(pe_hw::Cell::Not);
                max_width = max_width.max(counts.accumulator_bits);
                if let Some(q) = layer.qrelu {
                    let gates = qrelu_gate_counts(counts.accumulator_bits, q.out_bits, q.shift);
                    ge += self.counts_ge(&gates);
                }
            }
            if layer.qrelu.is_none() {
                let gates = argmax_gate_counts(layer.neurons.len(), max_width);
                ge += self.counts_ge(&gates);
            }
        }
        ge
    }

    fn counts_ge(&self, counts: &pe_hw::CellCounts) -> f64 {
        pe_hw::Cell::ALL
            .iter()
            .map(|&c| f64::from(counts.get(c)) * self.tech.ge(c))
            .sum()
    }
}

impl IntProblem for AxTrainProblem {
    fn bounds(&self) -> &[u32] {
        self.spec.bounds()
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        // One inference scratch per worker thread, reused across every
        // genome that thread scores — the per-sample *and* per-genome
        // buffer allocations both leave the hot loop.
        thread_local! {
            static SCRATCH: std::cell::RefCell<InferenceScratch> =
                std::cell::RefCell::new(InferenceScratch::new());
        }
        let mlp = self.spec.decode(genes);
        let (accuracy, area) =
            SCRATCH.with(|scratch| self.score_with(&mlp, &mut scratch.borrow_mut()));
        let objectives = vec![1.0 - accuracy, area];
        let floor = self.accuracy_floor();
        if accuracy + 1e-12 >= floor {
            Evaluation::feasible(objectives)
        } else {
            Evaluation::infeasible(objectives, floor - accuracy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::LayerGenomeSpec;

    /// A threshold problem a single masked neuron can solve: class 1
    /// iff x > 7.
    fn threshold_problem(max_loss: f64) -> AxTrainProblem {
        let spec = GenomeSpec::new(
            vec![LayerGenomeSpec {
                fan_in: 1,
                neurons: 2,
                input_bits: 4,
                qrelu: None,
            }],
            8,
            8,
        );
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v]).collect();
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        AxTrainProblem::new(spec, rows, labels, 1.0, max_loss)
    }

    /// Genome: neuron0 = const 0 (zero mask, bias 0), neuron1 = x − 7,
    /// so the argmax (ties to neuron0) flips to class 1 exactly at
    /// x = 8.
    fn good_genes(problem: &AxTrainProblem) -> Vec<u32> {
        let spec = problem.genome_spec();
        let mut genes = vec![0u32; spec.gene_count()];
        // Layout: n0: m,s,k,b  n1: m,s,k,b with bias offset 128.
        genes[3] = 128; // n0 bias = 0
        genes[4] = 0b1111; // n1 mask full
        genes[5] = 0; // positive
        genes[6] = 0; // k = 0
        genes[7] = 128 - 7; // n1 bias = -7
        genes
    }

    #[test]
    fn perfect_classifier_scores_zero_error() {
        let p = threshold_problem(0.10);
        let e = p.evaluate(&good_genes(&p));
        assert!(e.is_feasible());
        assert!(e.objectives[0] < 1e-9, "error {}", e.objectives[0]);
        assert!(e.objectives[1] > 0.0, "area must be positive");
    }

    #[test]
    fn empty_network_is_infeasible_under_tight_bound() {
        let p = threshold_problem(0.10);
        let genes = vec![0u32; p.genome_spec().gene_count()];
        let e = p.evaluate(&genes);
        // All-zero masks with huge negative biases: ~50% accuracy at
        // best, violating the 90% floor.
        assert!(!e.is_feasible());
        assert!(e.violation > 0.0);
    }

    #[test]
    fn area_objective_rewards_pruning() {
        // Three inputs per neuron so kept mask bits stack into 3-high
        // columns (real FAs) and pruning visibly reduces the objective.
        let spec = GenomeSpec::new(
            vec![LayerGenomeSpec {
                fan_in: 3,
                neurons: 2,
                input_bits: 4,
                qrelu: None,
            }],
            8,
            8,
        );
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v, v, v]).collect();
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        let p = AxTrainProblem::new(spec, rows, labels, 1.0, 1.0);
        // Neuron 0: three full-mask positive weights; neuron 1 inactive.
        let mut full = vec![0u32; p.genome_spec().gene_count()];
        for w in 0..3 {
            full[w * 3] = 0b1111; // mask
        }
        full[9] = 128; // n0 bias = 0
        full[19] = 128; // n1 bias = 0
        let mut pruned = full.clone();
        for w in 0..3 {
            pruned[w * 3] = 0b1000;
        }
        let e_full = p.evaluate(&full);
        let e_pruned = p.evaluate(&pruned);
        assert!(
            e_pruned.objectives[1] < e_full.objectives[1],
            "pruned {} vs full {}",
            e_pruned.objectives[1],
            e_full.objectives[1]
        );
    }

    #[test]
    fn floor_clamps_at_zero() {
        let p = threshold_problem(5.0);
        assert_eq!(p.accuracy_floor(), 0.0);
    }
}
