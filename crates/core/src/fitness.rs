//! The multi-objective fitness of Eq. (3):
//! `min [1 − Accuracy(θ, D), Area(θ)]`.
//!
//! Accuracy is the integer-exact inference of Eq. (4) on the training
//! split; area is the fast FA-count estimate of Eq. (2). The paper's
//! 10% accuracy-loss bound (§IV-A) is enforced through Deb's
//! constrained domination rather than a penalty term, so infeasible
//! chromosomes are still ordered by how close to feasibility they are.

use std::sync::Arc;

use pe_arith::{AdderAreaEstimator, MemoAreaEstimator};
use pe_hw::variation::{RobustStat, VariationConfig, VariationModel};
use pe_hw::{argmax_gate_counts, qrelu_gate_counts, CostScenario};
use pe_mlp::columnar::{self, ColumnMatrix, QuantMatrix};
use pe_mlp::InferenceScratch;
use pe_nsga::{Evaluation, IntProblem};
use serde::{Deserialize, Serialize};

use crate::columns::{ColumnCacheStats, NeuronColumnCache, ROOT_SIGNATURE};
use crate::genome::GenomeSpec;

/// Which area model the GA minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AreaObjective {
    /// The paper's Eq. (2): per-neuron FA count of the adder trees.
    /// Blind to accumulator width downstream of the trees (QReLU and
    /// argmax comparators), which the paper's far larger GA budget
    /// compensates for.
    FaCount,
    /// Full analytic gate-equivalent estimate: adder trees plus NOT
    /// gates, QReLU saturation units and the argmax comparator tree —
    /// the same formulas the netlist elaborator instantiates, so the
    /// GA's view and the synthesized cost cannot diverge. Default for
    /// this reproduction; the `ablation_objective` bench compares both.
    GateEquivalents,
}

impl Default for AreaObjective {
    /// [`AreaObjective::GateEquivalents`], this reproduction's default.
    fn default() -> Self {
        AreaObjective::GateEquivalents
    }
}

/// The GA training problem: genomes decode to approximate MLPs which
/// are scored on (training error, estimated area).
///
/// Scoring is a pure function of the genes, so the problem composes
/// with [`crate::eval::CachedEvaluator`] for memoized, batch-parallel
/// evaluation.
///
/// Internally the accuracy objective runs on the **columnar engine**:
/// the dataset is transposed once into a [`ColumnMatrix`], every
/// weight becomes a branch-free LUT kernel
/// ([`pe_mlp::columnar`]), and neuron output columns are memoized in a
/// population-level [`NeuronColumnCache`] shared across clones and
/// threads — sibling genomes only pay for the neurons mutation
/// actually touched. Per-neuron gate counts are likewise memoized by
/// weight signature ([`MemoAreaEstimator`]). The columnar path is
/// bit-exact with the per-row oracle ([`score_with`](Self::score_with),
/// i.e. [`pe_mlp::AxMlp::predict_with`] per sample), which the parity
/// test-suite proves.
#[derive(Debug, Clone)]
pub struct AxTrainProblem {
    spec: GenomeSpec,
    rows: QuantMatrix,
    /// The transposed dataset the columnar kernels stream over.
    columns: ColumnMatrix,
    labels: Vec<usize>,
    estimator: MemoAreaEstimator,
    /// Population-level neuron-column memo (shared by clones).
    col_cache: Arc<NeuronColumnCache>,
    objective: AreaObjective,
    /// The cost scenario the GA optimizes under: technology (GE
    /// weights and per-GE power), operating supply, and the optional
    /// power budget enforced through constrained domination.
    scenario: CostScenario,
    /// Estimated mW per gate equivalent at the scenario's supply
    /// (precomputed: `power_per_ge_mw × power_scale(supply)`).
    power_per_ge_at_supply: f64,
    /// Exact-baseline accuracy on the same rows.
    baseline_accuracy: f64,
    /// Maximum tolerated accuracy loss during training (0.10).
    max_loss: f64,
    /// Monte-Carlo variation state when the search is robust
    /// ([`with_variation`](Self::with_variation)); `None` keeps the
    /// historical nominal fitness bit for bit.
    robust: Option<RobustContext>,
    /// Design-store ingest hook ([`with_sink`](Self::with_sink)):
    /// records every unique evaluated design. A pure side channel —
    /// attaching a sink never changes any evaluation or RNG stream.
    sink: Option<crate::store::StoreSink>,
}

/// Precomputed Monte-Carlo state of a variation-aware problem: the
/// trial-major extended dataset (transposed once) plus the per-trial
/// seeds. Built by [`AxTrainProblem::with_variation`].
#[derive(Debug, Clone)]
struct RobustContext {
    model: VariationModel,
    statistic: RobustStat,
    /// `trial_seed(master, t)` for `t = 0..M`.
    trial_seeds: Vec<u64>,
    /// The extended dataset columns: trial `t`'s segment is
    /// `[t·n, (t+1)·n)` of every feature column.
    columns: ColumnMatrix,
    /// Samples per trial (= the nominal dataset's row count).
    segment: usize,
}

impl AxTrainProblem {
    /// Create a training problem.
    ///
    /// `rows`/`labels` are the (possibly subsampled) quantized training
    /// split; `baseline_accuracy` is the exact baseline's accuracy used
    /// for the feasibility bound. The dataset is transposed to the
    /// columnar layout once, here, and a fresh neuron-column cache
    /// (sized to the sample count) is attached.
    ///
    /// # Panics
    ///
    /// Panics if rows and labels differ in length or are empty. (The
    /// accuracy APIs themselves define empty data as `0.0`, but a GA
    /// fitness over zero samples is always a configuration bug, so the
    /// constructor rejects it outright.)
    #[must_use]
    pub fn new(
        spec: GenomeSpec,
        rows: QuantMatrix,
        labels: Vec<usize>,
        baseline_accuracy: f64,
        max_loss: f64,
    ) -> Self {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty(), "fitness data must be non-empty");
        let columns = rows.columns();
        let col_cache = Arc::new(NeuronColumnCache::for_samples(rows.len()));
        let scenario = CostScenario::default();
        let power_per_ge_at_supply = power_per_ge_at_supply(&scenario);
        Self {
            spec,
            rows,
            columns,
            labels,
            estimator: MemoAreaEstimator::new(AdderAreaEstimator::paper()),
            col_cache,
            objective: AreaObjective::GateEquivalents,
            scenario,
            power_per_ge_at_supply,
            baseline_accuracy,
            max_loss,
            robust: None,
            sink: None,
        }
    }

    /// Override the area objective (see [`AreaObjective`]).
    #[must_use]
    pub fn with_objective(mut self, objective: AreaObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Optimize under a [`CostScenario`]: the technology supplies the
    /// GE weights and per-GE power, the supply voltage scales the power
    /// estimate, and a power budget (if any) becomes an additional
    /// constrained-domination violation — the GA then searches for
    /// designs a given printed power source can actually drive.
    ///
    /// The default scenario (nominal EGFET, no budget) reproduces the
    /// historical fitness bit for bit.
    #[must_use]
    pub fn with_scenario(mut self, scenario: CostScenario) -> Self {
        self.power_per_ge_at_supply = power_per_ge_at_supply(&scenario);
        self.scenario = scenario;
        self
    }

    /// The active cost scenario.
    #[must_use]
    pub fn scenario(&self) -> &CostScenario {
        &self.scenario
    }

    /// Optimize the robust accuracy statistic over Monte-Carlo
    /// variation trials instead of the nominal accuracy.
    ///
    /// The M perturbed trials are appended as extra sample segments of
    /// the columnar engine (one input-perturbed dataset copy per
    /// trial, built here, transposed once), so a robust evaluation
    /// costs ~M× a nominal one *in total* — per-trial hidden columns
    /// are memoized in the shared [`NeuronColumnCache`] under device
    /// slot `t + 1` exactly like nominal columns under slot `0`.
    /// `master_seed` keys the deterministic per-trial samplers
    /// ([`pe_hw::variation::trial_seed`]).
    ///
    /// With a zero-variance model every draw is an exact no-op and
    /// every evaluation equals the nominal one bit for bit (proven by
    /// the `robust_parity` suite).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`VariationConfig::validate`] (the
    /// pipeline rejects such configs before they reach the trainer).
    #[must_use]
    pub fn with_variation(mut self, config: &VariationConfig, master_seed: u64) -> Self {
        config.validate().expect("a valid variation config");
        let input_bits = self.spec.layers().first().map_or(4, |l| l.input_bits);
        let trial_seeds = crate::robust::trial_seeds(master_seed, config.trials);
        let extended =
            crate::robust::extended_matrix(&self.rows, &config.model, &trial_seeds, input_bits);
        self.robust = Some(RobustContext {
            model: config.model,
            statistic: config.statistic,
            trial_seeds,
            columns: extended.columns(),
            segment: self.rows.len(),
        });
        self
    }

    /// Attach a design-store sink: every *unique* design this problem
    /// evaluates (the genome memo upstream already deduplicates
    /// repeats) is recorded with its nominal training accuracy, the
    /// robust statistic when the search runs under
    /// [`with_variation`](Self::with_variation), and its area
    /// objective. Ingest is a pure side effect — evaluations, RNG
    /// streams and fronts are byte-identical with or without a sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Option<crate::store::StoreSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Replace the neuron-column cache with one split across an
    /// explicit shard count (see
    /// [`NeuronColumnCache::with_shards`]). A concurrency knob only —
    /// any shard count yields byte-identical evaluations, which the
    /// sharded-cache determinism test pins down. The default cache
    /// follows the `PE_CACHE_SHARDS` environment variable.
    ///
    /// Call before evaluations start: the fresh cache begins cold.
    #[must_use]
    pub fn with_column_shards(mut self, shards: usize) -> Self {
        self.col_cache = Arc::new(NeuronColumnCache::for_samples_with_shards(
            self.rows.len(),
            shards,
        ));
        self
    }

    /// Estimated power in mW of `area_ge` gate equivalents at the
    /// scenario's operating supply — the per-cell GE→mW roll-up the
    /// fast cost layer uses for the power constraint.
    ///
    /// This is a *training-time* estimate: it excludes the netlist's
    /// two shared tie cells (≤ 0.66 GE for the whole design), so it
    /// sits a hair below the evaluated report power. The authoritative
    /// budget check is
    /// [`select_within_budgets`](crate::pareto::select_within_budgets)
    /// on the costed front — a design grazing the budget during
    /// training can still be excluded there, which only tightens the
    /// reported selection, never loosens it.
    #[must_use]
    pub fn estimated_power_mw(&self, area_ge: f64) -> f64 {
        area_ge * self.power_per_ge_at_supply
    }

    /// The genome layout being optimized.
    #[must_use]
    pub fn genome_spec(&self) -> &GenomeSpec {
        &self.spec
    }

    /// Number of fitness samples.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.rows.len()
    }

    /// The feasibility threshold: training accuracies below
    /// `baseline − max_loss` violate the constraint.
    #[must_use]
    pub fn accuracy_floor(&self) -> f64 {
        (self.baseline_accuracy - self.max_loss).max(0.0)
    }

    /// Score a decoded network directly (shared by the GA and the
    /// ablation benches). Returns `(accuracy, estimated area)` in the
    /// units of the configured [`AreaObjective`]. Runs on the columnar
    /// engine with the shared neuron-column cache — bit-exact with the
    /// per-row oracle [`score_with`](Self::score_with). Under
    /// [`with_variation`](Self::with_variation) the accuracy is the
    /// configured robust statistic over the Monte-Carlo trials.
    #[must_use]
    pub fn score(&self, mlp: &pe_mlp::AxMlp) -> (f64, f64) {
        let mut scratch = ColumnarEvalScratch::default();
        (self.fitness_accuracy(mlp, &mut scratch), self.area_of(mlp))
    }

    /// The per-row **nominal reference oracle**: one
    /// [`predict_with`](pe_mlp::AxMlp::predict_with) per sample against
    /// caller-provided scratch buffers. The columnar engine behind
    /// [`score`](Self::score) / [`IntProblem::evaluate`] is proven
    /// bit-exact against this path by the parity test-suite; keep new
    /// scoring fast paths checked against it too. Always nominal: the
    /// robust counterpart is [`crate::robust::mc_accuracy`].
    #[must_use]
    pub fn score_with(&self, mlp: &pe_mlp::AxMlp, scratch: &mut InferenceScratch) -> (f64, f64) {
        let accuracy = mlp.accuracy_batch(&self.rows, &self.labels, scratch);
        (accuracy, self.area_of(mlp))
    }

    /// Estimated area under the configured [`AreaObjective`].
    fn area_of(&self, mlp: &pe_mlp::AxMlp) -> f64 {
        match self.objective {
            AreaObjective::FaCount => mlp
                .arith_specs()
                .iter()
                .flatten()
                .map(|n| self.estimator.counts(n).fa_equivalent())
                .sum(),
            AreaObjective::GateEquivalents => self.gate_equivalents(mlp),
        }
    }

    /// Snapshot the shared neuron-column cache's counters (surfaced per
    /// GA generation as
    /// [`ProgressEvent::EvalCache`](crate::ProgressEvent::EvalCache)).
    #[must_use]
    pub fn column_cache_stats(&self) -> ColumnCacheStats {
        self.col_cache.stats()
    }

    /// Lifetime `(hits, misses)` of the per-neuron gate-count memo —
    /// the fast cost layer's memoization — surfaced per GA generation
    /// as the `cost_*` counters of
    /// [`ProgressEvent::EvalCache`](crate::ProgressEvent::EvalCache).
    #[must_use]
    pub fn cost_cache_stats(&self) -> (u64, u64) {
        self.estimator.cache_stats()
    }

    /// The attached sink's ingest counters (all zero without a sink) —
    /// surfaced per GA generation as the `store_*` counters of
    /// [`ProgressEvent::EvalCache`](crate::ProgressEvent::EvalCache).
    #[must_use]
    pub fn store_stats(&self) -> pe_store::StoreStats {
        self.sink
            .as_ref()
            .map(crate::store::StoreSink::stats)
            .unwrap_or_default()
    }

    /// The accuracy the GA optimizes: nominal columnar accuracy, or —
    /// under [`with_variation`](Self::with_variation) — the robust
    /// statistic over the Monte-Carlo trials. With a zero-variance
    /// model the two are equal bit for bit.
    fn fitness_accuracy(&self, mlp: &pe_mlp::AxMlp, scratch: &mut ColumnarEvalScratch) -> f64 {
        match &self.robust {
            Some(robust) => self.robust_accuracy(mlp, robust, scratch),
            None => self.columnar_accuracy(mlp, scratch),
        }
    }

    /// The robust statistic over the per-trial accuracies of the
    /// extended columns (one trial = one segment; see
    /// [`with_variation`](Self::with_variation)).
    fn robust_accuracy(
        &self,
        mlp: &pe_mlp::AxMlp,
        robust: &RobustContext,
        scratch: &mut ColumnarEvalScratch,
    ) -> f64 {
        let n = robust.segment;
        if n == 0 {
            return 0.0; // the workspace-wide empty-data convention
        }
        let accs: Vec<f64> = (0..robust.trial_seeds.len())
            .map(|t| self.trial_hits(mlp, robust, t, scratch) as f64 / n as f64)
            .collect();
        robust.statistic.statistic(&accs)
    }

    /// One Monte-Carlo trial's hit count: the same cached layer walk
    /// as [`columnar_accuracy`](Self::columnar_accuracy), but over
    /// trial `t`'s segment of the extended columns, with the trial's
    /// per-device gain/offset draws applied to every accumulator
    /// pre-activation. Hidden columns are cached under device slot
    /// `t + 1` *and* the neuron's position within its layer (the draw
    /// is keyed by both), so they never alias nominal (slot `0`)
    /// columns, duplicate specs at different positions never alias
    /// each other, and population siblings still share everything
    /// mutation didn't touch. The output layer stays at i64 width — the draw
    /// adjustment is i64 arithmetic — and remains uncached like the
    /// nominal path's.
    fn trial_hits(
        &self,
        mlp: &pe_mlp::AxMlp,
        robust: &RobustContext,
        trial: usize,
        scratch: &mut ColumnarEvalScratch,
    ) -> usize {
        let n = robust.segment;
        let base = trial * n;
        let tseed = robust.trial_seeds[trial];
        let device = trial as u32 + 1;
        let model = &robust.model;
        let cache = &*self.col_cache;
        let kernel = columnar::kernel_mode();
        let mut signature = ROOT_SIGNATURE;
        let mut pending_signature: Option<(&[pe_mlp::AxNeuron], pe_mlp::QReluCfg)> = None;
        let ColumnarEvalScratch {
            acc,
            narrow,
            col,
            out_accs,
            best_value,
            best_index,
            act,
            next_act,
            kernel: kscratch,
            ..
        } = scratch;
        act.clear();
        // The trial's segment of every extended feature column, built
        // once per trial; deeper layers pass their `Arc` column storage
        // to the (generic) kernels directly.
        let refs: Vec<&[u8]> = (0..robust.columns.width())
            .map(|f| &robust.columns.col(f)[base..base + n])
            .collect();
        let mut first = true;
        for (li, layer) in mlp.layers.iter().enumerate() {
            match layer.qrelu {
                Some(q) => {
                    if let Some((prev, prev_q)) = pending_signature.take() {
                        signature = cache.layer_signature(li - 1, signature, prev_q, prev);
                    }
                    next_act.clear();
                    for (ni, neuron) in layer.neurons.iter().enumerate() {
                        let draw = model.device_draw(tseed, li, ni, layer.input_bits);
                        // The draw above depends on `ni`, so the cache
                        // key must too: identical specs at different
                        // positions are *different* perturbed columns.
                        next_act.push(cache.hidden_column(
                            li,
                            signature,
                            layer.input_bits,
                            q,
                            device,
                            ni as u32,
                            neuron,
                            || {
                                if first {
                                    columnar::accumulate_neuron_column_kernel(
                                        kernel, neuron, &refs, n, acc, narrow, kscratch,
                                    );
                                } else {
                                    columnar::accumulate_neuron_column_kernel(
                                        kernel,
                                        neuron,
                                        &act[..],
                                        n,
                                        acc,
                                        narrow,
                                        kscratch,
                                    );
                                }
                                if !draw.is_identity() {
                                    for a in acc.iter_mut() {
                                        *a = draw.apply(*a);
                                    }
                                }
                                columnar::qrelu_column(q, acc, col);
                                Arc::from(col.as_slice())
                            },
                        ));
                    }
                    pending_signature = Some((&layer.neurons, q));
                    std::mem::swap(act, next_act);
                    first = false;
                }
                None => {
                    let count = layer.neurons.len();
                    out_accs.resize(count, Vec::new());
                    for (ni, (neuron, out)) in
                        layer.neurons.iter().zip(out_accs.iter_mut()).enumerate()
                    {
                        if first {
                            columnar::accumulate_neuron_column_kernel(
                                kernel, neuron, &refs, n, acc, narrow, kscratch,
                            );
                        } else {
                            columnar::accumulate_neuron_column_kernel(
                                kernel,
                                neuron,
                                &act[..],
                                n,
                                acc,
                                narrow,
                                kscratch,
                            );
                        }
                        let draw = model.device_draw(tseed, li, ni, layer.input_bits);
                        if !draw.is_identity() {
                            for a in acc.iter_mut() {
                                *a = draw.apply(*a);
                            }
                        }
                        std::mem::swap(acc, out);
                    }
                    return argmax_hits(&out_accs[..count], &self.labels, best_index, best_value);
                }
            }
        }
        // Trailing-QReLU topology: argmax over the final activations.
        let preds = if first {
            columnar::argmax_columns(&refs, n)
        } else {
            columnar::argmax_columns(&act[..], n)
        };
        preds
            .iter()
            .zip(&self.labels)
            .filter(|&(p, l)| p == l)
            .count()
    }

    /// Training accuracy of a decoded network on the columnar engine:
    /// hidden and output neuron columns come from the shared
    /// [`NeuronColumnCache`] when the population has already computed
    /// them; misses run the branch-free LUT kernels over the transposed
    /// dataset. Bit-exact with the per-row oracle.
    fn columnar_accuracy(&self, mlp: &pe_mlp::AxMlp, scratch: &mut ColumnarEvalScratch) -> f64 {
        let n = self.labels.len();
        if n == 0 {
            return 0.0; // the workspace-wide empty-data convention
        }
        let cache = &*self.col_cache;
        let kernel = columnar::kernel_mode();
        let mut signature = ROOT_SIGNATURE;
        // The previous *hidden* layer's neurons, not yet interned: the
        // signature is only needed to key columns of a deeper hidden
        // layer, so interning is deferred until one actually appears
        // (the ubiquitous one-hidden-layer topology never pays for it).
        let mut pending_signature: Option<(&[pe_mlp::AxNeuron], pe_mlp::QReluCfg)> = None;
        let ColumnarEvalScratch {
            acc,
            narrow,
            col,
            out_accs,
            out_narrow,
            best_value,
            best_narrow,
            best_index,
            act,
            next_act,
            kernel: kscratch,
            ..
        } = scratch;
        act.clear();
        // Layer 0's input columns, built once per evaluation into a
        // small ref vector; deeper layers pass their `Arc` column
        // storage to the (generic) kernels directly — no per-layer ref
        // vector at all.
        let mut refs: Vec<&[u8]> = Vec::with_capacity(self.columns.width());
        self.columns.col_refs_into(&mut refs);
        let mut first = true;
        for (li, layer) in mlp.layers.iter().enumerate() {
            match layer.qrelu {
                Some(q) => {
                    if let Some((prev, prev_q)) = pending_signature.take() {
                        signature = cache.layer_signature(li - 1, signature, prev_q, prev);
                    }
                    next_act.clear();
                    for neuron in &layer.neurons {
                        next_act.push(cache.hidden_column(
                            li,
                            signature,
                            layer.input_bits,
                            q,
                            0, // the nominal device…
                            0, // …whose columns are position-independent
                            neuron,
                            || {
                                if first {
                                    columnar::hidden_column_kernel(
                                        kernel, neuron, &refs, n, q, acc, narrow, kscratch, col,
                                    );
                                } else {
                                    columnar::hidden_column_kernel(
                                        kernel,
                                        neuron,
                                        &act[..],
                                        n,
                                        q,
                                        acc,
                                        narrow,
                                        kscratch,
                                        col,
                                    );
                                }
                                Arc::from(col.as_slice())
                            },
                        ));
                    }
                    pending_signature = Some((&layer.neurons, q));
                    std::mem::swap(act, next_act);
                    first = false;
                }
                None => {
                    // Output (argmax) layer: computed directly into
                    // scratch, uncached — its accumulators depend on
                    // *every* hidden column, so any upstream mutation
                    // would invalidate them anyway, and exact repeats
                    // are already absorbed by the genome memo upstream.
                    // The whole layer stays at i32 width (accumulate,
                    // argmax) whenever every neuron provably fits —
                    // bit-exact, and twice the SIMD lanes.
                    let count = layer.neurons.len();
                    let hits = if layer.neurons.iter().all(columnar::fits_i32) {
                        out_narrow.resize(count, Vec::new());
                        for (neuron, out) in layer.neurons.iter().zip(out_narrow.iter_mut()) {
                            if first {
                                columnar::accumulate_neuron_column_narrow_kernel(
                                    kernel, neuron, &refs, n, narrow, kscratch,
                                );
                            } else {
                                columnar::accumulate_neuron_column_narrow_kernel(
                                    kernel,
                                    neuron,
                                    &act[..],
                                    n,
                                    narrow,
                                    kscratch,
                                );
                            }
                            std::mem::swap(narrow, out);
                        }
                        argmax_hits_narrow(
                            kernel,
                            &out_narrow[..count],
                            &self.labels,
                            best_index,
                            best_narrow,
                        )
                    } else {
                        out_accs.resize(count, Vec::new());
                        for (neuron, out) in layer.neurons.iter().zip(out_accs.iter_mut()) {
                            if first {
                                columnar::accumulate_neuron_column_kernel(
                                    kernel, neuron, &refs, n, acc, narrow, kscratch,
                                );
                            } else {
                                columnar::accumulate_neuron_column_kernel(
                                    kernel,
                                    neuron,
                                    &act[..],
                                    n,
                                    acc,
                                    narrow,
                                    kscratch,
                                );
                            }
                            std::mem::swap(acc, out);
                        }
                        argmax_hits(&out_accs[..count], &self.labels, best_index, best_value)
                    };
                    return hits as f64 / n as f64;
                }
            }
        }
        // A network whose last layer has a QReLU (unusual): argmax over
        // the final activation columns, mirroring the row oracle.
        let preds = if first {
            columnar::argmax_columns(&refs, n)
        } else {
            columnar::argmax_columns(&act[..], n)
        };
        let hits = preds
            .iter()
            .zip(&self.labels)
            .filter(|&(p, l)| p == l)
            .count();
        hits as f64 / n as f64
    }

    /// Assemble the Eq. (3) [`Evaluation`] from a scored
    /// `(accuracy, area)` pair: minimized objectives plus the 10%
    /// feasibility bound — and, under a power-budgeted
    /// [`CostScenario`], the power excess — as a constrained-domination
    /// violation (Deb's rule sums the normalized violations). The
    /// single definition of the fitness formula — reference oracles
    /// (bench, parity tests) build their evaluations through this too,
    /// so they can never drift from the real path.
    ///
    /// # Panics
    ///
    /// Panics if a power budget is configured together with the
    /// [`AreaObjective::FaCount`] proxy: the FA count carries no
    /// gate-equivalent information, so no power figure can be derived
    /// from it (the pipeline validates this at configuration time).
    #[must_use]
    pub fn evaluation_of(&self, accuracy: f64, area: f64) -> Evaluation {
        let objectives = vec![1.0 - accuracy, area];
        let floor = self.accuracy_floor();
        let mut violation = if accuracy + 1e-12 >= floor {
            0.0
        } else {
            floor - accuracy
        };
        if let Some(budget) = self.scenario.power_budget_mw {
            assert!(
                self.objective == AreaObjective::GateEquivalents,
                "a power budget requires the GateEquivalents area objective"
            );
            let power = self.estimated_power_mw(area);
            if power > budget {
                violation += (power - budget) / budget.max(f64::MIN_POSITIVE);
            }
        }
        if violation > 0.0 {
            Evaluation::infeasible(objectives, violation)
        } else {
            Evaluation::feasible(objectives)
        }
    }

    /// Full evaluation (objectives + feasibility) against reusable
    /// columnar scratch buffers. With a design-store sink attached the
    /// scored design is recorded as a side effect — for robust
    /// searches the record additionally carries the nominal accuracy
    /// (one extra cached columnar pass per unique design).
    fn evaluate_with(&self, genes: &[u32], scratch: &mut ColumnarEvalScratch) -> Evaluation {
        // Decode in place into the scratch-owned network (taken out for
        // the duration of the call so `scratch`'s buffers stay free to
        // borrow), then hand the allocations back for the next genome.
        let mut mlp = std::mem::take(&mut scratch.decoded);
        self.spec.decode_into(genes, &mut mlp);
        let accuracy = self.fitness_accuracy(&mlp, scratch);
        let area = self.area_of(&mlp);
        if let Some(sink) = &self.sink {
            let (nominal, robust) = if self.robust.is_some() {
                (self.columnar_accuracy(&mlp, scratch), Some(accuracy))
            } else {
                (accuracy, None)
            };
            sink.record_evaluation(&mlp, nominal, robust, area);
        }
        scratch.decoded = mlp;
        self.evaluation_of(accuracy, area)
    }

    /// Analytic gate-equivalent area of a decoded network, mirroring
    /// the netlist elaborator: adder-tree FAs/HAs, sign-inversion NOTs,
    /// QReLU units, and the argmax comparator over bias-normalized
    /// output accumulators.
    #[must_use]
    pub fn gate_equivalents(&self, mlp: &pe_mlp::AxMlp) -> f64 {
        // Constant folding only changes anything when some hidden
        // neuron is fully masked; skipping it otherwise keeps the hot
        // path free of a whole-network clone.
        let folded;
        let mlp = if has_constant_hidden_neuron(mlp) {
            folded = pe_mlp::fold_constants(mlp);
            &folded
        } else {
            mlp
        };
        let tech = &self.scenario.tech;
        let mut ge = 0.0f64;
        let last = mlp.layers.len().saturating_sub(1);
        // One reused spec buffer: the memo probe below is borrowed, so
        // the warm path allocates nothing per neuron.
        let mut spec = pe_arith::NeuronArithSpec {
            input_bits: 0,
            weights: Vec::new(),
            bias: 0,
        };
        for (li, layer) in mlp.layers.iter().enumerate() {
            let bias_shift = if li == last {
                layer.neurons.iter().map(|n| n.bias).min().unwrap_or(0)
            } else {
                0
            };
            let mut max_width = 1u32;
            for n in &layer.neurons {
                n.to_arith_spec_into(layer.input_bits, &mut spec);
                spec.bias -= i64::from(bias_shift);
                // Pruned weights are wired out of the hardware, so the
                // estimate ignores them — dropping them here makes the
                // memo key canonical: drifting a don't-care gene of a
                // masked-out weight no longer misses the cost cache.
                spec.weights.retain(|w| w.mask != 0);
                let counts = self.estimator.counts(&spec);
                // The single pe-arith → pe-hw gate-count conversion.
                ge += tech.ge_total(&pe_hw::CellCounts::from(&counts));
                max_width = max_width.max(counts.accumulator_bits);
                if let Some(q) = layer.qrelu {
                    let gates = qrelu_gate_counts(counts.accumulator_bits, q.out_bits, q.shift);
                    ge += tech.ge_total(&gates);
                }
            }
            if layer.qrelu.is_none() {
                let gates = argmax_gate_counts(layer.neurons.len(), max_width);
                ge += tech.ge_total(&gates);
            }
        }
        ge
    }
}

/// Estimated mW per gate equivalent at a scenario's operating supply.
fn power_per_ge_at_supply(scenario: &CostScenario) -> f64 {
    scenario.tech.power_per_ge_mw * scenario.vdd.power_scale(scenario.supply_v)
}

/// Whether [`pe_mlp::fold_constants`] could change `mlp` at all: some
/// hidden (pre-output) layer holds a fully-masked (constant) neuron.
fn has_constant_hidden_neuron(mlp: &pe_mlp::AxMlp) -> bool {
    let last = mlp.layers.len().saturating_sub(1);
    mlp.layers.iter().take(last).any(|layer| {
        layer.qrelu.is_some()
            && layer
                .neurons
                .iter()
                .any(|n| n.weights.iter().all(|w| w.mask == 0))
    })
}

/// Reusable buffers for the cached columnar scoring path (LUT,
/// accumulator column, activation column). One per worker thread / per
/// batch; grows to the dataset size once. `act`/`next_act` are the
/// batch-scoped arena for the per-wave activation column sets: the
/// `Arc` handles are cheap clones of cached columns, and keeping the
/// two `Vec`s here means the layer walk stops allocating a fresh
/// column-set vector per layer per genome.
#[derive(Debug, Default)]
struct ColumnarEvalScratch {
    acc: Vec<i64>,
    narrow: Vec<i32>,
    col: Vec<u8>,
    out_accs: Vec<Vec<i64>>,
    out_narrow: Vec<Vec<i32>>,
    best_value: Vec<i64>,
    best_narrow: Vec<i32>,
    best_index: Vec<u32>,
    act: Vec<Arc<[u8]>>,
    next_act: Vec<Arc<[u8]>>,
    kernel: columnar::KernelScratch,
    /// Decode-in-place network, reused across genomes so the decode
    /// step allocates nothing in steady state.
    decoded: pe_mlp::AxMlp,
}

/// Per-sample argmax over neuron-major accumulator columns, ties to
/// the lowest index (the hardware comparator / row oracle), counting
/// agreements with `labels`. Neuron-major sweep with a running best
/// value/index pair per sample: every pass is a linear walk over
/// contiguous columns.
fn argmax_hits<T: Copy + PartialOrd>(
    accs: &[Vec<T>],
    labels: &[usize],
    best_index: &mut Vec<u32>,
    best_value: &mut Vec<T>,
) -> usize {
    best_value.clear();
    best_value.extend_from_slice(&accs[0]);
    best_index.clear();
    best_index.resize(labels.len(), 0);
    for (j, acc) in accs.iter().enumerate().skip(1) {
        let j = j as u32;
        for ((b, v), &x) in best_index
            .iter_mut()
            .zip(best_value.iter_mut())
            .zip(acc.iter())
        {
            if x > *v {
                *b = j;
                *v = x;
            }
        }
    }
    best_index
        .iter()
        .zip(labels)
        .filter(|&(&b, &l)| b as usize == l)
        .count()
}

/// [`argmax_hits`] over narrow (`i32`) columns: under the explicit
/// SIMD kernel the per-column update runs vectorized (bit-exact —
/// same strictly-greater rule, same column order); every other kernel
/// mode, and hosts without the vector path, take the scalar sweep.
fn argmax_hits_narrow(
    kernel: pe_mlp::KernelKind,
    accs: &[Vec<i32>],
    labels: &[usize],
    best_index: &mut Vec<u32>,
    best_value: &mut Vec<i32>,
) -> usize {
    if kernel == pe_mlp::KernelKind::Simd {
        best_value.clear();
        best_value.extend_from_slice(&accs[0]);
        best_index.clear();
        best_index.resize(labels.len(), 0);
        let vectored = accs.iter().enumerate().skip(1).all(|(j, acc)| {
            pe_mlp::simd::argmax_update_narrow(j as u32, acc, best_index, best_value)
        });
        if vectored {
            return best_index
                .iter()
                .zip(labels)
                .filter(|&(&b, &l)| b as usize == l)
                .count();
        }
    }
    argmax_hits(accs, labels, best_index, best_value)
}

impl IntProblem for AxTrainProblem {
    fn bounds(&self) -> &[u32] {
        self.spec.bounds()
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        // One columnar scratch per worker thread, reused across every
        // genome that thread scores — the per-column buffer
        // allocations leave the hot loop entirely.
        thread_local! {
            static SCRATCH: std::cell::RefCell<ColumnarEvalScratch> =
                std::cell::RefCell::new(ColumnarEvalScratch::default());
        }
        SCRATCH.with(|scratch| self.evaluate_with(genes, &mut scratch.borrow_mut()))
    }

    /// Native batch path: one scratch for the whole wave, every genome
    /// scored through the shared neuron-column cache (so intra-wave
    /// siblings reuse each other's columns immediately). Results are in
    /// input order and identical to per-genome
    /// [`evaluate`](IntProblem::evaluate) calls.
    fn evaluate_batch(&self, genomes: &[Vec<u32>]) -> Vec<Evaluation> {
        let mut scratch = ColumnarEvalScratch::default();
        genomes
            .iter()
            .map(|genes| self.evaluate_with(genes, &mut scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::LayerGenomeSpec;

    /// A threshold problem a single masked neuron can solve: class 1
    /// iff x > 7.
    fn threshold_problem(max_loss: f64) -> AxTrainProblem {
        let spec = GenomeSpec::new(
            vec![LayerGenomeSpec {
                fan_in: 1,
                neurons: 2,
                input_bits: 4,
                qrelu: None,
            }],
            8,
            8,
        );
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v]).collect();
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        AxTrainProblem::new(spec, QuantMatrix::from_rows(&rows), labels, 1.0, max_loss)
    }

    /// Genome: neuron0 = const 0 (zero mask, bias 0), neuron1 = x − 7,
    /// so the argmax (ties to neuron0) flips to class 1 exactly at
    /// x = 8.
    fn good_genes(problem: &AxTrainProblem) -> Vec<u32> {
        let spec = problem.genome_spec();
        let mut genes = vec![0u32; spec.gene_count()];
        // Layout: n0: m,s,k,b  n1: m,s,k,b with bias offset 128.
        genes[3] = 128; // n0 bias = 0
        genes[4] = 0b1111; // n1 mask full
        genes[5] = 0; // positive
        genes[6] = 0; // k = 0
        genes[7] = 128 - 7; // n1 bias = -7
        genes
    }

    #[test]
    fn perfect_classifier_scores_zero_error() {
        let p = threshold_problem(0.10);
        let e = p.evaluate(&good_genes(&p));
        assert!(e.is_feasible());
        assert!(e.objectives[0] < 1e-9, "error {}", e.objectives[0]);
        assert!(e.objectives[1] > 0.0, "area must be positive");
    }

    #[test]
    fn empty_network_is_infeasible_under_tight_bound() {
        let p = threshold_problem(0.10);
        let genes = vec![0u32; p.genome_spec().gene_count()];
        let e = p.evaluate(&genes);
        // All-zero masks with huge negative biases: ~50% accuracy at
        // best, violating the 90% floor.
        assert!(!e.is_feasible());
        assert!(e.violation > 0.0);
    }

    #[test]
    fn area_objective_rewards_pruning() {
        // Three inputs per neuron so kept mask bits stack into 3-high
        // columns (real FAs) and pruning visibly reduces the objective.
        let spec = GenomeSpec::new(
            vec![LayerGenomeSpec {
                fan_in: 3,
                neurons: 2,
                input_bits: 4,
                qrelu: None,
            }],
            8,
            8,
        );
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v, v, v]).collect();
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        let p = AxTrainProblem::new(spec, QuantMatrix::from_rows(&rows), labels, 1.0, 1.0);
        // Neuron 0: three full-mask positive weights; neuron 1 inactive.
        let mut full = vec![0u32; p.genome_spec().gene_count()];
        for w in 0..3 {
            full[w * 3] = 0b1111; // mask
        }
        full[9] = 128; // n0 bias = 0
        full[19] = 128; // n1 bias = 0
        let mut pruned = full.clone();
        for w in 0..3 {
            pruned[w * 3] = 0b1000;
        }
        let e_full = p.evaluate(&full);
        let e_pruned = p.evaluate(&pruned);
        assert!(
            e_pruned.objectives[1] < e_full.objectives[1],
            "pruned {} vs full {}",
            e_pruned.objectives[1],
            e_full.objectives[1]
        );
    }

    #[test]
    fn floor_clamps_at_zero() {
        let p = threshold_problem(5.0);
        assert_eq!(p.accuracy_floor(), 0.0);
    }

    #[test]
    fn default_scenario_reproduces_the_unbudgeted_fitness() {
        // `with_scenario(default)` must be a no-op on the evaluation —
        // the bit-identity guarantee behind the refactor.
        let p = threshold_problem(0.10);
        let scoped = threshold_problem(0.10).with_scenario(pe_hw::CostScenario::default());
        let genes = good_genes(&p);
        assert_eq!(p.evaluate(&genes), scoped.evaluate(&genes));
    }

    #[test]
    fn power_budget_marks_hungry_designs_infeasible() {
        let genes = good_genes(&threshold_problem(0.10));
        // Unconstrained: the perfect classifier is feasible.
        let free = threshold_problem(0.10);
        let e_free = free.evaluate(&genes);
        assert!(e_free.is_feasible());
        let area_ge = e_free.objectives[1];
        let power = free.estimated_power_mw(area_ge);
        assert!(power > 0.0);

        // A budget just above the estimate keeps it feasible (the
        // boundary is inclusive)…
        let roomy = threshold_problem(0.10)
            .with_scenario(pe_hw::CostScenario::default().with_power_budget_mw(power));
        assert!(roomy.evaluate(&genes).is_feasible());

        // …a budget below it pushes the design into constrained
        // domination with a violation that grows with the excess.
        let tight = threshold_problem(0.10)
            .with_scenario(pe_hw::CostScenario::default().with_power_budget_mw(power * 0.5));
        let e_tight = tight.evaluate(&genes);
        assert!(!e_tight.is_feasible());
        assert!(e_tight.violation > 0.0);
        let tighter = threshold_problem(0.10)
            .with_scenario(pe_hw::CostScenario::default().with_power_budget_mw(power * 0.25));
        assert!(tighter.evaluate(&genes).violation > e_tight.violation);
        // Objectives themselves are unchanged — the budget acts purely
        // through Deb's constrained domination.
        assert_eq!(e_tight.objectives, e_free.objectives);
    }

    #[test]
    fn undervolted_scenario_relaxes_the_power_constraint() {
        let genes = good_genes(&threshold_problem(0.10));
        let free = threshold_problem(0.10);
        let area_ge = free.evaluate(&genes).objectives[1];
        let nominal_power = free.estimated_power_mw(area_ge);
        // A budget that is too tight at 1 V…
        let at_1v = threshold_problem(0.10).with_scenario(
            pe_hw::CostScenario::default().with_power_budget_mw(nominal_power * 0.5),
        );
        assert!(!at_1v.evaluate(&genes).is_feasible());
        // …fits at 0.6 V, where power drops ~4.5×.
        let at_0v6 = threshold_problem(0.10).with_scenario(
            pe_hw::CostScenario::default()
                .at_supply(0.6)
                .with_power_budget_mw(nominal_power * 0.5),
        );
        assert!(at_0v6.evaluate(&genes).is_feasible());
    }

    /// A two-layer (hidden QReLU + argmax) problem over the same
    /// threshold data, exercising the cached hidden-column path.
    fn deep_problem() -> (AxTrainProblem, QuantMatrix, Vec<usize>) {
        let spec = GenomeSpec::new(
            vec![
                LayerGenomeSpec {
                    fan_in: 1,
                    neurons: 3,
                    input_bits: 4,
                    qrelu: Some(pe_mlp::QReluCfg {
                        out_bits: 4,
                        shift: 0,
                    }),
                },
                LayerGenomeSpec {
                    fan_in: 3,
                    neurons: 2,
                    input_bits: 4,
                    qrelu: None,
                },
            ],
            8,
            8,
        );
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v]).collect();
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        let matrix = QuantMatrix::from_rows(&rows);
        let p = AxTrainProblem::new(spec, matrix.clone(), labels.clone(), 1.0, 1.0);
        (p, matrix, labels)
    }

    #[test]
    fn zero_variance_robust_evaluation_equals_nominal() {
        let nominal = threshold_problem(0.10);
        let genes = good_genes(&nominal);
        for trials in [1, 3, 8] {
            let config = pe_hw::VariationConfig::new(pe_hw::VariationModel::nominal(), trials);
            let robust = threshold_problem(0.10).with_variation(&config, 42);
            assert_eq!(nominal.evaluate(&genes), robust.evaluate(&genes));
            let p95 = threshold_problem(0.10)
                .with_variation(&config.with_statistic(pe_hw::RobustStat::P95), 42);
            assert_eq!(nominal.evaluate(&genes), p95.evaluate(&genes));
        }
        // Deep topology too — the cached hidden-column path.
        let (deep, _, _) = deep_problem();
        let genes = vec![1u32; deep.genome_spec().gene_count()];
        let (deep_robust, _, _) = deep_problem();
        let deep_robust = deep_robust.with_variation(
            &pe_hw::VariationConfig::new(pe_hw::VariationModel::nominal(), 4),
            11,
        );
        assert_eq!(deep.evaluate(&genes), deep_robust.evaluate(&genes));
    }

    #[test]
    fn cached_robust_path_matches_the_uncached_oracle() {
        let model = pe_hw::VariationModel {
            input_noise_lsb: 1.2,
            threshold_sigma: 0.04,
            mobility_sigma: 0.05,
            supply_droop: 0.08,
        };
        let (master, trials) = (7u64, 9usize);
        let (problem, rows, labels) = deep_problem();
        let problem = problem.with_variation(&pe_hw::VariationConfig::new(model, trials), master);
        // A deterministic in-bounds genome with structure (varied
        // masks/shifts/biases) so hidden columns actually vary.
        let genes: Vec<u32> = problem
            .bounds()
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as u32 * 7 + 3) % b)
            .collect();
        let e = problem.evaluate(&genes);
        let mlp = problem.genome_spec().decode(&genes);
        let oracle = crate::robust::mc_accuracy(&mlp, &rows, &labels, &model, trials, master);
        assert_eq!(
            1.0 - e.objectives[0],
            oracle.worst,
            "cached worst-case accuracy must equal the uncached oracle"
        );
        // Same check for the P95 statistic.
        let (p95_problem, _, _) = deep_problem();
        let p95_problem = p95_problem.with_variation(
            &pe_hw::VariationConfig::new(model, trials).with_statistic(pe_hw::RobustStat::P95),
            master,
        );
        let e95 = p95_problem.evaluate(&genes);
        assert_eq!(1.0 - e95.objectives[0], oracle.p95);
    }

    #[test]
    fn duplicate_neurons_get_their_own_position_draws() {
        // Two identical hidden specs at different positions receive
        // *different* per-device draws, so the cached robust path must
        // not serve one position's perturbed column to another — the
        // cache keys variation devices by neuron position. Regression
        // for an aliasing bug the zero-variance parity tests cannot
        // see (identity draws) and that only bites with duplicate
        // specs inside one layer.
        let model = pe_hw::VariationModel {
            threshold_sigma: 0.15,
            mobility_sigma: 0.10,
            supply_droop: 0.05,
            input_noise_lsb: 0.0,
        };
        let (master, trials) = (5u64, 8usize);
        let (problem, rows, labels) = deep_problem();
        let problem = problem.with_variation(&pe_hw::VariationConfig::new(model, trials), master);
        let mut genes = vec![0u32; problem.genome_spec().gene_count()];
        // Hidden layer (genes 0..12): three *identical* neurons —
        // full mask, positive, k = 1, bias 0.
        for ni in 0..3 {
            genes[ni * 4] = 0b1111;
            genes[ni * 4 + 2] = 1;
            genes[ni * 4 + 3] = 128;
        }
        // Output layer (genes 12..32): each class reads different
        // hidden positions, so an aliased hidden column would visibly
        // move the argmax.
        genes[12] = 0b1111; // class 0 ← hidden 0
        genes[21] = 128 - 4; // class-0 bias −4
        genes[25] = 0b1111; // class 1 ← hidden 1
        genes[28] = 0b0011; // … plus the low bits of hidden 2
        genes[31] = 128; // class-1 bias 0
        let mlp = problem.genome_spec().decode(&genes);
        assert_eq!(mlp.layers[0].neurons[0], mlp.layers[0].neurons[1]);
        assert_eq!(mlp.layers[0].neurons[0], mlp.layers[0].neurons[2]);
        let e = problem.evaluate(&genes);
        let oracle = crate::robust::mc_accuracy(&mlp, &rows, &labels, &model, trials, master);
        assert_eq!(
            1.0 - e.objectives[0],
            oracle.worst,
            "cached robust path must match the oracle with duplicate neurons"
        );
    }

    #[test]
    #[should_panic(expected = "trials must be >= 1")]
    fn with_variation_rejects_zero_trials() {
        let _ = threshold_problem(0.10).with_variation(
            &pe_hw::VariationConfig::new(pe_hw::VariationModel::nominal(), 0),
            1,
        );
    }

    #[test]
    #[should_panic(expected = "requires the GateEquivalents")]
    fn power_budget_rejects_the_fa_count_proxy() {
        let p = threshold_problem(0.10)
            .with_objective(AreaObjective::FaCount)
            .with_scenario(pe_hw::CostScenario::default().with_power_budget_mw(1.0));
        let genes = vec![0u32; p.genome_spec().gene_count()];
        let _ = p.evaluate(&genes);
    }
}
