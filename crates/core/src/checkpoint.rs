//! Crash-safe search checkpointing for the pipeline's search stage.
//!
//! A GA search is by far the longest stage of a study, and until this
//! module existed a kill (OOM, SIGKILL, power loss) threw the whole
//! stage away. The pieces here wire `pe_nsga`'s generation-level
//! [`SearchCheckpoint`] protocol into the staged pipeline:
//!
//! * [`CheckpointSpec`] names *where* a search persists its checkpoint
//!   and *how often* (every `every` completed generations, plus a final
//!   flush on completion or cancellation).
//! * `FileSink` (crate-internal) is the [`CheckpointSink`] that writes
//!   each snapshot through
//!   [`pe_store::atomic_write`] — a torn checkpoint write can never
//!   destroy the previous good checkpoint — and reports a
//!   [`ProgressEvent::Checkpoint`] per flush.
//! * `load` (crate-internal) reads a checkpoint back, validating it
//!   against the run's configuration and genome bounds; anything stale,
//!   torn or foreign loads as `None` and the search starts fresh.
//!
//! The cadence is pure durability policy: it is **not** part of any
//! stage-cache key, and a resumed run reproduces the uninterrupted
//! run's artifacts byte for byte (the RNG stream, population
//! annotations and evaluation counters are all part of the snapshot).

use std::path::{Path, PathBuf};

use pe_nsga::{CheckpointSink, IslandCheckpoint, IslandConfig, NsgaConfig, SearchCheckpoint};

use crate::progress::{ProgressEvent, RunControl};

/// Default checkpoint cadence in completed generations (the
/// `PE_CHECKPOINT_EVERY` fallback).
pub const DEFAULT_CHECKPOINT_EVERY: usize = 5;

/// Checkpoint cadence from the `PE_CHECKPOINT_EVERY` environment
/// variable: unset or unparsable means [`DEFAULT_CHECKPOINT_EVERY`];
/// `0` disables checkpointing; any other value is the cadence in
/// completed generations.
#[must_use]
pub fn checkpoint_every() -> usize {
    std::env::var("PE_CHECKPOINT_EVERY")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_CHECKPOINT_EVERY)
}

/// Where and how often a search persists its generation checkpoint.
///
/// Built by [`Pipeline::search`](crate::Pipeline::search) next to the
/// `Searched` stage-cache entry; direct engine callers can carry their
/// own spec through
/// [`SearchContext::checkpoint`](crate::SearchContext::checkpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint file (written atomically, deleted once the stage's
    /// artifact is safely cached).
    pub path: PathBuf,
    /// Flush cadence in completed generations (`0` disables periodic
    /// flushes; completion/cancellation still flushes nothing because
    /// the whole plan is skipped — use [`checkpoint_every`] defaults
    /// instead of `0` unless checkpointing is meant to be off).
    pub every: usize,
}

impl CheckpointSpec {
    /// A spec writing to `path` at the environment-configured cadence.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every: checkpoint_every(),
        }
    }

    /// Whether this spec asks for checkpointing at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.every > 0
    }
}

/// Load and validate the checkpoint at `spec.path`.
///
/// Returns `None` — and the caller starts a fresh search — when the
/// file is missing, unparsable (torn writes cannot happen thanks to
/// [`pe_store::atomic_write`], but hand-edited or foreign files can),
/// or fails [`SearchCheckpoint::validate`] against this run's
/// configuration and bounds. An invalid-but-present file is reported
/// to stderr so silently ignored checkpoints are diagnosable.
#[must_use]
pub(crate) fn load(
    spec: &CheckpointSpec,
    config: &NsgaConfig,
    bounds: &[u32],
) -> Option<SearchCheckpoint> {
    let text = std::fs::read_to_string(&spec.path).ok()?;
    let Ok(checkpoint) = serde_json::from_str::<SearchCheckpoint>(&text) else {
        eprintln!(
            "warning: ignoring unreadable search checkpoint {}",
            spec.path.display()
        );
        return None;
    };
    match checkpoint.validate(config, bounds) {
        Ok(()) => Some(checkpoint),
        Err(reason) => {
            eprintln!(
                "warning: ignoring stale search checkpoint {}: {reason}",
                spec.path.display()
            );
            None
        }
    }
}

/// The on-disk path of island `island`'s mid-epoch checkpoint, derived
/// from the epoch file's path: `foo.ckpt.json` owns
/// `foo.ckpt.island0.json`, `foo.ckpt.island1.json`, … — same stage
/// key, so sibling studies can never collide.
#[must_use]
pub(crate) fn island_path(epoch: &Path, island: usize) -> PathBuf {
    epoch.with_extension(format!("island{island}.json"))
}

/// Load and validate the island-model epoch checkpoint at `spec.path`.
/// Same contract as [`load`]: missing, unparsable or invalid files load
/// as `None` (with a stderr warning when a file was present), and the
/// run starts fresh.
#[must_use]
pub(crate) fn load_island(
    spec: &CheckpointSpec,
    config: &IslandConfig,
    bounds: &[u32],
) -> Option<IslandCheckpoint> {
    let text = std::fs::read_to_string(&spec.path).ok()?;
    let Ok(checkpoint) = serde_json::from_str::<IslandCheckpoint>(&text) else {
        eprintln!(
            "warning: ignoring unreadable island checkpoint {}",
            spec.path.display()
        );
        return None;
    };
    match checkpoint.validate(config, bounds) {
        Ok(()) => Some(checkpoint),
        Err(reason) => {
            eprintln!(
                "warning: ignoring stale island checkpoint {}: {reason}",
                spec.path.display()
            );
            None
        }
    }
}

/// Persist one island-model epoch snapshot at `path` through
/// [`pe_store::atomic_write`], reporting a
/// [`ProgressEvent::Checkpoint`] (the barrier generation plus the
/// summed evaluation counter) on success. Like `FileSink`, write
/// failures are stderr warnings — durability degrades, the search
/// survives.
pub(crate) fn save_island(path: &Path, ctl: &RunControl<'_>, checkpoint: &IslandCheckpoint) {
    match serde_json::to_string(checkpoint) {
        Ok(json) => {
            if let Err(e) = pe_store::atomic_write(path, json.as_bytes()) {
                eprintln!(
                    "warning: cannot write island checkpoint {}: {e}",
                    path.display()
                );
                return;
            }
            ctl.emit(&ProgressEvent::Checkpoint {
                generation: checkpoint.generation,
                evaluations: checkpoint.islands.iter().map(|s| s.evaluations).sum(),
            });
        }
        Err(e) => eprintln!("warning: cannot serialize island checkpoint: {e}"),
    }
}

/// The pipeline's [`CheckpointSink`]: snapshots go to disk through
/// [`pe_store::atomic_write`] and each flush is reported as a
/// [`ProgressEvent::Checkpoint`]. Write failures are warnings — a full
/// disk degrades durability, it does not kill the search.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FileSink<'a> {
    path: &'a std::path::Path,
    ctl: &'a RunControl<'a>,
}

impl<'a> FileSink<'a> {
    pub(crate) fn new(path: &'a std::path::Path, ctl: &'a RunControl<'a>) -> Self {
        Self { path, ctl }
    }
}

impl CheckpointSink for FileSink<'_> {
    fn save(&self, checkpoint: &SearchCheckpoint) {
        match serde_json::to_string(checkpoint) {
            Ok(json) => {
                if let Err(e) = pe_store::atomic_write(self.path, json.as_bytes()) {
                    eprintln!(
                        "warning: cannot write checkpoint {}: {e}",
                        self.path.display()
                    );
                    return;
                }
                self.ctl.emit(&ProgressEvent::Checkpoint {
                    generation: checkpoint.generation,
                    evaluations: checkpoint.evaluations,
                });
            }
            Err(e) => eprintln!("warning: cannot serialize checkpoint: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_nsga::{CheckpointPlan, IntProblem, Nsga2};

    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "pe-core-ckpt-{}-{tag}-{unique}.json",
            std::process::id()
        ))
    }

    struct Sphere;
    impl IntProblem for Sphere {
        fn bounds(&self) -> &[u32] {
            &[32, 32, 32]
        }
        fn evaluate(&self, genes: &[u32]) -> pe_nsga::Evaluation {
            let s: f64 = genes.iter().map(|&g| f64::from(g) * f64::from(g)).sum();
            pe_nsga::Evaluation::feasible(vec![s, 96.0 - s])
        }
    }

    fn config() -> NsgaConfig {
        NsgaConfig {
            population: 8,
            generations: 6,
            seed: 11,
            ..NsgaConfig::default()
        }
    }

    #[test]
    fn file_sink_round_trips_through_load() {
        let path = scratch("roundtrip");
        let spec = CheckpointSpec {
            path: path.clone(),
            every: 2,
        };
        let ctl = RunControl::NONE;
        let sink = FileSink::new(&spec.path, &ctl);
        let nsga = Nsga2::new(config());
        let plan = CheckpointPlan {
            every: spec.every,
            sink: &sink,
        };
        let uninterrupted = nsga.run_checkpointed(&Sphere, Vec::new(), None, None, |_| true);
        let _ = nsga.run_checkpointed(&Sphere, Vec::new(), None, Some(plan), |_| true);

        let loaded = load(&spec, &config(), Sphere.bounds()).expect("checkpoint loads");
        assert_eq!(loaded.generation, 6);
        // Resuming from the final flush reproduces the full run.
        let resumed = nsga.run_checkpointed(&Sphere, Vec::new(), Some(loaded), None, |_| true);
        assert_eq!(resumed.pareto_front, uninterrupted.pareto_front);
        assert_eq!(resumed.evaluations, uninterrupted.evaluations);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_missing_torn_and_foreign_checkpoints() {
        let missing = CheckpointSpec {
            path: scratch("missing"),
            every: 2,
        };
        assert!(load(&missing, &config(), Sphere.bounds()).is_none());

        let torn = CheckpointSpec {
            path: scratch("torn"),
            every: 2,
        };
        std::fs::write(&torn.path, "{\"generation\": 3, \"trunc").expect("write");
        assert!(load(&torn, &config(), Sphere.bounds()).is_none());
        let _ = std::fs::remove_file(&torn.path);

        // A valid checkpoint from a *different* configuration must not
        // resume this one.
        let path = scratch("foreign");
        let spec = CheckpointSpec {
            path: path.clone(),
            every: 1,
        };
        let ctl = RunControl::NONE;
        let sink = FileSink::new(&spec.path, &ctl);
        let nsga = Nsga2::new(config());
        let _ = nsga.run_checkpointed(
            &Sphere,
            Vec::new(),
            None,
            Some(CheckpointPlan {
                every: 1,
                sink: &sink,
            }),
            |_| true,
        );
        let other = NsgaConfig {
            seed: 999,
            ..config()
        };
        assert!(load(&spec, &other, Sphere.bounds()).is_none());
        assert!(load(&spec, &config(), Sphere.bounds()).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn env_cadence_is_a_positive_default() {
        const { assert!(DEFAULT_CHECKPOINT_EVERY > 0) }
        let spec = CheckpointSpec {
            path: scratch("active"),
            every: 0,
        };
        assert!(!spec.is_active());
    }

    #[test]
    fn sink_reports_progress_per_flush() {
        use std::sync::Mutex;
        let path = scratch("events");
        let events: Mutex<Vec<ProgressEvent>> = Mutex::new(Vec::new());
        let observer = |e: &ProgressEvent| events.lock().expect("unpoisoned").push(e.clone());
        let ctl = RunControl::new(Some(&observer), None);
        let sink = FileSink::new(&path, &ctl);
        let nsga = Nsga2::new(config());
        let _ = nsga.run_checkpointed(
            &Sphere,
            Vec::new(),
            None,
            Some(CheckpointPlan {
                every: 3,
                sink: &sink,
            }),
            |_| true,
        );
        let generations: Vec<usize> = events
            .lock()
            .expect("unpoisoned")
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::Checkpoint { generation, .. } => Some(*generation),
                _ => None,
            })
            .collect();
        assert_eq!(generations, [3, 6]);
        let _ = std::fs::remove_file(&path);
    }
}
