//! The staged, resumable pipeline API.
//!
//! [`Study`] is the builder; [`Pipeline`] runs the five stages of one
//! dataset's evaluation — [`Prepared`] → [`FloatTrained`] →
//! [`BaselineCosted`] → [`Searched`] → [`Selected`] — each a
//! first-class serializable artifact that can be inspected, cached to
//! disk and resumed. [`Pipeline::run_many`] executes studies for many
//! datasets on a `std::thread` worker pool with deterministic
//! per-dataset seeds ([`derive_seed`]), so parallel and sequential runs
//! produce byte-identical JSON artifacts.
//!
//! ```no_run
//! use pe_datasets::Dataset;
//! use pe_hw::TechLibrary;
//! use printed_axc::{Budget, Study};
//!
//! let pipeline = Study::for_dataset(Dataset::BreastCancer)
//!     .seed(42)
//!     .budget(Budget::Quick)
//!     .tech(TechLibrary::egfet())
//!     .finish()?;
//! let selected = pipeline.run()?;
//! println!("{} designs on the front", selected.searched.outcome.front.len());
//! # Ok::<(), printed_axc::FlowError>(())
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use pe_datasets::{generate, quantize, stratified_split, Dataset, QuantizedData, TabularData};
use pe_hw::{
    CostModel, CostScenario, ExactCostModel, HardwareReport, PowerSource, TechLibrary, VddModel,
};
use pe_mlp::{fixed_to_hardware, train_best_of_observed, DenseMlp, FixedMlp, QuantConfig};

use crate::engine::{IslandEngine, NsgaEngine, SearchContext, SearchEngine, SearchOutcome};
use crate::error::FlowError;
use crate::fitness::AreaObjective;
use crate::flow::{DatasetStudy, StudyConfig};
use crate::pareto::{select_within_budgets, DesignPoint};
use crate::progress::{CancelToken, ProgressEvent, ProgressObserver, RunControl, StageKind};

// ---------------------------------------------------------------- stages

/// Stage 1: generated data, stratified 70/30 split, quantized inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prepared {
    /// Which dataset.
    pub dataset: Dataset,
    /// The master seed the data was generated and split with.
    pub seed: u64,
    /// Normalized float training split.
    pub float_train: TabularData,
    /// Normalized float test split.
    pub float_test: TabularData,
    /// Quantized training split (the paper's 4-bit inputs).
    pub train: QuantizedData,
    /// Quantized test split.
    pub test: QuantizedData,
}

/// Stage 2: the backprop-trained float MLP at the paper's topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloatTrained {
    /// The previous stage's artifacts.
    pub prepared: Prepared,
    /// The trained float network (best-of-3 restarts).
    pub float_mlp: DenseMlp,
    /// Float accuracy on the test split.
    pub float_test_accuracy: f64,
}

/// Stage 3: the exact bespoke baseline and its circuit cost (the
/// Table I row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineCosted {
    /// The previous stage's artifacts.
    pub float: FloatTrained,
    /// The exact bespoke baseline network.
    pub baseline: FixedMlp,
    /// Baseline accuracy on the quantized training split.
    pub baseline_train_accuracy: f64,
    /// Baseline accuracy on the quantized test split.
    pub baseline_test_accuracy: f64,
    /// Baseline circuit evaluation.
    pub baseline_report: HardwareReport,
}

impl BaselineCosted {
    /// Borrow this stage (plus the study's cost model) as the generic
    /// [`SearchContext`] every [`SearchEngine`] consumes. The model's
    /// [`CostScenario`] defines the technology, supply voltage and
    /// power budget every engine searches and reports under.
    #[must_use]
    pub fn search_context<'a>(
        &'a self,
        model: &'a ExactCostModel,
        loss_budget: f64,
    ) -> SearchContext<'a> {
        let prepared = &self.float.prepared;
        let spec = prepared.dataset.spec();
        SearchContext {
            dataset: prepared.dataset,
            name: spec.name,
            classes: spec.classes,
            baseline: &self.baseline,
            baseline_train_accuracy: self.baseline_train_accuracy,
            baseline_test_accuracy: self.baseline_test_accuracy,
            train: &prepared.train,
            test: &prepared.test,
            float_mlp: &self.float.float_mlp,
            float_train: &prepared.float_train,
            float_test: &prepared.float_test,
            scenario: model.scenario(),
            cost: model,
            elaborator: model.elaborator(),
            loss_budget,
            eval_threads: crate::eval::thread_budget(),
            // Nominal and storeless by default; `Pipeline::search`
            // injects the study's variation request and design-store
            // sink. Direct callers (benches, engine comparisons) stay
            // nominal bit for bit.
            variation: None,
            store: None,
            checkpoint: None,
        }
    }
}

/// Stage 4: the engine's searched front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Searched {
    /// The previous stage's artifacts.
    pub costed: BaselineCosted,
    /// Which engine produced the front
    /// ([`SearchEngine::name`]).
    pub engine: String,
    /// The engine's outcome; `outcome.front` is the evaluated Pareto
    /// front.
    pub outcome: SearchOutcome,
}

/// Stage 5: the reported design — smallest area within the loss budget
/// (the Table II row). Convertible into the legacy [`DatasetStudy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selected {
    /// The previous stage's artifacts.
    pub searched: Searched,
    /// The accuracy-loss budget the selection was made under (so
    /// downstream comparisons can reuse the study's own budget).
    pub loss_budget: f64,
    /// The selected design, if any front member met the budget.
    pub selected: Option<DesignPoint>,
}

impl Selected {
    /// Flatten the stage chain into the legacy [`DatasetStudy`] record.
    #[must_use]
    pub fn into_study(self) -> DatasetStudy {
        let Searched {
            costed, outcome, ..
        } = self.searched;
        let BaselineCosted {
            float,
            baseline,
            baseline_train_accuracy,
            baseline_test_accuracy,
            baseline_report,
        } = costed;
        DatasetStudy {
            dataset: float.prepared.dataset,
            float_test_accuracy: float.float_test_accuracy,
            baseline,
            baseline_train_accuracy,
            baseline_test_accuracy,
            baseline_report,
            outcome,
            selected: self.selected,
            train: float.prepared.train,
            test: float.prepared.test,
        }
    }
}

// ---------------------------------------------------------------- builder

/// Compute-budget presets for [`Study::budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Seconds per dataset ([`StudyConfig::quick`]): tests, smoke runs.
    Quick,
    /// The paper-scale default ([`StudyConfig::default`]).
    Full,
}

/// Builder for a [`Pipeline`]: one dataset's staged study.
///
/// ```no_run
/// use pe_datasets::Dataset;
/// use pe_hw::TechLibrary;
/// use printed_axc::{Budget, Study};
///
/// let pipeline = Study::for_dataset(Dataset::RedWine)
///     .seed(7)
///     .budget(Budget::Quick)
///     .tech(TechLibrary::egfet())
///     .cache_dir("target/experiments/stages")
///     .finish()?;
/// # Ok::<(), printed_axc::FlowError>(())
/// ```
#[must_use = "call `.finish()` to validate and build the pipeline"]
pub struct Study {
    dataset: Dataset,
    seed: Option<u64>,
    budget: Budget,
    config: Option<StudyConfig>,
    tech: Option<TechLibrary>,
    supply_v: Option<f64>,
    power_budget_mw: Option<f64>,
    engine: Option<Arc<dyn SearchEngine + Send + Sync>>,
    progress: Option<ProgressObserver>,
    cancel: Option<CancelToken>,
    cache_dir: Option<PathBuf>,
    eval_threads: Option<usize>,
    variation: Option<pe_hw::VariationConfig>,
    variation_statistic: Option<pe_hw::RobustStat>,
    design_store: Option<PathBuf>,
    store_writer: Option<Arc<pe_store::StoreWriter>>,
    warm_start: bool,
    checkpoint_every: Option<usize>,
    islands: Option<usize>,
    migration_every: Option<usize>,
    migrants: Option<usize>,
}

impl Study {
    /// Start building a study of `dataset`.
    pub fn for_dataset(dataset: Dataset) -> Self {
        Self {
            dataset,
            seed: None,
            budget: Budget::Full,
            config: None,
            tech: None,
            supply_v: None,
            power_budget_mw: None,
            engine: None,
            progress: None,
            cancel: None,
            cache_dir: None,
            eval_threads: None,
            variation: None,
            variation_statistic: None,
            design_store: None,
            store_writer: None,
            warm_start: false,
            checkpoint_every: None,
            islands: None,
            migration_every: None,
            migrants: None,
        }
    }

    /// Master seed (data generation, split, SGD and GA). Overrides the
    /// seed inside a [`config`](Self::config), if both are given.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Compute-budget preset (ignored when a full
    /// [`config`](Self::config) is given).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Full study configuration (takes precedence over
    /// [`budget`](Self::budget)).
    pub fn config(mut self, config: StudyConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Technology library for baseline and approximate circuit
    /// evaluation (defaults to [`TechLibrary::egfet`]). Overrides the
    /// technology inside a [`config`](Self::config)'s scenario, if both
    /// are given, and re-anchors the Vdd scaling laws to the library's
    /// voltage range.
    pub fn tech(mut self, tech: TechLibrary) -> Self {
        self.tech = Some(tech);
        self
    }

    /// Operate (search, cost, report) at `supply_v` volts instead of
    /// the technology's nominal supply — the paper's §V-C low-voltage
    /// regime as a first-class study input.
    pub fn supply(mut self, supply_v: f64) -> Self {
        self.supply_v = Some(supply_v);
        self
    }

    /// Constrain the study to designs the printed `source` can drive:
    /// the GA treats over-budget designs as constraint violators and
    /// the selection stage only reports designs within the budget.
    pub fn power_source(self, source: PowerSource) -> Self {
        self.power_budget_mw(source.budget_mw())
    }

    /// [`power_source`](Self::power_source) with an explicit budget in
    /// mW.
    pub fn power_budget_mw(mut self, budget_mw: f64) -> Self {
        self.power_budget_mw = Some(budget_mw);
        self
    }

    /// Search robustly under process variation: the GA optimizes a
    /// Monte-Carlo robust statistic (worst-case accuracy by default,
    /// see [`variation_statistic`](Self::variation_statistic)) over
    /// `trials` perturbed device instances drawn from `model`, instead
    /// of nominal accuracy. Overrides the variation inside a
    /// [`config`](Self::config), if both are given. A zero-variance
    /// model reproduces the nominal search bit for bit.
    pub fn variation(mut self, model: pe_hw::VariationModel, trials: usize) -> Self {
        self.variation = Some(pe_hw::VariationConfig::new(model, trials));
        self
    }

    /// The robust statistic a [`variation`](Self::variation) search
    /// optimizes (default
    /// [`RobustStat::WorstCase`](pe_hw::RobustStat::WorstCase)).
    /// Applies to the builder's variation and to one carried by a
    /// [`config`](Self::config).
    pub fn variation_statistic(mut self, statistic: pe_hw::RobustStat) -> Self {
        self.variation_statistic = Some(statistic);
        self
    }

    /// Swap the search engine (defaults to the paper's [`NsgaEngine`]
    /// built from the study's GA configuration).
    pub fn engine(mut self, engine: Arc<dyn SearchEngine + Send + Sync>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Observe pipeline progress ([`ProgressEvent`] stream).
    pub fn progress(mut self, observer: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(observer));
        self
    }

    /// Attach a cooperative cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Worker budget for the search stage's within-study batch
    /// evaluation (default: the global
    /// [`thread_budget`](crate::eval::thread_budget)).
    /// [`Pipeline::run_many`] sets this to the budget divided by its
    /// dataset workers, so nested pools never oversubscribe. Thread
    /// count never affects results.
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = Some(threads.max(1));
        self
    }

    /// Record every unique design the search evaluates into the
    /// persistent, deduplicated design store at `path` (a JSON-lines
    /// file, created on first use, appended across runs — see
    /// [`pe_store`]). Ingest is a pure side channel: fronts, seeds and
    /// artifacts are byte-identical with or without a store. Mutually
    /// exclusive with [`design_store_shared`](Self::design_store_shared).
    pub fn design_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.design_store = Some(path.into());
        self
    }

    /// [`design_store`](Self::design_store) through an already-open
    /// writer, so several pipelines (e.g. [`Pipeline::run_many`]
    /// workers) append to one store file concurrently.
    pub fn design_store_shared(mut self, writer: Arc<pe_store::StoreWriter>) -> Self {
        self.store_writer = Some(writer);
        self
    }

    /// Seed the GA's initial population from the design store's saved
    /// front of this dataset (best test accuracy first, capped at a
    /// quarter of the population) in addition to the doped seeds.
    /// Requires a [`design_store`](Self::design_store); unlike plain
    /// ingest, warm-start *does* steer the search, so the stage-cache
    /// key mixes the warm pool's fingerprints whenever it is non-empty.
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// Cache stage artifacts as JSON under `dir` and resume from them
    /// on the next run (see [`Pipeline::searched`] and friends).
    ///
    /// Each stage file is self-contained (it embeds its upstream
    /// stages), so any single artifact resumes on its own at the cost
    /// of redundant bytes across the five files. Cache entries are
    /// keyed by the full [`StudyConfig`] plus the engine's name and
    /// [`SearchEngine::cache_fingerprint`] — a custom engine whose
    /// fingerprint omits part of its configuration can alias entries;
    /// give such pipelines distinct cache directories.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Flush a crash-safety checkpoint of the search stage every
    /// `every` completed GA generations (default: the
    /// `PE_CHECKPOINT_EVERY` environment knob, falling back to
    /// [`DEFAULT_CHECKPOINT_EVERY`](crate::checkpoint::DEFAULT_CHECKPOINT_EVERY);
    /// `0` disables checkpointing). Requires a
    /// [`cache_dir`](Self::cache_dir) — the checkpoint lives next to
    /// the `Searched` stage artifact and is deleted once that artifact
    /// is safely on disk. A killed or cancelled pipeline then resumes
    /// the search from its last checkpoint instead of generation zero,
    /// and produces byte-identical artifacts either way. The cadence
    /// is pure durability policy: it is not part of any stage-cache
    /// key.
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Search with an island-model archipelago of `n` sub-populations
    /// instead of one NSGA-II loop: the same evaluation budget (the
    /// configured population splits across the islands, all running
    /// the full generation count) with deterministic seeded ring
    /// migration every [`migration_every`](Self::migration_every)
    /// generations, merged through one final non-dominated sort — and
    /// island legs scheduled concurrently over the worker budget (see
    /// `crate::eval::run_ga_islands`). `0` or `1` keeps the
    /// single-population [`NsgaEngine`] and its cache keys byte for
    /// byte; ≥ 2 selects [`IslandEngine`], whose name and fingerprint
    /// re-key the `Searched`/`Selected` stage caches. Results are
    /// byte-identical at any `PE_THREADS`. Overrides the island count
    /// inside a [`config`](Self::config), if both are given.
    pub fn islands(mut self, n: usize) -> Self {
        self.islands = Some(n);
        self
    }

    /// Migration cadence of an [`islands`](Self::islands) search, in
    /// completed generations (`0` restores the
    /// [`pe_nsga::DEFAULT_MIGRATION_EVERY`] default). Overrides the
    /// cadence inside a [`config`](Self::config), if both are given.
    pub fn migration_every(mut self, every: usize) -> Self {
        self.migration_every = Some(every);
        self
    }

    /// Elites each island emits per migration epoch of an
    /// [`islands`](Self::islands) search (`0` restores the
    /// [`pe_nsga::DEFAULT_MIGRANTS`] default). Overrides the count
    /// inside a [`config`](Self::config), if both are given.
    pub fn migrants(mut self, migrants: usize) -> Self {
        self.migrants = Some(migrants);
        self
    }

    /// Validate the configuration and build the [`Pipeline`].
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] when the configuration cannot run:
    /// GA population below 2, zero generations, non-positive SGD epoch
    /// scale, an accuracy budget outside `[0, 1]`, a weight width
    /// below 2 bits, an operating supply outside the technology's
    /// range, a non-positive power budget, a power budget combined
    /// with the FA-count area proxy (which carries no power
    /// information), an invalid variation request (zero trials, a
    /// negative spread, droop outside `[0, 1)`), both a design-store
    /// path and a shared writer, or warm-start without a design store.
    /// [`FlowError::Store`] when the design-store file cannot be
    /// opened or is corrupt.
    pub fn finish(self) -> Result<Pipeline, FlowError> {
        let mut config = match (self.config, self.budget) {
            (Some(config), _) => config,
            (None, Budget::Quick) => StudyConfig::quick(self.seed.unwrap_or(0)),
            (None, Budget::Full) => StudyConfig::default(),
        };
        if let Some(seed) = self.seed {
            config.seed = seed;
            config.ga.nsga.seed = seed;
        }
        // Builder-level scenario knobs override the config's scenario.
        if let Some(tech) = self.tech {
            // Re-anchor the Vdd laws to the new library's voltage range
            // while preserving any custom scaling exponents the config's
            // scenario carried (the exponents are a property of the
            // logic family, not of the library swap).
            config.scenario.vdd = VddModel {
                nominal_vdd: tech.nominal_vdd,
                min_vdd: tech.min_vdd,
                ..config.scenario.vdd
            };
            if config.scenario.supply_v == config.scenario.tech.nominal_vdd {
                config.scenario.supply_v = tech.nominal_vdd;
            }
            config.scenario.tech = tech;
        }
        if let Some(supply_v) = self.supply_v {
            config.scenario.supply_v = supply_v;
        }
        if let Some(budget_mw) = self.power_budget_mw {
            config.scenario.power_budget_mw = Some(budget_mw);
        }
        if let Some(variation) = self.variation {
            config.variation = Some(variation);
        }
        if let Some(statistic) = self.variation_statistic {
            if let Some(variation) = &mut config.variation {
                variation.statistic = statistic;
            }
        }
        if let Some(islands) = self.islands {
            config.islands = islands;
        }
        if let Some(every) = self.migration_every {
            config.migration_every = every;
        }
        if let Some(migrants) = self.migrants {
            config.migrants = migrants;
        }

        let invalid = |reason: String| Err(FlowError::InvalidConfig { reason });
        let scenario = &config.scenario;
        if !pe_hw::cost::supply_in_range(&scenario.tech, scenario.supply_v) {
            return invalid(format!(
                "operating supply {} V outside the {} range [{}, {}] V",
                scenario.supply_v,
                scenario.tech.name,
                scenario.tech.min_vdd,
                scenario.tech.nominal_vdd
            ));
        }
        if let Some(budget) = scenario.power_budget_mw {
            if !(budget.is_finite() && budget > 0.0) {
                return invalid(format!("power budget must be positive, got {budget} mW"));
            }
            if config.ga.objective != AreaObjective::GateEquivalents {
                return invalid(
                    "a power budget requires the GateEquivalents area objective \
                     (the FA-count proxy carries no power information)"
                        .into(),
                );
            }
        }
        if config.ga.nsga.population < 2 {
            return invalid(format!(
                "GA population must be at least 2, got {}",
                config.ga.nsga.population
            ));
        }
        if config.ga.nsga.generations == 0 {
            return invalid("GA generation budget must be positive".into());
        }
        if !(config.sgd_epochs_scale > 0.0 && config.sgd_epochs_scale.is_finite()) {
            return invalid(format!(
                "SGD epoch scale must be a positive finite number, got {}",
                config.sgd_epochs_scale
            ));
        }
        if !(0.0..=1.0).contains(&config.accuracy_loss_budget) {
            return invalid(format!(
                "accuracy-loss budget must be within [0, 1], got {}",
                config.accuracy_loss_budget
            ));
        }
        if config.ga.weight_bits < 2 {
            return invalid(format!(
                "weight width must be at least 2 bits, got {}",
                config.ga.weight_bits
            ));
        }
        if let Some(variation) = &config.variation {
            if let Err(reason) = variation.validate() {
                return invalid(format!("invalid variation config: {reason}"));
            }
        }
        // ≥ 2 islands swaps in the island engine (0/1 keeps the
        // single-population path and its cache keys untouched); zero
        // cadence/migrants knobs resolve to the pe-nsga defaults here,
        // so the engine fingerprint always names concrete values.
        let island_topology = (config.islands >= 2).then(|| pe_nsga::IslandConfig {
            nsga: config.ga.nsga.clone(),
            islands: config.islands,
            migration_every: match config.migration_every {
                0 => pe_nsga::DEFAULT_MIGRATION_EVERY,
                every => every,
            },
            migrants: match config.migrants {
                0 => pe_nsga::DEFAULT_MIGRANTS,
                migrants => migrants,
            },
        });
        if let Some(topology) = &island_topology {
            if let Err(reason) = topology.validate() {
                return invalid(format!("invalid island topology: {reason}"));
            }
        }
        let store = match (self.design_store, self.store_writer) {
            (Some(_), Some(_)) => {
                return invalid(
                    "give either a design-store path or a shared writer, not both".into(),
                );
            }
            (Some(path), None) => Some(Arc::new(pe_store::StoreWriter::open(&path)?)),
            (None, writer) => writer,
        };
        if self.warm_start && store.is_none() {
            return invalid("warm-start requires a design store".into());
        }
        // The sink (and with it the warm-start pool) is captured here,
        // before this pipeline writes anything — deterministic even
        // when several pipelines share one writer.
        let store_sink = store.map(|writer| {
            crate::store::StoreSink::new(writer, self.dataset.spec().name, self.warm_start)
        });

        let engine = self.engine.unwrap_or_else(|| match &island_topology {
            Some(topology) => Arc::new(IslandEngine::new(
                config.ga.clone(),
                topology.islands,
                topology.migration_every,
                topology.migrants,
            )) as Arc<dyn SearchEngine + Send + Sync>,
            None => Arc::new(NsgaEngine::new(config.ga.clone())),
        });
        Ok(Pipeline {
            dataset: self.dataset,
            config,
            engine,
            progress: self.progress,
            cancel: self.cancel,
            cache_dir: self.cache_dir,
            eval_threads: self.eval_threads,
            store_sink,
            checkpoint_every: self
                .checkpoint_every
                .unwrap_or_else(crate::checkpoint::checkpoint_every),
        })
    }
}

// ---------------------------------------------------------------- pipeline

/// A validated, runnable staged study of one dataset.
///
/// The `prepare`/`train_float`/`cost_baseline`/`search`/`select`
/// methods compute single stages; the `prepared`/`float_trained`/
/// `baseline_costed`/`searched`/`selected` methods additionally load
/// from and store to the stage cache (when one is configured), so a
/// resumed pipeline skips every stage whose artifact is on disk.
pub struct Pipeline {
    dataset: Dataset,
    config: StudyConfig,
    engine: Arc<dyn SearchEngine + Send + Sync>,
    progress: Option<ProgressObserver>,
    cancel: Option<CancelToken>,
    cache_dir: Option<PathBuf>,
    eval_threads: Option<usize>,
    store_sink: Option<crate::store::StoreSink>,
    checkpoint_every: usize,
}

impl Pipeline {
    /// The dataset under study.
    #[must_use]
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The resolved study configuration.
    #[must_use]
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The cost scenario the study runs under.
    #[must_use]
    pub fn scenario(&self) -> &CostScenario {
        &self.config.scenario
    }

    /// The study's exact cost model at its scenario (fresh per call;
    /// clones share no memo — stage code builds one per stage run).
    fn cost_model(&self) -> ExactCostModel {
        ExactCostModel::new(self.config.scenario.clone())
    }

    /// The active engine's name.
    #[must_use]
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    fn control(&self) -> RunControl<'_> {
        RunControl::new(
            self.progress.as_deref().map(|f| f as _),
            self.cancel.as_ref(),
        )
    }

    // ------------------------------------------------ stage computation

    /// Compute stage 1: generate the dataset, split 70/30 stratified,
    /// quantize inputs.
    ///
    /// # Errors
    ///
    /// [`FlowError::Dataset`] if splitting fails, or
    /// [`FlowError::Cancelled`].
    pub fn prepare(&self) -> Result<Prepared, FlowError> {
        let ctl = self.control();
        ctl.ensure_live(StageKind::Prepared)?;
        ctl.emit(&ProgressEvent::StageStarted {
            stage: StageKind::Prepared,
        });
        let data = generate(self.dataset, self.config.seed);
        let split = stratified_split(&data, 0.7, self.config.seed)?;
        let train = quantize(&split.train, self.config.ga.input_bits);
        let test = quantize(&split.test, self.config.ga.input_bits);
        let stage = Prepared {
            dataset: self.dataset,
            seed: self.config.seed,
            float_train: split.train,
            float_test: split.test,
            train,
            test,
        };
        ctl.emit(&ProgressEvent::StageFinished {
            stage: StageKind::Prepared,
        });
        Ok(stage)
    }

    /// Compute stage 2: backprop-train the float MLP at the paper's
    /// topology (best-of-3 restarts), reporting one
    /// [`ProgressEvent::SgdEpoch`] per epoch.
    ///
    /// # Errors
    ///
    /// [`FlowError::Cancelled`] when cancelled mid-training.
    pub fn train_float(&self, prepared: Prepared) -> Result<FloatTrained, FlowError> {
        let ctl = self.control();
        ctl.ensure_live(StageKind::FloatTrained)?;
        ctl.emit(&ProgressEvent::StageStarted {
            stage: StageKind::FloatTrained,
        });
        let spec = prepared.dataset.spec();
        let sgd = self.config.sgd_for(&spec);
        let epochs = sgd.epochs;
        let (float_mlp, _) = train_best_of_observed(
            &pe_mlp::Topology::new(spec.topology()),
            &prepared.float_train.features,
            &prepared.float_train.labels,
            &sgd,
            3,
            |restart, epoch| {
                ctl.emit(&ProgressEvent::SgdEpoch {
                    restart,
                    epoch,
                    epochs,
                });
                !ctl.is_cancelled()
            },
        );
        ctl.ensure_live(StageKind::FloatTrained)?;
        let float_test_accuracy =
            float_mlp.accuracy(&prepared.float_test.features, &prepared.float_test.labels);
        ctl.emit(&ProgressEvent::StageFinished {
            stage: StageKind::FloatTrained,
        });
        Ok(FloatTrained {
            prepared,
            float_mlp,
            float_test_accuracy,
        })
    }

    /// Compute stage 3: quantize to the exact bespoke baseline and
    /// elaborate its circuit (the Table I row).
    ///
    /// # Errors
    ///
    /// [`FlowError::Cancelled`].
    pub fn cost_baseline(&self, float: FloatTrained) -> Result<BaselineCosted, FlowError> {
        let ctl = self.control();
        ctl.ensure_live(StageKind::BaselineCosted)?;
        ctl.emit(&ProgressEvent::StageStarted {
            stage: StageKind::BaselineCosted,
        });
        let prepared = &float.prepared;
        let spec = prepared.dataset.spec();
        let baseline = FixedMlp::quantize(
            &float.float_mlp,
            QuantConfig {
                weight_bits: self.config.ga.weight_bits,
                input_bits: self.config.ga.input_bits,
                activation_bits: self.config.ga.activation_bits,
            },
            &prepared.float_train.features,
        );
        let baseline_train_accuracy =
            baseline.accuracy(&prepared.train.features, &prepared.train.labels);
        let baseline_test_accuracy =
            baseline.accuracy(&prepared.test.features, &prepared.test.labels);
        // The baseline costs through the same model the search and the
        // selection use — one cost layer end to end.
        let baseline_report = self
            .cost_model()
            .report(&fixed_to_hardware(&baseline, spec.name));
        ctl.emit(&ProgressEvent::StageFinished {
            stage: StageKind::BaselineCosted,
        });
        Ok(BaselineCosted {
            float,
            baseline,
            baseline_train_accuracy,
            baseline_test_accuracy,
            baseline_report,
        })
    }

    /// Compute stage 4: run the configured [`SearchEngine`].
    ///
    /// # Errors
    ///
    /// Whatever the engine returns ([`FlowError::Cancelled`],
    /// [`FlowError::Engine`]).
    pub fn search(&self, costed: BaselineCosted) -> Result<Searched, FlowError> {
        let ctl = self.control();
        ctl.ensure_live(StageKind::Searched)?;
        ctl.emit(&ProgressEvent::StageStarted {
            stage: StageKind::Searched,
        });
        let model = self.cost_model();
        // A checkpoint needs a home and a cadence; without a cache_dir
        // (or with cadence 0) the stage runs exactly as before. The
        // checkpoint file sits next to the `Searched` artifact and
        // shares its config-keyed prefix, so differently-configured
        // runs can never resume each other's snapshots (the loader
        // validates the config again regardless).
        let checkpoint = self.checkpoint_path().map(|path| {
            if let Some(parent) = path.parent() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("warning: cannot create {}: {e}", parent.display());
                }
            }
            crate::checkpoint::CheckpointSpec {
                path,
                every: self.checkpoint_every,
            }
        });
        let outcome = {
            let mut ctx = costed.search_context(&model, self.config.accuracy_loss_budget);
            if let Some(threads) = self.eval_threads {
                ctx.eval_threads = threads;
            }
            ctx.variation = self.config.variation.as_ref();
            ctx.store = self.store_sink.as_ref();
            ctx.checkpoint = checkpoint.as_ref();
            self.engine.search(&ctx, &ctl)?
        };
        ctl.emit(&ProgressEvent::StageFinished {
            stage: StageKind::Searched,
        });
        Ok(Searched {
            costed,
            engine: self.engine.name().to_owned(),
            outcome,
        })
    }

    /// Compute stage 5: select the smallest design within the loss
    /// budget — and, when the scenario carries one, the power budget
    /// (the Table II row; `selected: None` when the feasible set is
    /// empty).
    ///
    /// # Errors
    ///
    /// [`FlowError::Cancelled`].
    pub fn select(&self, searched: Searched) -> Result<Selected, FlowError> {
        let ctl = self.control();
        ctl.ensure_live(StageKind::Selected)?;
        ctl.emit(&ProgressEvent::StageStarted {
            stage: StageKind::Selected,
        });
        let selected = select_within_budgets(
            &searched.outcome.front,
            searched.costed.baseline_test_accuracy,
            self.config.accuracy_loss_budget,
            self.config.scenario.power_budget_mw,
        )
        .cloned();
        // The chosen design is flagged in the design store, so store
        // queries (and `cost_sweep`'s store mode) can reproduce the
        // study's own selection without re-running anything.
        if let (Some(sink), Some(point)) = (&self.store_sink, &selected) {
            sink.mark_selected(point);
        }
        ctl.emit(&ProgressEvent::StageFinished {
            stage: StageKind::Selected,
        });
        Ok(Selected {
            searched,
            loss_budget: self.config.accuracy_loss_budget,
            selected,
        })
    }

    // ------------------------------------------------ cached stage chain

    /// Stage 1 through the cache.
    ///
    /// # Errors
    ///
    /// As [`prepare`](Self::prepare).
    pub fn prepared(&self) -> Result<Prepared, FlowError> {
        self.cached(
            StageKind::Prepared,
            |v: &Prepared| self.stage_is_ours(v),
            || self.prepare(),
        )
    }

    /// Stage 2 through the cache (computing earlier stages as needed).
    ///
    /// # Errors
    ///
    /// As [`train_float`](Self::train_float).
    pub fn float_trained(&self) -> Result<FloatTrained, FlowError> {
        self.cached(
            StageKind::FloatTrained,
            |v: &FloatTrained| self.stage_is_ours(&v.prepared),
            || {
                let prepared = self.prepared()?;
                self.train_float(prepared)
            },
        )
    }

    /// Stage 3 through the cache (computing earlier stages as needed).
    ///
    /// # Errors
    ///
    /// As [`cost_baseline`](Self::cost_baseline).
    pub fn baseline_costed(&self) -> Result<BaselineCosted, FlowError> {
        self.cached(
            StageKind::BaselineCosted,
            |v: &BaselineCosted| self.stage_is_ours(&v.float.prepared),
            || {
                let float = self.float_trained()?;
                self.cost_baseline(float)
            },
        )
    }

    /// Stage 4 through the cache (computing earlier stages as needed).
    /// A cache hit skips re-running the engine entirely.
    ///
    /// # Errors
    ///
    /// As [`search`](Self::search).
    pub fn searched(&self) -> Result<Searched, FlowError> {
        let searched = self.cached(
            StageKind::Searched,
            |v: &Searched| {
                v.engine == self.engine.name() && self.stage_is_ours(&v.costed.float.prepared)
            },
            || {
                let costed = self.baseline_costed()?;
                self.search(costed)
            },
        )?;
        // The checkpoint's job ends once the stage artifact is on disk
        // (`cached` stored it just above); deleting it only after that
        // write means a kill at *any* point leaves something to resume
        // from. Best-effort: a leftover checkpoint is merely re-read
        // and re-deleted next run.
        if let Some(path) = self.checkpoint_path() {
            let _ = std::fs::remove_file(path);
        }
        Ok(searched)
    }

    /// Stage 5 through the cache (computing earlier stages as needed).
    ///
    /// # Errors
    ///
    /// As [`select`](Self::select).
    pub fn selected(&self) -> Result<Selected, FlowError> {
        self.cached(
            StageKind::Selected,
            |v: &Selected| {
                v.searched.engine == self.engine.name()
                    && self.stage_is_ours(&v.searched.costed.float.prepared)
            },
            || {
                let searched = self.searched()?;
                self.select(searched)
            },
        )
    }

    /// Run the whole pipeline (all five stages, cache-aware).
    ///
    /// # Errors
    ///
    /// The first stage error encountered.
    pub fn run(&self) -> Result<Selected, FlowError> {
        self.selected()
    }

    /// Run the whole pipeline and flatten into the legacy
    /// [`DatasetStudy`] record.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_study(&self) -> Result<DatasetStudy, FlowError> {
        self.run().map(Selected::into_study)
    }

    // ------------------------------------------------ cache plumbing

    /// A loaded stage belongs to this pipeline iff dataset and seed
    /// match (the file-name hash already covers the full config, this
    /// guards against hand-renamed files).
    fn stage_is_ours(&self, prepared: &Prepared) -> bool {
        prepared.dataset == self.dataset && prepared.seed == self.config.seed
    }

    fn cached<T, V, F>(&self, stage: StageKind, valid: V, compute: F) -> Result<T, FlowError>
    where
        T: Serialize + Deserialize,
        V: FnOnce(&T) -> bool,
        F: FnOnce() -> Result<T, FlowError>,
    {
        if let Some(value) = self.load_stage::<T>(stage) {
            if valid(&value) {
                self.control().emit(&ProgressEvent::StageLoaded { stage });
                return Ok(value);
            }
        }
        let value = compute()?;
        self.store_stage(stage, &value);
        Ok(value)
    }

    fn stage_path(&self, stage: StageKind) -> Option<PathBuf> {
        let dir = self.cache_dir.as_ref()?;
        let spec = self.dataset.spec();
        Some(dir.join(format!(
            "{}-{:016x}-{}.json",
            spec.short_name.to_lowercase(),
            self.cache_key(stage),
            stage.as_str()
        )))
    }

    /// Where the search stage's crash-safety checkpoint lives: next to
    /// the `Searched` artifact, under the same config-keyed prefix
    /// (`{short}-{key:016x}-searched.ckpt.json`). `None` without a
    /// cache directory or with checkpointing disabled.
    fn checkpoint_path(&self) -> Option<PathBuf> {
        if self.checkpoint_every == 0 {
            return None;
        }
        let path = self.stage_path(StageKind::Searched)?;
        Some(path.with_extension("ckpt.json"))
    }

    /// Per-stage cache key: hashes only the inputs the stage chain up
    /// to `stage` consumes, so changing a late-stage-only parameter
    /// (the loss budget, the GA budget, the engine) keeps the expensive
    /// early artifacts — the splits and the SGD-trained float model —
    /// warm in the cache.
    ///
    /// Keys cannot see *code* changes — bump [`STAGE_CACHE_VERSION`]
    /// when an algorithm change invalidates previously cached stages.
    fn cache_key(&self, stage: StageKind) -> u64 {
        let cfg = &self.config;
        let mut h = fnv1a64(&STAGE_CACHE_VERSION.to_le_bytes());
        h ^= crate::engine::fingerprint_json(&(cfg.seed, cfg.ga.input_bits));
        if matches!(stage, StageKind::Prepared) {
            return h;
        }
        h ^= crate::engine::fingerprint_json(&cfg.sgd_epochs_scale).rotate_left(1);
        if matches!(stage, StageKind::FloatTrained) {
            return h;
        }
        h ^= crate::engine::fingerprint_json(&(
            cfg.ga.weight_bits,
            cfg.ga.activation_bits,
            // The full scenario: baseline costing depends on tech and
            // supply, the search additionally on the power budget —
            // hashing it whole keeps every scenario's artifacts apart.
            &cfg.scenario,
        ))
        .rotate_left(2);
        if matches!(stage, StageKind::BaselineCosted) {
            return h;
        }
        h ^= crate::engine::fingerprint_json(&cfg.ga).rotate_left(3);
        h ^= fnv1a64(self.engine.name().as_bytes());
        h ^= self.engine.cache_fingerprint();
        // Only mixed when present, so every nominal key — and with it
        // every artifact cached before variation existed — is unchanged.
        if let Some(variation) = &cfg.variation {
            h ^= crate::engine::fingerprint_json(variation).rotate_left(5);
        }
        // Warm-start seeds steer the search, so the seed pool's
        // identity is part of the key — but only when seeds actually
        // exist: an ingest-only store (or warm-start over an empty
        // store) keys exactly like a storeless run, keeping
        // store-enabled artifacts byte-identical to storeless ones.
        if let Some(sink) = &self.store_sink {
            let fps = sink.warm_fingerprints();
            if !fps.is_empty() {
                h ^= crate::engine::fingerprint_json(&fps).rotate_left(6);
            }
        }
        if matches!(stage, StageKind::Searched) {
            return h;
        }
        h ^ crate::engine::fingerprint_json(&cfg.accuracy_loss_budget).rotate_left(4)
    }

    fn load_stage<T: Deserialize>(&self, stage: StageKind) -> Option<T> {
        let path = self.stage_path(stage)?;
        let text = std::fs::read_to_string(path).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Best-effort store: failures are reported to stderr but never
    /// fail the pipeline (the in-memory artifact is the primary result).
    ///
    /// Stage files are compact JSON — each stage embeds its full
    /// upstream chain (that's what makes a single file resumable on its
    /// own), so pretty-printing would multiply already-redundant bytes.
    /// Writes go through [`pe_store::atomic_write`], so a kill mid-write
    /// can never leave a torn artifact for the next run to load (a torn
    /// cache entry would fail to parse and silently recompute, but an
    /// atomically-replaced one keeps its previous good contents).
    fn store_stage<T: Serialize>(&self, stage: StageKind, value: &T) {
        let Some(path) = self.stage_path(stage) else {
            return;
        };
        if let Some(parent) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("warning: cannot create {}: {e}", parent.display());
                return;
            }
        }
        match serde_json::to_string(value) {
            Ok(json) => {
                if let Err(e) = pe_store::atomic_write(&path, json.as_bytes()) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {stage} stage: {e}"),
        }
    }

    // ------------------------------------------------ multi-dataset runs

    /// Run studies for many datasets on a `std::thread` worker pool.
    ///
    /// Each dataset runs at the seed [`derive_seed`]`(base.seed,
    /// dataset)` — deterministic and independent of scheduling — so the
    /// result (and any JSON serialization of it) is byte-identical
    /// whether `threads` is 1 or many. Results come back in input
    /// order.
    ///
    /// # Errors
    ///
    /// The first (by input order) per-dataset error.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics (stage code reports
    /// failures as [`FlowError`] instead).
    pub fn run_many(
        datasets: &[Dataset],
        base: &StudyConfig,
        opts: &RunManyOptions,
    ) -> Result<Vec<DatasetStudy>, FlowError> {
        Ok(Self::run_many_selected(datasets, base, opts)?
            .into_iter()
            .map(Selected::into_study)
            .collect())
    }

    /// [`run_many`](Self::run_many), returning the full [`Selected`]
    /// stage artifacts instead of the flattened studies.
    ///
    /// # Errors
    ///
    /// The first (by input order) per-dataset error.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics.
    pub fn run_many_selected(
        datasets: &[Dataset],
        base: &StudyConfig,
        opts: &RunManyOptions,
    ) -> Result<Vec<Selected>, FlowError> {
        let n = datasets.len();
        let budget = match opts.threads {
            0 => crate::eval::thread_budget(),
            t => t,
        };
        let workers = budget.clamp(1, n.max(1));
        // Divide the global budget between the two pool levels: with
        // `workers` studies running concurrently, each study's batch
        // evaluator gets its share, so dataset-level and within-study
        // parallelism multiply to ~`budget` threads instead of
        // oversubscribing to `budget²`.
        let eval_threads = (budget / workers).max(1);

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Selected, FlowError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(&dataset) = datasets.get(i) else {
                        break;
                    };
                    let result = Self::run_one_of_many(dataset, base, opts, eval_threads);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every slot is filled before the scope ends")
            })
            .collect()
    }

    fn run_one_of_many(
        dataset: Dataset,
        base: &StudyConfig,
        opts: &RunManyOptions,
        eval_threads: usize,
    ) -> Result<Selected, FlowError> {
        let mut config = base.clone();
        let seed = derive_seed(base.seed, dataset);
        config.seed = seed;
        config.ga.nsga.seed = seed;

        let mut builder = Study::for_dataset(dataset)
            .config(config.clone())
            .eval_threads(eval_threads);
        if let Some(dir) = &opts.cache_dir {
            builder = builder.cache_dir(dir);
        }
        if let Some(factory) = &opts.engine {
            builder = builder.engine(factory(dataset, &config));
        }
        if let Some(progress) = &opts.progress {
            let progress = progress.clone();
            builder = builder.progress(move |event| progress(dataset, event));
        }
        if let Some(token) = &opts.cancel {
            builder = builder.cancel_token(token.clone());
        }
        if let Some(writer) = &opts.store {
            builder = builder.design_store_shared(Arc::clone(writer));
        }
        builder.finish()?.run()
    }
}

/// Builds one engine per dataset inside [`Pipeline::run_many`]. The
/// factory receives the dataset and its *derived-seed* study
/// configuration, so engines with internal stochastic state (e.g. an
/// [`NsgaEngine`] built from `config.ga`) stay decorrelated across
/// datasets exactly like the default engine does.
pub type EngineFactory =
    Arc<dyn Fn(Dataset, &StudyConfig) -> Arc<dyn SearchEngine + Send + Sync> + Send + Sync>;

/// Options for [`Pipeline::run_many`].
#[derive(Default)]
pub struct RunManyOptions {
    /// Worker threads (`0` = the shared
    /// [`thread_budget`](crate::eval::thread_budget) — the `PE_THREADS`
    /// knob, one per core when unset — capped at the dataset count).
    pub threads: usize,
    /// Stage-cache directory shared by all datasets.
    pub cache_dir: Option<PathBuf>,
    /// Engine override: a factory called once per dataset with the
    /// derived-seed config (default: each pipeline's [`NsgaEngine`]
    /// built from that config's `ga` section).
    pub engine: Option<EngineFactory>,
    /// Progress observer; events are tagged with their dataset.
    #[allow(clippy::type_complexity)]
    pub progress: Option<Arc<dyn Fn(Dataset, &ProgressEvent) + Send + Sync>>,
    /// Cancellation token shared by all datasets.
    pub cancel: Option<CancelToken>,
    /// Design-store writer shared by all datasets: every study ingests
    /// its unique designs into the one store file (ingest only — the
    /// [`Study::warm_start`] knob is per-study and not exposed here,
    /// so multi-dataset artifacts stay byte-identical to storeless
    /// runs).
    pub store: Option<Arc<pe_store::StoreWriter>>,
}

impl RunManyOptions {
    /// Options running `threads` workers (0 = one per core).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

impl std::fmt::Debug for RunManyOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunManyOptions")
            .field("threads", &self.threads)
            .field("cache_dir", &self.cache_dir)
            .field("engine", &self.engine.is_some())
            .field("progress", &self.progress.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("store", &self.store.as_ref().map(|w| w.path().to_owned()))
            .finish()
    }
}

/// Version tag mixed into every stage-cache key. Bump whenever a
/// stage-affecting algorithm changes (data generation, SGD, the GA,
/// hardware costing), so stale artifacts from older code are never
/// served as current results. Configuration changes are handled
/// automatically; only *code* changes need a bump.
pub const STAGE_CACHE_VERSION: u32 = 1;

// ---------------------------------------------------------------- seeding

/// Deterministic per-dataset seed derivation for
/// [`Pipeline::run_many`]: a splitmix64 finalizer over the master seed
/// mixed with an FNV-1a hash of the dataset's short name.
///
/// Stable across dataset-enum reordering (the name is hashed, not the
/// discriminant); pinned by tests so parallel and sequential runs stay
/// byte-identical across releases.
#[must_use]
pub fn derive_seed(master: u64, dataset: Dataset) -> u64 {
    splitmix64(master ^ fnv1a64(dataset.spec().short_name.as_bytes()))
}

/// splitmix64 finalizer (Steele et al.; the de-facto standard seed
/// scrambler).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash (cache keys, seed derivation,
/// [`crate::engine::fingerprint_json`]) — the single copy in this
/// crate; the pinned [`derive_seed`] values depend on it.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_unrunnable_configs() {
        let bad_pop = StudyConfig {
            ga: crate::AxTrainConfig {
                nsga: pe_nsga::NsgaConfig {
                    population: 1,
                    ..pe_nsga::NsgaConfig::default()
                },
                ..crate::AxTrainConfig::default()
            },
            ..StudyConfig::default()
        };
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(bad_pop)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));

        let bad_scale = StudyConfig {
            sgd_epochs_scale: 0.0,
            ..StudyConfig::default()
        };
        assert!(matches!(
            Study::for_dataset(Dataset::Cardio)
                .config(bad_scale)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));

        let bad_budget = StudyConfig {
            accuracy_loss_budget: 1.5,
            ..StudyConfig::default()
        };
        assert!(matches!(
            Study::for_dataset(Dataset::RedWine)
                .config(bad_budget)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn seed_overrides_config_and_budget_presets_resolve() {
        let pipeline = Study::for_dataset(Dataset::BreastCancer)
            .config(StudyConfig::quick(0))
            .seed(99)
            .finish()
            .expect("valid");
        assert_eq!(pipeline.config().seed, 99);
        assert_eq!(pipeline.config().ga.nsga.seed, 99);

        let quick = Study::for_dataset(Dataset::BreastCancer)
            .seed(5)
            .budget(Budget::Quick)
            .finish()
            .expect("valid");
        assert_eq!(quick.config().ga.nsga.population, 24);
        assert_eq!(quick.engine_name(), "nsga2-axc");
    }

    #[test]
    fn derived_seeds_are_pinned() {
        // Frozen values: parallel and sequential runs must derive the
        // same per-dataset seeds forever, or cached artifacts and
        // regression JSONs silently shift.
        let pinned: Vec<u64> = Dataset::ALL.iter().map(|&d| derive_seed(0, d)).collect();
        assert_eq!(
            pinned,
            [
                0xeb49_dc4c_c013_4230, // BreastCancer
                0x7371_6e54_3ed2_fb41, // Cardio
                0xd771_9ef5_e5bb_bc47, // Pendigits
                0xf2f8_6562_fdf8_cc2f, // RedWine
                0xf0cd_d55a_7f39_10d3, // WhiteWine
            ]
        );
        // Distinct across datasets and master seeds.
        let mut uniq = pinned.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), pinned.len());
        assert_ne!(derive_seed(1, Dataset::BreastCancer), pinned[0]);
    }

    #[test]
    fn cache_key_distinguishes_configs() {
        let a = Study::for_dataset(Dataset::BreastCancer)
            .config(StudyConfig::quick(1))
            .finish()
            .expect("valid");
        let b = Study::for_dataset(Dataset::BreastCancer)
            .config(StudyConfig::quick(2))
            .finish()
            .expect("valid");
        // The seed feeds every stage: all five keys must differ.
        for stage in StageKind::ALL {
            assert_ne!(a.cache_key(stage), b.cache_key(stage), "{stage}");
        }
    }

    #[test]
    fn cache_key_distinguishes_engine_configs() {
        // Same StudyConfig, same engine *name*, different engine
        // configuration: the fingerprint must keep the entries apart.
        let base = StudyConfig::quick(1);
        let default_engine = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .finish()
            .expect("valid");
        let fa_engine = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .engine(Arc::new(crate::engine::NsgaEngine::new(
                crate::AxTrainConfig {
                    objective: crate::AreaObjective::FaCount,
                    ..base.ga
                },
            )))
            .finish()
            .expect("valid");
        assert_eq!(default_engine.engine_name(), fa_engine.engine_name());
        assert_ne!(
            default_engine.cache_key(StageKind::Searched),
            fa_engine.cache_key(StageKind::Searched)
        );
        // ...while the engine-independent early stages stay shared.
        for stage in [
            StageKind::Prepared,
            StageKind::FloatTrained,
            StageKind::BaselineCosted,
        ] {
            assert_eq!(
                default_engine.cache_key(stage),
                fa_engine.cache_key(stage),
                "{stage}"
            );
        }
    }

    #[test]
    fn cache_key_distinguishes_scenarios_but_keeps_early_stages() {
        // Tech / supply / power budget are search-and-costing inputs:
        // they must re-key BaselineCosted onward while the expensive
        // data and SGD artifacts stay shared.
        let base = StudyConfig::quick(1);
        let nominal = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .finish()
            .expect("valid");
        for build in [
            Study::for_dataset(Dataset::BreastCancer)
                .config(base.clone())
                .tech(TechLibrary::egfet_lowpower()),
            Study::for_dataset(Dataset::BreastCancer)
                .config(base.clone())
                .supply(0.6),
            Study::for_dataset(Dataset::BreastCancer)
                .config(base.clone())
                .power_source(PowerSource::Harvester),
        ] {
            let scoped = build.finish().expect("valid");
            for stage in [StageKind::Prepared, StageKind::FloatTrained] {
                assert_eq!(nominal.cache_key(stage), scoped.cache_key(stage), "{stage}");
            }
            for stage in [
                StageKind::BaselineCosted,
                StageKind::Searched,
                StageKind::Selected,
            ] {
                assert_ne!(
                    nominal.cache_key(stage),
                    scoped.cache_key(stage),
                    "{stage} under {}",
                    scoped.scenario().label()
                );
            }
        }
    }

    #[test]
    fn builder_rejects_invalid_scenarios() {
        // Undervolted supply.
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(StudyConfig::quick(0))
                .supply(0.2)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));
        // Non-positive power budget.
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(StudyConfig::quick(0))
                .power_budget_mw(0.0)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));
        // Power budget with the FA-count proxy (no power information).
        let fa_cfg = StudyConfig {
            ga: crate::AxTrainConfig {
                objective: crate::AreaObjective::FaCount,
                ..StudyConfig::quick(0).ga
            },
            ..StudyConfig::quick(0)
        };
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(fa_cfg)
                .power_source(PowerSource::Molex)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn cache_key_distinguishes_variation_but_keeps_nominal_keys() {
        // A robust study must never be served a nominal cached front
        // (or vice versa), while the data/SGD/baseline artifacts stay
        // shared — and a config with `variation: None` must key exactly
        // like one predating the field, so pre-variation caches and the
        // nominal artifact set survive untouched.
        let base = StudyConfig::quick(1);
        let nominal = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .finish()
            .expect("valid");
        let robust = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .variation(pe_hw::VariationModel::printed_egfet(), 8)
            .finish()
            .expect("valid");
        for stage in [
            StageKind::Prepared,
            StageKind::FloatTrained,
            StageKind::BaselineCosted,
        ] {
            assert_eq!(nominal.cache_key(stage), robust.cache_key(stage), "{stage}");
        }
        for stage in [StageKind::Searched, StageKind::Selected] {
            assert_ne!(nominal.cache_key(stage), robust.cache_key(stage), "{stage}");
        }
        // The statistic and the trial count are part of the key too.
        let p95 = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .variation(pe_hw::VariationModel::printed_egfet(), 8)
            .variation_statistic(pe_hw::RobustStat::P95)
            .finish()
            .expect("valid");
        let more_trials = Study::for_dataset(Dataset::BreastCancer)
            .config(base)
            .variation(pe_hw::VariationModel::printed_egfet(), 16)
            .finish()
            .expect("valid");
        assert_ne!(
            robust.cache_key(StageKind::Searched),
            p95.cache_key(StageKind::Searched)
        );
        assert_ne!(
            robust.cache_key(StageKind::Searched),
            more_trials.cache_key(StageKind::Searched)
        );
    }

    #[test]
    fn builder_rejects_invalid_variation() {
        // Zero Monte-Carlo trials.
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(StudyConfig::quick(0))
                .variation(pe_hw::VariationModel::printed_egfet(), 0)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));
        // Negative spread.
        let negative = pe_hw::VariationModel {
            threshold_sigma: -0.1,
            ..pe_hw::VariationModel::nominal()
        };
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(StudyConfig::quick(0))
                .variation(negative, 4)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn cache_keys_are_stage_scoped() {
        // Changing a late-stage-only parameter must not invalidate the
        // expensive early artifacts.
        let base = StudyConfig::quick(1);
        let a = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .finish()
            .expect("valid");
        let b = Study::for_dataset(Dataset::BreastCancer)
            .config(StudyConfig {
                accuracy_loss_budget: 0.02,
                ..base.clone()
            })
            .finish()
            .expect("valid");
        for stage in [
            StageKind::Prepared,
            StageKind::FloatTrained,
            StageKind::BaselineCosted,
            StageKind::Searched,
        ] {
            assert_eq!(a.cache_key(stage), b.cache_key(stage), "{stage}");
        }
        assert_ne!(
            a.cache_key(StageKind::Selected),
            b.cache_key(StageKind::Selected)
        );

        // A bigger GA budget re-searches but keeps the float model.
        let c = Study::for_dataset(Dataset::BreastCancer)
            .config(StudyConfig {
                ga: crate::AxTrainConfig {
                    nsga: pe_nsga::NsgaConfig {
                        generations: 99,
                        ..base.ga.nsga.clone()
                    },
                    ..base.ga.clone()
                },
                ..base.clone()
            })
            .finish()
            .expect("valid");
        for stage in [
            StageKind::Prepared,
            StageKind::FloatTrained,
            StageKind::BaselineCosted,
        ] {
            assert_eq!(a.cache_key(stage), c.cache_key(stage), "{stage}");
        }
        assert_ne!(
            a.cache_key(StageKind::Searched),
            c.cache_key(StageKind::Searched)
        );
    }

    fn store_scratch(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "printed-axc-pipeline-store-{}-{tag}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn store_rekeys_only_when_warm_seeds_exist() {
        let base = StudyConfig::quick(1);
        let storeless = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .finish()
            .expect("valid");

        // Ingest-only store: every key identical to storeless (the
        // byte-identity guarantee behind `PE_STORE`-enabled artifact
        // runs).
        let path = store_scratch("ingest");
        let ingest_only = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .design_store(&path)
            .finish()
            .expect("valid");
        for stage in StageKind::ALL {
            assert_eq!(
                storeless.cache_key(stage),
                ingest_only.cache_key(stage),
                "{stage}"
            );
        }

        // Warm-start over an *empty* store: still identical.
        let warm_empty = Study::for_dataset(Dataset::BreastCancer)
            .config(base.clone())
            .design_store(&path)
            .warm_start(true)
            .finish()
            .expect("valid");
        for stage in StageKind::ALL {
            assert_eq!(
                storeless.cache_key(stage),
                warm_empty.cache_key(stage),
                "{stage}"
            );
        }

        // Populate the store with one front member of this dataset;
        // warm-start now re-keys the search (and selection) but never
        // the data/SGD/baseline stages.
        {
            let writer = Arc::new(pe_store::StoreWriter::open(&path).expect("open for population"));
            let sink = crate::store::StoreSink::new(
                Arc::clone(&writer),
                Dataset::BreastCancer.spec().name,
                false,
            );
            sink.annotate_front(&crate::pareto::DesignCandidate {
                mlp: pe_mlp::AxMlp {
                    layers: vec![pe_mlp::AxLayer {
                        input_bits: 4,
                        neurons: vec![pe_mlp::AxNeuron {
                            weights: vec![pe_mlp::AxWeight {
                                mask: 0b1111,
                                shift: 1,
                                negative: false,
                            }],
                            bias: 2,
                        }],
                        qrelu: None,
                    }],
                },
                train_accuracy: 0.9,
                test_accuracy: 0.88,
                estimated_area: 10.0,
            });
        }
        let warm_full = Study::for_dataset(Dataset::BreastCancer)
            .config(base)
            .design_store(&path)
            .warm_start(true)
            .finish()
            .expect("valid");
        for stage in [
            StageKind::Prepared,
            StageKind::FloatTrained,
            StageKind::BaselineCosted,
        ] {
            assert_eq!(
                storeless.cache_key(stage),
                warm_full.cache_key(stage),
                "{stage}"
            );
        }
        for stage in [StageKind::Searched, StageKind::Selected] {
            assert_ne!(
                storeless.cache_key(stage),
                warm_full.cache_key(stage),
                "{stage}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn builder_rejects_inconsistent_store_configs() {
        // Warm-start without a store.
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(StudyConfig::quick(0))
                .warm_start(true)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));
        // Both a path and a shared writer.
        let path = store_scratch("both");
        let writer = Arc::new(pe_store::StoreWriter::open(&path).expect("open"));
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(StudyConfig::quick(0))
                .design_store(&path)
                .design_store_shared(writer)
                .finish(),
            Err(FlowError::InvalidConfig { .. })
        ));
        // An unreadable store path surfaces as a store error.
        assert!(matches!(
            Study::for_dataset(Dataset::BreastCancer)
                .config(StudyConfig::quick(0))
                .design_store("/proc/definitely/not/writable/designs.jsonl")
                .finish(),
            Err(FlowError::Store { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
